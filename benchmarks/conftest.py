"""Benchmark-suite helpers.

``report`` prints paper-style result tables with capture disabled, so
``pytest benchmarks/ --benchmark-only`` always shows the reproduced
rows/series next to the timing stats (even under fd-level capture).
"""

import pytest


@pytest.fixture
def report(capsys):
    def _report(text: str) -> None:
        with capsys.disabled():
            print("\n" + text, flush=True)
    return _report
