"""Microbenchmarks of the data-plane crypto primitives.

Not a paper table — supporting measurements for the §XI "digest size and
computation overhead" discussion: per-digest cost of the two target
algorithms (HalfSipHash on BMv2, CRC32 on Tofino), the KDF, and the
modified DH operations.
"""

from repro.core.digest import DigestEngine
from repro.core.messages import build_reg_write_request
from repro.crypto.crc import Crc32
from repro.crypto.halfsiphash import HalfSipHash
from repro.crypto.kdf import Kdf
from repro.crypto.modified_dh import DhParameters, dh_public, dh_shared

KEY = 0x0123456789ABCDEF
MESSAGE = bytes(range(64))


def test_halfsiphash_digest(benchmark):
    engine = HalfSipHash()
    tag = benchmark(engine.digest, KEY, MESSAGE)
    assert 0 <= tag < (1 << 32)


def test_crc32_keyed_digest(benchmark):
    engine = Crc32()
    tag = benchmark(engine.compute_keyed, KEY, MESSAGE)
    assert 0 <= tag < (1 << 32)


def test_kdf_derivation(benchmark):
    engine = Kdf()
    key = benchmark(engine.derive, KEY, 0xABCDEF)
    assert 0 <= key < (1 << 64)


def test_modified_dh_roundtrip(benchmark):
    params = DhParameters()

    def exchange():
        pk1 = dh_public(params, 0x1111111111111111)
        pk2 = dh_public(params, 0x2222222222222222)
        return dh_shared(params, 0x1111111111111111, pk2), pk1

    secret, _pk = benchmark(exchange)
    assert 0 <= secret < (1 << 64)


def test_full_message_sign_verify(benchmark):
    engine = DigestEngine()
    message = build_reg_write_request(1, 0, 0xBEEF, 1)

    def sign_and_verify():
        engine.sign(KEY, message)
        return engine.verify(KEY, message)

    assert benchmark(sign_and_verify)
