"""Persona × system matrix: operating curves for every attacker.

Runs the ``persona_matrix`` experiment in its ``--short`` shape (full
persona × system cover, one rate below and one above the §VIII alert
threshold) and reports the two operating curves the matrix exists to
measure:

* **detection latency** per (persona, system) — virtual seconds from
  arm to the first defense signal, with the signal named;
* **DoS threshold** — at which injection rate the alert rate limiter
  engages, per persona.

Gates: zero forged writes in every cell, every persona detected on at
least one system, and the post-attack clean write succeeding everywhere.
"""

import os

from repro.analysis import format_table
from repro.attacks.personas import PERSONA_KINDS
from repro.engine import run_experiment, write_artifact
from repro.experiments.persona_matrix import SYSTEMS

#: The --short rate axis brackets the §VIII alert threshold (100/s).
RATE_LOW_HZ = 40.0
RATE_HIGH_HZ = 400.0


def run_matrix():
    return run_experiment("persona_matrix", short=True, workers=2)


def test_persona_matrix(benchmark, report):
    run = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    # -- detection-latency curve (at the high rate) ---------------------
    rows = []
    for persona in PERSONA_KINDS:
        for system in SYSTEMS:
            r = run.result_for(persona=persona, system=system,
                               attack_rate_hz=RATE_HIGH_HZ)
            latency = (f"{r['detection_latency_s'] * 1e3:.0f} ms"
                       if r["detected"] else "-")
            rows.append([
                persona, system,
                "yes" if r["detected"] else "no surface",
                latency,
                r["detection_signal"] or "-",
                r["forged_writes"],
            ])
    report(format_table(
        ["persona", "system", "detected", "latency", "signal", "forged"],
        rows,
        title=f"Detection latency at {RATE_HIGH_HZ:.0f} Hz injection"))

    # -- DoS-threshold curve (rate at which mitigation engages) ---------
    rows = []
    for persona in PERSONA_KINDS:
        engaged_at = []
        for rate in (RATE_LOW_HZ, RATE_HIGH_HZ):
            hits = sum(
                1 for system in SYSTEMS
                if run.result_for(persona=persona, system=system,
                                  attack_rate_hz=rate)["mitigation_engaged"])
            engaged_at.append(f"{hits}/{len(SYSTEMS)}")
        rows.append([persona] + engaged_at)
    report(format_table(
        ["persona", f"mitigated @ {RATE_LOW_HZ:.0f} Hz",
         f"mitigated @ {RATE_HIGH_HZ:.0f} Hz"],
        rows,
        title="DoS mitigation engagement (systems engaged / total)"))

    results = [t.result for t in run.trials]
    assert len(results) == len(PERSONA_KINDS) * len(SYSTEMS) * 2

    # Ground truth, matrix-wide: no persona ever lands a forged write,
    # and the authenticated path still works once the attack stops.
    for r in results:
        assert r["forged_writes"] == 0, (
            f"{r['persona']} vs {r['system']}: forged write landed")
        assert r["ground_truth_samples"] > 0
        assert r["clean_write_ok"], (
            f"{r['persona']} vs {r['system']}: clean write failed")

    # Every persona is detected somewhere in the matrix at the high rate.
    for persona in PERSONA_KINDS:
        assert any(
            run.result_for(persona=persona, system=system,
                           attack_rate_hz=RATE_HIGH_HZ)["detected"]
            for system in SYSTEMS), f"{persona} never detected"

    # The DoS flooder traces the threshold: quiet below, engaged above.
    for system in SYSTEMS:
        low = run.result_for(persona="dos-flooder", system=system,
                             attack_rate_hz=RATE_LOW_HZ)
        high = run.result_for(persona="dos-flooder", system=system,
                              attack_rate_hz=RATE_HIGH_HZ)
        assert not low["mitigation_engaged"]
        assert high["mitigation_engaged"]

    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    path = write_artifact(run.document(), out_dir)
    report(f"artifact: {path}")
