"""Fig 21 — in-network control message processing time vs hop count.

Paper anchors: P4Auth inflates HULA probe traversal time by 0.95% at 2
hops and 5.9% at 10 hops, growing roughly linearly in between.
"""

from repro.analysis import format_table
from repro.engine import run_experiment
from repro.experiments.fig21_multihop import curve_from_trials


def run_curve():
    run = run_experiment("fig21", sweep={"num_probes": [30]})
    return curve_from_trials(run.results())


def test_fig21_multihop_overhead(benchmark, report):
    rows_data = benchmark.pedantic(run_curve, rounds=1, iterations=1)
    paper = {2: "0.95%", 10: "5.9%"}
    rows = []
    for row in rows_data:
        rows.append([
            row["hops"],
            f"{row['base_us']:.1f}",
            f"{row['p4auth_us']:.1f}",
            f"{row['overhead_pct']:.2f}%",
            paper.get(row["hops"], ""),
        ])
    report(format_table(
        ["hops", "base (us)", "with P4Auth (us)", "overhead", "paper"],
        rows, title="Fig 21: probe traversal time vs hop count"))

    by_hops = {row["hops"]: row["overhead_pct"] for row in rows_data}
    assert 0.5 < by_hops[2] < 1.5       # paper: 0.95%
    assert 5.0 < by_hops[10] < 7.0      # paper: 5.9%
    overheads = [row["overhead_pct"] for row in rows_data]
    assert overheads == sorted(overheads)  # monotonic growth
