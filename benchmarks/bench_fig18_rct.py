"""Fig 18 — register read/write request completion time (RCT).

Paper: P4Auth has minimal impact on RCT relative to DP-Reg-RW; the
P4Runtime stack pays extra per-request overhead; writes cost more than
reads because the controller composes both the index and the data.
"""

import pytest

from repro.analysis import format_table
from repro.engine import run_experiment
from repro.runtime.comparison import STACKS, measure


def run_matrix():
    run = run_experiment("fig18")
    return {(t.params["stack"], t.params["kind"]): t.result
            for t in run.trials}


def test_fig18_request_completion_time(benchmark, report):
    table = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    rows = []
    for name in STACKS:
        rows.append([
            name,
            f"{table[(name, 'read')]['mean_rct_s'] * 1e6:.1f}",
            f"{table[(name, 'write')]['mean_rct_s'] * 1e6:.1f}",
        ])
    report(format_table(
        ["stack", "read RCT (us)", "write RCT (us)"],
        rows, title="Fig 18: register read/write request completion time"))

    # Shapes: P4Auth ~= DP-Reg-RW (minimal impact); writes > reads.
    for kind in ("read", "write"):
        plain = table[("DP-Reg-RW", kind)]["mean_rct_s"]
        auth = table[("P4Auth", kind)]["mean_rct_s"]
        assert auth == pytest.approx(plain, rel=0.10)
    for name in STACKS:
        assert (table[(name, "write")]["mean_rct_s"]
                > table[(name, "read")]["mean_rct_s"])


def test_fig18_rct_distribution(benchmark, report):
    """The paper plots RCT as a CDF; with transit jitter enabled the
    measurement yields a distribution whose ordering holds at every
    percentile.  (Kept on the raw ``measure`` API: the distribution view
    needs the full per-request sample arrays, not artifact summaries.)"""
    from repro.net.costs import CostModel
    table = benchmark.pedantic(
        measure, kwargs={"duration_s": 5.0,
                         "costs": CostModel(jitter_fraction=0.15)},
        rounds=1, iterations=1)
    rows = []
    for name in STACKS:
        stats = table[(name, "read")]
        rows.append([
            name,
            f"{stats.percentile_rct_s(5) * 1e6:.0f}",
            f"{stats.percentile_rct_s(50) * 1e6:.0f}",
            f"{stats.percentile_rct_s(95) * 1e6:.0f}",
        ])
    report(format_table(
        ["stack", "read RCT p5 (us)", "p50 (us)", "p95 (us)"],
        rows, title="Fig 18 (CDF view): read RCT percentiles, 15% jitter"))
    for pct in (5, 50, 95):
        assert (table[("DP-Reg-RW", "read")].percentile_rct_s(pct)
                <= table[("P4Auth", "read")].percentile_rct_s(pct)
                <= table[("P4Runtime", "read")].percentile_rct_s(pct) * 1.05)
