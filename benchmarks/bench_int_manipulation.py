"""INT manipulation (the secINT scenario the paper cites in §I/§X).

Quantifies telemetry blinding: an on-path MitM rewrites congested INT
records into healthy ones.  Unprotected, the operator's view is silently
false; with P4Auth the tampered probes are dropped loudly.
"""

from repro.analysis import format_table
from repro.engine import run_experiment
from repro.experiments.int_manipulation import MODES


def run_all_modes():
    run = run_experiment("int")
    return {trial.params["mode"]: trial.result for trial in run.trials}


def test_int_manipulation(benchmark, report):
    results = benchmark.pedantic(run_all_modes, rounds=1, iterations=1)
    rows = []
    for mode in MODES:
        result = results[mode]
        rows.append([
            mode,
            f"{result['probes_collected']}/{result['probes_sent']}",
            result["reported_max_hop_latency_us"],
            result["true_max_hop_latency_us"],
            "yes" if result["congestion_visible"] else "no",
            "yes" if result["detected"] else "NO (silent)",
            result["alerts"],
        ])
    report(format_table(
        ["mode", "probes collected", "reported max hop (us)",
         "true max hop (us)", "congestion visible", "operator aware",
         "alerts"],
        rows, title="INT manipulation (secINT scenario)"))

    assert results["baseline"]["congestion_visible"]
    assert not results["attack"]["detected"]
    assert results["p4auth"]["detected"]
    assert results["p4auth"]["alerts"] > 0
