"""FCT inflation under the HULA attack (§II-A's headline consequence).

Fig 3 with its utilization numbers taken literally and FIFO output
queues on every fabric link: the MitM steering traffic onto the
50%-loaded path overloads it and inflates delivery latency by an order
of magnitude; P4Auth keeps latency at the baseline.
"""

from repro.analysis import format_table
from repro.engine import run_experiment
from repro.experiments.fct_inflation import MODES


def run_all_modes():
    run = run_experiment("fct", sweep={"duration_s": [2.5]})
    return {trial.params["mode"]: trial.result for trial in run.trials}


def test_fct_inflation(benchmark, report):
    results = benchmark.pedantic(run_all_modes, rounds=1, iterations=1)
    rows = []
    for mode in MODES:
        result = results[mode]
        rows.append([
            mode,
            f"{result['mean_latency_s'] * 1e3:.2f}",
            f"{result['p95_latency_s'] * 1e3:.2f}",
            f"{result['share_via_s4'] * 100:.0f}%",
            result["alerts"],
        ])
    report(format_table(
        ["mode", "mean latency (ms)", "p95 latency (ms)",
         "share via S4", "alerts"],
        rows, title="FCT inflation: Fig 3 with real link queues"))

    baseline, attack, p4auth = (results[m] for m in MODES)
    # The attack inflates delivery latency by at least an order of
    # magnitude; P4Auth restores the baseline.
    assert attack["mean_latency_s"] > 10 * baseline["mean_latency_s"]
    assert p4auth["mean_latency_s"] < 1.5 * baseline["mean_latency_s"]
    assert attack["share_via_s4"] > 0.9
    assert p4auth["share_via_s4"] < 0.05
    assert p4auth["alerts"] > 0
