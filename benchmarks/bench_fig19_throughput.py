"""Fig 19 — register read/write throughput.

Paper anchors: P4Runtime's read throughput is 1.7x its write throughput;
write throughput is similar across all three stacks; P4Auth costs 4.2%
read / 2.1% write throughput versus DP-Reg-RW.
"""

from repro.analysis import format_table
from repro.engine import run_experiment
from repro.runtime.comparison import STACKS


def run_matrix():
    run = run_experiment("fig19")
    return {(t.params["stack"], t.params["kind"]): t.result
            for t in run.trials}


def test_fig19_throughput(benchmark, report):
    table = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    rows = []
    for name in STACKS:
        rows.append([
            name,
            f"{table[(name, 'read')]['throughput_rps']:.0f}",
            f"{table[(name, 'write')]['throughput_rps']:.0f}",
        ])
    report(format_table(
        ["stack", "read (req/s)", "write (req/s)"],
        rows, title="Fig 19: register read/write throughput"))

    p4rt_ratio = (table[("P4Runtime", "read")]["throughput_rps"]
                  / table[("P4Runtime", "write")]["throughput_rps"])
    read_drop = 1 - (table[("P4Auth", "read")]["throughput_rps"]
                     / table[("DP-Reg-RW", "read")]["throughput_rps"])
    write_drop = 1 - (table[("P4Auth", "write")]["throughput_rps"]
                      / table[("DP-Reg-RW", "write")]["throughput_rps"])
    report(f"P4Runtime read/write ratio: {p4rt_ratio:.2f} (paper: 1.7)\n"
           f"P4Auth read throughput drop: {read_drop * 100:.1f}% "
           f"(paper: 4.2%)\n"
           f"P4Auth write throughput drop: {write_drop * 100:.1f}% "
           f"(paper: 2.1%)")

    assert 1.5 < p4rt_ratio < 1.9
    assert 0.02 < read_drop < 0.07
    assert 0.01 < write_drop < 0.05
    # Writes similar across stacks (paper: "not much difference").
    writes = [table[(name, "write")]["throughput_rps"] for name in STACKS]
    assert max(writes) / min(writes) < 1.1
