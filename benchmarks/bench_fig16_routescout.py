"""Fig 16 — P4Auth prevents traffic imbalance in RouteScout.

Paper: without an adversary RouteScout splits by measured path delay;
with an adversary ~70% of traffic is rerouted to path 2; with P4Auth the
original split is retained and alerts are raised.
"""

from repro.analysis import format_table
from repro.engine import run_experiment
from repro.experiments.fig16_routescout import MODES


def run_all():
    run = run_experiment("fig16", sweep={"duration_s": [30.0],
                                         "attack_start_s": [8.0]})
    return {trial.params["mode"]: trial.result for trial in run.trials}


def test_fig16_routescout_defense(benchmark, report):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    paper = {
        "baseline": "delay-driven split",
        "attack": "~70% on path 2",
        "p4auth": "original split retained",
    }
    for mode in MODES:
        result = results[mode]
        rows.append([
            mode,
            f"{result['share_path1'] * 100:.1f}%",
            f"{result['share_path2'] * 100:.1f}%",
            result["epochs_skipped"],
            result["tamper_events"],
            paper[mode],
        ])
    report(format_table(
        ["mode", "path1 share", "path2 share", "epochs skipped",
         "tamper events", "paper"],
        rows, title="Fig 16: RouteScout traffic distribution"))

    baseline, attack, p4auth = (results[m] for m in MODES)
    assert baseline["share_path1"] > 0.55
    assert attack["share_path2"] > 0.6
    assert abs(p4auth["share_path1"] - baseline["share_path1"]) < 0.05
    assert p4auth["tamper_events"] > 0
