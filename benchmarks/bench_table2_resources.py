"""Table II — hardware resource overhead.

Paper (Tofino, baseline L3 forwarding vs with P4Auth):

             TCAM   SRAM   Hash Units   PHV
Baseline     8.3%   2.5%   1.4%         11%
With P4Auth  8.3%   3.6%   51.4%        23.1%
"""

from repro.analysis import format_table
from repro.engine import run_experiment
from repro.experiments.table2_resources import PROGRAM_LABELS, PROGRAMS

PAPER = {
    "baseline": (8.3, 2.5, 1.4, 11.0),
    "p4auth": (8.3, 3.6, 51.4, 23.1),
}


def compile_both():
    run = run_experiment("table2")
    return {program: run.result_for(program=program)
            for program in PROGRAMS}


def test_table2_resource_overhead(benchmark, report):
    reports = benchmark.pedantic(compile_both, rounds=1, iterations=1)
    rows = []
    for program in PROGRAMS:
        result = reports[program]
        paper = PAPER[program]
        rows.append([
            PROGRAM_LABELS[program],
            f"{result['tcam_pct']}% (paper {paper[0]}%)",
            f"{result['sram_pct']}% (paper {paper[1]}%)",
            f"{result['hash_pct']}% (paper {paper[2]}%)",
            f"{result['phv_pct']}% (paper {paper[3]}%)",
        ])
    report(format_table(
        ["program", "TCAM", "SRAM", "Hash Units", "PHV"],
        rows, title="Table II: hardware resource overhead"))

    baseline = reports["baseline"]
    p4auth = reports["p4auth"]
    assert (baseline["tcam_pct"], baseline["sram_pct"],
            baseline["hash_pct"], baseline["phv_pct"]) == (8.3, 2.5, 1.4,
                                                           11.1)
    assert (p4auth["tcam_pct"], p4auth["sram_pct"],
            p4auth["hash_pct"], p4auth["phv_pct"]) == (8.3, 3.6, 51.4,
                                                       23.1)
