"""Table II — hardware resource overhead.

Paper (Tofino, baseline L3 forwarding vs with P4Auth):

             TCAM   SRAM   Hash Units   PHV
Baseline     8.3%   2.5%   1.4%         11%
With P4Auth  8.3%   3.6%   51.4%        23.1%
"""

from repro.analysis import format_table
from repro.core.program import baseline_program_spec, p4auth_program_spec
from repro.dataplane.resources import ResourceModel

PAPER = {
    "Baseline": (8.3, 2.5, 1.4, 11.0),
    "With P4Auth": (8.3, 3.6, 51.4, 23.1),
}


def compile_both():
    model = ResourceModel()
    return {
        "Baseline": model.report(baseline_program_spec()),
        "With P4Auth": model.report(p4auth_program_spec()),
    }


def test_table2_resource_overhead(benchmark, report):
    reports = benchmark.pedantic(compile_both, rounds=1, iterations=1)
    rows = []
    for name, resource_report in reports.items():
        paper = PAPER[name]
        rows.append([
            name,
            f"{resource_report.tcam_pct}% (paper {paper[0]}%)",
            f"{resource_report.sram_pct}% (paper {paper[1]}%)",
            f"{resource_report.hash_pct}% (paper {paper[2]}%)",
            f"{resource_report.phv_pct}% (paper {paper[3]}%)",
        ])
    report(format_table(
        ["program", "TCAM", "SRAM", "Hash Units", "PHV"],
        rows, title="Table II: hardware resource overhead"))

    baseline = reports["Baseline"]
    p4auth = reports["With P4Auth"]
    assert baseline.as_row() == {"TCAM": 8.3, "SRAM": 2.5,
                                 "Hash Units": 1.4, "PHV": 11.1}
    assert p4auth.as_row() == {"TCAM": 8.3, "SRAM": 3.6,
                               "Hash Units": 51.4, "PHV": 23.1}
