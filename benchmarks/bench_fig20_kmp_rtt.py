"""Fig 20 — key management protocol round-trip times.

Paper: 1-2 ms for key initialization, under 1 ms for updates; port-key
init is slowest (its ADHKD legs are redirected through the controller);
port-key update beats local-key update despite exchanging more messages.
"""

from repro.analysis import format_table
from repro.engine import run_experiment
from repro.experiments.fig20_kmp import OPS

PAPER_NOTES = {
    "local_init": "1-2 ms (EAK + ADHKD)",
    "port_init": "longest (redirected via C)",
    "local_update": "< 1 ms",
    "port_update": "< local update",
}


def run_rtts():
    return run_experiment("fig20").only()


def test_fig20_kmp_rtt(benchmark, report):
    result = benchmark.pedantic(run_rtts, rounds=1, iterations=1)
    mean_ms = result["mean_ms"]
    rows = []
    for op in OPS:
        messages, size = result["footprint"][op]
        rows.append([
            op,
            f"{mean_ms[op]:.3f}",
            messages,
            size,
            PAPER_NOTES[op],
        ])
    report(format_table(
        ["operation", "RTT (ms)", "messages", "bytes", "paper"],
        rows, title="Fig 20: key management RTT (+ Table III footprints)"))

    assert 1.0 <= mean_ms["local_init"] <= 2.0
    assert mean_ms["port_init"] > mean_ms["local_init"]
    assert mean_ms["local_update"] < 1.0
    assert mean_ms["port_update"] < mean_ms["local_update"]
