"""Fig 20 — key management protocol round-trip times.

Paper: 1-2 ms for key initialization, under 1 ms for updates; port-key
init is slowest (its ADHKD legs are redirected through the controller);
port-key update beats local-key update despite exchanging more messages.
"""

from repro.analysis import format_table
from repro.experiments.fig20_kmp import OPS, run_kmp_rtt

PAPER_NOTES = {
    "local_init": "1-2 ms (EAK + ADHKD)",
    "port_init": "longest (redirected via C)",
    "local_update": "< 1 ms",
    "port_update": "< local update",
}


def test_fig20_kmp_rtt(benchmark, report):
    result = benchmark.pedantic(run_kmp_rtt, kwargs={"repeats": 20},
                                rounds=1, iterations=1)
    rows = []
    for op in OPS:
        messages, size = result.footprint[op]
        rows.append([
            op,
            f"{result.mean_ms(op):.3f}",
            messages,
            size,
            PAPER_NOTES[op],
        ])
    report(format_table(
        ["operation", "RTT (ms)", "messages", "bytes", "paper"],
        rows, title="Fig 20: key management RTT (+ Table III footprints)"))

    assert 1.0 <= result.mean_ms("local_init") <= 2.0
    assert result.mean_ms("port_init") > result.mean_ms("local_init")
    assert result.mean_ms("local_update") < 1.0
    assert result.mean_ms("port_update") < result.mean_ms("local_update")
