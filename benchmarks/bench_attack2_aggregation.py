"""Attack 2 (§II-A) — in-network aggregation: silent corruption vs JCT.

Not a numbered paper figure; it quantifies §II-A's Attack 2 claim that
altering in-network control/aggregation messages "inflates flow
completion time (FCT) or job completion times (JCT)" — and its worse
sibling, silent result corruption when the fabric is trusted.
"""

from repro.analysis import format_table
from repro.engine import run_experiment
from repro.experiments.attack2_aggregation import MODES


def run_all_modes():
    run = run_experiment("aggregation")
    return {trial.params["mode"]: trial.result for trial in run.trials}


def test_attack2_aggregation(benchmark, report):
    results = benchmark.pedantic(run_all_modes, rounds=1, iterations=1)
    rows = []
    for mode in MODES:
        result = results[mode]
        rows.append([
            mode,
            f"{result['correct_chunks']}/{result['chunks']}",
            f"{result['jct_rounds']:.2f}",
            result["tampered"],
            result["dropped_at_switch"],
            result["alerts"],
        ])
    report(format_table(
        ["mode", "correct aggregates", "JCT (rounds/chunk)",
         "tampered", "dropped at switch", "alerts"],
        rows, title="Attack 2: in-network aggregation under a MitM"))

    baseline, attack, p4auth = (results[m] for m in MODES)
    assert baseline["correct_chunks"] == baseline["chunks"]
    # The attack silently corrupts a large fraction at no JCT cost.
    assert attack["correct_chunks"] < attack["chunks"] * 0.75
    assert attack["jct_rounds"] == 1.0
    assert attack["alerts"] == 0
    # P4Auth: everything correct, bounded JCT inflation, loud detection.
    assert p4auth["correct_chunks"] == p4auth["chunks"]
    assert 1.0 < p4auth["jct_rounds"] < 4.0
    assert p4auth["alerts"] > 0
