"""Controller service — fleet req/s by shard count (ROADMAP item 1).

Drives the ``cdp_service_load`` experiment at m=100: concurrent
authenticated clients push mixed read/write batches through the sharded
:mod:`repro.service` daemon's real dispatch surface (token auth,
consistent-hash routing, bounded queues).  Each shard owns its share of
the fleet and its own ``issue_window`` slice of the §IV
outstanding-request DoS budget, so fleet throughput should scale with
shard count; the assertion pins >= 3x req/s at 4 shards vs 1.

The trial itself enforces the security invariants (zero digest
failures, zero replay rejections, no forged register end-states, no
controller/data-plane sequence divergence) — a violation raises rather
than shipping a worse number.
"""

from repro.analysis import format_table
from repro.engine import load_artifact, run_experiment
from repro.engine.artifact import artifact_path

M_SWITCHES = 100
CLIENTS = 24
ROUNDS = 6
BATCH_SIZE = 32


def run_service_load():
    return run_experiment(
        "cdp_service_load",
        sweep={"m": [M_SWITCHES], "shards": [1, 4],
               "clients": [CLIENTS], "rounds": [ROUNDS],
               "batch_size": [BATCH_SIZE]},
        out_dir=".",
    )


def test_cdp_service_load(benchmark, report):
    run = benchmark.pedantic(run_service_load, rounds=1, iterations=1)
    single = run.result_for(shards=1)
    sharded = run.result_for(shards=4)

    rows = []
    for r in (single, sharded):
        rows.append([
            r["shards"],
            f"{r['completed']}",
            f"{r['fleet_rps']:.0f}",
            f"{r['p50_s'] * 1e3:.2f} ms",
            f"{r['p99_s'] * 1e3:.2f} ms",
            r["retries_503"],
        ])
    speedup = sharded["fleet_rps"] / single["fleet_rps"]
    report(format_table(
        ["shards", "completed", "req/s", "p50", "p99", "503 retries"],
        rows,
        title=(f"Controller service at m={M_SWITCHES} "
               f"({CLIENTS} clients x {ROUNDS} rounds x "
               f"{BATCH_SIZE}-op batches, P4Auth)")))
    report(f"shard scaling: {speedup:.2f}x fleet req/s at 4 shards "
           f"(acceptance floor: 3x)")

    # Every op reached a terminal outcome; none were forged or lost.
    for r in (single, sharded):
        assert r["completed"] == r["submitted"]
        assert r["failed"] == 0
    # The tentpole claim: sharding the fleet scales throughput because
    # each shard brings its own DoS-budget slice.
    assert speedup >= 3.0
    # Sharding must also help latency, not just aggregate rate.
    assert sharded["p99_s"] < single["p99_s"]

    # The artifact the run published is schema-valid and complete.
    document = load_artifact(artifact_path("cdp_service_load", "."))
    assert document["experiment"] == "cdp_service_load"
    assert len(document["trials"]) == 2
