"""Table III — P4Auth scalability with simultaneous key operations.

Paper (m = 25 switches, n = 50 links per controller): key initialization
triggers 4m+5n = 350 messages / 104m+138n = 9.5 KB; key update triggers
2m+3n messages / 60m+78n = 5.4 KB.  (The paper prints "125 messages" for
the update case, which contradicts its own 2m+3n formula — the live count
confirms 200; see DESIGN.md.)
"""

from repro.analysis import format_table
from repro.engine import run_experiment


def run_scalability():
    return run_experiment("table3").only()


def test_table3_scalability(benchmark, report):
    result = benchmark.pedantic(run_scalability, rounds=1, iterations=1)
    rows = [
        ["key initialization",
         f"{result['init_messages']}",
         f"{result['formula_init_messages']} (paper: 350)",
         f"{result['init_bytes'] / 1000:.1f} KB",
         f"{result['formula_init_bytes'] / 1000:.1f} KB (paper: 9.5 KB)"],
        ["key update",
         f"{result['update_messages']}",
         f"{result['formula_update_messages']} (paper: 125*, see note)",
         f"{result['update_bytes'] / 1000:.1f} KB",
         f"{result['formula_update_bytes'] / 1000:.1f} KB (paper: 5.4 KB)"],
    ]
    report(format_table(
        ["operation", "measured msgs", "formula msgs",
         "measured bytes", "formula bytes"],
        rows,
        title=(f"Table III: controller load at m={result['m_switches']}, "
               f"n={result['n_links']} (live network)")))
    report("* Table III prints 125 update messages, but its own formula "
           "2m+3n = 200 at m=25, n=50;\n  the byte figure (5.4 KB) does "
           "follow from 60m+78n.  Our live count matches the formula.")
    report(f"SXI parallelism: serial init lower bound "
           f"{result['serial_init_time_s'] * 1e3:.0f} ms (paper estimates "
           f"~150 ms at 2 ms/key);\nthe live parallel bootstrap finished "
           f"in {result['parallel_init_time_s'] * 1e3:.1f} ms.")

    # The paper's serial estimate (~150 ms) vs the parallel reality.
    assert 0.1 < result["serial_init_time_s"] < 0.2
    assert result["parallel_init_time_s"] < result["serial_init_time_s"] / 10

    assert result["n_links"] == 50
    assert result["init_messages"] == 350
    assert result["init_bytes"] == 9500
    assert result["update_messages"] == 200
    assert result["update_bytes"] == 5400
