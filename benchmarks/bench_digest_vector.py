"""Vectorized digest lane — throughput floor over the scalar lane.

Runs the `digest_vector` experiment at batch sizes 1024 and 4096 for
both target flavors (HalfSipHash-2-4 / keyed CRC32) and publishes the
canonical ``BENCH_digest_vector.json`` artifact (override the directory
with ``REPRO_BENCH_DIR``).  Two gates:

- **bit-identity**: every (algorithm, batch) point's scalar and vector
  trials must report the same tag checksum — a vector lane that is fast
  but wrong would silently break the Eqn 4 integrity guarantee;
- **speed**: with numpy available, the vector lane must deliver >= 5x
  the scalar lane's tags/sec at batch >= 1024 (the ROADMAP item 2
  acceptance floor; measured headroom is ~10-100x).

Under ``REPRO_NO_NUMPY=1`` the vector trials fall back to the stdlib
backend: bit-identity is still asserted, the 5x floor is not (the
fallback exists for correctness, not speed).
"""

import os

from repro.analysis import format_table
from repro.crypto import vectorized
from repro.engine import run_experiment, write_artifact

#: The acceptance floor: vector lane tags/sec over scalar lane tags/sec.
SPEEDUP_FLOOR = 5.0
BATCHES = [1024, 4096]


def run_digest_vector():
    return run_experiment("digest_vector", sweep={"batch": BATCHES})


def test_digest_vector_throughput(benchmark, report):
    run = benchmark.pedantic(run_digest_vector, rounds=1, iterations=1)
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    path = write_artifact(run.document(), out_dir)

    rows = []
    floor_checked = []
    for algorithm in ("halfsiphash", "crc32"):
        for batch in BATCHES:
            scalar = run.result_for(algorithm=algorithm, lane="scalar",
                                    batch=batch)
            vector = run.result_for(algorithm=algorithm, lane="vector",
                                    batch=batch)
            # Bit-identity: the artifact's own cross-check.  A divergent
            # tag stream is a correctness failure, never a perf trade.
            assert vector["checksum"] == scalar["checksum"], (
                f"{algorithm} batch={batch}: vector lane tags diverge "
                f"from scalar lane")
            speedup = vector["tags_per_s"] / scalar["tags_per_s"]
            floor_checked.append((algorithm, batch, speedup))
            rows.append([
                algorithm,
                f"{batch}",
                vector["backend"],
                f"{scalar['tags_per_s']:,.0f}",
                f"{vector['tags_per_s']:,.0f}",
                f"{speedup:.1f}x",
            ])
    report(format_table(
        ["algorithm", "batch", "backend", "scalar tags/s", "vector tags/s",
         "speedup"],
        rows,
        title="Vectorized digest lane vs scalar (64 B C-DP material)"))
    report(f"artifact: {path}")

    if vectorized.HAVE_NUMPY:
        worst = min(floor_checked, key=lambda entry: entry[2])
        report(f"worst speedup: {worst[2]:.1f}x ({worst[0]} batch={worst[1]}; "
               f"acceptance floor: {SPEEDUP_FLOOR}x)")
        assert worst[2] >= SPEEDUP_FLOOR, (
            f"vector lane below the {SPEEDUP_FLOOR}x floor: "
            f"{worst[0]} at batch={worst[1]} is only {worst[2]:.1f}x")
    else:
        report("numpy unavailable: stdlib fallback verified for "
               "bit-identity only (no speed floor)")
