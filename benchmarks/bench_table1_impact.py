"""Table I — attack impact across five in-network system classes.

Paper: altering C-DP update/report messages poisons fast-reroute
decisions (Blink), misroutes load-balanced connections (SilkRoad),
inflates hot-key retrieval time (NetCache), poisons loss analysis
(FlowRadar), and evades intrusion detection (NetWarden).
"""

from repro.analysis import format_table
from repro.engine import run_experiment

PAPER_IMPACT = {
    "blink": "poisoning of fast rerouting decision",
    "silkroad": "wrong VIP/DIP during LB",
    "netcache": "inflates time to retrieve hot key",
    "flowradar": "poisons loss analysis",
    "netwarden": "evasion of malicious traffic detection",
}


def run_matrix():
    run = run_experiment("table1")
    matrix = {}
    for trial in run.trials:
        matrix.setdefault(trial.params["system"], {})[
            trial.params["mode"]] = trial.result
    return matrix


def test_table1_attack_impact(benchmark, report):
    matrix = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    rows = []
    for system, by_mode in matrix.items():
        baseline = by_mode["baseline"]
        attack = by_mode["attack"]
        p4auth = by_mode["p4auth"]
        rows.append([
            system,
            baseline["impact_metric"],
            f"{baseline['impact_value']:.2f}",
            f"{attack['impact_value']:.2f}",
            f"{p4auth['impact_value']:.2f}",
            "yes" if attack["state_poisoned"] else "no",
            "yes" if p4auth["detected"] else "no",
            PAPER_IMPACT[system],
        ])
    report(format_table(
        ["system", "metric", "baseline", "attack", "attack+P4Auth",
         "silently poisoned", "P4Auth detected", "paper impact"],
        rows, title="Table I: impact of altering C-DP update/report messages"))

    for system, by_mode in matrix.items():
        assert by_mode["p4auth"]["detected"], system
        assert not by_mode["p4auth"]["state_poisoned"], system
        assert not by_mode["baseline"]["state_poisoned"], system
