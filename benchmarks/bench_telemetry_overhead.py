"""Telemetry overhead — the disabled fast path must stay under 2%.

Every instrumented hot path guards its telemetry work behind an
``enabled`` check (or a shared null object whose mutators are no-ops),
so a run without telemetry should pay essentially nothing.  Timing two
full runs against each other is hopelessly noisy at the ~1% level on a
shared CI box, so the bound is computed structurally instead:

1. run the Fig 18 RCT workload once *with* telemetry and count how many
   metric/trace touchpoints the workload actually hits;
2. microbenchmark the disabled-path cost of one touchpoint (an
   ``enabled`` check plus a null-object method call);
3. assert touchpoints x per-touchpoint-cost < 2% of the *disabled*
   run's wall time.

A wall-clock comparison of the two runs is still printed for eyeballing.
"""

import time

import pytest

from repro.analysis import format_table
from repro.runtime.comparison import measure
from repro.telemetry import NULL_TELEMETRY, Telemetry

#: The measured workload (sequential reads+writes on all three stacks).
DURATION_S = 2.0


def _run_disabled():
    start = time.perf_counter()
    measure(duration_s=DURATION_S)
    return time.perf_counter() - start


def _run_enabled():
    telemetry = Telemetry(enabled=True)
    start = time.perf_counter()
    measure(duration_s=DURATION_S, telemetry=telemetry)
    return time.perf_counter() - start, telemetry


def _touchpoint_count(telemetry):
    """Upper bound on telemetry calls the workload performed.

    Every counter increment, histogram observation, and trace event in
    the enabled run corresponds to at most a few guarded no-ops in the
    disabled run; summing them over-counts (enabled-only work like
    per-run gauge updates is included), which only makes the bound
    stricter.
    """
    total = telemetry.tracer.emitted
    for metric in telemetry.metrics:
        if metric.kind == "histogram":
            total += metric.count
        else:
            total += max(1, int(metric.value))
    return total


def _null_op_cost_s(iterations=200_000):
    """Seconds per disabled-path touchpoint (guard + null method)."""
    telemetry = NULL_TELEMETRY
    metrics = telemetry.metrics
    start = time.perf_counter()
    for _ in range(iterations):
        if telemetry.enabled:
            metrics.counter("bench_total").inc()
        metrics.counter("bench_total").inc()  # null-object path
        telemetry.tracer.emit("bench")
    elapsed = time.perf_counter() - start
    # Each iteration covered three guarded/no-op touchpoints.
    return elapsed / (iterations * 3)


def test_disabled_telemetry_overhead_under_two_percent(benchmark, report):
    disabled_s = benchmark.pedantic(_run_disabled, rounds=1, iterations=1)
    enabled_s, telemetry = _run_enabled()
    touchpoints = _touchpoint_count(telemetry)
    null_op_s = _null_op_cost_s()
    bound_s = touchpoints * null_op_s
    overhead_pct = bound_s / disabled_s * 100.0

    report(format_table(
        ["quantity", "value"],
        [["disabled run (s)", f"{disabled_s:.3f}"],
         ["enabled run (s)", f"{enabled_s:.3f}"],
         ["telemetry touchpoints", touchpoints],
         ["cost per disabled touchpoint (ns)", f"{null_op_s * 1e9:.1f}"],
         ["disabled-path overhead bound", f"{overhead_pct:.3f}%"]],
        title="Telemetry overhead (Fig 18 RCT workload)"))

    assert touchpoints > 0, "enabled run must exercise the instrumentation"
    assert overhead_pct < 2.0, (
        f"disabled telemetry costs {overhead_pct:.2f}% of the workload; "
        "the fast path must stay under 2%")


def test_enabled_run_matches_disabled_results():
    """Instrumentation must not perturb simulation outcomes."""
    plain = measure(duration_s=1.0)
    traced = measure(duration_s=1.0, telemetry=Telemetry(enabled=True))
    for key, stats in plain.items():
        assert traced[key].rcts_s == stats.rcts_s
