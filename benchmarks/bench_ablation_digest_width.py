"""Ablation — digest width vs hardware cost (paper §XI discussion).

Paper anchors: relative to the 32-bit digest, a 256-bit digest needs
+560% hash distribution units and +100% pipeline stages; the extra
stages force packet recirculations at 100s of ns each.  The security
side of the trade: expected brute-force trials double per digest bit.
"""

from repro.analysis import format_table
from repro.core.digestwidth import (
    brute_force_trials,
    digest_width_cost,
    width_sweep,
)


def test_digest_width_ablation(benchmark, report):
    sweep = benchmark.pedantic(width_sweep, rounds=1, iterations=1)
    base = sweep[0]
    rows = []
    for cost in sweep:
        rows.append([
            f"{cost.width_bits}-bit",
            cost.hash_units,
            f"+{cost.hash_unit_increase_pct(base):.0f}%",
            cost.stages,
            f"+{cost.stage_increase_pct(base):.0f}%",
            cost.recirculations,
            f"{cost.extra_latency_ns:.0f}",
            f"2^{cost.width_bits - 1}",
        ])
    report(format_table(
        ["digest", "hash units", "vs 32-bit", "stages", "vs 32-bit",
         "recirculations", "extra latency (ns)", "brute-force trials"],
        rows, title="Ablation: digest width vs hardware cost (§XI)"))

    cost256 = digest_width_cost(256)
    # The paper's two anchors.
    assert 540 <= cost256.hash_unit_increase_pct(base) <= 580  # paper: 560%
    assert cost256.stage_increase_pct(base) == 100.0           # paper: 100%
    assert cost256.recirculations >= 1
    assert cost256.extra_latency_ns >= 300  # "100s of ns per recirculation"
    assert brute_force_trials(256) == 1 << 255
    # Monotone trade-off.
    units = [c.hash_units for c in sweep]
    assert units == sorted(units)
