"""Fig 17 — P4Auth prevents congestion on HULA's compromised path.

Paper: equal thirds without an adversary; >70% of traffic through the
compromised S1-S4 link with the MitM; traffic off that link entirely with
P4Auth (tampered probes dropped, alerts raised).
"""

from repro.analysis import format_table
from repro.engine import run_experiment
from repro.experiments.fig17_hula import MODES


def run_all():
    run = run_experiment("fig17", sweep={"duration_s": [5.0]})
    return {trial.params["mode"]: trial.result for trial in run.trials}


def test_fig17_hula_defense(benchmark, report):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    paper = {
        "baseline": "≈ equal thirds",
        "attack": ">70% via S4",
        "p4auth": "compromised link blocked",
    }
    rows = []
    for mode in MODES:
        result = results[mode]
        rows.append([
            mode,
            f"{result['shares']['s2'] * 100:.1f}%",
            f"{result['shares']['s3'] * 100:.1f}%",
            f"{result['shares']['s4'] * 100:.1f}%",
            result["probes_tampered"],
            result["alerts"],
            paper[mode],
        ])
    report(format_table(
        ["mode", "via S2", "via S3", "via S4", "probes tampered",
         "alerts", "paper"],
        rows, title="Fig 17: HULA traffic distribution (after warmup)"))

    baseline, attack, p4auth = (results[m] for m in MODES)
    assert all(0.2 < share < 0.5 for share in baseline["shares"].values())
    assert attack["shares"]["s4"] > 0.7
    assert p4auth["shares"]["s4"] < 0.05
    assert p4auth["alerts"] > 0
