"""Fleet scale — region-sharded 10k-switch fabrics (ROADMAP item 3).

Drives the ``fleet_scale`` experiment at m in {1k, 4k, 10k}: the fleet
is split into regions, each with its own simulator/controller/key
authority, and the regions are sharded across OS workers by the same
bounded-load consistent-hash ring that shards the controller service.
Phase A measures the full per-region lifecycle (bootstrap, rollover,
batched C-DP writes with ground-truth verification); Phase B rebuilds
the fleet as one lockstep world and runs a coordinated rollover with
live boundary traffic under the cross-region two-version invariant.

Speedup is asserted two ways, because CI hosts vary:

* **partition speedup** — sum of serial per-region walls over the
  slowest worker's group (through the real ring assignment).  This is
  host-independent (it only uses measured serial walls) and must be
  >= 3x at 4 workers.
* **measured speedup** — workers=1 wall over workers=4 wall for the
  region phase.  Only asserted when the host actually has >= 4 cores;
  a 1-core container runs the pool but cannot go faster.

The trial itself enforces the security invariants (zero forged
register end-states, controller/DP sequence agreement, zero boundary
two-version violations) — a violation raises rather than shipping a
worse number.
"""

import os

from repro.analysis import format_table
from repro.engine import load_artifact, run_experiment
from repro.engine.artifact import artifact_path
from repro.engine.runner import assign_regions

M_POINTS = [1000, 4000, 10000]
WORKERS = [1, 4]


def run_fleet_scale():
    return run_experiment(
        "fleet_scale",
        sweep={"m": M_POINTS, "workers": WORKERS},
        out_dir=".",
    )


def _region_wall(walls, region_id):
    wall = walls[region_id]
    return wall["bootstrap_s"] + wall["rollover_s"] + wall["workload_s"]


def partition_speedup(result, workers):
    """Serial work over the slowest worker's share, via the real ring."""
    walls = result["wall"]["by_region"]
    total = sum(_region_wall(walls, region_id) for region_id in walls)
    assignment = assign_regions(sorted(walls), workers)
    slowest = max(sum(_region_wall(walls, region_id)
                      for region_id in group)
                  for group in assignment.values() if group)
    return total / slowest


def test_fleet_scale(benchmark, report):
    run = benchmark.pedantic(run_fleet_scale, rounds=1, iterations=1)
    cpu_count = os.cpu_count() or 1

    rows = []
    for m in M_POINTS:
        serial = run.result_for(m=m, workers=1)
        sharded = run.result_for(m=m, workers=4)

        # Sharding regions across workers is purely a wall-clock
        # optimization: everything but the wall block is byte-identical.
        assert {k: v for k, v in serial.items() if k != "wall"} \
            == {k: v for k, v in sharded.items() if k != "wall"}

        totals = serial["totals"]
        boundary = serial["boundary"]
        part = partition_speedup(serial, workers=4)
        measured = (serial["wall"]["region_phase_s"]
                    / sharded["wall"]["region_phase_s"])
        rows.append([
            m,
            serial["regions"],
            totals["bootstrap_ops"],
            f"{totals['bootstrap_convergence_s'] * 1e3:.2f} ms",
            totals["workload_completed"],
            f"{serial['wall']['region_phase_s']:.1f} s",
            f"{sharded['wall']['region_phase_s']:.1f} s",
            f"{part:.2f}x",
            f"{measured:.2f}x",
        ])

        # Security invariants at every scale point.
        assert totals["forged_writes"] == 0
        assert totals["seq_divergence_min"] == 0
        assert totals["seq_divergence_max"] == 0
        assert boundary is not None
        assert boundary["consistency"]["boundary_violations"] == 0
        assert boundary["consistency"]["seq_divergence_min"] >= 0
        assert boundary["writes_ok"] == boundary["writes_in_window"]

        # The acceptance floor: >= 3x bootstrap speedup at 4 workers.
        assert part >= 3.0
        if cpu_count >= 4:
            assert measured >= 3.0

    report(format_table(
        ["m", "regions", "bootstrap ops", "fleet bootstrap (virtual)",
         "writes ok", "wall x1", "wall x4", "partition", "measured"],
        rows,
        title=("Region-sharded fleet lifecycle (Phase A walls, "
               "Phase B boundary invariants enforced)")))
    report(f"host cpu_count={cpu_count}; measured wall speedup is "
           f"asserted only on hosts with >= 4 cores — the partition "
           f"speedup (serial walls through the real ring assignment) "
           f"is the host-independent acceptance number")

    # The artifact the run published is schema-valid and complete.
    document = load_artifact(artifact_path("fleet_scale", "."))
    assert document["experiment"] == "fleet_scale"
    assert len(document["trials"]) == len(M_POINTS) * len(WORKERS)
    for trial in document["trials"]:
        assert trial["result"]["wall"]["cpu_count"] == cpu_count
