"""Batched C-DP path — throughput vs the per-request baseline (§XI).

Drives the `cdp_batch_throughput` experiment on the m=100 random
4-regular fabric: the same P4Auth register workload issued sequentially
(one request in flight globally, the paper's Fig 18/19 shape) and
through the windowed BatchController.  Both modes send byte-identical
per-message traffic; the assertion pins the pipelining win at >= 3x
requests/sec.
"""

from repro.analysis import format_table
from repro.engine import run_experiment

M_SWITCHES = 100


def run_batch_comparison():
    return run_experiment(
        "cdp_batch_throughput",
        sweep={"stack": ["P4Auth"], "m": [M_SWITCHES]},
    )


def test_cdp_batch_throughput(benchmark, report):
    run = benchmark.pedantic(run_batch_comparison, rounds=1, iterations=1)
    seq = run.result_for(mode="sequential")
    bat = run.result_for(mode="batched")

    rows = []
    for label, r in (("sequential", seq), ("batched", bat)):
        rows.append([
            label,
            f"{r['completed']}",
            f"{r['throughput_rps']:.0f}",
            f"{r['mean_rct_s'] * 1e3:.2f} ms",
            f"{r['p50_rct_s'] * 1e3:.2f} ms",
            f"{r['p99_rct_s'] * 1e3:.2f} ms",
        ])
    speedup = bat["throughput_rps"] / seq["throughput_rps"]
    report(format_table(
        ["mode", "completed", "req/s", "mean RCT", "p50 RCT", "p99 RCT"],
        rows,
        title=(f"Batched C-DP path at m={M_SWITCHES} (P4Auth, "
               f"window={bat['in_flight_high_water']} high water)")))
    report(f"pipelining speedup: {speedup:.1f}x requests/sec "
           f"(acceptance floor: 3x)")

    # Same workload completed fully under both schedules.
    assert seq["completed"] == seq["submitted"]
    assert bat["completed"] == bat["submitted"]
    assert bat["leaked_in_flight"] == 0 and bat["still_queued"] == 0
    # The tentpole claim: windowed pipelining is >= 3x the per-request
    # baseline at production scale (it is vastly more in practice).
    assert speedup >= 3.0
    # Per-request latency must not degrade past the queueing the window
    # itself introduces: p99 stays within window-depth RTTs.
    assert bat["p99_rct_s"] < seq["p99_rct_s"] * 16
