"""Ablation — the §XI confidentiality extension's performance cost.

Measures register R/W throughput with and without payload encryption
(encrypt-then-MAC with KDF-derived session keys).  The marginal cost is a
couple of hash-unit passes per message, so the drop should be of the same
order as P4Auth's own digest overhead.
"""

from repro.analysis import format_table
from repro.core.auth_dataplane import P4AuthConfig, P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.simulator import EventSimulator
from repro.runtime.harness import run_sequential


def build(encrypt: bool):
    sim = EventSimulator()
    net = Network(sim)
    switch = DataplaneSwitch("s1", num_ports=2)
    net.add_switch(switch)
    switch.registers.define("target", 64, 16)
    dataplane = P4AuthDataplane(
        switch, k_seed=0xE2C,
        config=P4AuthConfig(encrypt_regops=encrypt)).install()
    dataplane.map_register("target")
    controller = P4AuthController(net, encrypt_regops=encrypt)
    controller.provision(dataplane)
    controller.kmp.local_key_init("s1")
    sim.run(until=0.1)
    return sim, controller


def measure():
    table = {}
    for encrypt in (False, True):
        for kind in ("read", "write"):
            sim, controller = build(encrypt)
            table[(encrypt, kind)] = run_sequential(
                sim, controller, kind, "s1", "target", duration_s=5.0)
    return table


def test_confidentiality_overhead(benchmark, report):
    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for encrypt in (False, True):
        rows.append([
            "auth + encryption" if encrypt else "auth only",
            f"{table[(encrypt, 'read')].throughput_rps:.0f}",
            f"{table[(encrypt, 'write')].throughput_rps:.0f}",
        ])
    report(format_table(
        ["mode", "read (req/s)", "write (req/s)"],
        rows, title="Ablation: §XI payload encryption overhead"))

    for kind in ("read", "write"):
        plain = table[(False, kind)].throughput_rps
        encrypted = table[(True, kind)].throughput_rps
        drop = 1 - encrypted / plain
        # Small but nonzero marginal cost (same order as the digests).
        assert 0.0 <= drop < 0.05, f"{kind} drop {drop:.3f}"
