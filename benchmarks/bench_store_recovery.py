"""Durable-state subsystem: warm-restart chaos + journal overhead.

Two engine runs merged into one ``BENCH_store_recovery.json`` artifact:

* ``controller_crash_recovery`` — SIGKILL the controller mid-burst at
  armed journal-record types across fleet sizes, warm-restart from the
  surviving snapshot+journal, and assert P4Auth's own defenses stay
  silent: zero forged writes, zero replay/digest/DoS trips, and exact
  sequence agreement with every switch after phase 2.
* ``store_journal_overhead`` — the same batched workload with the
  recorder detached vs attached; the acceptance ceiling is <= 10%
  wall-clock overhead under the group-commit (``fsync=batch``) policy.
"""

import os

from repro.analysis import format_table
from repro.engine import run_experiment, write_artifact

#: Production-scale point for the chaos invariants (ISSUE acceptance).
M_LARGE = 100
OVERHEAD_CEILING_PCT = 10.0


def run_crash_sweep():
    return run_experiment(
        "controller_crash_recovery",
        sweep={"kill_on": ["seq_advance", "batch_open"],
               "m": [25, M_LARGE]},
    )


def run_overhead_sweep():
    return run_experiment("store_journal_overhead")


def _merged_artifact(crash_run, overhead_run):
    """One BENCH_store_recovery.json covering both runs."""
    document = crash_run.document()
    overhead_doc = overhead_run.document()
    document["experiment"] = "store_recovery"
    document["title"] = ("Durable controller state: crash recovery "
                         "and journal overhead")
    document["trials"] = document["trials"] + overhead_doc["trials"]
    document["run_meta"] = {
        "controller_crash_recovery": crash_run.run_meta,
        "store_journal_overhead": overhead_run.run_meta,
    }
    return document


def test_store_recovery(benchmark, report):
    runs = {}

    def _run_all():
        runs["crash"] = run_crash_sweep()
        runs["overhead"] = run_overhead_sweep()
        return runs

    benchmark.pedantic(_run_all, rounds=1, iterations=1)
    crash, overhead = runs["crash"], runs["overhead"]

    rows = []
    for trial in crash.trials:
        r = trial.result
        rows.append([
            f"{r['m']}",
            r["kill_on"],
            r["killed_at_record"] or "-",
            f"{r['recovery_s'] * 1e3:.2f} ms",
            f"{r['replayed_records']}",
            f"{r['windows_open_at_crash']}",
            f"{r['rebootstrapped']}",
            f"{r['phase2_completed']}",
        ])
    report(format_table(
        ["m", "kill on", "killed at", "recovery", "replayed",
         "open wins", "rebooted", "phase2 ok"],
        rows,
        title="Controller crash -> warm restart (fsync=batch)"))

    rows = []
    for trial in overhead.trials:
        r = trial.result
        rows.append([
            r["fsync"],
            f"{r['m']}",
            f"{r['journal_records']}",
            f"{r['wall_off_s'] * 1e3:.1f} ms",
            f"{r['wall_on_s'] * 1e3:.1f} ms",
            f"{r['overhead_pct']:+.2f}%",
        ])
    report(format_table(
        ["fsync", "m", "records", "journal off", "journal on",
         "overhead"],
        rows,
        title=(f"Journal overhead vs no-journal baseline "
               f"(ceiling {OVERHEAD_CEILING_PCT:.0f}% at fsync=batch)")))

    # Chaos invariants at production scale: the restarted controller
    # must never trip the defenses it is supposed to be protected by.
    for kill_on in ("seq_advance", "batch_open"):
        r = crash.result_for(kill_on=kill_on, m=M_LARGE)
        assert r["forged_writes"] == 0
        assert r["replay_trips"] == 0
        assert r["digest_fail_trips"] == 0
        assert r["alert_trips"] == 0
        assert not r["dos_suspected"]
        assert r["seq_divergence_max"] == 0
        assert r["seq_divergence_min"] == 0
        assert r["phase2_failed"] == 0
        assert r["phase2_completed"] > 0

    # Recovery replays journal state for the whole fleet, and scales:
    # the m=100 restart must stay within interactive bounds.
    for m in (25, M_LARGE):
        r = crash.result_for(kill_on="seq_advance", m=m)
        assert r["switches_restored"] == m
        assert r["recovery_s"] < 5.0

    # Journal overhead ceiling (ISSUE acceptance): <= 10% wall-clock
    # under group commit.  fsync=always is reported but not gated.
    batch = overhead.result_for(fsync="batch")
    assert batch["journal_records"] > 0
    assert batch["overhead_pct"] <= OVERHEAD_CEILING_PCT

    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    path = write_artifact(_merged_artifact(crash, overhead), out_dir)
    report(f"artifact: {path}")
