#!/usr/bin/env python3
"""INT telemetry protection (the secINT scenario the paper cites).

A 4-hop INT chain with a periodically congested middle hop.  A MitM just
downstream of the hotspot rewrites congested telemetry records into
healthy ones — blinding the operator.  P4Auth turns the silent lie into
loud, attributable drops.

Run:  python examples/int_telemetry_defense.py
"""

from repro.analysis import format_table
from repro.experiments.int_manipulation import MODES, run_int_manipulation


def main() -> None:
    rows = []
    for mode in MODES:
        result = run_int_manipulation(mode, num_probes=40)
        rows.append([
            mode,
            f"{result.probes_collected}/{result.probes_sent}",
            f"{result.reported_max_hop_latency_us} us",
            f"{result.true_max_hop_latency_us} us",
            "yes" if result.congestion_visible else "no",
            "yes" if result.detected else "NO — silent blind spot",
            result.alerts,
        ])
    print(format_table(
        ["mode", "probes collected", "reported max hop", "true max hop",
         "congestion visible", "operator aware", "alerts"],
        rows, title="INT telemetry under a record-rewriting MitM"))
    print(
        "\nUnprotected, the attack erases the congestion signal without a\n"
        "trace: the collector receives every probe and they all look\n"
        "healthy.  With P4Auth, the rewritten probes fail per-link digest\n"
        "verification at the next switch — the operator loses those\n"
        "samples but *knows* telemetry is being suppressed, and where."
    )


if __name__ == "__main__":
    main()
