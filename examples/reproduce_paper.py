#!/usr/bin/env python3
"""Reproduce every paper table and figure, writing RESULTS.md.

Runs all experiments back to back (a few minutes in fast mode) and
produces a single Markdown artifact with the measured tables — the
document a reviewer would diff against the paper.

Run:  python examples/reproduce_paper.py [output.md]
"""

import sys

from repro.analysis.report import generate_report


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "RESULTS.md"
    print("Reproducing every paper experiment (fast mode)...")
    report = generate_report(fast=True,
                             progress=lambda line: print(f"  [done] {line}"))
    report.save(output)
    print(f"\nWrote {output} ({len(report.render().splitlines())} lines).")


if __name__ == "__main__":
    main()
