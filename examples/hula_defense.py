#!/usr/bin/env python3
"""HULA under attack (the paper's Fig 3 / Fig 17 scenario).

Runs the five-switch topology three times — without an adversary, with a
MitM rewriting probe utilization on the S1-S4 link, and with P4Auth
protecting the probes — and prints the traffic distribution across S1's
three uplinks in each case.

Run:  python examples/hula_defense.py
"""

from repro.analysis import format_table
from repro.experiments.fig17_hula import MODES, run_hula


def main() -> None:
    print("Running HULA scenarios (a few seconds of simulated traffic "
          "each)...\n")
    rows = []
    for mode in MODES:
        result = run_hula(mode, duration_s=4.0)
        rows.append([
            mode,
            f"{result.shares['s2'] * 100:5.1f}%",
            f"{result.shares['s3'] * 100:5.1f}%",
            f"{result.shares['s4'] * 100:5.1f}%",
            result.probes_tampered,
            result.alerts,
        ])
    print(format_table(
        ["mode", "via S2", "via S3", "via S4", "tampered probes", "alerts"],
        rows, title="Traffic leaving S1, per uplink (post-warmup)"))
    print(
        "\nWithout an adversary HULA spreads load roughly equally; the\n"
        "MitM drags >70% of traffic onto the compromised S1-S4 link; with\n"
        "P4Auth the tampered probes fail digest verification at S1, the\n"
        "controller is alerted, and the compromised link carries nothing."
    )


if __name__ == "__main__":
    main()
