#!/usr/bin/env python3
"""RouteScout under attack (the paper's Fig 2 / Fig 16 scenario).

Replays a synthetic CAIDA-like trace into a RouteScout edge switch while
a compromised switch OS inflates path-1's reported latency, and shows how
the controller's split decision is manipulated — and how P4Auth stops it.

Run:  python examples/routescout_defense.py
"""

from repro.analysis import format_table
from repro.experiments.fig16_routescout import MODES, run_routescout


def main() -> None:
    print("Replaying a 30 s synthetic trace per scenario...\n")
    rows = []
    histories = {}
    for mode in MODES:
        result = run_routescout(mode, duration_s=30.0, attack_start_s=8.0)
        histories[mode] = result.split_history
        rows.append([
            mode,
            f"{result.share_path1 * 100:5.1f}%",
            f"{result.share_path2 * 100:5.1f}%",
            result.epochs_skipped,
            result.tamper_events,
        ])
    print(format_table(
        ["mode", "path 1 share", "path 2 share", "epochs skipped",
         "tamper events"],
        rows, title="Traffic split during the attack window"))
    print("\nSplit-ratio timeline (percent of flows on path 1, "
          "one value per epoch):")
    for mode in MODES:
        trail = " ".join(f"{s:3d}" for s in histories[mode][:20])
        print(f"  {mode:9s} {trail}")
    print(
        "\nThe adversary inflates path-1 latency in read responses from\n"
        "epoch 8 on: the unprotected controller dives to ~23% on path 1.\n"
        "With P4Auth the tampered responses are rejected and the split\n"
        "holds at its converged value while alerts fire."
    )


if __name__ == "__main__":
    main()
