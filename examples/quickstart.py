#!/usr/bin/env python3
"""Quickstart: protect a switch's registers with P4Auth in ~60 lines.

Builds one switch with an application register, provisions a P4Auth
controller, establishes keys with the in-network key management protocol,
performs authenticated register reads/writes, and then shows what happens
when a compromised switch OS tampers with the messages.

Run:  python examples/quickstart.py
"""

from repro.core import P4AuthController, P4AuthDataplane
from repro.dataplane import DataplaneSwitch
from repro.net import EventSimulator, Network


def main() -> None:
    # --- build the network: one switch, one controller -------------------
    sim = EventSimulator()
    net = Network(sim)
    switch = DataplaneSwitch("s1", num_ports=4)
    net.add_switch(switch)

    # An application register (e.g., a traffic-split ratio).
    switch.registers.define("split_ratio", 64, 4)

    # Install P4Auth in the data plane.  K_seed models the pre-shared
    # secret baked into the P4 binary at compile time.
    dataplane = P4AuthDataplane(switch, k_seed=0x5EED_C0DE).install()
    dataplane.map_register("split_ratio")

    controller = P4AuthController(net)
    controller.provision(dataplane)

    # --- establish keys (EAK + ADHKD, all in-band) ------------------------
    controller.kmp.local_key_init(
        "s1", on_done=lambda rec: print(
            f"[kmp] local key established in {rec.rtt_s * 1e3:.2f} ms "
            f"({rec.messages} messages, {rec.bytes} bytes)"))
    sim.run(until=0.1)

    # --- authenticated register operations ---------------------------------
    controller.write_register(
        "s1", "split_ratio", 0, 70,
        lambda ok, value: print(f"[c-dp] write acknowledged: ok={ok}"))
    sim.run(until=0.2)
    controller.read_register(
        "s1", "split_ratio", 0,
        lambda ok, value: print(f"[c-dp] read back value: {value}"))
    sim.run(until=0.3)

    # --- now a MitM at the switch OS tampers with a write ------------------
    def tamper(packet, direction):
        if direction == "c->dp" and packet.has("reg_op"):
            packet.get("reg_op")["value"] = 5  # attacker's value
        return packet

    net.control_channels["s1"].add_tap(tamper)
    controller.write_register(
        "s1", "split_ratio", 0, 80,
        lambda ok, value: print(f"[c-dp] tampered write result: ok={ok} "
                                "(nAcked, not applied)"))
    sim.run(until=0.4)

    actual = switch.registers.get("split_ratio").read(0)
    print(f"[dp]   register value in the data plane: {actual} "
          "(attacker's 5 was rejected)")
    print(f"[dp]   digest failures detected: "
          f"{dataplane.stats.digest_fail_cdp}")
    assert actual == 70


if __name__ == "__main__":
    main()
