#!/usr/bin/env python3
"""The §VIII defenses: replay rejection, digest brute force, DoS limits.

Three short demonstrations against a single protected switch:
1. a recorded writeReq is replayed bit-for-bit — valid digest, stale
   sequence number — and rejected;
2. a digest brute-forcer sends hundreds of guesses — every one fails and
   every one is visible to the controller;
3. a request flood triggers the data plane's alert rate limit, keeping
   the DP->C channel from being jammed.

Run:  python examples/dos_replay_defense.py
"""

from repro.attacks import DigestBruteForcer, DosFlooder, ReplayAttacker
from repro.core import P4AuthController, P4AuthDataplane
from repro.dataplane import DataplaneSwitch
from repro.net import EventSimulator, Network


def build():
    sim = EventSimulator()
    net = Network(sim)
    switch = DataplaneSwitch("s1", num_ports=2)
    net.add_switch(switch)
    switch.registers.define("state", 64, 8)
    dataplane = P4AuthDataplane(switch, k_seed=0xD05).install()
    dataplane.map_register("state")
    controller = P4AuthController(net)
    controller.provision(dataplane)
    controller.kmp.local_key_init("s1")
    sim.run(until=0.1)
    return sim, net, switch, dataplane, controller


def main() -> None:
    sim, net, switch, dataplane, controller = build()

    # --- 1. replay ---------------------------------------------------------
    recorder = ReplayAttacker(lambda p: p.has("reg_op"))
    recorder.attach(net.control_channels["s1"])
    controller.write_register("s1", "state", 0, 0xAAAA)
    sim.run(until=0.5)
    controller.write_register("s1", "state", 0, 0xBBBB)
    sim.run(until=1.0)
    recorder.replay(net, "s1", count=1)  # replay the 0xAAAA write
    sim.run(until=1.5)
    value = switch.registers.get("state").read(0)
    print(f"[replay] register after replaying the old write: {value:#x} "
          f"(still the newest value)")
    print(f"[replay] replays detected by the DP: "
          f"{dataplane.stats.replays_detected}")

    # --- 2. digest brute force ---------------------------------------------
    dataplane.config.alert_threshold = None  # count every guess
    attacker = DigestBruteForcer(net, "s1",
                                 switch.registers.id_of("state"),
                                 index=1, value=0x666)
    attacker.attempt(guesses=300)
    sim.run(until=2.0)
    print(f"\n[brute]  guesses sent: {attacker.attempts}, "
          f"state written: {switch.registers.get('state').read(1):#x}")
    print(f"[brute]  every guess visible at the controller "
          f"(unsolicited nAcks: {controller.stats.unsolicited_nacks})")
    print(f"[brute]  expected guesses for a 32-bit digest: "
          f"{DigestBruteForcer.expected_trials():,}")

    # --- 3. DoS flood vs the alert rate limit -------------------------------
    dataplane.config.alert_threshold = 50
    dataplane.config.alert_window_s = 1.0
    flooder = DosFlooder(net, "s1", switch.registers.id_of("state"),
                         rate_hz=2000.0)
    flooder.start(duration_s=1.0)
    sim.run(until=4.0)
    stats = dataplane.stats
    print(f"\n[dos]    forged requests: {flooder.sent}")
    print(f"[dos]    alerts passed to controller: {stats.alerts_raised}, "
          f"suppressed by rate limit: {stats.alerts_suppressed}")
    assert stats.alerts_suppressed > 0


if __name__ == "__main__":
    main()
