#!/usr/bin/env python3
"""Key lifecycle automation: topology events and periodic rollover.

Builds a three-switch triangle, lets the KMP bootstrap every key, then:
(1) brings up a brand-new link and watches topology automation key it;
(2) enables periodic rollover and shows authenticated traffic surviving
    continuous key changes (the two-version consistent update scheme).

Run:  python examples/key_rollover.py
"""

from repro.core import P4AuthController, P4AuthDataplane
from repro.dataplane import DataplaneSwitch
from repro.net import EventSimulator, Network


def main() -> None:
    sim = EventSimulator()
    net = Network(sim)
    dataplanes = {}
    for index in (1, 2, 3):
        name = f"s{index}"
        switch = DataplaneSwitch(name, num_ports=4, seed=index)
        net.add_switch(switch)
        switch.registers.define("counter", 64, 4)
        dataplane = P4AuthDataplane(switch, k_seed=0x100 + index).install()
        dataplane.map_register("counter")
        dataplanes[name] = dataplane
    net.connect("s1", 1, "s2", 1)
    net.connect("s2", 2, "s3", 1)

    controller = P4AuthController(net)
    for dataplane in dataplanes.values():
        controller.provision(dataplane)
    controller.kmp.enable_topology_automation()

    controller.kmp.bootstrap_all(
        on_done=lambda: print(f"[kmp] bootstrap complete at "
                              f"t={sim.now * 1e3:.1f} ms"))
    sim.run(until=1.0)
    for record in controller.kmp.stats.records:
        print(f"[kmp]   {record.op:12s} {record.switch}"
              f"{':' + str(record.port) if record.port else '':4s} "
              f"rtt={record.rtt_s * 1e3:.2f} ms")

    # --- a new link comes up: automation keys it ---------------------------
    print("\n[topo] bringing up a new s1-s3 link ...")
    link = net.connect("s1", 2, "s3", 2)
    net.set_link_up(link, True)
    sim.run(until=2.0)
    k13 = dataplanes["s1"].keys.port_key(2)
    assert k13 == dataplanes["s3"].keys.port_key(2) != 0
    print(f"[topo] s1-s3 port key established automatically "
          f"(key fingerprint {k13 & 0xFFFF:#06x})")

    # --- periodic rollover under live traffic ------------------------------
    print("\n[roll] enabling 200 ms key rollover; issuing 40 authenticated "
          "writes meanwhile ...")
    controller.kmp.schedule_rollover(0.2)
    outcomes = []

    def write_loop(index: int = 0) -> None:
        if index >= 40:
            return
        controller.write_register("s1", "counter", 0, index,
                                  lambda ok, v: outcomes.append(ok))
        sim.schedule(0.05, write_loop, index + 1)

    write_loop()
    sim.run(until=5.0)
    controller.kmp.cancel_rollover()
    updates = (controller.kmp.stats.count("local_update")
               + controller.kmp.stats.count("port_update"))
    print(f"[roll] {updates} key updates completed during the run")
    print(f"[roll] {sum(outcomes)}/{len(outcomes)} writes verified OK "
          "(no window without a valid key)")
    assert all(outcomes) and len(outcomes) == 40


if __name__ == "__main__":
    main()
