#!/usr/bin/env python3
"""P4Auth-protected HULA on a leaf-spine fabric.

The paper's Fig 3 topology is minimal; this example shows the same
protection generalizing to a 4-leaf / 2-spine fabric: every leaf floods
probes for its own ToR id, every fabric link gets a port key from the
KMP, a MitM on one leaf-spine link tries to attract traffic, and the
first honest switch drops the tampered probes.

Run:  python examples/leaf_spine_hula.py
"""

from repro.attacks import ProbeFieldTamperer
from repro.core import P4AuthController, P4AuthDataplane
from repro.core.auth_dataplane import P4AuthConfig
from repro.net.topology import leaf_spine
from repro.systems.hula import (
    HulaDataplane,
    leaf_spine_hula_configs,
    make_data_packet,
    make_probe,
)

NUM_LEAVES, NUM_SPINES = 4, 2
DURATION_S = 3.0


def main() -> None:
    net, extras = leaf_spine(NUM_LEAVES, NUM_SPINES)
    sim = extras["sim"]
    configs = leaf_spine_hula_configs(NUM_LEAVES, NUM_SPINES)
    hulas = {name: HulaDataplane(net.switch(name), config).install()
             for name, config in configs.items()}

    dataplanes = {}
    for index, name in enumerate(sorted(configs)):
        dataplanes[name] = P4AuthDataplane(
            net.switch(name), k_seed=0x1EAF + index,
            config=P4AuthConfig(protected_headers={"hula_probe"}),
        ).install()
    controller = P4AuthController(net)
    for dataplane in dataplanes.values():
        controller.provision(dataplane)
    controller.kmp.bootstrap_all(
        on_done=lambda: print(f"[kmp] fabric keyed: "
                              f"{len(controller.kmp.stats.records)} key "
                              f"operations, done at t={sim.now * 1e3:.1f} ms"))
    sim.run(until=1.0)

    # The adversary taps the leaf2-spine1 link and rewrites the
    # utilization field of every probe crossing it.  With P4Auth each
    # rewritten probe fails digest verification at the next switch, so
    # leaf1 only ever learns about leaf2 through spine2.
    adversary = ProbeFieldTamperer("hula_probe", "path_util",
                                   lambda util: (util + 7) % 101)
    adversary.attach(net.link_between("leaf2", "spine1"))

    # Every leaf floods probes for its ToR id; leaf1's host sends data
    # toward leaf2's host.
    def probes(round_index: int = 0) -> None:
        if sim.now >= DURATION_S + 1.0:
            return
        for leaf_index in range(1, NUM_LEAVES + 1):
            extras["hosts"][f"leaf{leaf_index}"].send(
                make_probe(leaf_index, round_index))
        sim.schedule(0.005, probes, round_index + 1)

    def data(seq: int = 0) -> None:
        if sim.now >= DURATION_S + 1.0:
            return
        extras["hosts"]["leaf1"].send(make_data_packet(2, flow_id=seq,
                                                       seq=seq & 0xFFFF))
        sim.schedule(0.0005, data, seq + 1)

    sim.schedule(0.0, probes)
    sim.schedule(0.05, data)
    sim.run(until=DURATION_S + 1.0)

    leaf1 = hulas["leaf1"]
    total = sum(count for port, count in leaf1.data_tx_per_port.items())
    print(f"\n[hula] leaf1 forwarded {total} data packets toward leaf2:")
    for spine_index in range(1, NUM_SPINES + 1):
        port = 1 + spine_index
        share = leaf1.data_tx_per_port.get(port, 0) / max(1, total)
        print(f"[hula]   via spine{spine_index}: {share * 100:5.1f}%")
    delivered = len(extras["hosts"]["leaf2"].received)
    drops = sum(dp.stats.digest_fail_dpdp for dp in dataplanes.values())
    alerts = len(controller.alerts)
    print(f"[hula] delivered at leaf2's host: {delivered}")
    print(f"[p4auth] tampered probes dropped: {drops}, alerts: {alerts}")
    share_spine2 = leaf1.data_tx_per_port.get(3, 0) / max(1, total)
    assert share_spine2 > 0.9, "traffic should avoid the tampered path"
    assert alerts > 0 and drops > 0


if __name__ == "__main__":
    main()
