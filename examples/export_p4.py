#!/usr/bin/env python3
"""Export the P4Auth data plane as a P4-16 program skeleton.

The paper's prototype is a ~400-line P4 program (§VII).  This example
builds a protected switch and emits the equivalent P4-16 skeleton —
headers, parser, the ten P4Auth register arrays, the Fig 15 mapping
table with the live entries, and the verify/sign control blocks — all
derived from the running configuration.

Run:  python examples/export_p4.py [output.p4]
"""

import sys

from repro.core import P4AuthDataplane
from repro.dataplane import DataplaneSwitch
from repro.dataplane.p4gen import generate_p4, loc_estimate


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "p4auth_generated.p4"
    switch = DataplaneSwitch("s1", num_ports=64)
    # The application registers a RouteScout-style deployment would expose.
    switch.registers.define("rs_split", 8, 1)
    switch.registers.define("rs_lat_sum", 64, 2)
    switch.registers.define("rs_lat_cnt", 32, 2)
    dataplane = P4AuthDataplane(switch, k_seed=0x5EED).install()
    dataplane.map_all_registers()

    source = generate_p4(dataplane, program_name="p4auth_routescout")
    with open(output, "w") as handle:
        handle.write(source)
    print(f"Wrote {output}: {len(source.splitlines())} lines "
          f"({loc_estimate(source)} LoC — the paper's prototype is ~400).")
    print("\nFirst lines:")
    for line in source.splitlines()[:14]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
