"""Checksummed snapshot files: atomicity, fallback, pruning."""

from __future__ import annotations

import json
import os

import pytest

from repro.store.snapshot import SNAPSHOT_SCHEMA, SnapshotStore
from repro.store.state import KeyEntry, StoreState


def sample_state(lsn=41) -> StoreState:
    state = StoreState(applied_lsn=lsn)
    state.seq_horizons["s1"] = 128
    state.keys["s1"] = KeyEntry(seed=7, auth=9,
                                local_slots=[0xAA, 0xBB],
                                local_active=1, has_local=True)
    state.open_windows["s1"] = {"reg": "demo", "index": 3}
    state.epochs["s1"] = 2
    state.shard_map["shard-0"] = ["s1"]
    return state


class TestRoundtrip:
    def test_save_load_is_identity(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        store.save(sample_state())
        loaded = store.load_latest()
        assert loaded is not None
        assert loaded.to_dict() == sample_state().to_dict()

    def test_empty_store_loads_none(self, tmp_path):
        assert SnapshotStore(str(tmp_path)).load_latest() is None

    def test_filename_carries_covered_lsn(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        path = store.save(sample_state(lsn=41))
        assert os.path.basename(path) == "snapshot-%012d.json" % 42

    def test_schema_tag_embedded(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        path = store.save(sample_state())
        document = json.load(open(path))
        assert document["schema"] == SNAPSHOT_SCHEMA
        assert "crc32" in document


class TestCorruptionFallback:
    def test_corrupt_latest_falls_back_to_previous(self, tmp_path):
        store = SnapshotStore(str(tmp_path), keep=2)
        store.save(sample_state(lsn=10))
        newest = store.save(sample_state(lsn=20))
        blob = bytearray(open(newest, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(newest, "wb") as handle:
            handle.write(blob)
        loaded = store.load_latest()
        assert loaded is not None
        assert loaded.applied_lsn == 10

    def test_all_corrupt_loads_none(self, tmp_path):
        store = SnapshotStore(str(tmp_path), keep=1)
        path = store.save(sample_state())
        with open(path, "wb") as handle:
            handle.write(b"not json at all")
        assert store.load_latest() is None

    def test_wrong_schema_is_skipped(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        path = store.save(sample_state())
        document = json.load(open(path))
        document["schema"] = "someone-else/9"
        with open(path, "w") as handle:
            json.dump(document, handle)
        assert store.load_latest() is None


class TestHousekeeping:
    def test_prunes_to_keep_generations(self, tmp_path):
        store = SnapshotStore(str(tmp_path), keep=2)
        for lsn in (10, 20, 30):
            store.save(sample_state(lsn=lsn))
        names = sorted(os.listdir(tmp_path))
        assert len(names) == 2
        assert store.load_latest().applied_lsn == 30

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotStore(str(tmp_path), keep=0)

    def test_init_sweeps_orphan_tmp(self, tmp_path):
        tmp_path.joinpath("half-write.tmp").write_bytes(b"dead writer")
        SnapshotStore(str(tmp_path))
        assert not tmp_path.joinpath("half-write.tmp").exists()
