"""Chaos matrix: SIGKILL the controller at every journal record type.

Each trial arms a :class:`~repro.faults.ControllerKillSwitch` on one
record type, crashes the controller mid-burst, warm-restarts from the
surviving journal, and finishes the workload.  ``run_crash_trial``
*raises* if any invariant breaks, and the trial result re-states them
so the assertions here are double-checked:

- zero forged writes (the data plane's sequence never runs ahead of
  the controller's — nothing wrote that the controller didn't sign);
- zero self-inflicted replay / digest / DoS alerts (P4Auth's own
  defenses stay silent across the restart);
- no permanent sequence divergence (controller and every switch agree
  exactly once traffic quiesces).
"""

from __future__ import annotations

import pytest

from repro.experiments.store_recovery import (
    KILL_POINTS,
    run_crash_trial,
)

INVARIANTS = ("forged_writes", "replay_trips", "digest_fail_trips",
              "alert_trips")


def assert_clean(result):
    for key in INVARIANTS:
        assert result[key] == 0, (key, result)
    assert not result["dos_suspected"]
    assert result["seq_divergence_max"] == 0
    assert result["seq_divergence_min"] == 0
    assert result["phase2_failed"] == 0


class TestKillPointMatrix:
    @pytest.mark.parametrize("kill_on", KILL_POINTS)
    def test_kill_at_record_type_recovers_clean(self, kill_on):
        result = run_crash_trial({
            "kill_on": kill_on, "m": 9, "degree": 2,
            "requests_per_switch": 4, "seed": 3,
        })
        assert_clean(result)
        # The kill must actually have fired mid-run at the armed
        # record ("time" arms a timer instead of a record type).
        if kill_on != "time":
            assert result["killed_at_record"] == kill_on
        assert result["phase2_completed"] == 9 * 4

    def test_fsync_always_matrix_point(self):
        result = run_crash_trial({
            "kill_on": "seq_advance", "m": 9, "degree": 2,
            "requests_per_switch": 4, "fsync": "always", "seed": 3,
        })
        assert_clean(result)
        assert result["killed_at_record"] == "seq_advance"

    def test_crash_with_snapshots_enabled(self):
        result = run_crash_trial({
            "kill_on": "batch_close", "m": 9, "degree": 2,
            "requests_per_switch": 4, "snapshot_every": 8, "seed": 3,
        })
        assert_clean(result)
        assert result["snapshot_used"]


class TestProductionScale:
    """The ISSUE acceptance point: a 100-switch fleet."""

    def test_m100_recovers_with_all_defenses_silent(self):
        result = run_crash_trial({
            "kill_on": "seq_advance", "m": 100, "degree": 4,
            "requests_per_switch": 4, "seed": 1,
        })
        assert_clean(result)
        assert result["switches_restored"] == 100
        assert result["phase2_completed"] == 100 * 4
        assert result["recovery_s"] < 5.0
