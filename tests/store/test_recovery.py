"""Warm restart against a live deployment: keys, horizons, reconcile.

Uses the shared ``Deployment`` helper (one controller + switches on one
virtual clock).  The crash choreography mirrors the chaos experiment:
``simulate_crash`` the journal, ``halt()`` the old controller, then
rebuild a fresh controller over the *same* switches — whose registers,
like real hardware, survived the controller process dying.
"""

from __future__ import annotations

import pytest

from tests.conftest import Deployment

from repro.core.controller import P4AuthController
from repro.runtime.batch import BatchController
from repro.store import (
    SnapshotStore,
    StateRecorder,
    load_state,
    open_store,
    restore_dataplane,
    store_exists,
    warm_restart,
)
from repro.store.recovery import SNAPSHOT_SUBDIR
from repro.store.state import SEQ_MASK, KeyEntry, StoreState

REGISTERS = [("demo", 64, 16)]


def deployment(**kwargs) -> Deployment:
    return Deployment(num_switches=2, registers=REGISTERS, **kwargs)


def write_ok(dep, controller, switch, index, value) -> bool:
    outcome = []
    controller.write_register(switch, "demo", index, value,
                              lambda ok, _v: outcome.append(ok))
    dep.run(2.0)
    return outcome == [True]


class TestStoreExists:
    def test_false_on_missing_and_empty(self, tmp_path):
        assert not store_exists(str(tmp_path / "nothing"))
        assert not store_exists(str(tmp_path))

    def test_true_after_first_journal_record(self, tmp_path):
        dep = deployment()
        journal, snapshots, records = open_store(str(tmp_path))
        assert records == []
        recorder = StateRecorder(journal, snapshots)
        recorder.attach(dep.controller)
        assert store_exists(str(tmp_path))
        recorder.detach()
        journal.close()


class TestWarmRestart:
    def crash(self, tmp_path, dep, recorder):
        recorder.journal.simulate_crash()
        recorder.detach()
        dep.controller.halt()

    def recover(self, tmp_path, dep, **kwargs):
        controller = P4AuthController(dep.net)
        for dataplane in dep.dataplanes.values():
            controller.provision(dataplane)
        recorder, report = warm_restart(str(tmp_path), controller,
                                        **kwargs)
        return controller, recorder, report

    def test_keys_and_horizons_survive(self, tmp_path):
        dep = deployment()
        journal, snapshots, _ = open_store(str(tmp_path), fsync="batch")
        recorder = StateRecorder(journal, snapshots, seq_stride=8)
        recorder.attach(dep.controller)
        assert write_ok(dep, dep.controller, "s1", 0, 111)
        old_keys = {name: dep.controller.keys.local_key_slots(name)
                    for name in ("s1", "s2")}
        self.crash(tmp_path, dep, recorder)

        controller, recorder2, report = self.recover(tmp_path, dep,
                                                     fsync="batch",
                                                     seq_stride=8)
        assert report.switches_restored == 2
        assert not report.snapshot_used  # no snapshot was ever taken
        for name in ("s1", "s2"):
            assert controller.keys.local_key_slots(name) == old_keys[name]
            # The controller resumes AT the journaled horizon.
            assert controller._seq[name] == report.seq_horizons[name]
        # And traffic flows without tripping the replay defense.
        assert write_ok(dep, controller, "s1", 1, 222)
        assert write_ok(dep, controller, "s2", 1, 333)
        for dataplane in dep.dataplanes.values():
            assert dataplane.stats.replays_detected == 0
            assert dataplane.stats.digest_fail_cdp == 0
        recorder2.detach()
        recorder2.journal.close()

    def test_sequence_numbers_never_reused(self, tmp_path):
        """The skip-ahead rule: every post-restart sequence number is
        strictly above anything the dead controller could have used."""
        dep = deployment()
        journal, snapshots, _ = open_store(str(tmp_path), fsync="batch")
        recorder = StateRecorder(journal, snapshots, seq_stride=4)
        recorder.attach(dep.controller)
        for index in range(6):
            assert write_ok(dep, dep.controller, "s1", index, index)
        used_before = dep.controller._seq["s1"]
        self.crash(tmp_path, dep, recorder)

        controller, recorder2, report = self.recover(tmp_path, dep,
                                                     fsync="batch",
                                                     seq_stride=4)
        assert controller._seq["s1"] >= used_before
        assert controller.next_seq("s1") >= used_before
        recorder2.detach()
        recorder2.journal.close()

    def test_snapshot_plus_tail_recovery(self, tmp_path):
        dep = deployment()
        journal, snapshots, _ = open_store(str(tmp_path), fsync="batch")
        # stride=1: every next_seq journals a horizon, so the writes
        # after the snapshot are guaranteed to leave a journal tail.
        recorder = StateRecorder(journal, snapshots, seq_stride=1)
        recorder.attach(dep.controller)
        assert write_ok(dep, dep.controller, "s1", 0, 1)
        recorder.snapshot()
        tail_base = recorder.state.applied_lsn
        # Two writes: the first consumes the seq reserved at attach
        # time; the second crosses the horizon and journals a tail.
        assert write_ok(dep, dep.controller, "s2", 0, 2)
        assert write_ok(dep, dep.controller, "s2", 1, 3)
        self.crash(tmp_path, dep, recorder)

        _c, recorder2, report = self.recover(tmp_path, dep, fsync="batch",
                                             seq_stride=1)
        assert report.snapshot_used
        # Only the post-snapshot tail was replayed.
        assert 0 < report.replayed_records <= \
            recorder2.state.applied_lsn - tail_base + 1
        recorder2.detach()
        recorder2.journal.close()

    def test_open_window_reconciled_by_authenticated_read(self, tmp_path):
        dep = deployment()
        journal, snapshots, _ = open_store(str(tmp_path), fsync="batch")
        recorder = StateRecorder(journal, snapshots, seq_stride=4)
        batch = BatchController(dep.controller, max_in_flight=4)
        recorder.attach(dep.controller, batch=batch)
        batch.write_register("s1", "demo", 0, 9, lambda ok, v: None)
        # Force the open-window record down before the crash loses it.
        recorder.journal.sync()
        self.crash(tmp_path, dep, recorder)

        controller, recorder2, report = self.recover(tmp_path, dep,
                                                     fsync="batch",
                                                     seq_stride=4)
        assert "s1" in report.windows
        assert report.windows["s1"] is None  # read still in flight
        dep.run(2.0)
        assert report.windows["s1"] is True
        assert report.windows_reconciled
        # The reconcile read marked the window closed in the journal.
        assert "s1" not in recorder2.state.open_windows
        recorder2.detach()
        recorder2.journal.close()

    def test_cold_start_on_empty_dir_is_a_noop_recovery(self, tmp_path):
        dep = deployment()
        recorder, report = warm_restart(str(tmp_path), dep.controller)
        assert report.replayed_records == 0
        assert not report.snapshot_used
        assert report.windows == {}
        assert write_ok(dep, dep.controller, "s1", 0, 5)
        recorder.detach()
        recorder.journal.close()


class TestSnapshotDurability:
    """A snapshot must never cover LSNs the journal could still lose."""

    def test_snapshot_syncs_batched_journal_first(self, tmp_path):
        journal, snapshots, _ = open_store(str(tmp_path), fsync="batch")
        recorder = StateRecorder(journal, snapshots, snapshot_every=2)
        # Two non-durable records trigger the auto-snapshot; nothing
        # else would have forced a group commit for them.
        recorder._append("epoch_advance", {"switch": "s1", "epoch": 1})
        recorder._append("epoch_advance", {"switch": "s1", "epoch": 2})
        assert journal.durable_lsn == 1  # the snapshot forced the sync
        journal.simulate_crash()

        # Recovery resumes at the snapshot's coverage, not below it —
        # so this fresh acknowledged-durable record gets LSN 2, not 0.
        journal2, snapshots2, records = open_store(str(tmp_path),
                                                   fsync="batch")
        state, snapshot_used, _ = load_state(records, snapshots2)
        assert snapshot_used
        assert journal2.next_lsn == state.applied_lsn + 1 == 2
        journal2.append("seq_advance", {"switch": "s1", "horizon": 64},
                        durable=True)
        journal2.simulate_crash()

        # The record is NOT shadowed by the snapshot on the next replay.
        journal3, snapshots3, records3 = open_store(str(tmp_path),
                                                    fsync="batch")
        state3, _, replayed3 = load_state(records3, snapshots3)
        assert replayed3 == 1
        assert state3.seq_horizons == {"s1": 64}
        assert state3.epochs == {"s1": 2}
        journal3.close()

    def test_stale_snapshot_ahead_of_journal_is_clamped(self, tmp_path):
        """A state dir from a pre-fix build: the snapshot covers LSNs
        the crashed journal never fsynced.  Recovery clamps the LSN
        space past it, so post-restart records survive the restart
        after next."""
        snapshots = SnapshotStore(str(tmp_path / SNAPSHOT_SUBDIR))
        stale = StoreState(applied_lsn=7)
        stale.seq_horizons["s1"] = 40
        snapshots.save(stale)

        dep = deployment()
        controller = dep.controller
        recorder, report = warm_restart(str(tmp_path), controller,
                                        fsync="batch", seq_stride=4)
        assert report.snapshot_used
        assert report.seq_horizons["s1"] == 40
        assert controller._seq["s1"] == 40
        # Every record the new recorder journals sits above the
        # snapshot's coverage.
        assert recorder.state.applied_lsn >= 8
        assert write_ok(dep, controller, "s1", 0, 17)
        recorder.journal.simulate_crash()
        recorder.detach()
        controller.halt()

        controller2 = P4AuthController(dep.net)
        for dataplane in dep.dataplanes.values():
            controller2.provision(dataplane)
        recorder2, report2 = warm_restart(str(tmp_path), controller2,
                                          fsync="batch", seq_stride=4)
        # The post-clamp reservations were replayed, not shadowed.
        assert report2.seq_horizons["s1"] > 40
        recorder2.detach()
        recorder2.journal.close()


class TestSequenceWrap:
    """Journaled horizons stay monotone across the 32-bit seq wrap."""

    def test_horizon_advances_past_the_wrap(self, tmp_path):
        journal, snapshots, _ = open_store(str(tmp_path))
        seeded = StoreState()
        seeded.seq_horizons["s1"] = SEQ_MASK - 7  # reservation near top
        recorder = StateRecorder(journal, snapshots, seq_stride=8,
                                 state=seeded)
        # The controller reports masked values; issuance reaches the
        # reservation, then wraps to 0.
        recorder._on_seq("s1", SEQ_MASK - 7)
        recorder._on_seq("s1", 0)
        horizon = recorder.state.seq_horizons["s1"]
        assert horizon == SEQ_MASK + 1 + 8  # unmasked, past the wrap
        journal.close()

        # Replay agrees: the post-wrap horizon is forward movement, not
        # a stale reservation to be rejected.
        journal2, snapshots2, records = open_store(str(tmp_path))
        state, _, _ = load_state(records, snapshots2)
        assert state.seq_horizons["s1"] == horizon
        # Masked back down only at the 32-bit register boundary.
        assert horizon & SEQ_MASK == 8
        journal2.close()


class TestRestoreDataplane:
    def test_installs_kauth_local_slots_and_expected_seq(self):
        dep = deployment(bootstrap=False)
        dataplane = dep.dataplanes["s1"]
        state = StoreState(applied_lsn=3)
        state.seq_horizons["s1"] = 500
        state.keys["s1"] = KeyEntry(seed=1, auth=0xA17A,
                                    local_slots=[0x10CA1, 0x10CA2],
                                    local_active=1, has_local=True)
        restore_dataplane(dataplane, state)
        registers = dataplane.switch.registers
        assert registers.get("p4auth_kauth").read(0) == 0xA17A
        assert registers.get("p4auth_expected_seq").read(0) == 500

    def test_switch_absent_from_state_is_untouched(self):
        dep = deployment(bootstrap=False)
        dataplane = dep.dataplanes["s1"]
        restore_dataplane(dataplane, StoreState())
        assert dataplane.switch.registers.get(
            "p4auth_expected_seq").read(0) == 0


class TestLoadState:
    def test_full_journal_replay_without_snapshots(self, tmp_path):
        journal, snapshots, _ = open_store(str(tmp_path))
        journal.append("seq_advance", {"switch": "s1", "horizon": 32},
                       durable=True)
        journal.append("epoch_advance", {"switch": "s1", "epoch": 2})
        journal.close()
        journal2, snapshots2, records = open_store(str(tmp_path))
        state, snapshot_used, replayed = load_state(records, snapshots2)
        assert not snapshot_used
        assert replayed == 2
        assert state.seq_horizons == {"s1": 32}
        assert state.epochs == {"s1": 2}
        journal2.close()
