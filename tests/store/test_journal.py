"""The CRC-framed write-ahead journal: framing, healing, fsync, crashes."""

from __future__ import annotations

import os
import struct

import pytest

from repro.store.journal import (
    FSYNC_POLICIES,
    Journal,
    JournalCorruption,
    MAX_PAYLOAD_BYTES,
    RECORD_TYPES,
)


def fresh(tmp_path, **kwargs) -> Journal:
    journal = Journal(str(tmp_path / "wal"), **kwargs)
    journal.open()
    return journal


def active_segment(journal: Journal) -> str:
    return journal._active_path


class TestAppendReplay:
    def test_roundtrip_preserves_order_types_and_data(self, tmp_path):
        journal = fresh(tmp_path)
        journal.append("key_install",
                       {"switch": "s1", "kind": "seed", "key": 7,
                        "version": 0}, durable=True)
        journal.append("seq_advance", {"switch": "s1", "horizon": 64},
                       durable=True)
        journal.append("batch_open", {"switch": "s1", "reg": "demo",
                                      "index": 3})
        journal.close()

        reopened = Journal(str(tmp_path / "wal"))
        records = reopened.open()
        assert [r.lsn for r in records] == [0, 1, 2]
        assert [r.type for r in records] == ["key_install", "seq_advance",
                                             "batch_open"]
        assert records[1].data == {"switch": "s1", "horizon": 64}
        assert reopened.next_lsn == 3
        assert reopened.torn_records == 0

    def test_unknown_record_type_refused(self, tmp_path):
        journal = fresh(tmp_path)
        with pytest.raises(ValueError, match="unknown record type"):
            journal.append("not_a_type", {})

    def test_append_after_close_refused(self, tmp_path):
        journal = fresh(tmp_path)
        journal.close()
        assert not journal.is_open
        with pytest.raises(RuntimeError, match="not open"):
            journal.append("seq_advance", {"switch": "s1", "horizon": 1})

    def test_every_declared_type_roundtrips(self, tmp_path):
        journal = fresh(tmp_path)
        for rec_type in RECORD_TYPES:
            journal.append(rec_type, {"switch": "s1", "kind": "seed",
                                      "key": 1, "version": 0, "horizon": 9,
                                      "reg": "r", "index": 0, "shard": "a",
                                      "switches": [], "epoch": 1})
        journal.close()
        records = Journal(str(tmp_path / "wal")).open()
        assert [r.type for r in records] == list(RECORD_TYPES)


class TestTornTail:
    def append_three(self, tmp_path):
        journal = fresh(tmp_path)
        for horizon in (10, 20, 30):
            journal.append("seq_advance",
                           {"switch": "s1", "horizon": horizon},
                           durable=True)
        path = active_segment(journal)
        journal.close()
        return path

    def test_truncated_header_heals_to_last_valid(self, tmp_path):
        path = self.append_three(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b"\x05\x00")  # half a frame header
        reopened = Journal(str(tmp_path / "wal"))
        records = reopened.open()
        assert [r.data["horizon"] for r in records] == [10, 20, 30]
        assert reopened.torn_records == 1
        # The file was truncated back: a second open is clean.
        reopened.close()
        again = Journal(str(tmp_path / "wal"))
        again.open()
        assert again.torn_records == 0

    def test_short_payload_heals(self, tmp_path):
        path = self.append_three(tmp_path)
        with open(path, "ab") as handle:
            handle.write(struct.pack("<II", 100, 0) + b"short")
        reopened = Journal(str(tmp_path / "wal"))
        assert len(reopened.open()) == 3
        assert reopened.torn_records == 1

    def test_crc_mismatch_on_final_record_heals(self, tmp_path):
        path = self.append_three(tmp_path)
        # Flip one payload byte of the final frame in place.
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(blob)
        reopened = Journal(str(tmp_path / "wal"))
        records = reopened.open()
        assert [r.data["horizon"] for r in records] == [10, 20]
        assert reopened.torn_records == 1

    def test_absurd_length_field_is_torn_not_allocated(self, tmp_path):
        path = self.append_three(tmp_path)
        with open(path, "ab") as handle:
            handle.write(struct.pack("<II", MAX_PAYLOAD_BYTES + 1, 0))
        reopened = Journal(str(tmp_path / "wal"))
        assert len(reopened.open()) == 3
        assert reopened.torn_records == 1

    def test_healed_journal_appends_contiguously(self, tmp_path):
        path = self.append_three(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b"garbage")
        reopened = Journal(str(tmp_path / "wal"))
        reopened.open()
        record = reopened.append("seq_advance",
                                 {"switch": "s1", "horizon": 40},
                                 durable=True)
        assert record.lsn == 3
        reopened.close()
        records = Journal(str(tmp_path / "wal")).open()
        assert [r.lsn for r in records] == [0, 1, 2, 3]

    def test_sealed_segment_corruption_refuses(self, tmp_path):
        journal = fresh(tmp_path, segment_max_bytes=1 << 20)
        journal.append("seq_advance", {"switch": "s1", "horizon": 1},
                       durable=True)
        sealed = active_segment(journal)
        journal.rotate()
        journal.append("seq_advance", {"switch": "s1", "horizon": 2},
                       durable=True)
        journal.close()
        blob = bytearray(open(sealed, "rb").read())
        blob[-1] ^= 0xFF
        with open(sealed, "wb") as handle:
            handle.write(blob)
        with pytest.raises(JournalCorruption, match="sealed segment"):
            Journal(str(tmp_path / "wal")).open()


class TestFsyncDiscipline:
    def test_policies_are_validated(self, tmp_path):
        assert FSYNC_POLICIES == ("always", "batch", "never")
        with pytest.raises(ValueError):
            Journal(str(tmp_path / "wal"), fsync="sometimes")

    def test_always_has_zero_lag(self, tmp_path):
        journal = fresh(tmp_path, fsync="always")
        journal.append("batch_open", {"switch": "s1", "reg": "r",
                                      "index": 0})
        assert journal.lag == 0
        assert journal.durable_lsn == 0

    def test_batch_lag_grows_until_durable_record(self, tmp_path):
        journal = fresh(tmp_path, fsync="batch")
        journal.append("batch_open", {"switch": "s1", "reg": "r",
                                      "index": 0})
        journal.append("batch_close", {"switch": "s1"})
        assert journal.lag == 2
        # A durable record forces the group commit: everything before
        # it rides along.
        journal.append("seq_advance", {"switch": "s1", "horizon": 5},
                       durable=True)
        assert journal.lag == 0
        assert journal.durable_lsn == 2

    def test_simulate_crash_drops_exactly_the_unsynced_tail(self, tmp_path):
        journal = fresh(tmp_path, fsync="batch")
        journal.append("seq_advance", {"switch": "s1", "horizon": 5},
                       durable=True)
        journal.append("batch_open", {"switch": "s1", "reg": "r",
                                      "index": 0})
        journal.append("batch_close", {"switch": "s1"})
        journal.simulate_crash()
        assert not journal.is_open
        records = Journal(str(tmp_path / "wal")).open()
        assert [r.type for r in records] == ["seq_advance"]

    def test_never_policy_loses_everything_on_crash(self, tmp_path):
        journal = fresh(tmp_path, fsync="never")
        journal.append("seq_advance", {"switch": "s1", "horizon": 5},
                       durable=True)
        journal.simulate_crash()
        assert Journal(str(tmp_path / "wal")).open() == []


class TestSegments:
    def small(self, tmp_path, n=20):
        journal = fresh(tmp_path, segment_max_bytes=160)
        for horizon in range(1, n + 1):
            journal.append("seq_advance",
                           {"switch": "s1", "horizon": horizon},
                           durable=True)
        return journal

    def test_rotation_splits_and_replay_spans_segments(self, tmp_path):
        journal = self.small(tmp_path)
        segment_count = len(journal._segments())
        assert segment_count > 1
        journal.close()
        records = Journal(str(tmp_path / "wal"),
                          segment_max_bytes=160).open()
        assert [r.lsn for r in records] == list(range(20))

    def test_compact_removes_only_covered_sealed_segments(self, tmp_path):
        journal = self.small(tmp_path)
        before = len(journal._segments())
        removed = journal.compact(journal.next_lsn)
        # Every sealed segment is covered; the active one survives.
        assert removed == before - 1
        assert len(journal._segments()) == 1
        journal.close()
        # Replay after compaction starts at the surviving base LSN.
        reopened = Journal(str(tmp_path / "wal"), segment_max_bytes=160)
        records = reopened.open()
        assert records[0].lsn > 0
        assert records[-1].lsn == 19

    def test_compact_respects_upto_lsn(self, tmp_path):
        journal = self.small(tmp_path)
        segments = journal._segments()
        # A snapshot covering only the first segment deletes exactly it.
        first_next_base = segments[1][0]
        assert journal.compact(0) == 0
        assert journal.compact(first_next_base) == 1
        assert journal._segments()[0][0] == first_next_base

    def test_records_iterator_filters_by_lsn(self, tmp_path):
        journal = self.small(tmp_path, n=6)
        tail = list(journal.records(start_lsn=4))
        assert [r.lsn for r in tail] == [4, 5]

    def test_on_append_hook_fires_synchronously(self, tmp_path):
        journal = fresh(tmp_path)
        seen = []
        journal.on_append.append(lambda record: seen.append(record.type))
        journal.append("batch_open", {"switch": "s1", "reg": "r",
                                      "index": 0})
        assert seen == ["batch_open"]


class TestSkipTo:
    """The recovery LSN clamp: fresh records must never be assigned
    LSNs a surviving snapshot already covers."""

    def test_clamps_forward_and_compacts_covered_segments(self, tmp_path):
        journal = fresh(tmp_path)
        journal.append("epoch_advance", {"switch": "s1", "epoch": 1})
        journal.skip_to(100)
        assert journal.next_lsn == 100
        # The covered segment is gone; appends land at the clamped LSN.
        record = journal.append("seq_advance",
                                {"switch": "s1", "horizon": 7},
                                durable=True)
        assert record.lsn == 100
        journal.close()

        reopened = Journal(str(tmp_path / "wal"))
        records = reopened.open()
        assert [r.lsn for r in records] == [100]
        assert reopened.next_lsn == 101

    def test_skip_is_durable_before_any_append(self, tmp_path):
        """A crash right after the clamp must not resurrect the old LSN
        space: the empty active segment's base carries the skip."""
        journal = fresh(tmp_path)
        journal.append("epoch_advance", {"switch": "s1", "epoch": 1})
        journal.skip_to(64)
        journal.simulate_crash()
        reopened = Journal(str(tmp_path / "wal"))
        assert reopened.open() == []
        assert reopened.next_lsn == 64

    def test_not_ahead_is_a_noop(self, tmp_path):
        journal = fresh(tmp_path)
        journal.append("epoch_advance", {"switch": "s1", "epoch": 1})
        segments = len(journal._segments())
        journal.skip_to(1)
        journal.skip_to(0)
        assert journal.next_lsn == 1
        assert len(journal._segments()) == segments
