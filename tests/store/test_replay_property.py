"""Property: snapshot + tail replay ≡ full-journal replay (hypothesis).

The recorder maintains its snapshot source through the same pure
``apply_record`` fold recovery uses, so the in-memory halves agree by
construction — what these properties pin is the **disk round-trip**:
encode → CRC-frame → segment files → scan → decode → fold, with a
snapshot cut at an arbitrary point, equals folding every record, for
arbitrary operation sequences.  Plus: replay is idempotent from any
snapshot base, and a simulated crash only ever truncates (records that
survive are a strict prefix).
"""

from __future__ import annotations

import os
import tempfile

import pytest

pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.store.journal import Journal  # noqa: E402
from repro.store.snapshot import SnapshotStore  # noqa: E402
from repro.store.state import replay_records  # noqa: E402

SWITCHES = st.sampled_from(["s1", "s2", "s3"])
KEYS = st.integers(min_value=1, max_value=2**64 - 1)
VERSIONS = st.integers(min_value=0, max_value=1)

RECORDS = st.one_of(
    st.tuples(st.just("key_install"), SWITCHES,
              st.sampled_from(["seed", "auth", "local"]), KEYS, VERSIONS)
      .map(lambda t: (t[0], {"switch": t[1], "kind": t[2], "key": t[3],
                             "version": t[4]})),
    st.tuples(st.just("key_rollover"), SWITCHES, KEYS, VERSIONS)
      .map(lambda t: (t[0], {"switch": t[1], "key": t[2],
                             "version": t[3]})),
    st.tuples(st.just("seq_advance"), SWITCHES,
              st.integers(min_value=1, max_value=2**32 - 1))
      .map(lambda t: (t[0], {"switch": t[1], "horizon": t[2]})),
    st.tuples(st.just("batch_open"), SWITCHES,
              st.integers(min_value=0, max_value=15))
      .map(lambda t: (t[0], {"switch": t[1], "reg": "demo",
                             "index": t[2]})),
    st.tuples(st.just("batch_close"), SWITCHES)
      .map(lambda t: (t[0], {"switch": t[1]})),
    st.tuples(st.just("shard_map"), st.sampled_from(["a", "b"]),
              st.lists(SWITCHES, max_size=3, unique=True))
      .map(lambda t: (t[0], {"shard": t[1], "switches": t[2]})),
    st.tuples(st.just("epoch_advance"), SWITCHES,
              st.integers(min_value=1, max_value=50))
      .map(lambda t: (t[0], {"switch": t[1], "epoch": t[2]})),
)

OPS = st.lists(RECORDS, min_size=1, max_size=40)

RELAXED = settings(max_examples=50, deadline=None, derandomize=True,
                   suppress_health_check=[HealthCheck.too_slow])


def journal_to_disk(root, ops, segment_max_bytes=512):
    """Write every op through a real journal (forcing small segments so
    multi-segment scans get exercised), returning the replayed records."""
    journal = Journal(os.path.join(root, "wal"),
                      segment_max_bytes=segment_max_bytes)
    journal.open()
    for rec_type, data in ops:
        journal.append(rec_type, data, durable=True)
    journal.close()
    reopened = Journal(os.path.join(root, "wal"),
                       segment_max_bytes=segment_max_bytes)
    records = reopened.open()
    reopened.close()
    return records


@given(ops=OPS, cut=st.integers(min_value=0, max_value=40))
@RELAXED
def test_snapshot_plus_tail_equals_full_replay(ops, cut):
    cut = min(cut, len(ops))
    with tempfile.TemporaryDirectory() as root:
        records = journal_to_disk(root, ops)
        assert len(records) == len(ops)

        full = replay_records(records)

        # Snapshot the state at the cut, round-trip it through disk,
        # then replay only the tail on top.
        base = replay_records(records[:cut])
        snapshots = SnapshotStore(os.path.join(root, "snaps"))
        snapshots.save(base)
        loaded = snapshots.load_latest()
        assert loaded is not None
        resumed = replay_records(records, loaded)

        assert resumed.to_dict() == full.to_dict()


@given(ops=OPS)
@RELAXED
def test_replay_is_idempotent_over_the_snapshot_prefix(ops):
    """Handing the *whole* journal to a snapshot-seeded replay must not
    double-apply the prefix (records at or below applied_lsn skip)."""
    with tempfile.TemporaryDirectory() as root:
        records = journal_to_disk(root, ops)
        full = replay_records(records)
        again = replay_records(records, full.copy())
        assert again.to_dict() == full.to_dict()


@given(ops=OPS, synced=st.integers(min_value=0, max_value=40))
@RELAXED
def test_crash_survivors_are_a_strict_prefix(ops, synced):
    """simulate_crash never reorders or corrupts — whatever survives is
    exactly the records the fsync policy had made durable."""
    synced = min(synced, len(ops))
    with tempfile.TemporaryDirectory() as root:
        journal = Journal(os.path.join(root, "wal"), fsync="batch",
                          segment_max_bytes=512)
        journal.open()
        for index, (rec_type, data) in enumerate(ops):
            journal.append(rec_type, data, durable=index < synced)
        journal.simulate_crash()

        survivors = Journal(os.path.join(root, "wal"),
                            segment_max_bytes=512).open()
        assert len(survivors) >= synced
        for record, (rec_type, data) in zip(survivors, ops):
            assert record.type == rec_type
            assert record.data == data
