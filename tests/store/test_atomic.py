"""The shared atomic-write / orphan-sweep idiom (``repro.store.atomic``)."""

from __future__ import annotations

import os

import pytest

from repro.engine.cache import ResultCache
from repro.store.atomic import (
    TMP_SUFFIX,
    atomic_write_bytes,
    atomic_write_text,
    fsync_dir,
    sweep_orphan_tmp,
)


class TestAtomicWrite:
    def test_creates_and_replaces(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_bytes(path, b"one")
        assert open(path, "rb").read() == b"one"
        atomic_write_bytes(path, b"two", fsync=True)
        assert open(path, "rb").read() == b"two"

    def test_text_convenience_is_utf8(self, tmp_path):
        path = str(tmp_path / "t.txt")
        atomic_write_text(path, "héllo")
        assert open(path, "rb").read() == "héllo".encode("utf-8")

    def test_no_tmp_residue_after_success(self, tmp_path):
        atomic_write_bytes(str(tmp_path / "a"), b"x")
        assert not [name for name in os.listdir(tmp_path)
                    if name.endswith(TMP_SUFFIX)]

    def test_failed_replace_leaves_original_and_no_tmp(self, tmp_path,
                                                      monkeypatch):
        path = str(tmp_path / "keep.json")
        atomic_write_bytes(path, b"original")

        def boom(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            atomic_write_bytes(path, b"clobber")
        monkeypatch.undo()
        assert open(path, "rb").read() == b"original"
        assert not [name for name in os.listdir(tmp_path)
                    if name.endswith(TMP_SUFFIX)]


class TestFsyncDir:
    def test_fsyncs_committed_rename_durably(self, tmp_path, monkeypatch):
        """``fsync=True`` must fsync the *directory* after the replace —
        file-content fsync alone does not persist the rename."""
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd)))
        atomic_write_bytes(str(tmp_path / "doc.json"), b"x", fsync=True)
        # One fsync for the payload, one for the directory entry.
        assert len(synced) == 2

    def test_tolerates_missing_file_and_real_directory_targets(self,
                                                               tmp_path):
        fsync_dir(str(tmp_path / "nope"))
        (tmp_path / "plain.txt").write_bytes(b"")
        fsync_dir(str(tmp_path / "plain.txt"))
        fsync_dir(str(tmp_path))


class TestOrphanSweep:
    def test_sweeps_recursively_and_counts(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "a.tmp").write_bytes(b"")
        (tmp_path / "sub" / "b.tmp").write_bytes(b"")
        (tmp_path / "keep.json").write_bytes(b"{}")
        assert sweep_orphan_tmp(str(tmp_path)) == 2
        assert (tmp_path / "keep.json").exists()
        assert not (tmp_path / "a.tmp").exists()

    def test_missing_directory_is_zero(self, tmp_path):
        assert sweep_orphan_tmp(str(tmp_path / "nope")) == 0


class TestResultCacheUsesIdiom:
    """Satellite: the engine cache rides the extracted helpers."""

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        cache.put("k1", {"value": 7})
        assert cache.get("k1") == {"value": 7}
        assert not [name for name in os.listdir(tmp_path)
                    if name.endswith(TMP_SUFFIX)]

    def test_clear_sweeps_orphans(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        cache.put("k1", {"value": 7})
        (tmp_path / "orphan.tmp").write_bytes(b"half-written")
        cache.clear()
        assert not (tmp_path / "orphan.tmp").exists()
        assert cache.get("k1") is None
