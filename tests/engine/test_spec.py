"""Unit tests: spec expansion, seed derivation, canonical hashing."""

import json
import math
from dataclasses import dataclass

import pytest

from repro.engine.canon import canonical_json, content_hash, to_jsonable
from repro.engine.spec import (
    ExperimentSpec,
    TrialContext,
    derive_seed,
    parse_sweep,
)


def _echo(ctx: TrialContext) -> dict:
    return dict(ctx.params)


def make_spec(**overrides) -> ExperimentSpec:
    fields = dict(
        name="unit",
        title="unit spec",
        source="test",
        trial=_echo,
        grid={"mode": ["a", "b"], "level": [1, 2, 3]},
        defaults={"duration_s": 10.0, "seed": 42},
        short={"duration_s": 1.0},
        seed_param="seed",
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


class TestExpand:
    def test_cartesian_product_in_sorted_axis_order(self):
        plans = make_spec().expand()
        assert len(plans) == 6
        # Axes iterate sorted by name: level before mode.
        assert [(p.params["level"], p.params["mode"]) for p in plans] == [
            (1, "a"), (1, "b"), (2, "a"), (2, "b"), (3, "a"), (3, "b")]
        for plan in plans:
            assert plan.params["duration_s"] == 10.0

    def test_short_overrides_scalars_and_axes(self):
        spec = make_spec(short={"duration_s": 1.0, "level": [1]})
        plans = spec.expand(short=True)
        assert len(plans) == 2
        assert all(p.params["duration_s"] == 1.0 for p in plans)
        assert all(p.params["level"] == 1 for p in plans)

    def test_sweep_replaces_axis_and_promotes_scalar(self):
        plans = make_spec().expand(sweep={"level": [9],
                                          "duration_s": [1.0, 2.0]})
        assert len(plans) == 4
        assert {p.params["duration_s"] for p in plans} == {1.0, 2.0}
        assert all(p.params["level"] == 9 for p in plans)

    def test_sweep_unknown_param_raises(self):
        with pytest.raises(KeyError, match="no parameter 'bogus'"):
            make_spec().expand(sweep={"bogus": [1]})

    def test_trial_ids_are_stable_and_unique(self):
        plans = make_spec().expand()
        ids = [p.trial_id for p in plans]
        assert len(set(ids)) == len(ids)
        assert ids[0] == "unit[level=1,mode=a]"

    def test_no_axes_id_is_bare_name(self):
        spec = make_spec(grid={}, defaults={"x": 1})
        plans = spec.expand()
        assert len(plans) == 1
        assert plans[0].trial_id == "unit"


class TestSeeds:
    def test_no_base_seed_keeps_reference_seed(self):
        for plan in make_spec().expand():
            assert plan.seed == 42
            assert plan.params["seed"] == 42

    def test_unseeded_spec_gets_zero(self):
        spec = make_spec(seed_param=None,
                         defaults={"duration_s": 10.0})
        assert all(p.seed == 0 for p in spec.expand())

    def test_base_seed_derives_distinct_per_trial(self):
        plans = make_spec().expand(base_seed=7)
        seeds = [p.seed for p in plans]
        assert len(set(seeds)) == len(seeds)
        for plan in plans:
            assert 1 <= plan.seed < 2 ** 31
            assert plan.params["seed"] == plan.seed

    def test_derived_seed_is_pure_function(self):
        params = {"mode": "a", "level": 1, "duration_s": 10.0}
        assert derive_seed(7, "unit", params) == derive_seed(7, "unit",
                                                             dict(params))
        assert derive_seed(7, "unit", params) != derive_seed(8, "unit",
                                                             params)
        assert derive_seed(7, "unit", params) != derive_seed(7, "other",
                                                             params)

    def test_base_seed_reproducible_across_expansions(self):
        a = make_spec().expand(base_seed=123)
        b = make_spec().expand(base_seed=123)
        assert [p.seed for p in a] == [p.seed for p in b]


class TestCacheKey:
    def test_key_covers_params_seed_and_version(self):
        spec = make_spec()
        plan = spec.expand()[0]
        key = plan.cache_key(spec)
        assert key == plan.cache_key(spec)
        bumped = make_spec(spec_version=2)
        assert plan.cache_key(bumped) != key
        other = spec.expand(base_seed=5)[0]
        assert other.cache_key(spec) != key


class TestParseSweep:
    def test_coerces_to_template_types(self):
        spec = make_spec(defaults={"duration_s": 10.0, "seed": 42,
                                   "enabled": True, "label": "x"})
        sweep = parse_sweep(spec, ["duration_s=1,2.5", "seed=9",
                                   "enabled=true,false", "label=a,b",
                                   "mode=a"])
        assert sweep["duration_s"] == [1.0, 2.5]
        assert sweep["seed"] == [9]
        assert sweep["enabled"] == [True, False]
        assert sweep["label"] == ["a", "b"]
        assert sweep["mode"] == ["a"]

    def test_rejects_unknown_and_malformed(self):
        spec = make_spec()
        with pytest.raises(KeyError):
            parse_sweep(spec, ["bogus=1"])
        with pytest.raises(ValueError):
            parse_sweep(spec, ["no-equals"])
        with pytest.raises(ValueError):
            parse_sweep(spec, ["enabled=maybe"]) if "enabled" in \
                spec.defaults else parse_sweep(spec, ["seed="])


@dataclass
class _Point:
    x: int
    y: float


class TestCanon:
    def test_dataclasses_tuples_sets_normalize(self):
        value = to_jsonable({"p": _Point(1, 2.0), "t": (1, 2),
                             "s": {3, 1, 2}})
        assert value == {"p": {"x": 1, "y": 2.0}, "t": [1, 2],
                         "s": [1, 2, 3]}

    def test_non_finite_floats_become_strings(self):
        assert to_jsonable(float("nan")) == "nan"
        assert to_jsonable(math.inf) == "inf"
        assert to_jsonable(-math.inf) == "-inf"

    def test_canonical_json_is_key_order_independent(self):
        a = canonical_json({"b": 1, "a": [1, 2]})
        b = canonical_json({"a": [1, 2], "b": 1})
        assert a == b
        assert json.loads(a) == {"a": [1, 2], "b": 1}

    def test_content_hash_stability(self):
        payload = {"spec": "unit", "params": {"mode": "a"}}
        assert content_hash(payload) == content_hash(dict(payload))
        assert content_hash(payload) != content_hash(
            {"spec": "unit", "params": {"mode": "b"}})

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())
