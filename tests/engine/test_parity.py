"""Differential tests: each ported spec reproduces its legacy runner
exactly (same parameters + same seed => same numbers), and same-seed
engine runs are deterministic.

Every comparison canonicalizes both sides through the same
``to_jsonable`` the runner applies, so a drift in any field — not just
the headline numbers — fails loudly.
"""

from repro.engine import canonical_json, run_experiment, to_jsonable


def _canon(value) -> str:
    return canonical_json(to_jsonable(value))


class TestSpecLegacyParity:
    def test_table2_matches_resource_model(self):
        from repro.experiments.table2_resources import PROGRAMS, run_table2
        run = run_experiment("table2")
        for program in PROGRAMS:
            assert _canon(run.result_for(program=program)) == \
                _canon(run_table2(program))

    def test_table3_matches_legacy_runner(self):
        from repro.experiments.table3_scalability import run_table3
        run = run_experiment("table3", short=True)
        assert _canon(run.only()) == _canon(run_table3(m=9, degree=4,
                                                       seed=1))

    def test_fig20_matches_legacy_runner(self):
        from repro.experiments.fig20_kmp import OPS, run_kmp_rtt
        run = run_experiment("fig20", short=True)
        legacy = run_kmp_rtt(repeats=3, seed=3)
        expected = {"rtts": legacy.rtts, "footprint": legacy.footprint,
                    "mean_ms": {op: legacy.mean_ms(op) for op in OPS}}
        assert _canon(run.only()) == _canon(expected)

    def test_fig21_matches_legacy_runner(self):
        from repro.experiments.fig21_multihop import run_multihop
        run = run_experiment("fig21", short=True)
        assert len(run.trials) == 4
        for trial in run.trials:
            legacy = run_multihop(trial.params["hops"],
                                  trial.params["with_p4auth"],
                                  num_probes=10, spacing_s=0.005)
            expected = {
                "num_switches": legacy.num_switches,
                "with_p4auth": legacy.with_p4auth,
                "mean_traversal_s": legacy.mean_traversal_s,
                "traversal_times_s": legacy.traversal_times_s,
            }
            assert _canon(trial.result) == _canon(expected)

    def test_int_matches_legacy_runner(self):
        from repro.experiments.int_manipulation import run_int_manipulation
        run = run_experiment("int", short=True)
        for trial in run.trials:
            legacy = run_int_manipulation(trial.params["mode"],
                                          num_probes=10)
            assert _canon(trial.result) == _canon(legacy)

    def test_aggregation_matches_legacy_runner(self):
        from repro.experiments.attack2_aggregation import run_aggregation
        run = run_experiment("aggregation", short=True)
        for trial in run.trials:
            legacy = run_aggregation(trial.params["mode"], chunks=8)
            assert _canon(trial.result) == _canon(legacy)

    def test_chaos_spec_matches_scenario_runner(self):
        from repro.faults.scenarios import report_to_dict, run_scenario
        run = run_experiment("kmp-blackout")
        legacy = run_scenario("kmp-blackout", seed=1, duration_s=1.5)
        assert _canon(run.only()) == _canon(report_to_dict(legacy))


class TestDeterminism:
    def test_same_seed_same_results(self):
        first = run_experiment("aggregation", short=True, base_seed=77)
        second = run_experiment("aggregation", short=True, base_seed=77)
        assert _canon([t.as_artifact_entry() for t in first.trials]) == \
            _canon([t.as_artifact_entry() for t in second.trials])

    def test_base_seed_changes_seeded_results(self):
        a = run_experiment("table3", short=True, base_seed=1)
        b = run_experiment("table3", short=True, base_seed=2)
        assert a.trials[0].seed != b.trials[0].seed
