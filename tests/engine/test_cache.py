"""ResultCache hardening: corrupt-entry eviction and tmp-file sweeping.

The cache must be self-healing: a truncated or garbled entry (torn
write, disk fault) is deleted the first time it fails to parse, instead
of being re-read and re-failed on every future run, and ``clear()``
sweeps the ``*.tmp`` droppings a SIGKILLed writer can leave behind.
"""

import json
import os

from repro.engine.cache import ResultCache


def _entry_path(cache: ResultCache, key: str) -> str:
    return cache._path(key)


def test_round_trip(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    cache.put("a" * 16, {"x": 1})
    assert cache.get("a" * 16) == {"x": 1}
    assert (cache.hits, cache.misses, cache.evictions) == (1, 0, 0)


def test_corrupt_entry_is_evicted_on_read(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    key = "b" * 16
    cache.put(key, {"x": 1})
    path = _entry_path(cache, key)
    with open(path, "w") as handle:
        handle.write('{"x": 1')  # truncated JSON
    assert cache.get(key) is None
    assert cache.evictions == 1
    # The poisoned file is gone: the next read is a plain (cheap) miss,
    # not another parse failure ...
    assert not os.path.exists(path)
    assert cache.get(key) is None
    assert cache.evictions == 1
    # ... and a re-put fully heals the entry.
    cache.put(key, {"x": 2})
    assert cache.get(key) == {"x": 2}


def test_missing_entry_is_a_miss_without_eviction(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    assert cache.get("c" * 16) is None
    assert cache.misses == 1
    assert cache.evictions == 0


def test_clear_sweeps_orphaned_tmp_files(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    cache.put("d" * 16, {"x": 1})
    # Simulate a writer killed between mkstemp and the atomic rename.
    subdir = os.path.dirname(_entry_path(cache, "d" * 16))
    orphan = os.path.join(subdir, "tmpabc123.tmp")
    with open(orphan, "w") as handle:
        json.dump({"half": "written"}, handle)
    removed = cache.clear()
    assert removed == 1  # orphans are swept but not counted as entries
    assert not os.path.exists(orphan)
    assert cache.get("d" * 16) is None


def test_clear_on_missing_root_is_a_noop(tmp_path):
    cache = ResultCache(str(tmp_path / "nonexistent"))
    assert cache.clear() == 0
