"""CLI tests for the engine front-end: run / list / report / listing."""

import json
import os

import pytest

from repro.__main__ import main
from repro.engine import load_artifact, validate_artifact


class TestListing:
    def test_no_arguments_lists_registry(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "Registered experiments" in out
        for name in ("fig17", "table2", "kmp-blackout", "lossy-fig17"):
            assert name in out

    def test_list_subcommand(self, capsys):
        assert main(["list"]) == 0
        assert "Registered experiments" in capsys.readouterr().out

    def test_listing_usage_names_every_front_end(self, capsys):
        """The bare listing is the discovery surface: it must name the
        engine subcommands alongside `serve` with consistent exit codes
        (0 informational here, 2 for the unknown-command path below)."""
        assert main([]) == 0
        out = capsys.readouterr().out
        for command in ("run", "report", "serve", "verify", "list"):
            assert command in out
        assert "cdp_service_load" in out

    def test_unknown_subcommand_listing_also_names_serve(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["not-a-command"])
        assert excinfo.value.code == 2
        assert "serve" in capsys.readouterr().err

    def test_unknown_command_lists_and_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["not-a-command"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown command" in err
        assert "Registered experiments" in err

    def test_run_unknown_experiment_lists_and_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig99"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "Registered experiments" in err

    def test_run_bare_is_informational_and_exits_0(self, capsys):
        assert main(["run"]) == 0
        out = capsys.readouterr().out
        assert "Registered experiments" in out


class TestRun:
    def test_run_emits_valid_artifact(self, tmp_path, capsys):
        assert main(["run", "table2", "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Hardware resource overhead" in out
        path = tmp_path / "BENCH_table2.json"
        assert path.exists()
        doc = load_artifact(str(path))
        validate_artifact(doc)
        assert [t["params"]["program"] for t in doc["trials"]] == \
            ["baseline", "p4auth"]

    def test_run_sweep_short_and_workers(self, tmp_path, capsys):
        assert main(["run", "fig21", "--sweep", "hops=2,3",
                     "--short", "--workers", "2",
                     "--out-dir", str(tmp_path)]) == 0
        doc = load_artifact(str(tmp_path / "BENCH_fig21.json"))
        validate_artifact(doc)
        assert len(doc["trials"]) == 4
        assert {t["params"]["hops"] for t in doc["trials"]} == {2, 3}
        assert doc["run_meta"]["workers"] == 2
        assert capsys.readouterr().out  # table printed

    def test_run_cache_round_trip(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["run", "table2", "--cache", "--cache-dir", cache_dir,
                "--out-dir", ""]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "2 executed, 0 cached" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 executed, 2 cached" in second

    def test_run_base_seed_recorded_in_artifact(self, tmp_path):
        assert main(["run", "table3", "--short", "--seed", "9",
                     "--out-dir", str(tmp_path)]) == 0
        doc = load_artifact(str(tmp_path / "BENCH_table3.json"))
        assert doc["base_seed"] == 9
        assert doc["trials"][0]["seed"] == doc["trials"][0]["params"]["seed"]


class TestReport:
    def test_report_renders_artifacts(self, tmp_path, capsys, monkeypatch):
        assert main(["run", "table2", "--out-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["report", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "table2 — Hardware resource overhead" in out
        assert "51.4" in out

    def test_report_to_file(self, tmp_path, capsys):
        assert main(["run", "table2", "--out-dir", str(tmp_path)]) == 0
        out_file = tmp_path / "report.md"
        assert main(["report", "--dir", str(tmp_path),
                     "--out", str(out_file)]) == 0
        assert "benchmark artifacts" in out_file.read_text()

    def test_report_empty_directory(self, tmp_path, capsys):
        assert main(["report", "--dir", str(tmp_path)]) == 0
        assert "No `BENCH_*.json` artifacts" in capsys.readouterr().out

    def test_report_skips_invalid_artifacts_with_warning(
            self, tmp_path, capsys):
        assert main(["run", "table2", "--out-dir", str(tmp_path)]) == 0
        (tmp_path / "BENCH_corrupt.json").write_text("{not json")
        (tmp_path / "BENCH_badschema.json").write_text(
            json.dumps({"schema": "other/9"}))
        capsys.readouterr()
        assert main(["report", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        # The valid artifact still renders; the broken ones are listed.
        assert "table2 — Hardware resource overhead" in out
        assert "Skipped artifacts" in out
        assert "BENCH_corrupt.json" in out
        assert "BENCH_badschema.json" in out
