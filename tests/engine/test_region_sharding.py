"""Region -> worker sharding: ring assignment and the process pool."""

import pytest

from repro.engine.runner import assign_regions, run_region_tasks


def describe(region_id):
    """Module-level task (picklable for the worker pool)."""
    return {"region": region_id, "tag": region_id.upper()}


def explode(region_id):
    raise RuntimeError(f"boom in {region_id}")


class TestAssignRegions:
    def test_no_worker_idles_at_equal_counts(self):
        assignment = assign_regions([f"r{i}" for i in range(4)], workers=4)
        assert sorted(len(g) for g in assignment.values()) == [1, 1, 1, 1]

    def test_bounded_load_at_two_to_one(self):
        assignment = assign_regions([f"r{i}" for i in range(8)], workers=4)
        assert sorted(len(g) for g in assignment.values()) == [2, 2, 2, 2]

    def test_partition_covers_every_region_once(self):
        regions = [f"r{i}" for i in range(7)]
        assignment = assign_regions(regions, workers=3)
        owned = sorted(r for group in assignment.values() for r in group)
        assert owned == sorted(regions)

    def test_deterministic(self):
        regions = [f"r{i}" for i in range(5)]
        assert assign_regions(regions, 3) == assign_regions(regions, 3)
        # Input order must not matter.
        assert assign_regions(list(reversed(regions)), 3) \
            == assign_regions(regions, 3)

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            assign_regions(["r0"], workers=0)


class TestRunRegionTasks:
    def test_results_keyed_in_sorted_order(self):
        out = run_region_tasks(describe, ["r2", "r0", "r1"], workers=1)
        assert list(out) == ["r0", "r1", "r2"]
        assert out["r1"] == {"region": "r1", "tag": "R1"}

    def test_parallel_results_identical_to_inline(self):
        regions = [f"r{i}" for i in range(6)]
        inline = run_region_tasks(describe, regions, workers=1)
        pooled = run_region_tasks(describe, regions, workers=3)
        assert pooled == inline

    def test_more_workers_than_regions(self):
        regions = ["r0", "r1"]
        assert run_region_tasks(describe, regions, workers=8) \
            == run_region_tasks(describe, regions, workers=1)

    def test_duplicate_region_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_region_tasks(describe, ["r0", "r0"], workers=1)

    def test_task_errors_propagate(self):
        with pytest.raises(RuntimeError, match="boom"):
            run_region_tasks(explode, ["r0"], workers=1)
        with pytest.raises(RuntimeError, match="boom"):
            run_region_tasks(explode, ["r0", "r1", "r2"], workers=2)

    def test_daemonic_process_degrades_to_inline(self, monkeypatch):
        """Inside an engine pool worker (daemonic) forking again is
        illegal; the call must fall back to inline execution."""
        import repro.engine.runner as runner_module

        class FakeProcess:
            daemon = True

        monkeypatch.setattr(runner_module.multiprocessing,
                            "current_process", lambda: FakeProcess())
        forbidden_calls = []
        monkeypatch.setattr(
            runner_module.multiprocessing, "get_context",
            lambda *a, **k: forbidden_calls.append(a) or None)
        out = run_region_tasks(describe, ["r0", "r1", "r2"], workers=4)
        assert list(out) == ["r0", "r1", "r2"]
        assert forbidden_calls == []
