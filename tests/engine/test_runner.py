"""Runner tests: sharding identity, speedup, caching, artifacts, registry.

The synthetic specs used here are registered at import time so that
forked worker processes (which inherit this module) can look them up.
"""

import json
import os
import time

import pytest

from repro.crypto.prng import XorShiftPrng
from repro.engine import (
    ExperimentSpec,
    ResultCache,
    Runner,
    TrialContext,
    get_spec,
    load_artifact,
    register,
    run_experiment,
    spec_names,
    unregister,
    validate_artifact,
)

_EXECUTIONS = []  # in-process only: counts serial executions


def _prng_trial(ctx: TrialContext) -> dict:
    _EXECUTIONS.append(ctx.params["index"])
    prng = XorShiftPrng(ctx.seed + ctx.params["index"])
    return {"index": ctx.params["index"],
            "draws": [prng.uniform() for _ in range(4)]}


PRNG_SPEC = register(ExperimentSpec(
    name="_test-prng",
    title="synthetic seeded trial",
    source="test",
    trial=_prng_trial,
    grid={"index": list(range(8))},
    defaults={"seed": 5},
    seed_param="seed",
))


def _sleep_trial(ctx: TrialContext) -> dict:
    time.sleep(ctx.params["sleep_s"])
    return {"index": ctx.params["index"]}


SLEEP_SPEC = register(ExperimentSpec(
    name="_test-sleep",
    title="synthetic sleeping trial",
    source="test",
    trial=_sleep_trial,
    grid={"index": list(range(8))},
    defaults={"sleep_s": 0.3},
))


class TestShardingIdentity:
    def test_parallel_matches_serial_bit_for_bit(self):
        serial = run_experiment("_test-prng", workers=1, base_seed=11)
        parallel = run_experiment("_test-prng", workers=4, base_seed=11)
        assert len(serial.trials) == 8
        a = json.dumps([t.as_artifact_entry() for t in serial.trials],
                       sort_keys=True)
        b = json.dumps([t.as_artifact_entry() for t in parallel.trials],
                       sort_keys=True)
        assert a == b

    def test_artifact_documents_identical_outside_run_meta(self):
        serial = run_experiment("_test-prng", workers=1).document()
        parallel = run_experiment("_test-prng", workers=3).document()
        assert serial["run_meta"] != parallel["run_meta"]
        del serial["run_meta"], parallel["run_meta"]
        assert serial == parallel

    def test_four_workers_at_least_twice_as_fast(self):
        started = time.perf_counter()
        run_experiment("_test-sleep", workers=1)
        serial_s = time.perf_counter() - started

        started = time.perf_counter()
        run_experiment("_test-sleep", workers=4)
        parallel_s = time.perf_counter() - started

        assert serial_s >= 8 * 0.3
        assert serial_s > 2 * parallel_s, (
            f"serial {serial_s:.2f}s vs 4-worker {parallel_s:.2f}s")


class TestCache:
    def test_second_run_replays_from_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        _EXECUTIONS.clear()
        first = run_experiment("_test-prng", cache=cache)
        assert len(_EXECUTIONS) == 8
        assert first.run_meta["executed"] == 8

        second = run_experiment("_test-prng", cache=cache)
        assert len(_EXECUTIONS) == 8  # nothing re-executed
        assert second.run_meta["executed"] == 0
        assert second.run_meta["cache_hits"] == 8
        assert second.results() == first.results()

    def test_different_seed_misses_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        run_experiment("_test-prng", cache=cache)
        rerun = run_experiment("_test-prng", cache=cache, base_seed=2)
        assert rerun.run_meta["cache_hits"] == 0

    def test_spec_version_invalidates_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        run_experiment("_test-prng", cache=cache)
        bumped = ExperimentSpec(
            name=PRNG_SPEC.name, title=PRNG_SPEC.title,
            source=PRNG_SPEC.source, trial=PRNG_SPEC.trial,
            grid=PRNG_SPEC.grid, defaults=PRNG_SPEC.defaults,
            seed_param=PRNG_SPEC.seed_param, spec_version=2)
        runner = Runner(cache=cache)
        rerun = runner.run(bumped)
        assert rerun.run_meta["cache_hits"] == 0


class TestArtifacts:
    def test_run_emits_schema_valid_artifact(self, tmp_path):
        run = run_experiment("_test-prng", out_dir=str(tmp_path))
        assert run.artifact_path == str(tmp_path / "BENCH__test_prng.json")
        doc = load_artifact(run.artifact_path)
        validate_artifact(doc)
        assert doc["schema"] == "repro-bench/1"
        assert doc["experiment"] == "_test-prng"
        assert len(doc["trials"]) == 8
        for trial in doc["trials"]:
            assert set(trial) == {"id", "params", "seed", "result"}

    def test_validate_rejects_corrupt_documents(self, tmp_path):
        run = run_experiment("_test-prng", out_dir=str(tmp_path))
        doc = load_artifact(run.artifact_path)
        bad = dict(doc, schema="other/9")
        with pytest.raises(ValueError):
            validate_artifact(bad)
        bad = dict(doc, trials=[])
        with pytest.raises(ValueError):
            validate_artifact(bad)
        bad = dict(doc, trials=[doc["trials"][0], doc["trials"][0]])
        with pytest.raises(ValueError):
            validate_artifact(bad)


class TestRunnerMisc:
    def test_rejects_non_mapping_trial_result(self):
        def bad_trial(ctx):
            return [1, 2, 3]

        spec = ExperimentSpec(name="_test-bad", title="bad", source="test",
                              trial=bad_trial)
        with pytest.raises(TypeError, match="must return a mapping"):
            Runner().run(spec)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            Runner(workers=0)

    def test_trace_dir_writes_per_trial_jsonl(self, tmp_path):
        def tel_trial(ctx):
            return {"have_telemetry": ctx.telemetry is not None}

        spec = ExperimentSpec(name="_test-tel", title="tel", source="test",
                              trial=tel_trial, supports_telemetry=True)
        run = Runner(trace_dir=str(tmp_path)).run(spec)
        assert run.only() == {"have_telemetry": True}
        assert os.path.exists(tmp_path / "_test-tel.jsonl")


class TestRegistry:
    def test_catalog_contains_every_figure_table_and_scenario(self):
        names = set(spec_names())
        assert {"fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
                "table1", "table2", "table3", "aggregation", "fct", "int",
                "kmp-blackout", "crash-restart", "lossy-fig17"} <= names

    def test_get_spec_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="table2"):
            get_spec("no-such-experiment")

    def test_register_is_idempotent_and_unregister_works(self):
        spec = ExperimentSpec(name="_test-tmp", title="t", source="test",
                              trial=_prng_trial)
        assert register(spec) is spec
        assert register(spec) is spec
        assert get_spec("_test-tmp") is spec
        unregister("_test-tmp")
        with pytest.raises(KeyError):
            get_spec("_test-tmp")
