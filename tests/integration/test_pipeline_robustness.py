"""Fuzz-style robustness: arbitrary inputs never crash or authenticate.

The verify stage faces untrusted input on every port.  These tests feed
it randomized packets — random header combinations, random field values,
random digests — and assert two invariants:

1. the pipeline never raises (hostile input cannot wedge the switch);
2. nothing unauthenticated ever reaches a register write or the
   application stages behind the P4Auth boundary.
"""

from hypothesis import given, settings, strategies as st

from repro.core.auth_dataplane import P4AuthConfig, P4AuthDataplane
from repro.core.constants import (
    ADHKD_HEADER,
    ALERT_HEADER,
    EAK_HEADER,
    KEYCTL_HEADER,
    P4AUTH,
    P4AUTH_HEADER,
    REG_OP_HEADER,
)
from repro.dataplane.packet import Packet
from repro.dataplane.switch import DataplaneSwitch

PAYLOAD_TYPES = {
    "reg_op": REG_OP_HEADER,
    "eak": EAK_HEADER,
    "adhkd": ADHKD_HEADER,
    "keyctl": KEYCTL_HEADER,
    "alert": ALERT_HEADER,
}


def fresh_switch():
    switch = DataplaneSwitch("s1", num_ports=4)
    switch.registers.define("app", 64, 4)
    dataplane = P4AuthDataplane(
        switch, k_seed=0xF0F0,
        config=P4AuthConfig(protected_headers={"hula_probe"})).install()
    dataplane.map_register("app")
    dataplane.keys.set_local_key(0x10CA1)
    dataplane.keys.set_port_key(1, 0x9991)
    return switch, dataplane


@st.composite
def hostile_packets(draw):
    packet = Packet(payload=draw(st.binary(max_size=32)))
    if draw(st.booleans()):
        values = {
            fname: draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
            for fname, bits in P4AUTH_HEADER.fields
        }
        packet.push(P4AUTH, P4AUTH_HEADER.instantiate(**values))
    payload_name = draw(st.sampled_from(sorted(PAYLOAD_TYPES) + ["none"]))
    if payload_name != "none":
        header_type = PAYLOAD_TYPES[payload_name]
        values = {
            fname: draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
            for fname, bits in header_type.fields
        }
        packet.push(payload_name, header_type.instantiate(**values))
    return packet


@given(hostile_packets(), st.integers(min_value=0, max_value=4))
@settings(max_examples=200, deadline=None)
def test_hostile_packets_never_crash_or_write(packet, port):
    switch, dataplane = fresh_switch()
    before = switch.registers.get("app").snapshot()
    switch.process(packet, port)  # must not raise
    # A random digest (2^-32 forgery odds) must never drive a write.
    assert switch.registers.get("app").snapshot() == before


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
@settings(max_examples=100, deadline=None)
def test_random_digests_never_authenticate(digest):
    from repro.core.messages import build_reg_write_request
    switch, dataplane = fresh_switch()
    forged = build_reg_write_request(
        switch.registers.id_of("app"), 0, 0x41, 1)
    forged.get(P4AUTH)["digest"] = digest
    switch.process(forged, 0)
    assert switch.registers.get("app").read(0) == 0
    assert dataplane.stats.regops_served == 0


@given(st.binary(min_size=0, max_size=64),
       st.integers(min_value=0, max_value=4))
@settings(max_examples=100, deadline=None)
def test_raw_garbage_passes_through_harmlessly(payload, port):
    switch, dataplane = fresh_switch()
    switch.process(Packet(payload=payload), port)
    assert dataplane.stats.regops_served == 0
