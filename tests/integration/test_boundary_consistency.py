"""Boundary consistency under kmp-blackout chaos.

The fleet-scale acceptance story is easy when everything works; this is
the hostile version.  Every region-0 *boundary* switch loses its control
channel for the duration of a coordinated fleet rollover:

- the rollover must still *resolve* (bounded KMP retries abandon the
  blacked-out ops — a dead management link cannot hang the fleet);
- the two-version invariant must hold at every lockstep barrier — the
  blacked-out switches stay one rollover epoch behind their cross-region
  neighbours, never more;
- no forgery evidence may appear (a blackout drops messages, it does not
  sign them);
- after the partition heals, one regional re-roll catches the stragglers
  up and authenticated writes across the boundary succeed with exact
  sequence agreement.
"""

import pytest

from repro.experiments.fleet_scale import build_fleet_deployment
from repro.faults import ChannelBlackout, FaultInjector, FaultPlan

M, REGIONS, DEGREE, SEED = 20, 2, 4, 1
ROUND_DEADLINE_S = 30.0


@pytest.fixture
def fleet():
    world, extras, hier, controllers = build_fleet_deployment(
        M, REGIONS, degree=DEGREE, seed=SEED)
    bootstrap = hier.bootstrap_fleet(deadline_s=ROUND_DEADLINE_S)
    assert bootstrap["converged"] and not bootstrap["failed"]
    return world, extras, hier, controllers


def r0_boundary_switches(world):
    switches = set()
    for link in world.boundary_links:
        for region_id, switch in ((link.region_a, link.switch_a),
                                  (link.region_b, link.switch_b)):
            if region_id == "r0":
                switches.add(switch)
    return sorted(switches)


def test_rollover_survives_boundary_blackout(fleet):
    world, _extras, hier, controllers = fleet
    victims = r0_boundary_switches(world)
    assert victims, "fabric must have r0 boundary switches"

    # Black out the victims' control channels for a window that outlasts
    # the KMP's full retry budget (3 attempts, <0.2s virtual), so every
    # op issued into it is *abandoned*, not delayed.
    start = world.now
    plan = FaultPlan(seed=SEED, blackouts=[
        ChannelBlackout(switch, start_s=start, end_s=start + 2.0)
        for switch in victims])
    injector = FaultInjector(world.region("r0").net, plan).arm()

    rollover = hier.rollover_fleet(deadline_s=ROUND_DEADLINE_S)

    # Resolved, not hung: the round converged even though the blacked-out
    # switches' local/port updates were abandoned.
    assert rollover["converged"]
    assert rollover["failed"] > 0
    assert injector.stats.count("blackout") > 0

    # The two-version invariant held at every barrier of the round and
    # still holds now: victims sit exactly one epoch behind.
    assert rollover["boundary_violations"] == 0
    assert hier.check_two_version_invariant() == []
    for switch in victims:
        assert hier.authorities["r0"].rollover_epoch(switch) == 0
    for switch in world.region("r1").switches:
        assert hier.authorities["r1"].rollover_epoch(switch) == 1

    # A blackout drops messages; it must not manufacture forgery
    # evidence.  (seq divergence may be positive — abandoned controller
    # sends consumed seqs the DP never saw — but never negative.)
    report = hier.consistency_report()
    assert report["seq_divergence_min"] >= 0

    # --- partition heals -------------------------------------------------
    injector.disarm()

    # One *regional* re-roll catches region 0 up.  (A second fleet-wide
    # round would transiently put healthy epoch-2 switches across a
    # boundary from epoch-0 stragglers — gap 2 — which is exactly what
    # the invariant forbids; recovery is per-region by design.)
    done = []
    hier.authorities["r0"].rollover(on_done=done.append)
    assert world.run_until(lambda: len(done) == 1,
                           deadline=world.now + ROUND_DEADLINE_S)
    assert done[0].failed == 0
    assert hier.check_two_version_invariant() == []
    for switch in victims:
        assert hier.authorities["r0"].rollover_epoch(switch) == 1
    assert all(gap["gap"] <= 1 for gap in hier.boundary_epoch_gaps())

    # Authenticated writes across the healed boundary, under the rolled
    # keys: all verified, exact reg-op sequence agreement, no mailbox
    # leak.
    state = {"ok": 0, "failed": 0}

    def on_write(ok, _value):
        state["ok" if ok else "failed"] += 1

    boundary = sorted({(link.region_a, link.switch_a)
                       for link in world.boundary_links}
                      | {(link.region_b, link.switch_b)
                         for link in world.boundary_links})
    for region_id, switch in boundary:
        controllers[region_id].write_register(switch, "target", 0,
                                              0xBEEF, on_write)
    world.run_until(lambda: world.pending() == 0,
                    deadline=world.now + 1.0)
    assert state == {"ok": len(boundary), "failed": 0}
    divergence = hier.seq_divergence()
    assert all(divergence[switch] == 0 for _region, switch in boundary)
    report = hier.consistency_report()
    assert report["seq_divergence_min"] >= 0
    assert not any(report["tamper_indicators"].values())
    assert world.mailbox.posted == world.mailbox.delivered


def test_clean_fleet_matches_chaos_free_baseline(fleet):
    """Same fleet, no injector: the baseline the chaos run degrades
    from.  Zero failures, zero gap everywhere, divergence exactly 0 on
    boundary switches after a write round."""
    world, _extras, hier, controllers = fleet
    rollover = hier.rollover_fleet(deadline_s=ROUND_DEADLINE_S)
    assert rollover["converged"] and not rollover["failed"]
    assert rollover["boundary_violations"] == 0
    assert all(gap["gap"] == 0 for gap in hier.boundary_epoch_gaps())
    state = {"ok": 0, "failed": 0}
    for link in world.boundary_links:
        controllers[link.region_a].write_register(
            link.switch_a, "target", 0, 0xFEED,
            lambda ok, _v: state.__setitem__(
                "ok" if ok else "failed", state["ok" if ok else "failed"] + 1))
    world.run_until(lambda: world.pending() == 0,
                    deadline=world.now + 1.0)
    assert state["failed"] == 0 and state["ok"] == len(world.boundary_links)
