"""Adversaries composed with fault injection (ISSUE 2 satellite).

The attack suite already shows each adversary is caught on a healthy
network; here the same adversaries act *mid-chaos* and must still be
100% rejected.  C-DP attacks compose with control-channel blackouts
(link faults never touch the control channel); the DP-DP probe attack
composes with loss/duplication/reordering on the real link.  Loss may
eat an attacker's packet (that is not a rejection), so every invariant
is phrased over the packets that actually arrived.
"""

from repro.attacks.control_plane import RegisterRequestTamperer, ReplayAttacker
from repro.attacks.link import ProbeFieldTamperer
from repro.core.constants import REG_OP
from repro.faults import ChannelBlackout, FaultInjector, FaultPlan, LinkFault
from repro.systems.hula import make_probe
from tests.conftest import Deployment


def test_tampered_writes_all_rejected_mid_chaos():
    """Every C-DP write the tamperer touches is rejected, while a
    blackout swallows part of the stream; the register never holds a
    forged value."""
    dep = Deployment(num_switches=1, registers=[("demo", 64, 16)])
    t0 = dep.sim.now
    plan = FaultPlan(seed=0xC4A05, blackouts=[
        ChannelBlackout("s1", t0 + 0.3, t0 + 0.6, direction="c->dp")])
    injector = FaultInjector(dep.net, plan).arm()
    tamperer = RegisterRequestTamperer(
        dep.controller.register_id("s1", "demo"),
        transform=lambda v: v ^ 0xBAD)
    tamperer.attach(dep.net.control_channels["s1"])
    outcomes = []

    def send_write(k=0):
        if k >= 40:
            return
        dep.controller.write_register("s1", "demo", k % 16, 0x2000 + k,
                                      lambda ok, v: outcomes.append(ok))
        dep.sim.schedule(0.02, send_write, k + 1)

    send_write()
    dep.run(2.0)
    injector.disarm()
    assert injector.stats.count("blackout") > 0  # chaos really composed
    modified = tamperer.stats.modified
    assert 0 < modified < 40  # blackout ate the rest before the tamperer
    # 100% rejection: not one tampered write was acknowledged...
    assert outcomes.count(True) == 0
    # ...every arriving one failed its digest...
    assert dep.dataplanes["s1"].stats.digest_fail_cdp == modified
    # ...and the ASIC never stored anything.
    demo = dep.switch("s1").registers.get("demo")
    assert all(demo.read(index) == 0 for index in range(16))


def test_replayed_writes_all_rejected_mid_chaos():
    """Validly-signed requests recorded earlier and re-injected at the
    CPU port mid-blackout are caught by the sequence window and never
    re-applied."""
    dep = Deployment(num_switches=1, registers=[("demo", 64, 16)])
    reg_id = dep.controller.register_id("s1", "demo")
    replayer = ReplayAttacker(
        lambda p: p.has(REG_OP) and p.get(REG_OP)["regId"] == reg_id)
    replayer.attach(dep.net.control_channels["s1"])
    # Record a few legitimate (signed) writes on a healthy channel.
    for k in range(4):
        dep.controller.write_register("s1", "demo", 0, 0x4000 + k)
    dep.run(0.5)
    assert replayer.stats.recorded >= 4
    final_legit = dep.switch("s1").registers.get("demo").read(0)

    # Blackout the response leg: the switch is cut off from the
    # controller while the attacker (who injects below the channel)
    # still reaches the CPU port.
    t0 = dep.sim.now
    plan = FaultPlan(seed=77, blackouts=[
        ChannelBlackout("s1", t0, t0 + 1.0, direction="dp->c")])
    injector = FaultInjector(dep.net, plan).arm()
    replays_before = dep.dataplanes["s1"].stats.replays_detected
    burst = sum(replayer.replay(dep.net, "s1") for _ in range(3))
    dep.run(1.0)
    injector.disarm()
    detected = dep.dataplanes["s1"].stats.replays_detected - replays_before
    assert burst == replayer.stats.injected == 12
    assert detected > 0
    # 100% rejection: state is exactly what the last legitimate write left.
    assert dep.switch("s1").registers.get("demo").read(0) == final_legit


def test_tampered_probes_all_rejected_mid_chaos():
    """DP-DP probes tampered on the wire never verify, even when the
    fault layer is simultaneously dropping, duplicating, and reordering
    the same link."""
    dep = Deployment(num_switches=2,
                     connect_pairs=[("s1", 1, "s2", 1)],
                     protected_headers=("hula_probe",))
    switch = dep.switch("s1")
    switch.pipeline.insert_stage(
        len(switch.pipeline.stage_names()) - 1, "app",
        lambda ctx: ctx.emit(1) if ctx.packet.has("hula_probe") else None)
    plan = FaultPlan(seed=5, link_faults=[
        LinkFault("drop", probability=0.1),
        LinkFault("duplicate", probability=0.1, delay_s=1e-4),
        LinkFault("reorder", probability=0.2, delay_s=2e-4),
    ])
    injector = FaultInjector(dep.net, plan).arm()
    tamperer = ProbeFieldTamperer("hula_probe", "path_util", 1)
    tamperer.attach(dep.net.link_between("s1", "s2"))
    node = dep.net.nodes["s1"]

    def send_probe(index=0):
        if index >= 30:
            return
        dep.sim.schedule(0.0, node.receive, make_probe(9, index, 5), 2)
        dep.sim.schedule(0.02, send_probe, index + 1)

    send_probe()
    dep.run(2.0)
    injector.disarm()
    stats = dep.dataplanes["s2"].stats
    assert injector.stats.total() > 0  # faults really fired on this link
    assert tamperer.stats.modified > 0
    # The tamperer rewrites every probe (taps run before the fault
    # shaper, so duplicates clone already-tampered packets): nothing
    # that arrived may verify, and everything that arrived must fail.
    assert stats.feedback_verified == 0
    assert stats.digest_fail_dpdp > 0
