"""Leaf-spine HULA protection and the CLI entry points."""

import pytest

from repro.attacks.link import ProbeFieldTamperer
from repro.core.auth_dataplane import P4AuthConfig, P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.net.topology import leaf_spine
from repro.systems.hula import (
    HulaDataplane,
    leaf_spine_hula_configs,
    make_data_packet,
    make_probe,
)


class TestLeafSpineHula:
    def build(self, protect=True):
        net, extras = leaf_spine(3, 2)
        sim = extras["sim"]
        configs = leaf_spine_hula_configs(3, 2)
        hulas = {name: HulaDataplane(net.switch(name), config).install()
                 for name, config in configs.items()}
        controller = None
        if protect:
            dataplanes = {}
            for index, name in enumerate(sorted(configs)):
                dataplanes[name] = P4AuthDataplane(
                    net.switch(name), k_seed=0x11E + index,
                    config=P4AuthConfig(protected_headers={"hula_probe"}),
                ).install()
            controller = P4AuthController(net)
            for dataplane in dataplanes.values():
                controller.provision(dataplane)
            controller.kmp.bootstrap_all()
            sim.run(until=1.0)
        return net, extras, hulas, controller

    def run_traffic(self, net, extras, duration_s=1.5):
        sim = extras["sim"]
        end = sim.now + duration_s

        def probes(round_index=0):
            if sim.now >= end:
                return
            for leaf_index in (1, 2, 3):
                extras["hosts"][f"leaf{leaf_index}"].send(
                    make_probe(leaf_index, round_index))
            sim.schedule(0.005, probes, round_index + 1)

        def data(seq=0):
            if sim.now >= end:
                return
            extras["hosts"]["leaf1"].send(make_data_packet(2, seq,
                                                           seq & 0xFFFF))
            sim.schedule(0.001, data, seq + 1)

        sim.schedule(0.0, probes)
        sim.schedule(0.02, data)
        sim.run(until=end)

    def test_unprotected_fabric_balances_and_delivers(self):
        net, extras, hulas, _ = self.build(protect=False)
        self.run_traffic(net, extras)
        delivered = len(extras["hosts"]["leaf2"].received)
        assert delivered > 1000

    def test_protected_fabric_delivers(self):
        net, extras, hulas, controller = self.build(protect=True)
        self.run_traffic(net, extras)
        delivered = len(extras["hosts"]["leaf2"].received)
        assert delivered > 1000
        assert len(controller.alerts) == 0  # no adversary, no noise

    def test_tampered_fabric_link_avoided(self):
        net, extras, hulas, controller = self.build(protect=True)
        adversary = ProbeFieldTamperer("hula_probe", "path_util",
                                       lambda util: (util + 7) % 101)
        adversary.attach(net.link_between("leaf2", "spine1"))
        self.run_traffic(net, extras)
        leaf1 = hulas["leaf1"]
        total = sum(leaf1.data_tx_per_port.values()) or 1
        # Port 3 on leaf1 is spine2; the healthy path takes everything.
        assert leaf1.data_tx_per_port.get(3, 0) / total > 0.9
        assert len(controller.alerts) > 0


class TestCli:
    def test_table2(self, capsys):
        from repro.__main__ import main
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "51.4%" in out and "Table II" in out

    def test_fig20(self, capsys):
        from repro.__main__ import main
        assert main(["fig20"]) == 0
        out = capsys.readouterr().out
        assert "local_init" in out and "port_update" in out

    def test_rejects_unknown_experiment(self):
        from repro.__main__ import main
        with pytest.raises(SystemExit):
            main(["fig99"])
