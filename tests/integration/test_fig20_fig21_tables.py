"""Integration: KMP RTTs (Fig 20), multihop overhead (Fig 21),
Table I impact matrix, and Table III scalability."""

import pytest

from repro.experiments.fig20_kmp import run_kmp_rtt
from repro.experiments.fig21_multihop import run_multihop
from repro.experiments.table1_impact import run_table1
from repro.experiments.table3_scalability import formulas, run_table3


@pytest.fixture(scope="module")
def kmp_rtt():
    return run_kmp_rtt(repeats=5)


class TestFig20:
    def test_init_in_1_to_2ms_band(self, kmp_rtt):
        assert 1.0 <= kmp_rtt.mean_ms("local_init") <= 2.0
        assert 1.0 <= kmp_rtt.mean_ms("port_init") <= 2.5

    def test_updates_under_a_millisecond(self, kmp_rtt):
        assert kmp_rtt.mean_ms("local_update") < 1.0
        assert kmp_rtt.mean_ms("port_update") < 1.0

    def test_port_init_is_slowest(self, kmp_rtt):
        others = ("local_init", "local_update", "port_update")
        assert all(kmp_rtt.mean_ms("port_init") > kmp_rtt.mean_ms(op)
                   for op in others)

    def test_port_update_beats_local_update(self, kmp_rtt):
        """3 messages beat 2 because DP-DP hops are far faster than C-DP
        hops (the paper's 'worth noting' observation)."""
        assert kmp_rtt.mean_ms("port_update") < kmp_rtt.mean_ms("local_update")

    def test_footprints_match_table3(self, kmp_rtt):
        assert kmp_rtt.footprint["local_init"] == (4, 104)
        assert kmp_rtt.footprint["port_init"] == (5, 138)
        assert kmp_rtt.footprint["local_update"] == (2, 60)
        assert kmp_rtt.footprint["port_update"] == (3, 78)


class TestFig21:
    @pytest.fixture(scope="class")
    def curve(self):
        rows = {}
        for hops in (2, 6, 10):
            base = run_multihop(hops, with_p4auth=False, num_probes=10)
            auth = run_multihop(hops, with_p4auth=True, num_probes=10)
            rows[hops] = (auth.mean_traversal_s / base.mean_traversal_s
                          - 1.0) * 100
        return rows

    def test_two_hop_overhead_near_1pct(self, curve):
        assert 0.5 < curve[2] < 1.5  # paper: 0.95%

    def test_ten_hop_overhead_near_6pct(self, curve):
        assert 5.0 < curve[10] < 7.0  # paper: 5.9%

    def test_overhead_grows_with_hops(self, curve):
        assert curve[2] < curve[6] < curve[10]

    def test_chain_requires_two_switches(self):
        with pytest.raises(ValueError):
            run_multihop(1, with_p4auth=False)


class TestTableI:
    @pytest.fixture(scope="class")
    def matrix(self):
        return run_table1().matrix

    def test_all_five_systems_covered(self, matrix):
        assert set(matrix) == {"blink", "silkroad", "netcache",
                               "flowradar", "netwarden"}

    def test_every_attack_has_impact(self, matrix):
        # Blink: delivery collapses.
        assert (matrix["blink"]["attack"].impact_value
                < matrix["blink"]["baseline"].impact_value - 0.2)
        # SilkRoad: connections break.
        assert matrix["silkroad"]["attack"].impact_value > 0.2
        # NetCache: latency inflates.
        assert (matrix["netcache"]["attack"].impact_value
                > matrix["netcache"]["baseline"].impact_value + 5)
        # FlowRadar: counters silently wrong.
        assert matrix["flowradar"]["attack"].impact_value > 0
        assert matrix["flowradar"]["attack"].state_poisoned
        # NetWarden: covert channels evade.
        assert matrix["netwarden"]["attack"].impact_value == 0.0

    def test_p4auth_restores_or_detects(self, matrix):
        for system, by_mode in matrix.items():
            assert by_mode["p4auth"].detected, f"{system} did not detect"
            assert not by_mode["p4auth"].state_poisoned, system

    def test_p4auth_preserves_function(self, matrix):
        assert matrix["blink"]["p4auth"].impact_value == pytest.approx(
            matrix["blink"]["baseline"].impact_value, abs=0.05)
        assert matrix["silkroad"]["p4auth"].impact_value == 0.0
        assert matrix["netwarden"]["p4auth"].impact_value == 1.0


class TestTableIII:
    def test_formulas_at_paper_point(self):
        values = formulas(25, 50)
        assert values["init_messages"] == 350
        assert values["init_bytes"] == 9500
        # Known paper inconsistency: Table III prints 125, but its own
        # formula 2m+3n gives 200.  The byte count (5.4 KB) does follow.
        assert values["update_messages"] == 200
        assert values["update_bytes"] == 5400

    def test_live_network_matches_formulas_small(self):
        result = run_table3(m=6, degree=2, seed=3)
        assert result.init_messages == result.formula_init_messages
        assert result.init_bytes == result.formula_init_bytes
        assert result.update_messages == result.formula_update_messages
        assert result.update_bytes == result.formula_update_bytes

    def test_parallel_bootstrap_beats_serial(self):
        """§XI: simultaneous key initialization 'improves significantly
        when done in parallel' — the live bootstrap overlaps exchanges."""
        result = run_table3(m=6, degree=2, seed=3)
        assert result.parallel_init_time_s < result.serial_init_time_s

    def test_multidomain_partitioning(self):
        from repro.experiments.table3_scalability import run_multidomain
        result = run_multidomain(total_switches=16, domains=4, degree=2)
        assert result.per_domain.m_switches == 4
        assert (result.fleet_init_messages
                == 4 * result.per_domain.init_messages)
