"""The regions=1 world is the *same* world, byte for byte.

The golden fixture was captured at the pre-region-refactor HEAD: full
experiment payloads (table3 full run, fig20 and cdp_batch_throughput
short runs) plus a sha256 digest of every switch's serialized C-DP
P4Auth wire stream from a batched m=9 workload.  All experiments now
construct their worlds through the region layer with ``regions=1`` —
these tests prove that path reproduces the flat world's payloads and
per-switch wire bytes exactly.
"""

import hashlib
import json
import os

import pytest

from repro.core.wire import serialize_message
from repro.engine.runner import Runner
from repro.experiments.cdp_batch import (
    build_batch_deployment,
    run_batch_workload,
)
from repro.experiments.table3_scalability import (
    run_table3,
    run_table3_regional,
)

FIXTURE = os.path.join(os.path.dirname(__file__), "golden",
                       "regions1_identity.json")


def load_fixture():
    with open(FIXTURE) as handle:
        return json.load(handle)


def canon(document) -> str:
    return json.dumps(document, sort_keys=True)


@pytest.mark.parametrize("name", ["table3", "fig20",
                                  "cdp_batch_throughput"])
def test_experiment_payloads_byte_identical(name):
    fixture = load_fixture()["experiments"][name]
    run = Runner(workers=1).run(name, short=fixture["short"])
    by_id = {trial.id: trial for trial in run.trials}
    for golden in fixture["trials"]:
        trial = by_id[golden["id"]]
        # Results must match byte for byte (canonical JSON).
        assert canon(trial.result) == canon(golden["result"]), \
            f"{golden['id']}: result diverged from pre-refactor golden"
        # Params may have gained new axes (e.g. table3's ``regions``)
        # but every pre-existing value must be unchanged.
        for key, value in golden["params"].items():
            assert trial.params[key] == value


def test_per_switch_wire_streams_byte_identical():
    """Every signed C-DP message, per switch, hashes to the golden
    digest — not just the aggregate counters."""
    golden = load_fixture()["wire_stream_sha256"]
    sim, net, stack, switches = build_batch_deployment("P4Auth", m=9,
                                                       seed=1)
    streams = {name: [] for name in switches}

    def make_tap(name):
        def tap(packet, direction):
            if direction == "c->dp" and packet.has("p4auth"):
                streams[name].append(serialize_message(packet))
            return packet
        return tap

    for name in switches:
        net.control_channels[name].add_tap(make_tap(name))
    result = run_batch_workload(sim, stack, switches, mode="batched",
                                requests_per_switch=4)
    assert result["completed"] == 36
    digests = {name: hashlib.sha256(b"".join(messages)).hexdigest()
               for name, messages in streams.items()}
    assert digests == golden


def test_table3_m25_live_counts_pinned():
    """The paper's Table III point, pinned against the refactor."""
    result = run_table3(m=25)
    assert (result.init_messages, result.init_bytes) == (350, 9500)
    assert (result.update_messages, result.update_bytes) == (200, 5400)


def test_table3_regions_sweep_reproduces_m25_counts_per_region():
    """With the ``regions`` sweep param, every 25-switch region of a
    sharded fleet reports exactly the flat m=25/n=50 live counts."""
    flat = run_table3(m=25)
    regional = run_table3_regional(m=50, regions=2)
    assert len(regional["regions_detail"]) == 2
    for row in regional["regions_detail"]:
        assert row["m_switches"] == 25 and row["n_links"] == 50
        assert row["init_messages"] == flat.init_messages == 350
        assert row["init_bytes"] == flat.init_bytes == 9500
        assert row["update_messages"] == flat.update_messages == 200
        assert row["update_bytes"] == flat.update_bytes == 5400
    assert regional["totals"]["init_messages"] == 700
    assert regional["boundary_violations"] == 0
