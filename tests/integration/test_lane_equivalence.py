"""Lane equivalence, end to end: the vector digest lane is invisible.

Forcing the vector lane on or off must change *nothing observable* —
not the bytes on any control channel, not the sequence numbers, not the
experiment result payloads.  If it did, a deployment's security behavior
would depend on the controller's host batch size, which is exactly the
coupling :mod:`repro.core.digest` promises cannot exist.

Two probes:

- a wire tap on every control channel of a P4Auth fabric, diffing the
  full per-switch byte streams between a scalar-lane and a
  vector-lane deployment driving the identical workload;
- the ``cdp_batch_throughput`` experiment's ``batched`` vs
  ``vectorized`` trials, whose result payloads (virtual-time numbers;
  deliberately lane-free) must be identical.
"""

from repro.core.wire import serialize_message
from repro.engine import canonical_json, run_experiment, to_jsonable
from repro.experiments.cdp_batch import (
    build_batch_deployment,
    run_batch_workload,
)

M, DEGREE, SEED = 5, 4, 3


def _drive(digest_lane: str, mode: str):
    """Deploy P4Auth on the small fabric, tap every control channel,
    run the standard workload; returns (per-switch wire, result, stack)."""
    sim, net, stack, switches = build_batch_deployment(
        "P4Auth", m=M, degree=DEGREE, seed=SEED, digest_lane=digest_lane)
    wires = {name: [] for name in switches}

    def tap_for(name):
        def tap(packet, direction):
            if direction == "c->dp" and packet.has("p4auth"):
                wires[name].append(serialize_message(packet))
            return packet
        return tap

    for name in switches:
        net.control_channels[name].add_tap(tap_for(name))
    result = run_batch_workload(sim, stack, switches, mode=mode,
                                requests_per_switch=4, max_in_flight=4)
    assert result["completed"] == result["submitted"] == M * 4
    return wires, result, stack


def test_wire_streams_byte_identical_across_lanes():
    """Scalar-lane batched vs vector-lane vectorized: every switch sees
    the exact same control-channel bytes in the exact same order."""
    scalar_wires, scalar_result, scalar_stack = _drive("scalar", "batched")
    vector_wires, vector_result, vector_stack = _drive("vector",
                                                       "vectorized")
    assert set(scalar_wires) == set(vector_wires)
    for name in scalar_wires:
        assert scalar_wires[name], f"no tapped traffic for {name}"
        assert scalar_wires[name] == vector_wires[name], \
            f"wire divergence on {name}"
    # The lanes really did differ — this was not scalar vs scalar.
    assert scalar_stack.digest.vector_batches == 0
    assert scalar_stack.digest.scalar_batches > 0
    assert vector_stack.digest.vector_batches > 0
    assert vector_stack.digest.scalar_batches == 0
    # And the virtual-time outcomes agree too.
    assert scalar_result["throughput_rps"] == vector_result["throughput_rps"]


def test_auto_lane_also_byte_identical():
    """The default ``auto`` policy (whatever it picks at this window
    size) sits on the same wire stream as the forced lanes."""
    scalar_wires, _, _ = _drive("scalar", "batched")
    auto_wires, _, _ = _drive("auto", "batched")
    assert auto_wires == scalar_wires


def test_experiment_payloads_identical_across_modes():
    """``batched`` and ``vectorized`` trials of cdp_batch_throughput
    report identical (virtual-time) payloads: same throughput, RCTs,
    window high-water — everything except the ``mode`` label itself."""
    run = run_experiment(
        "cdp_batch_throughput", short=True, cache=False,
        sweep={"stack": ["P4Auth"], "mode": ["batched", "vectorized"]})
    batched = dict(run.result_for(mode="batched"))
    vectorized = dict(run.result_for(mode="vectorized"))
    assert batched.pop("mode") == "batched"
    assert vectorized.pop("mode") == "vectorized"
    assert canonical_json(to_jsonable(batched)) \
        == canonical_json(to_jsonable(vectorized))
