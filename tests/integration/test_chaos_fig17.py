"""Chaos acceptance battery (ISSUE 2).

Two promises are pinned here: a seeded chaos run is *byte*-deterministic
(same seed, same plan, same workload => identical telemetry JSONL), and
the headline lossy-Fig17 scenario holds every security invariant — zero
forged writes land while the network drops, reorders, and replays.
"""

import json

import pytest

from repro.faults import run_scenario
from repro.telemetry import Telemetry


def _traced_run(name: str, seed: int):
    telemetry = Telemetry(enabled=True)
    report = run_scenario(name, seed=seed, telemetry=telemetry)
    return report, telemetry


@pytest.mark.parametrize("name", ["kmp-blackout", "crash-restart"])
def test_chaos_trace_is_byte_deterministic(name):
    (report_a, tel_a) = _traced_run(name, seed=11)
    (report_b, tel_b) = _traced_run(name, seed=11)
    assert report_a.passed, report_a.summary()
    assert report_a.invariants == report_b.invariants
    assert report_a.metrics == report_b.metrics
    jsonl = tel_a.tracer.to_jsonl()
    assert len(jsonl) > 0
    assert jsonl == tel_b.tracer.to_jsonl()


def test_chaos_trace_records_the_fault_lifecycle():
    _report, telemetry = _traced_run("kmp-blackout", seed=1)
    events = [json.loads(line)
              for line in telemetry.tracer.to_jsonl().splitlines()]
    names = {event["event"] for event in events}
    assert "fault.armed" in names
    assert "fault.injected" in names
    assert "fault.disarmed" in names
    assert "kmp.exchange_abandoned" in names
    injected = [e for e in events if e["event"] == "fault.injected"]
    assert all(e["kind"] == "blackout" for e in injected)


def test_different_seeds_change_the_lossy_fault_sequence():
    # Cheap version of the full scenario check: the same plan armed under
    # two seeds must shape traffic differently (forked PRNG streams).
    first = run_scenario("kmp-blackout", seed=1)
    second = run_scenario("kmp-blackout", seed=2)
    # Blackouts are time-triggered (not probabilistic), so both pass; the
    # reports agree structurally even when seeds differ.
    assert first.passed and second.passed


def test_lossy_fig17_holds_all_invariants():
    """The acceptance run: Fig 17 under 5% loss + reorder + three live
    adversaries.  Zero unauthenticated mutations, KMP re-converges, and
    the run stays within its event budget."""
    report = run_scenario("lossy-fig17", seed=1)
    assert report.passed, report.summary()
    names = {inv.name for inv in report.invariants}
    assert {"zero_forged_writes_landed", "tampered_writes_rejected",
            "replays_rejected", "delivery_within_envelope",
            "kmp_reconverged", "within_event_budget"} <= names
    assert report.metrics["fault_injections"] > 0
    assert report.metrics["delivery_ratio"] >= 0.75
