"""Link failure and recovery: the F3 automation loop end to end."""

from repro.core.auth_dataplane import P4AuthConfig, P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.net.topology import hula_fig3_topology
from repro.systems.hula import (
    HulaDataplane,
    fig3_hula_configs,
    make_data_packet,
    make_probe,
)


def build():
    net, extras = hula_fig3_topology()
    sim = extras["sim"]
    hulas = {name: HulaDataplane(net.switch(name), config).install()
             for name, config in fig3_hula_configs().items()}
    dataplanes = {}
    for index, name in enumerate(sorted(hulas)):
        dataplanes[name] = P4AuthDataplane(
            net.switch(name), k_seed=0xF1A9 + index,
            config=P4AuthConfig(protected_headers={"hula_probe"}),
        ).install()
    controller = P4AuthController(net)
    for dataplane in dataplanes.values():
        controller.provision(dataplane)
    controller.kmp.enable_topology_automation()
    controller.kmp.bootstrap_all()
    sim.run(until=1.0)
    return net, extras, hulas, dataplanes, controller


def drive_traffic(net, extras, duration_s):
    sim = extras["sim"]
    end = sim.now + duration_s

    def probes(index=0):
        if sim.now >= end:
            return
        extras["h5"].send(make_probe(5, index))
        sim.schedule(0.005, probes, index + 1)

    def data(seq=0):
        if sim.now >= end:
            return
        extras["h1"].send(make_data_packet(5, seq, seq & 0xFFFF))
        sim.schedule(0.001, data, seq + 1)

    sim.schedule(0.0, probes)
    sim.schedule(0.01, data)
    sim.run(until=end)


def test_traffic_survives_path_failure():
    net, extras, hulas, dataplanes, controller = build()
    drive_traffic(net, extras, 1.0)
    delivered_before = len(extras["h5"].received)
    assert delivered_before > 500

    # Kill the path via S3 (both of its links).
    net.set_link_up(net.link_between("s1", "s3"), False)
    net.set_link_up(net.link_between("s3", "s5"), False)
    drive_traffic(net, extras, 1.0)
    delivered_after = len(extras["h5"].received) - delivered_before
    # Probes via S3 stop; best-hop ages out; traffic continues on S2/S4.
    assert delivered_after > 500
    s1 = hulas["s1"]
    # No *new* traffic commits to the dead port once aged out: spot-check
    # the final second's growth on port 3 is a small fraction.
    assert s1.data_tx_per_port.get(3, 0) < s1.data_forwarded * 0.55


def test_recovered_link_is_rekeyed_automatically():
    net, extras, hulas, dataplanes, controller = build()
    link = net.link_between("s1", "s3")
    key_before = dataplanes["s1"].keys.port_key(3)
    net.set_link_up(link, False)
    extras["sim"].run(until=extras["sim"].now + 0.1)
    net.set_link_up(link, True)  # port-up event -> automatic port_key_init
    extras["sim"].run(until=extras["sim"].now + 1.0)
    key_after = dataplanes["s1"].keys.port_key(3)
    assert key_after != 0
    assert key_after != key_before  # fresh key for the recovered link
    assert key_after == dataplanes["s3"].keys.port_key(1)
    # Probes across the recovered link verify again.
    drive_traffic(net, extras, 0.5)
    assert dataplanes["s1"].stats.digest_fail_dpdp == 0
