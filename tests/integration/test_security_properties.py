"""End-to-end security properties (the paper's R1-R4 requirements)."""

import pytest

from repro.core.constants import P4AUTH
from repro.systems.hula import make_probe
from tests.conftest import Deployment


class TestR1AuthenticityIntegrityCDP:
    """R1: authenticated C-DP messages, tamper detected and prevented."""

    def test_every_field_is_covered(self, single_switch):
        """Tampering ANY field of a request (not just value) is caught."""
        dep = single_switch
        fields = ["regId", "index", "value"]
        for offset, fname in enumerate(fields):
            channel = dep.net.control_channels["s1"]

            def tamper(packet, direction, fn=fname):
                if direction == "c->dp" and packet.has("reg_op"):
                    packet.get("reg_op")[fn] = packet.get("reg_op")[fn] ^ 1
                return packet

            channel.add_tap(tamper)
            results = []
            dep.controller.write_register("s1", "demo", 1, 0x10 + offset,
                                          lambda ok, v: results.append(ok))
            dep.run(1.0)
            channel.remove_tap(tamper)
            assert results == [False], f"tamper on {fname} not caught"

    def test_header_field_tamper_caught(self, single_switch):
        dep = single_switch
        channel = dep.net.control_channels["s1"]

        def tamper(packet, direction):
            if direction == "c->dp" and packet.has(P4AUTH):
                hdr = packet.get(P4AUTH)
                hdr["seqNum"] = (hdr["seqNum"] + 100) & 0xFFFFFFFF
            return packet

        channel.add_tap(tamper)
        results = []
        dep.controller.write_register("s1", "demo", 1, 5,
                                      lambda ok, v: results.append(ok))
        dep.run(1.0)
        assert results == []  # response seq no longer matches pending
        assert dep.dataplanes["s1"].stats.digest_fail_cdp == 1


class TestR2AuthenticityIntegrityDPDP:
    """R2: in-network feedback messages protected hop by hop."""

    def test_multihop_tamper_caught_at_next_honest_switch(self):
        dep = Deployment(num_switches=3,
                         connect_pairs=[("s1", 1, "s2", 1), ("s2", 2, "s3", 1)],
                         protected_headers=("hula_probe",))
        for name, out_port in (("s1", 1), ("s2", 2), ("s3", 2)):
            switch = dep.switch(name)
            switch.pipeline.insert_stage(
                len(switch.pipeline.stage_names()) - 1, "app",
                lambda ctx, p=out_port: ctx.emit(p)
                if ctx.packet.has("hula_probe") else None)
        # Tamper on the middle link (s2-s3).
        from repro.attacks.link import ProbeFieldTamperer
        adversary = ProbeFieldTamperer("hula_probe", "path_util", 1)
        adversary.attach(dep.net.link_between("s2", "s3"))
        node = dep.net.nodes["s1"]
        dep.sim.schedule(0.0, node.receive, make_probe(9, 1, path_util=77), 3)
        dep.run(1.0)
        assert dep.dataplanes["s2"].stats.feedback_verified == 1
        assert dep.dataplanes["s3"].stats.digest_fail_dpdp == 1


class TestR3SecureKeyManagement:
    """R3: key exchange over untrusted channels stays consistent."""

    def test_keys_survive_concurrent_traffic_and_rollover(self, switch_pair):
        dep = switch_pair
        results = []

        def keep_reading(round_index=0):
            if round_index >= 30:
                return
            dep.controller.read_register(
                "s1", "demo", 0, lambda ok, v: results.append(ok))
            dep.sim.schedule(0.05, keep_reading, round_index + 1)

        dep.controller.kmp.schedule_rollover(0.2)
        keep_reading()
        dep.run(3.0)
        dep.controller.kmp.cancel_rollover()
        # Every read during continuous key rollover still verified:
        # the two-version scheme never leaves a window without a key.
        assert len(results) == 30
        assert all(results)

    def test_dpdp_probes_survive_port_key_rollover(self):
        dep = Deployment(num_switches=2,
                         connect_pairs=[("s1", 1, "s2", 1)],
                         protected_headers=("hula_probe",))
        switch = dep.switch("s1")
        switch.pipeline.insert_stage(
            len(switch.pipeline.stage_names()) - 1, "app",
            lambda ctx: ctx.emit(1) if ctx.packet.has("hula_probe") else None)
        node = dep.net.nodes["s1"]

        def send_probe(index=0):
            if index >= 20:
                return
            dep.sim.schedule(0.0, node.receive, make_probe(9, index, 5), 2)
            dep.sim.schedule(0.05, send_probe, index + 1)

        dep.controller.kmp.schedule_rollover(0.15)
        send_probe()
        dep.run(2.0)
        dep.controller.kmp.cancel_rollover()
        stats = dep.dataplanes["s2"].stats
        assert stats.feedback_verified == 20
        assert stats.digest_fail_dpdp == 0


class TestR4LineRateChecks:
    """R4: DP-DP checks happen in the data plane, not via the controller."""

    def test_probe_never_detours_to_controller(self):
        dep = Deployment(num_switches=2,
                         connect_pairs=[("s1", 1, "s2", 1)],
                         protected_headers=("hula_probe",))
        switch = dep.switch("s1")
        switch.pipeline.insert_stage(
            len(switch.pipeline.stage_names()) - 1, "app",
            lambda ctx: ctx.emit(1) if ctx.packet.has("hula_probe") else None)
        before = dep.net.control_channels["s2"].messages_carried
        node = dep.net.nodes["s1"]
        dep.sim.schedule(0.0, node.receive, make_probe(9, 1, 5), 2)
        dep.run(1.0)
        # Verified in the data plane: zero control-channel messages.
        assert dep.net.control_channels["s2"].messages_carried == before
        assert dep.dataplanes["s2"].stats.feedback_verified == 1


class TestKeyConfidentiality:
    def test_port_key_never_crosses_any_channel(self):
        """Fully passive global adversary: record every message on every
        channel and link during bootstrap + rollover; the port key never
        appears in any field of any message."""
        from repro.attacks.base import Eavesdropper
        dep = Deployment(num_switches=2,
                         connect_pairs=[("s1", 1, "s2", 1)],
                         bootstrap=False)
        spies = []
        for channel in dep.net.control_channels.values():
            spy = Eavesdropper()
            spy.attach(channel)
            spies.append(spy)
        for link in dep.net.links:
            spy = Eavesdropper()
            spy.attach(link)
            spies.append(spy)
        dep.controller.kmp.bootstrap_all()
        dep.run(1.0)
        dep.controller.kmp.port_key_update("s1", 1)
        dep.run(1.0)
        keys = {
            dep.dataplanes["s1"].keys.port_key(1, 0),
            dep.dataplanes["s1"].keys.port_key(1, 1),
        } - {0}
        assert keys
        observed = set()
        for spy in spies:
            for packet in spy.recordings:
                for name in packet.header_names():
                    observed.update(packet.get(name).fields().values())
        assert not (keys & observed)

    def test_local_key_never_crosses_any_channel(self):
        from repro.attacks.base import Eavesdropper
        dep = Deployment(num_switches=1, bootstrap=False)
        spy = Eavesdropper()
        spy.attach(dep.net.control_channels["s1"])
        dep.controller.kmp.local_key_init("s1")
        dep.run(1.0)
        dep.controller.kmp.local_key_update("s1")
        dep.run(1.0)
        keys = {dep.dataplanes["s1"].keys.local_key(0),
                dep.dataplanes["s1"].keys.local_key(1)} - {0}
        observed = set()
        for packet in spy.recordings:
            for name in packet.header_names():
                observed.update(packet.get(name).fields().values())
        assert keys and not (keys & observed)
