"""KMP soak test: randomized operation/loss sequences, then invariants.

Drives hundreds of randomly interleaved key operations over randomly
lossy channels (seeded, reproducible) and asserts the protocol's global
invariants at quiescence:

1. **No silent desynchronization** — after the dust settles, either a
   switch's current local key matches the controller's, or the operation
   that would have synced them is recorded as a failure (never a silent
   mismatch with both sides believing they agree).
2. **Port-key pairs agree** at the shared active version.
3. **Authenticated register ops still work** wherever a local key stands.
"""

import pytest

from repro.crypto.prng import XorShiftPrng
from tests.conftest import Deployment


class SeededLoss:
    def __init__(self, probability, seed):
        self.probability = probability
        self._prng = XorShiftPrng(seed)

    def __call__(self, packet, direction):
        if self._prng.uniform() < self.probability:
            return None
        return packet


@pytest.mark.parametrize("seed", [1, 7, 42, 1337])
def test_randomized_ops_with_loss_never_desync(seed):
    dep = Deployment(num_switches=3,
                     connect_pairs=[("s1", 1, "s2", 1), ("s2", 2, "s3", 1)],
                     bootstrap=True, registers=[("demo", 64, 16)])
    kmp = dep.controller.kmp
    kmp.max_attempts = 4
    prng = XorShiftPrng(seed)

    # Random loss on every channel and link (10%).
    for channel in dep.net.control_channels.values():
        channel.add_tap(SeededLoss(0.10, prng.next32()))
    for link in dep.net.links:
        link.add_tap(SeededLoss(0.10, prng.next32()))

    switches = list(dep.dataplanes)
    links = kmp.switch_links()
    operations = 0
    for round_index in range(60):
        choice = prng.next_bits(2)
        if choice == 0:
            kmp.local_key_update(switches[prng.next_bits(8) % len(switches)])
        elif choice == 1:
            sw, port, _peer, _pport = links[prng.next_bits(8) % len(links)]
            kmp.port_key_update(sw, port)
        elif choice == 2:
            sw, port, _peer, _pport = links[prng.next_bits(8) % len(links)]
            kmp.port_key_init(sw, port)
        else:
            kmp.local_key_update(switches[prng.next_bits(8) % len(switches)])
        operations += 1
        dep.run(0.002 + prng.uniform() * 0.01)

    # Quiesce: let all pending exchanges finish or give up.
    dep.run(2.0)

    # Invariant 1: local keys agree (or the op failed loudly).
    failed_switches = {f.switch for f in kmp.stats.failures
                       if f.op in ("local_init", "local_update")}
    for name in switches:
        controller_key = dep.controller.keys.local_key(name)
        dp_key = dep.dataplanes[name].keys.local_key()
        if name not in failed_switches:
            assert controller_key == dp_key, (
                f"silent local-key desync on {name} (seed {seed})")

    # Invariant 2: port-key pairs agree at the shared slots, or the
    # mismatch is attributable to a recorded failure on that link.
    failed_ports = {(f.switch, f.port) for f in kmp.stats.failures
                    if f.op in ("port_init", "port_update")}
    for sw_a, port_a, sw_b, port_b in links:
        if (sw_a, port_a) in failed_ports:
            continue
        key_a = dep.dataplanes[sw_a].keys.port_key(port_a)
        key_b = dep.dataplanes[sw_b].keys.port_key(port_b)
        assert key_a == key_b, (
            f"silent port-key desync on {sw_a}:{port_a}<->{sw_b}:{port_b} "
            f"(seed {seed})")

    # Invariant 3: C-DP register ops work on every synced switch.
    for name in switches:
        if name in failed_switches:
            continue
        results = []
        dep.controller.write_register(name, "demo", 0, 0x5A,
                                      lambda ok, v: results.append(ok))
        dep.run(1.0)
        # The channel is still lossy; retry once if the message vanished.
        if not results:
            dep.controller.write_register(name, "demo", 0, 0x5A,
                                          lambda ok, v: results.append(ok))
            dep.run(1.0)
        assert True in results or results == [], (
            f"register op rejected on synced switch {name} (seed {seed})")


def test_soak_with_no_loss_is_perfectly_clean():
    dep = Deployment(num_switches=2,
                     connect_pairs=[("s1", 1, "s2", 1)], bootstrap=True,
                     registers=[("demo", 64, 16)])
    kmp = dep.controller.kmp
    for _ in range(30):
        kmp.local_key_update("s1")
        kmp.local_key_update("s2")
        kmp.port_key_update("s1", 1)
        dep.run(0.05)
    dep.run(1.0)
    assert kmp.stats.failures == []
    assert kmp.stats.retries == 0
    assert (dep.controller.keys.local_key("s1")
            == dep.dataplanes["s1"].keys.local_key())
    assert (dep.dataplanes["s1"].keys.port_key(1)
            == dep.dataplanes["s2"].keys.port_key(1))
