"""Reproducibility: identical seeds yield bit-identical experiments.

Every stochastic element (traces, switch PRNGs, adversary PRNGs, event
ordering) is seeded, so a rerun must reproduce results exactly — the
property that makes every number in EXPERIMENTS.md checkable.
"""

from repro.experiments.fig16_routescout import run_routescout
from repro.experiments.fig17_hula import run_hula
from repro.experiments.fig20_kmp import run_kmp_rtt
from repro.net.trace import TraceGenerator
from repro.telemetry import Telemetry


def test_routescout_bitwise_reproducible():
    first = run_routescout("attack", duration_s=10.0, attack_start_s=3.0)
    second = run_routescout("attack", duration_s=10.0, attack_start_s=3.0)
    assert first.share_path1 == second.share_path1
    assert first.split_history == second.split_history
    assert first.packets_forwarded == second.packets_forwarded


def test_hula_bitwise_reproducible():
    first = run_hula("p4auth", duration_s=1.5)
    second = run_hula("p4auth", duration_s=1.5)
    assert first.shares == second.shares
    assert first.alerts == second.alerts
    assert first.data_delivered == second.data_delivered


def test_kmp_rtts_reproducible():
    first = run_kmp_rtt(repeats=3)
    second = run_kmp_rtt(repeats=3)
    for op in ("local_init", "local_update", "port_init", "port_update"):
        assert first.rtts[op] == second.rtts[op]


def test_hula_telemetry_traces_byte_identical():
    """Two seeded runs emit byte-identical JSONL traces.

    Trace events carry only virtual time, so the full observability
    record — drops, digest failures, key exchanges — reproduces exactly.
    """
    def traced_run():
        telemetry = Telemetry(enabled=True)
        run_hula("p4auth", duration_s=1.5, telemetry=telemetry)
        return telemetry

    first, second = traced_run(), traced_run()
    assert len(first.tracer) > 0
    assert first.tracer.to_jsonl() == second.tracer.to_jsonl()


def test_hula_telemetry_metrics_reproducible_modulo_wall_clock():
    """Prometheus dumps match once host-time metrics are filtered out."""
    WALL_CLOCK = ("repro_sim_wall_seconds", "repro_profile_seconds")

    def virtual_lines(telemetry):
        return [line for line in telemetry.render_prometheus().splitlines()
                if not any(line.startswith(prefix) or
                           line.startswith(f"# TYPE {prefix}")
                           for prefix in WALL_CLOCK)]

    def traced_run():
        telemetry = Telemetry(enabled=True)
        run_hula("p4auth", duration_s=1.5, telemetry=telemetry)
        return telemetry

    assert virtual_lines(traced_run()) == virtual_lines(traced_run())


def test_different_seeds_differ():
    base = run_routescout("baseline", duration_s=10.0, seed=42)
    other = run_routescout("baseline", duration_s=10.0, seed=43)
    assert base.packets_forwarded != other.packets_forwarded


def test_trace_generator_is_the_randomness_root():
    assert (TraceGenerator(seed=1).flow_list(2.0)[0].five_tuple
            == TraceGenerator(seed=1).flow_list(2.0)[0].five_tuple)
