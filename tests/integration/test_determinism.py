"""Reproducibility: identical seeds yield bit-identical experiments.

Every stochastic element (traces, switch PRNGs, adversary PRNGs, event
ordering) is seeded, so a rerun must reproduce results exactly — the
property that makes every number in EXPERIMENTS.md checkable.
"""

from repro.experiments.fig16_routescout import run_routescout
from repro.experiments.fig17_hula import run_hula
from repro.experiments.fig20_kmp import run_kmp_rtt
from repro.net.trace import TraceGenerator


def test_routescout_bitwise_reproducible():
    first = run_routescout("attack", duration_s=10.0, attack_start_s=3.0)
    second = run_routescout("attack", duration_s=10.0, attack_start_s=3.0)
    assert first.share_path1 == second.share_path1
    assert first.split_history == second.split_history
    assert first.packets_forwarded == second.packets_forwarded


def test_hula_bitwise_reproducible():
    first = run_hula("p4auth", duration_s=1.5)
    second = run_hula("p4auth", duration_s=1.5)
    assert first.shares == second.shares
    assert first.alerts == second.alerts
    assert first.data_delivered == second.data_delivered


def test_kmp_rtts_reproducible():
    first = run_kmp_rtt(repeats=3)
    second = run_kmp_rtt(repeats=3)
    for op in ("local_init", "local_update", "port_init", "port_update"):
        assert first.rtts[op] == second.rtts[op]


def test_different_seeds_differ():
    base = run_routescout("baseline", duration_s=10.0, seed=42)
    other = run_routescout("baseline", duration_s=10.0, seed=43)
    assert base.packets_forwarded != other.packets_forwarded


def test_trace_generator_is_the_randomness_root():
    assert (TraceGenerator(seed=1).flow_list(2.0)[0].five_tuple
            == TraceGenerator(seed=1).flow_list(2.0)[0].five_tuple)
