"""Integration: the RouteScout (Fig 16) and HULA (Fig 17) defenses.

Short-duration versions of the headline experiments, asserting the
paper's qualitative shapes.
"""

import pytest

from repro.experiments.fig16_routescout import run_routescout
from repro.experiments.fig17_hula import run_hula


@pytest.fixture(scope="module")
def routescout_results():
    return {
        mode: run_routescout(mode, duration_s=20.0, attack_start_s=6.0)
        for mode in ("baseline", "attack", "p4auth")
    }


class TestFig16:
    def test_baseline_favors_faster_path(self, routescout_results):
        baseline = routescout_results["baseline"]
        assert baseline.share_path1 > 0.55

    def test_attack_shifts_traffic_to_path2(self, routescout_results):
        attack = routescout_results["attack"]
        assert attack.share_path2 > 0.6  # paper: ~70%

    def test_p4auth_retains_original_split(self, routescout_results):
        baseline = routescout_results["baseline"]
        p4auth = routescout_results["p4auth"]
        assert abs(p4auth.share_path1 - baseline.share_path1) < 0.05

    def test_p4auth_detects_and_skips_epochs(self, routescout_results):
        p4auth = routescout_results["p4auth"]
        assert p4auth.tamper_events > 0
        assert p4auth.epochs_skipped > 0

    def test_attack_goes_undetected_without_p4auth(self, routescout_results):
        attack = routescout_results["attack"]
        assert attack.tamper_events == 0
        assert attack.epochs_skipped == 0


@pytest.fixture(scope="module")
def hula_results():
    return {mode: run_hula(mode, duration_s=3.0)
            for mode in ("baseline", "attack", "p4auth")}


class TestFig17:
    def test_baseline_spreads_roughly_equally(self, hula_results):
        shares = hula_results["baseline"].shares
        for path, share in shares.items():
            assert 0.2 < share < 0.5, f"{path} share {share}"

    def test_attack_concentrates_on_compromised_link(self, hula_results):
        attack = hula_results["attack"]
        assert attack.shares["s4"] > 0.7  # paper: >70%
        assert attack.probes_tampered > 0

    def test_p4auth_blocks_compromised_link(self, hula_results):
        p4auth = hula_results["p4auth"]
        assert p4auth.shares["s4"] < 0.05
        assert p4auth.shares["s2"] + p4auth.shares["s3"] > 0.95

    def test_p4auth_raises_alerts(self, hula_results):
        assert hula_results["p4auth"].alerts > 0
        assert hula_results["p4auth"].probes_dropped_at_s1 > 0

    def test_traffic_still_delivered_under_p4auth(self, hula_results):
        p4auth = hula_results["p4auth"]
        assert p4auth.data_delivered > 0.8 * p4auth.data_sent
