"""End-to-end: telemetry wired through a full experiment and the CLI.

The fig17 p4auth scenario exercises every instrumented layer at once:
links carry probes and data (per-link counters), the S1-S4 tamperer
corrupts probes (digest verify failures + pipeline drops), the
controller receives alerts (packet-in counters), and the KMP bootstrap
runs key exchanges (RTT histograms).
"""

import json

import pytest

from repro.experiments.fig17_hula import run_hula
from repro.telemetry import Telemetry


@pytest.fixture(scope="module")
def instrumented_run():
    telemetry = Telemetry(enabled=True)
    result = run_hula("p4auth", duration_s=1.5, telemetry=telemetry)
    return telemetry, result


def test_per_link_counters_accumulate(instrumented_run):
    telemetry, _ = instrumented_run
    byte_metrics = telemetry.metrics.with_name("net_link_bytes_total")
    assert byte_metrics, "expected per-link byte counters"
    assert any(m.value > 0 for m in byte_metrics)
    # Every byte series has a matching packet series with the same labels.
    packet_keys = {m.labels
                   for m in telemetry.metrics.with_name(
                       "net_link_packets_total")}
    assert all(m.labels in packet_keys for m in byte_metrics)


def test_digest_verification_pass_and_fail(instrumented_run):
    telemetry, result = instrumented_run
    metrics = telemetry.metrics.with_name("p4auth_digest_verify_total")
    by_result = {}
    for metric in metrics:
        labels = dict(metric.labels)
        by_result[labels["result"]] = (
            by_result.get(labels["result"], 0) + metric.value)
    # Untampered probes verify; the S1-S4 tamperer forces failures.
    assert by_result.get("pass", 0) > 0
    assert by_result.get("fail", 0) > 0
    assert result.probes_tampered > 0


def test_pipeline_drops_have_named_reasons(instrumented_run):
    telemetry, result = instrumented_run
    drops = telemetry.metrics.with_name("dataplane_drop_total")
    assert drops
    for metric in drops:
        labels = dict(metric.labels)
        assert labels["reason"]  # never empty/unnamed
        assert labels["switch"]
    total = sum(m.value for m in drops)
    assert total >= result.probes_dropped_at_s1 > 0


def test_trace_contains_verify_failures_with_virtual_time(instrumented_run):
    telemetry, _ = instrumented_run
    failures = telemetry.tracer.events("digest.verify_fail")
    assert failures
    for event in failures:
        assert event.time >= 0.0
        assert "switch" in event.fields
    # JSONL export parses line by line.
    lines = telemetry.tracer.to_jsonl().splitlines()
    assert len(lines) == len(telemetry.tracer)
    parsed = json.loads(lines[0])
    assert set(parsed) >= {"t", "event"}


def test_kmp_exchanges_recorded(instrumented_run):
    telemetry, _ = instrumented_run
    exchanges = telemetry.tracer.events("kmp.exchange")
    assert exchanges  # bootstrap_all ran key inits
    histograms = telemetry.metrics.with_name("kmp_rtt_seconds")
    assert sum(h.count for h in histograms) == len(exchanges)


def test_simulator_counters(instrumented_run):
    telemetry, _ = instrumented_run
    assert telemetry.metrics.value("sim_events_executed_total") > 0
    heap_gauge = telemetry.metrics.get("sim_heap_depth_high_water")
    assert heap_gauge is not None and heap_gauge.value >= 1


def test_disabled_run_records_nothing():
    telemetry = Telemetry(enabled=False)
    run_hula("p4auth", duration_s=0.5, telemetry=telemetry)
    assert len(telemetry.metrics) == 0
    assert len(telemetry.tracer) == 0


def test_cli_telemetry_subcommand(tmp_path, capsys):
    from repro.__main__ import main

    trace_path = tmp_path / "trace.jsonl"
    exit_code = main(["telemetry", "fig17", "--duration", "1.0",
                      "--trace-out", str(trace_path)])
    assert exit_code == 0
    out = capsys.readouterr().out
    # Prometheus dump includes the acceptance-criteria metric families.
    assert "repro_net_link_bytes_total" in out
    assert "repro_p4auth_digest_verify_total" in out
    assert "repro_dataplane_drop_total" in out
    # The JSONL trace landed on disk and parses.
    lines = trace_path.read_text().splitlines()
    assert lines
    assert all(json.loads(line)["event"] for line in lines)


def test_cli_telemetry_rejects_unknown_target():
    from repro.__main__ import main

    with pytest.raises(SystemExit):
        main(["telemetry", "nope"])
