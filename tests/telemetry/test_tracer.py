"""Unit tests for the tracer, spans, and the Telemetry bundle."""

import json

import pytest

from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.metrics import MetricRegistry
from repro.telemetry.tracer import NullTracer, Tracer


class TestTracer:
    def test_emit_stamps_the_bound_clock(self):
        clock = {"now": 0.0}
        tracer = Tracer(clock=lambda: clock["now"])
        tracer.emit("packet.drop", reason="link_down")
        clock["now"] = 1.5
        tracer.emit("link.up", link="s1:1-s2:1")
        events = tracer.events()
        assert [e.time for e in events] == [0.0, 1.5]
        assert events[0].fields == {"reason": "link_down"}

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            tracer.emit("tick", n=index)
        assert len(tracer) == 3
        assert tracer.emitted == 5
        assert tracer.evicted == 2
        assert [e.fields["n"] for e in tracer.events()] == [2, 3, 4]

    def test_filter_by_name(self):
        tracer = Tracer()
        tracer.emit("a")
        tracer.emit("b")
        tracer.emit("a")
        assert len(tracer.events("a")) == 2

    def test_jsonl_is_canonical_and_parseable(self):
        tracer = Tracer(clock=lambda: 0.25)
        tracer.emit("digest.verify_fail", switch="s1", cause="mismatch")
        line = tracer.to_jsonl().strip()
        assert line == ('{"cause":"mismatch","event":"digest.verify_fail",'
                        '"switch":"s1","t":0.25}')
        assert json.loads(line)["switch"] == "s1"

    def test_dump_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.emit("kmp.exchange", op="local_init")
        path = tmp_path / "trace.jsonl"
        assert tracer.dump(str(path)) == 1
        assert json.loads(path.read_text())["op"] == "local_init"

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_null_tracer_is_inert(self, tmp_path):
        tracer = NullTracer()
        tracer.emit("anything", x=1)
        assert len(tracer) == 0
        assert tracer.events() == []
        assert tracer.to_jsonl() == ""
        path = tmp_path / "empty.jsonl"
        assert tracer.dump(str(path)) == 0
        assert path.read_text() == ""


class TestSpan:
    def test_span_observes_wall_time(self):
        registry = MetricRegistry()
        telemetry = Telemetry(enabled=True)
        with telemetry.span("analysis"):
            pass
        histogram = telemetry.metrics.get("profile_seconds", span="analysis")
        assert histogram.count == 1
        assert histogram.sum >= 0.0
        # Unused registry stays empty (span went to the bundle's registry).
        assert len(registry) == 0

    def test_disabled_span_records_nothing(self):
        telemetry = Telemetry(enabled=False)
        with telemetry.span("analysis"):
            pass
        assert len(telemetry.metrics) == 0


class TestTelemetryBundle:
    def test_enabled_bundle_wires_both_surfaces(self):
        telemetry = Telemetry(enabled=True)
        assert telemetry.metrics.enabled
        assert telemetry.tracer.enabled
        telemetry.metrics.counter("x_total").inc()
        telemetry.tracer.emit("x")
        assert "repro_x_total 1" in telemetry.render_prometheus()
        assert len(telemetry.tracer) == 1

    def test_null_telemetry_is_shared_and_disabled(self):
        assert NULL_TELEMETRY.enabled is False
        assert isinstance(NULL_TELEMETRY.tracer, NullTracer)
        NULL_TELEMETRY.metrics.counter("x_total").inc()
        assert len(NULL_TELEMETRY.metrics) == 0
