"""Unit tests for the metric primitives and the registry."""

import pytest

from repro.telemetry.exporters import render_prometheus
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    MetricRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricRegistry()
        counter = registry.counter("packets_total")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        counter = MetricRegistry().counter("packets_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_series_are_independent(self):
        registry = MetricRegistry()
        registry.counter("drops_total", reason="link_down").inc()
        registry.counter("drops_total", reason="tamper_tap").inc(3)
        assert registry.value("drops_total", reason="link_down") == 1
        assert registry.value("drops_total", reason="tamper_tap") == 3

    def test_same_labels_return_same_instance(self):
        registry = MetricRegistry()
        first = registry.counter("x_total", a="1", b="2")
        # Label keyword order must not matter.
        second = registry.counter("x_total", b="2", a="1")
        assert first is second


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricRegistry().gauge("pending")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13

    def test_set_max_keeps_high_water(self):
        gauge = MetricRegistry().gauge("high_water")
        gauge.set_max(7)
        gauge.set_max(3)
        assert gauge.value == 7
        gauge.set_max(11)
        assert gauge.value == 11


class TestHistogram:
    def test_bucketing_and_sum(self):
        histogram = MetricRegistry().histogram(
            "rct_seconds", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 0.5):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(0.5555)
        cumulative = histogram.cumulative_buckets()
        assert cumulative == [(0.001, 1), (0.01, 2), (0.1, 3),
                              (float("inf"), 4)]

    def test_mean(self):
        histogram = MetricRegistry().histogram("x_seconds")
        assert histogram.mean == 0.0
        histogram.observe(2.0)
        histogram.observe(4.0)
        assert histogram.mean == 3.0

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricRegistry().histogram("bad_seconds", buckets=(1.0, 0.5))


class TestRegistry:
    def test_kind_collision_raises(self):
        registry = MetricRegistry()
        registry.counter("thing")
        with pytest.raises(TypeError):
            registry.gauge("thing")

    def test_disabled_registry_hands_out_shared_nulls(self):
        registry = MetricRegistry(enabled=False)
        assert registry.counter("a_total") is NULL_COUNTER
        assert registry.gauge("b") is NULL_GAUGE
        assert registry.histogram("c_seconds") is NULL_HISTOGRAM
        # Nulls swallow mutations and register nothing.
        registry.counter("a_total").inc()
        registry.gauge("b").set(5)
        registry.histogram("c_seconds").observe(1.0)
        assert len(registry) == 0

    def test_snapshot_is_deterministically_ordered(self):
        registry = MetricRegistry()
        registry.counter("z_total")
        registry.counter("a_total", x="2")
        registry.counter("a_total", x="1")
        names = [(m.name, m.labels) for m in registry.snapshot()]
        assert names == [("a_total", (("x", "1"),)),
                         ("a_total", (("x", "2"),)),
                         ("z_total", ())]

    def test_with_name_filters(self):
        registry = MetricRegistry()
        registry.counter("a_total", k="1").inc()
        registry.counter("a_total", k="2").inc()
        registry.counter("b_total").inc()
        assert len(registry.with_name("a_total")) == 2


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        registry = MetricRegistry()
        registry.counter("drops_total", reason="link_down").inc(4)
        registry.gauge("pending").set(2)
        text = render_prometheus(registry)
        assert '# TYPE repro_drops_total counter' in text
        assert 'repro_drops_total{reason="link_down"} 4' in text
        assert 'repro_pending 2' in text

    def test_histogram_rendering(self):
        registry = MetricRegistry()
        histogram = registry.histogram("rct_seconds", buckets=(0.01, 0.1))
        histogram.observe(0.005)
        histogram.observe(0.5)
        text = render_prometheus(registry)
        assert 'repro_rct_seconds_bucket{le="0.01"} 1' in text
        assert 'repro_rct_seconds_bucket{le="+Inf"} 2' in text
        assert 'repro_rct_seconds_count 2' in text

    def test_label_escaping(self):
        registry = MetricRegistry()
        registry.counter("x_total", label='say "hi"\n').inc()
        text = render_prometheus(registry)
        assert r'label="say \"hi\"\n"' in text

    def test_rendering_is_deterministic(self):
        def build():
            registry = MetricRegistry()
            registry.counter("b_total", k="2").inc()
            registry.counter("b_total", k="1").inc(2)
            registry.gauge("a").set(1)
            return render_prometheus(registry)

        assert build() == build()
