"""The P4Auth controller: requests, verification, alerts, DoS heuristics."""

import pytest

from repro.core.constants import AlertCode
from tests.conftest import Deployment


def test_read_write_roundtrip(single_switch):
    dep = single_switch
    results = []
    dep.controller.write_register("s1", "demo", 3, 0x77,
                                  lambda ok, v: results.append(("w", ok, v)))
    dep.run(1.0)
    dep.controller.read_register("s1", "demo", 3,
                                 lambda ok, v: results.append(("r", ok, v)))
    dep.run(1.0)
    assert results == [("w", True, 0x77), ("r", True, 0x77)]
    assert dep.controller.stats.acks_received == 2


def test_rct_samples_recorded(single_switch):
    dep = single_switch
    dep.controller.read_register("s1", "demo", 0)
    dep.run(1.0)
    samples = dep.controller.stats.rct_samples
    assert len(samples) == 1
    assert samples[0].kind == "read"
    assert 0 < samples[0].rct_s < 0.01


def test_unknown_register_raises(single_switch):
    with pytest.raises(KeyError):
        single_switch.controller.read_register("s1", "nope", 0)


def test_unknown_switch_raises(single_switch):
    with pytest.raises(KeyError):
        single_switch.controller.read_register("s9", "demo", 0)


def test_refresh_p4info_picks_up_new_registers(single_switch):
    dep = single_switch
    dep.switch("s1").registers.define("late_reg", 32, 4)
    dep.dataplanes["s1"].map_register("late_reg")
    with pytest.raises(KeyError):
        dep.controller.read_register("s1", "late_reg", 0)
    dep.controller.refresh_p4info("s1")
    results = []
    dep.controller.read_register("s1", "late_reg", 0,
                                 lambda ok, v: results.append(ok))
    dep.run(1.0)
    assert results == [True]


def test_tampered_response_never_reaches_callback(single_switch):
    dep = single_switch
    channel = dep.net.control_channels["s1"]

    def tamper(packet, direction):
        if direction == "dp->c" and packet.has("reg_op"):
            packet.get("reg_op")["value"] ^= 0xFF
        return packet

    channel.add_tap(tamper)
    results = []
    dep.controller.read_register("s1", "demo", 0,
                                 lambda ok, v: results.append((ok, v)))
    dep.run(1.0)
    assert results == []
    assert dep.controller.stats.tampered_responses == 1
    assert len(dep.controller.tamper_events) == 1


def test_on_tamper_hook_fires(single_switch):
    dep = single_switch
    events = []
    dep.controller.on_tamper.append(events.append)
    channel = dep.net.control_channels["s1"]
    channel.add_tap(lambda p, d:
                    (p.get("reg_op").__setitem__("value", 1), p)[1]
                    if d == "dp->c" and p.has("reg_op") else p)
    dep.controller.read_register("s1", "demo", 0)
    dep.run(1.0)
    assert len(events) == 1
    assert events[0].switch == "s1"


def test_alert_received_and_hook_fires(single_switch):
    dep = single_switch
    alerts = []
    dep.controller.on_alert.append(alerts.append)
    # Trigger an alert: inject a replayed (stale-seq) authenticated write.
    dep.controller.write_register("s1", "demo", 0, 1)
    dep.run(1.0)
    # Replay defense test lives elsewhere; here use an unknown register id
    # via a forged-but-authenticated message path instead: simplest is a
    # second write with a manually rewound controller sequence.
    dep.controller._seq["s1"] = 1  # rewind: next request looks replayed
    results = []
    dep.controller.write_register("s1", "demo", 0, 2,
                                  lambda ok, v: results.append(ok))
    dep.run(1.0)
    assert results == [False]  # nAcked as replay
    assert any(a.code == AlertCode.REPLAY_SUSPECTED
               for a in dep.controller.alerts)
    assert alerts


def test_outstanding_tracking(single_switch):
    dep = single_switch
    dep.controller.read_register("s1", "demo", 0)
    assert dep.controller.outstanding_count() == 1
    assert dep.controller.unacknowledged_seqs("s1")
    dep.run(1.0)
    assert dep.controller.outstanding_count() == 0


def test_dos_suspected_when_outstanding_explodes(single_switch):
    dep = single_switch
    dep.controller.outstanding_threshold = 5
    # Black-hole the control channel so nothing completes.
    dep.net.control_channels["s1"].add_tap(lambda p, d: None)
    for _ in range(10):
        dep.controller.read_register("s1", "demo", 0)
    assert dep.controller.stats.dos_suspected
    assert dep.controller.outstanding_count() == 10


def test_unsolicited_response_ignored(single_switch):
    dep = single_switch
    from repro.core.messages import build_reg_response
    from repro.core.digest import DigestEngine
    forged = build_reg_response(True, 1, 0, 0xEE, seq_num=9999)
    DigestEngine().sign(dep.controller.keys.local_key("s1"), forged)
    dep.net.send_packet_in("s1", forged)
    dep.run(1.0)
    assert dep.controller.stats.unsolicited_responses == 1


def test_non_p4auth_packet_in_counted(single_switch):
    dep = single_switch
    from repro.dataplane.packet import Packet
    dep.net.send_packet_in("s1", Packet())
    dep.run(1.0)
    assert dep.controller.stats.unsolicited_responses == 1
