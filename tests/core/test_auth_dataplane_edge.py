"""Edge branches of the data-plane module and cross-flavor deployments."""

import pytest

from repro.core.auth_dataplane import P4AuthConfig, P4AuthDataplane
from repro.core.constants import (
    AlertCode,
    HdrType,
    KeyExchType,
    P4AUTH,
)
from repro.core.controller import P4AuthController
from repro.core.digest import DigestEngine
from repro.core.messages import (
    build_adhkd_message,
    build_keyctl_message,
)
from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import Drop, ToController
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.simulator import EventSimulator

K_SEED = 0x5EED
K_LOCAL = 0x10CA1


def keyed_dataplane(**config_kwargs):
    switch = DataplaneSwitch("s1", num_ports=4)
    dataplane = P4AuthDataplane(switch, K_SEED,
                                config=P4AuthConfig(**config_kwargs))
    dataplane.install()
    dataplane.keys.set_local_key(K_LOCAL)
    return switch, dataplane


def alerts_of(actions):
    return [a.packet for a in actions
            if isinstance(a, ToController)
            and a.packet.has(P4AUTH)
            and a.packet.get(P4AUTH)["hdrType"] == HdrType.ALERT]


class TestKeyExchangeEdges:
    def test_port_key_start_invalid_port_alerts(self):
        switch, dataplane = keyed_dataplane()
        message = build_keyctl_message(KeyExchType.PORT_KEY_INIT, 99, 1)
        DigestEngine().sign(K_LOCAL, message)
        actions = switch.process(message, 0)
        assert any(isinstance(a, Drop) for a in actions)
        alert = alerts_of(actions)[0]
        assert alert.get("alert")["code"] == AlertCode.KEY_EXCHANGE_TAMPER

    def test_msg2_without_pending_exchange_alerts(self):
        switch, dataplane = keyed_dataplane()
        message = build_adhkd_message(KeyExchType.ADHKD_MSG2, 1, 2, 1)
        message.get(P4AUTH)["flags"] = 2  # claims a pending port exchange
        DigestEngine().sign(K_LOCAL, message)
        actions = switch.process(message, 0)
        assert any(isinstance(a, Drop) for a in actions)
        assert dataplane.stats.alerts_raised == 1

    def test_unexpected_exchange_type_on_link_dropped(self):
        switch, dataplane = keyed_dataplane()
        dataplane.keys.set_port_key(1, 0x77)
        message = build_keyctl_message(KeyExchType.PORT_KEY_INIT, 1, 1)
        DigestEngine().sign(0x77, message)
        actions = switch.process(message, 1)
        assert any(isinstance(a, Drop) for a in actions)

    def test_exchange_with_wrong_payload_dropped(self):
        """Structurally invalid: an EAK msgType carrying an ADHKD body."""
        switch, dataplane = keyed_dataplane()
        message = build_adhkd_message(KeyExchType.ADHKD_MSG1, 1, 2, 1)
        message.get(P4AUTH)["msgType"] = int(KeyExchType.EAK_SALT1)
        DigestEngine().sign(K_SEED, message)
        actions = switch.process(message, 0)
        assert any(isinstance(a, Drop) for a in actions)


class TestAlertSigningFallback:
    def test_alert_signed_with_seed_before_any_key(self):
        """Alerts raised during bootstrap fall back to K_seed; the
        controller still authenticates them."""
        sim = EventSimulator()
        net = Network(sim)
        switch = DataplaneSwitch("s1", num_ports=2)
        net.add_switch(switch)
        dataplane = P4AuthDataplane(
            switch, K_SEED,
            config=P4AuthConfig(protected_headers={"hula_probe"})).install()
        dataplane.keys.set_port_key(1, 0x99)
        controller = P4AuthController(net)
        controller.provision(dataplane)
        # A tampered probe on the keyed port, before K_local exists.
        from repro.systems.hula import make_probe
        node = net.nodes["s1"]
        sim.schedule(0.0, node.receive, make_probe(1, 1), 1)
        sim.run(until=1.0)
        assert len(controller.alerts) == 1
        assert controller.stats.tampered_responses == 0


class TestStrictCpuOff:
    def test_raw_reg_op_passes_when_not_strict(self):
        switch, dataplane = keyed_dataplane(strict_cpu=False)
        from repro.core.constants import REG_OP_HEADER
        raw = Packet()
        raw.push("reg_op", REG_OP_HEADER.instantiate(regId=1, index=0,
                                                     value=9))
        actions = switch.process(raw, 0)
        # Not dropped by P4Auth (though nothing serves it either).
        assert not any(isinstance(a, Drop) for a in actions)
        assert dataplane.stats.unauthenticated_dropped == 0


class TestCrc32Flavor:
    """The Tofino deployment: CRC32 digests end to end."""

    def build(self):
        sim = EventSimulator()
        net = Network(sim)
        switch = DataplaneSwitch("s1", num_ports=2,
                                 hash_algorithm="crc32")
        net.add_switch(switch)
        switch.registers.define("demo", 64, 8)
        dataplane = P4AuthDataplane(switch, K_SEED).install()
        dataplane.map_register("demo")
        controller = P4AuthController(net, algorithm="crc32")
        controller.provision(dataplane)
        controller.kmp.local_key_init("s1")
        sim.run(until=0.5)
        return sim, net, switch, dataplane, controller

    def test_kmp_and_reg_ops_work(self):
        sim, net, switch, dataplane, controller = self.build()
        assert controller.keys.has_local_key("s1")
        results = []
        controller.write_register("s1", "demo", 1, 0x42,
                                  lambda ok, v: results.append((ok, v)))
        sim.run(until=1.0)
        assert results == [(True, 0x42)]

    def test_tamper_still_detected(self):
        sim, net, switch, dataplane, controller = self.build()

        def tamper(packet, direction):
            if direction == "c->dp" and packet.has("reg_op"):
                packet.get("reg_op")["value"] ^= 1
            return packet

        net.control_channels["s1"].add_tap(tamper)
        results = []
        controller.write_register("s1", "demo", 1, 0x42,
                                  lambda ok, v: results.append(ok))
        sim.run(until=1.0)
        assert results == [False]

    def test_mixed_flavors_cannot_interoperate(self):
        """A halfsiphash controller against a crc32 switch never
        verifies — catching deployment misconfiguration loudly."""
        sim = EventSimulator()
        net = Network(sim)
        switch = DataplaneSwitch("s1", num_ports=2,
                                 hash_algorithm="crc32")
        net.add_switch(switch)
        dataplane = P4AuthDataplane(switch, K_SEED).install()
        controller = P4AuthController(net, algorithm="halfsiphash")
        controller.provision(dataplane)
        controller.kmp.local_key_init("s1")
        sim.run(until=1.0)
        assert not controller.keys.has_local_key("s1")
        assert dataplane.stats.digest_fail_cdp > 0


class TestSignStageEdges:
    def test_non_protected_emit_to_keyed_port_untouched(self):
        switch, dataplane = keyed_dataplane(
            protected_headers={"hula_probe"})
        dataplane.keys.set_port_key(2, 0x22)
        switch.pipeline.insert_stage(1, "app", lambda ctx: ctx.emit(2))
        packet = Packet(payload=b"plain data")
        actions = switch.process(packet, 1)
        out = [a for a in actions if not isinstance(a, Drop)][0].packet
        assert not out.has(P4AUTH)

    def test_probe_multicast_each_copy_signed_for_its_port(self):
        from repro.systems.hula import make_probe
        switch, dataplane = keyed_dataplane(
            protected_headers={"hula_probe"})
        dataplane.keys.set_port_key(2, 0x22)
        dataplane.keys.set_port_key(3, 0x33)

        def fan(ctx):
            if ctx.packet.has("hula_probe"):
                ctx.emit(2, ctx.packet.copy())
                ctx.emit(3, ctx.packet.copy())

        switch.pipeline.insert_stage(1, "app", fan)
        actions = switch.process(make_probe(1, 1), 4)  # unkeyed ingress
        from repro.dataplane.pipeline import Emit
        emits = {a.port: a.packet for a in actions if isinstance(a, Emit)}
        engine = DigestEngine()
        assert engine.verify(0x22, emits[2])
        assert engine.verify(0x33, emits[3])
        assert not engine.verify(0x22, emits[3])
