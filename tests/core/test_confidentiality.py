"""The §XI confidentiality extension: session keys + encrypted reg-ops."""

import pytest

from repro.core.auth_dataplane import P4AuthConfig, P4AuthDataplane
from repro.core.confidentiality import (
    derive_session_keys,
    encrypt_value,
    request_nonce,
    response_nonce,
)
from repro.core.controller import P4AuthController
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.simulator import EventSimulator


class TestSessionKeyDerivation:
    def test_family_members_differ(self):
        keys = derive_session_keys(0xABCDEF)
        assert len({keys.auth, keys.encryption, keys.nonce_base}) == 3

    def test_same_master_same_family(self):
        assert derive_session_keys(7) == derive_session_keys(7)

    def test_different_master_different_family(self):
        assert derive_session_keys(7) != derive_session_keys(8)

    def test_request_response_nonces_never_collide(self):
        keys = derive_session_keys(0x1234)
        request_nonces = {request_nonce(keys, seq) for seq in range(100)}
        response_nonces = {response_nonce(keys, seq) for seq in range(100)}
        assert not request_nonces & response_nonces

    def test_encrypt_value_involutive(self):
        keys = derive_session_keys(0x99)
        for seq in (1, 1000, 2**31):
            for response in (False, True):
                cipher = encrypt_value(keys, seq, 0xDEADBEEF, response)
                assert cipher != 0xDEADBEEF
                assert encrypt_value(keys, seq, cipher, response) == 0xDEADBEEF


def encrypted_deployment():
    sim = EventSimulator()
    net = Network(sim)
    switch = DataplaneSwitch("s1", num_ports=2)
    net.add_switch(switch)
    switch.registers.define("secret_state", 64, 8)
    dataplane = P4AuthDataplane(
        switch, k_seed=0xE2C,
        config=P4AuthConfig(encrypt_regops=True)).install()
    dataplane.map_register("secret_state")
    controller = P4AuthController(net, encrypt_regops=True)
    controller.provision(dataplane)
    controller.kmp.local_key_init("s1")
    sim.run(until=0.1)
    return sim, net, switch, dataplane, controller


class TestEncryptedRegOps:
    def test_roundtrip(self):
        sim, net, switch, dataplane, controller = encrypted_deployment()
        results = []
        controller.write_register("s1", "secret_state", 2, 0xCAFE,
                                  lambda ok, v: results.append(("w", ok, v)))
        sim.run(until=1.0)
        controller.read_register("s1", "secret_state", 2,
                                 lambda ok, v: results.append(("r", ok, v)))
        sim.run(until=2.0)
        assert results == [("w", True, 0xCAFE), ("r", True, 0xCAFE)]
        # The data plane applied the true plaintext.
        assert switch.registers.get("secret_state").read(2) == 0xCAFE

    def test_eavesdropper_sees_only_ciphertext(self):
        sim, net, switch, dataplane, controller = encrypted_deployment()
        observed = []

        def spy(packet, direction):
            if packet.has("reg_op"):
                observed.append(packet.get("reg_op")["value"])
            return packet

        net.control_channels["s1"].add_tap(spy)
        controller.write_register("s1", "secret_state", 0, 0x5EC12E7)
        sim.run(until=1.0)
        controller.read_register("s1", "secret_state", 0)
        sim.run(until=2.0)
        assert observed  # request + responses crossed the channel
        assert 0x5EC12E7 not in observed

    def test_request_and_response_ciphertexts_differ(self):
        """Direction-tweaked nonces: even echoing the same value, the
        response ciphertext differs from the request ciphertext."""
        sim, net, switch, dataplane, controller = encrypted_deployment()
        observed = []

        def spy(packet, direction):
            if packet.has("reg_op"):
                observed.append((direction, packet.get("reg_op")["value"]))
            return packet

        net.control_channels["s1"].add_tap(spy)
        controller.write_register("s1", "secret_state", 0, 0x77)
        sim.run(until=1.0)
        down = [v for d, v in observed if d == "c->dp"]
        up = [v for d, v in observed if d == "dp->c"]
        assert down and up and down[0] != up[0]

    def test_tamper_still_detected_before_decrypt(self):
        """Encrypt-then-MAC: flipping ciphertext bits fails the digest;
        nothing is decrypted or applied."""
        sim, net, switch, dataplane, controller = encrypted_deployment()

        def tamper(packet, direction):
            if direction == "c->dp" and packet.has("reg_op"):
                packet.get("reg_op")["value"] ^= 0xFF
            return packet

        net.control_channels["s1"].add_tap(tamper)
        results = []
        controller.write_register("s1", "secret_state", 1, 0x42,
                                  lambda ok, v: results.append(ok))
        sim.run(until=1.0)
        assert results == [False]
        assert switch.registers.get("secret_state").read(1) == 0
        assert dataplane.stats.digest_fail_cdp == 1

    def test_survives_key_rollover(self):
        sim, net, switch, dataplane, controller = encrypted_deployment()
        controller.kmp.local_key_update("s1")
        sim.run(until=1.0)
        results = []
        controller.write_register("s1", "secret_state", 3, 0x1111,
                                  lambda ok, v: results.append(ok))
        sim.run(until=2.0)
        assert results == [True]
        assert switch.registers.get("secret_state").read(3) == 0x1111

    def test_plaintext_mode_unaffected(self, single_switch):
        """Default deployments (encrypt_regops off) behave as before."""
        dep = single_switch
        results = []
        dep.controller.write_register("s1", "demo", 0, 0x9,
                                      lambda ok, v: results.append(v))
        dep.run(1.0)
        assert results == [0x9]
