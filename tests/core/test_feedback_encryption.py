"""DP-DP payload confidentiality (§XI extension, INT-record hiding)."""

import pytest

from repro.attacks.base import Eavesdropper
from repro.core.auth_dataplane import P4AuthConfig, P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.simulator import EventSimulator
from repro.systems.int_telemetry import (
    IntCollector,
    IntConfig,
    IntTelemetryDataplane,
    make_int_probe,
    parse_records,
)


def build_chain(encrypt=True, hops=3):
    """An INT chain with P4Auth feedback protection (+- encryption)."""
    from repro.net.topology import linear_chain
    net, extras = linear_chain(hops)
    sim = extras["sim"]
    for index, name in enumerate(extras["switches"], start=1):
        IntTelemetryDataplane(net.switch(name), IntConfig(
            switch_id=index,
            routes={1: 2 if index < hops else None},
            collector_port=2,
            latency_us=lambda now, flow: 33,
        )).install()
    dataplanes = []
    for index, name in enumerate(extras["switches"]):
        dataplanes.append(P4AuthDataplane(
            net.switch(name), k_seed=0x3E7 + index,
            config=P4AuthConfig(protected_headers={"int_probe"},
                                encrypt_feedback=encrypt)).install())
    controller = P4AuthController(net)
    for dataplane in dataplanes:
        controller.provision(dataplane)
    controller.kmp.bootstrap_all()
    sim.run(until=1.0)
    return net, extras, dataplanes, controller


def run_probes(net, extras, count=5):
    sim = extras["sim"]
    collector = IntCollector()
    extras["dst"].on_packet = collector.ingest
    start = sim.now
    for index in range(count):
        sim.schedule_at(start + index * 0.005, extras["src"].send,
                        make_int_probe(index))
    sim.run(until=start + count * 0.005 + 1.0)
    return collector


def test_collector_still_decodes_plaintext():
    """End-to-end: hop-by-hop encryption is transparent to the sink."""
    net, extras, dataplanes, controller = build_chain(encrypt=True)
    collector = run_probes(net, extras)
    assert len(collector.probes) == 5
    for records in collector.probes:
        assert [r.switch_id for r in records] == [1, 2, 3]
        assert all(r.latency_us == 33 for r in records)


def test_link_eavesdropper_sees_only_ciphertext():
    net, extras, dataplanes, controller = build_chain(encrypt=True)
    spy = Eavesdropper(lambda p: p.has("int_probe"))
    spy.attach(net.link_between("s1", "s2"))
    run_probes(net, extras, count=3)
    assert spy.stats.recorded == 3
    for packet in spy.recordings:
        # Records parsed from the raw in-flight payload must be garbage
        # (no record shows the true latency value at the right slot).
        records = parse_records(packet)
        assert records, "payload should still carry (encrypted) bytes"
        assert not any(r.switch_id == 1 and r.latency_us == 33
                       for r in records)


def test_without_encryption_link_payload_is_plaintext():
    net, extras, dataplanes, controller = build_chain(encrypt=False)
    spy = Eavesdropper(lambda p: p.has("int_probe"))
    spy.attach(net.link_between("s1", "s2"))
    run_probes(net, extras, count=3)
    for packet in spy.recordings:
        records = parse_records(packet)
        assert any(r.switch_id == 1 and r.latency_us == 33
                   for r in records)


def test_ciphertext_tamper_detected_before_decrypt():
    net, extras, dataplanes, controller = build_chain(encrypt=True)

    def flip(packet, direction):
        if packet.has("int_probe") and packet.payload:
            payload = bytearray(packet.payload)
            payload[0] ^= 0xFF
            packet.payload = bytes(payload)
        return packet

    net.link_between("s1", "s2").add_tap(flip)
    collector = run_probes(net, extras, count=3)
    assert collector.probes == []
    assert sum(dp.stats.digest_fail_dpdp for dp in dataplanes) == 3
    assert len(controller.alerts) == 3


def test_directions_use_distinct_nonces():
    """The same link carrying feedback both ways must not reuse
    keystream: encrypt the same plaintext with the same seq in both
    directions and compare ciphertexts."""
    sim = EventSimulator()
    net = Network(sim)
    dataplanes = {}
    for index, name in enumerate(("s1", "s2")):
        switch = DataplaneSwitch(name, num_ports=2, seed=50 + index)
        net.add_switch(switch)
        # Echo stage: forward int probes out of port 1 (the shared link).
        switch.pipeline.add_stage(
            "fwd", lambda ctx: ctx.emit(1)
            if ctx.packet.has("int_probe") else None)
        dataplanes[name] = P4AuthDataplane(
            switch, k_seed=0x600 + index,
            config=P4AuthConfig(protected_headers={"int_probe"},
                                encrypt_feedback=True)).install()
    net.connect("s1", 1, "s2", 1)
    controller = P4AuthController(net)
    for dataplane in dataplanes.values():
        controller.provision(dataplane)
    controller.kmp.bootstrap_all()
    sim.run(until=1.0)

    # Force identical sequence numbers on both sides.
    dataplanes["s1"]._dp_seq.write(0, 41)
    dataplanes["s2"]._dp_seq.write(0, 41)

    captured = {}

    def capture(packet, direction):
        if packet.has("int_probe"):
            captured[direction] = packet.payload
        return packet

    net.link_between("s1", "s2").add_tap(capture)
    plaintext = b"IDENTICAL-RECORDS"
    for name, port in (("s1", 2), ("s2", 2)):
        probe = make_int_probe(1)
        probe.payload = plaintext
        node = net.nodes[name]
        sim.schedule(0.0, node.receive, probe, 2)
        sim.run(until=sim.now + 0.1)
    assert set(captured) == {"a->b", "b->a"}
    assert captured["a->b"] != captured["b->a"]
    assert plaintext not in captured.values()
