"""Key stores: versioned installs, index layout, controller views."""

import pytest

from repro.core.keys import (
    LOCAL_KEY_INDEX,
    ControllerKeyStore,
    DataplaneKeyStore,
    VersionedKey,
)
from repro.dataplane.registers import RegisterFile


def make_store(num_ports=4):
    return DataplaneKeyStore(RegisterFile(), num_ports)


class TestVersionedKey:
    def test_first_install_keeps_version_zero(self):
        key = VersionedKey()
        assert key.install(0xAAAA) == 0
        assert key.current() == 0xAAAA

    def test_install_flips_slots(self):
        key = VersionedKey()
        v1 = key.install(0xAAAA)
        v2 = key.install(0xBBBB)
        assert key.current() == 0xBBBB
        assert v1 != v2
        # The previous key remains addressable by its version tag.
        assert key.by_version(v1) == 0xAAAA


class TestDataplaneKeyStore:
    def test_local_key_at_index_zero(self):
        """Paper §VII: local key at index 0, port keys at port index."""
        store = make_store()
        store.set_local_key(0x1111)
        assert store.get(LOCAL_KEY_INDEX) == 0x1111

    def test_port_keys_at_port_index(self):
        store = make_store()
        store.set_port_key(3, 0x3333)
        assert store.get(3) == 0x3333
        assert store.port_key(3) == 0x3333

    def test_port_range_validated(self):
        store = make_store(num_ports=2)
        with pytest.raises(IndexError):
            store.port_key(3)
        with pytest.raises(IndexError):
            store.set_port_key(0, 1)  # port 0 is the local-key slot

    def test_two_version_consistency(self):
        """During an update the old key stays addressable (§VI-C)."""
        store = make_store()
        v_old = store.set_local_key(0xAAAA)
        v_new = store.set_local_key(0xBBBB)
        assert store.local_key() == 0xBBBB
        assert store.local_key(version=v_old) == 0xAAAA
        assert store.active_version(LOCAL_KEY_INDEX) == v_new

    def test_has_port_key(self):
        store = make_store()
        assert not store.has_port_key(1)
        store.set_port_key(1, 0x77)
        assert store.has_port_key(1)
        assert not store.has_port_key(99)

    def test_register_file_backing(self):
        """Keys live in real registers: 64-bit wide, N+1 entries/version."""
        registers = RegisterFile()
        DataplaneKeyStore(registers, num_ports=8)
        v0 = registers.get("p4auth_keys_v0")
        assert v0.width_bits == 64
        assert v0.size == 9


class TestControllerKeyStore:
    def test_seed_provisioning(self):
        store = ControllerKeyStore()
        store.set_seed("s1", 0x5EED)
        assert store.seed("s1") == 0x5EED
        with pytest.raises(KeyError):
            store.seed("s2")

    def test_auth_key_lifecycle(self):
        store = ControllerKeyStore()
        assert not store.has_auth_key("s1")
        store.set_auth_key("s1", 0xA)
        assert store.auth_key("s1") == 0xA
        with pytest.raises(KeyError):
            store.auth_key("s2")

    def test_local_key_versioning(self):
        store = ControllerKeyStore()
        assert not store.has_local_key("s1")
        v1 = store.install_local_key("s1", 0x1)
        v2 = store.install_local_key("s1", 0x2)
        assert store.local_key("s1") == 0x2
        assert store.local_key("s1", version=v1) == 0x1
        assert store.local_key_version("s1") == v2
        with pytest.raises(KeyError):
            store.local_key("s2")
        with pytest.raises(KeyError):
            store.local_key_version("s2")
