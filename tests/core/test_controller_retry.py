"""P4Auth controller bounded request retries (ISSUE 2).

Opt-in ``request_timeout_s`` gives the authenticated C-DP path the same
terminal-failure surface as the comparison stacks — with the extra twist
that every resent request must be re-signed (and, for writes, the value
re-encrypted) under a *fresh* sequence number, or the switch's replay
window would reject the retry itself.
"""

from repro.core.constants import P4AUTH, REG_OP
from tests.conftest import Deployment


def retry_deployment(timeout_s=0.05, attempts=3):
    dep = Deployment(num_switches=1, registers=[("demo", 64, 16)])
    dep.controller.request_timeout_s = timeout_s
    dep.controller.max_request_attempts = attempts
    return dep


def test_lost_request_abandoned_with_terminal_callback():
    dep = retry_deployment()
    seqs = []

    def eat_requests(packet, direction):
        if direction == "c->dp" and packet.has(REG_OP):
            seqs.append(packet.get(P4AUTH)["seqNum"])
            return None
        return packet

    dep.net.control_channels["s1"].add_tap(eat_requests)
    outcomes = []
    dep.controller.write_register("s1", "demo", 0, 0x42,
                                  lambda ok, v: outcomes.append((ok, v)))
    dep.run(2.0)
    assert outcomes == [(False, 0)]
    assert dep.controller.stats.request_retries == 2
    assert dep.controller.stats.requests_abandoned == 1
    assert dep.controller.outstanding_count() == 0
    # Each resend was freshly signed: three distinct sequence numbers.
    assert len(seqs) == 3 and len(set(seqs)) == 3


def test_retried_write_reencrypts_and_lands_the_plain_value():
    dep = retry_deployment()
    state = {"eaten": 0}

    def eat_first(packet, direction):
        if (direction == "c->dp" and packet.has(REG_OP)
                and state["eaten"] < 1):
            state["eaten"] += 1
            return None
        return packet

    dep.net.control_channels["s1"].add_tap(eat_first)
    outcomes = []
    dep.controller.write_register("s1", "demo", 2, 0xBEEF,
                                  lambda ok, v: outcomes.append(ok))
    dep.run(2.0)
    assert outcomes == [True]
    assert dep.controller.stats.request_retries == 1
    # The retry re-encrypted the original plaintext, not the ciphertext.
    assert dep.switch("s1").registers.get("demo").read(2) == 0xBEEF


def test_successful_request_cancels_its_timeout():
    dep = retry_deployment()
    cancelled_before = dep.sim.events_cancelled
    outcomes = []
    dep.controller.write_register("s1", "demo", 1, 0x7,
                                  lambda ok, v: outcomes.append(ok))
    dep.run(2.0)
    assert outcomes == [True]  # exactly one callback, no late failure
    assert dep.controller.stats.request_retries == 0
    assert dep.sim.events_cancelled == cancelled_before + 1


def test_read_retry_path():
    dep = retry_deployment()
    dep.switch("s1").registers.get("demo").write(4, 0x1234)
    state = {"eaten": 0}

    def eat_first(packet, direction):
        if (direction == "c->dp" and packet.has(REG_OP)
                and state["eaten"] < 1):
            state["eaten"] += 1
            return None
        return packet

    dep.net.control_channels["s1"].add_tap(eat_first)
    outcomes = []
    dep.controller.read_register("s1", "demo", 4,
                                 lambda ok, v: outcomes.append((ok, v)))
    dep.run(2.0)
    assert outcomes == [(True, 0x1234)]
    assert dep.controller.stats.request_retries == 1


def test_legacy_default_has_no_timeout_machinery():
    dep = Deployment(num_switches=1, registers=[("demo", 64, 16)])
    assert dep.controller.request_timeout_s is None

    def eat_requests(packet, direction):
        if direction == "c->dp" and packet.has(REG_OP):
            return None
        return packet

    dep.net.control_channels["s1"].add_tap(eat_requests)
    outcomes = []
    dep.controller.write_register("s1", "demo", 0, 0x42,
                                  lambda ok, v: outcomes.append(ok))
    dep.run(2.0)
    assert outcomes == []  # the pre-ISSUE-2 contract, unchanged
    assert dep.controller.stats.requests_abandoned == 0
    assert dep.controller.outstanding_count() == 1
