"""The data-plane P4Auth module: verification, dispatch, defenses."""

import pytest

from repro.core.auth_dataplane import P4AuthConfig, P4AuthDataplane
from repro.core.constants import AlertCode, HdrType, P4AUTH, RegOpType
from repro.core.digest import DigestEngine
from repro.core.messages import (
    build_reg_read_request,
    build_reg_write_request,
)
from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import Drop, Emit, ToController
from repro.dataplane.switch import DataplaneSwitch

K_SEED = 0x5EED_5EED_5EED_5EED
K_LOCAL = 0x10CA1_0CA1


def make_dataplane(**config_kwargs):
    switch = DataplaneSwitch("s1", num_ports=4)
    switch.registers.define("demo", 64, 8)
    dataplane = P4AuthDataplane(switch, K_SEED,
                                config=P4AuthConfig(**config_kwargs))
    dataplane.install()
    dataplane.map_register("demo")
    dataplane.keys.set_local_key(K_LOCAL)
    return switch, dataplane


def signed_write(value=0xBEEF, seq=1, index=2, reg_id=None, switch=None,
                 key=K_LOCAL, key_ver=None):
    if reg_id is None:
        reg_id = switch.registers.id_of("demo")
    message = build_reg_write_request(reg_id, index, value, seq)
    if key_ver is not None:
        message.get(P4AUTH)["keyVer"] = key_ver
    DigestEngine().sign(key, message)
    return message


def responses_of(actions):
    return [a for a in actions if isinstance(a, ToController)]


class TestInstallation:
    def test_verify_first_sign_last(self):
        switch = DataplaneSwitch("s1", num_ports=2)
        switch.pipeline.add_stage("app", lambda ctx: None)
        P4AuthDataplane(switch, K_SEED).install()
        names = switch.pipeline.stage_names()
        assert names[0] == "p4auth_verify"
        assert names[-1] == "p4auth_sign"

    def test_double_install_rejected(self):
        switch = DataplaneSwitch("s1", num_ports=2)
        dataplane = P4AuthDataplane(switch, K_SEED).install()
        with pytest.raises(RuntimeError):
            dataplane.install()

    def test_key_registers_not_mappable(self):
        """The controller must never read key material via C-DP ops."""
        switch, dataplane = make_dataplane()
        with pytest.raises(PermissionError):
            dataplane.map_register("p4auth_keys_v0")

    def test_map_all_skips_p4auth_state(self):
        switch = DataplaneSwitch("s1", num_ports=2)
        switch.registers.define("app_reg", 32, 4)
        dataplane = P4AuthDataplane(switch, K_SEED).install()
        mapped = dataplane.map_all_registers()
        assert "app_reg" in mapped
        assert not any(name.startswith("p4auth_") for name in mapped)


class TestRegisterOps:
    def test_authenticated_write_applies(self):
        switch, dataplane = make_dataplane()
        actions = switch.process(signed_write(switch=switch), 0)
        assert switch.registers.get("demo").read(2) == 0xBEEF
        response = responses_of(actions)[0].packet
        assert response.get(P4AUTH)["msgType"] == RegOpType.ACK
        assert response.get(P4AUTH)["seqNum"] == 1
        assert dataplane.stats.regops_served == 1

    def test_response_is_signed_with_local_key(self):
        switch, dataplane = make_dataplane()
        actions = switch.process(signed_write(switch=switch), 0)
        response = responses_of(actions)[0].packet
        assert DigestEngine().verify(K_LOCAL, response)

    def test_authenticated_read_returns_value(self):
        switch, dataplane = make_dataplane()
        switch.registers.get("demo").write(5, 0x42)
        message = build_reg_read_request(switch.registers.id_of("demo"), 5, 1)
        DigestEngine().sign(K_LOCAL, message)
        actions = switch.process(message, 0)
        response = responses_of(actions)[0].packet
        assert response.get("reg_op")["value"] == 0x42

    def test_tampered_write_nacked_and_not_applied(self):
        switch, dataplane = make_dataplane()
        message = signed_write(switch=switch)
        message.get("reg_op")["value"] = 0x6666  # tamper after signing
        actions = switch.process(message, 0)
        assert switch.registers.get("demo").read(2) == 0
        response = responses_of(actions)[0].packet
        assert response.get(P4AUTH)["msgType"] == RegOpType.NACK
        assert dataplane.stats.digest_fail_cdp == 1

    def test_wrong_key_rejected(self):
        switch, dataplane = make_dataplane()
        message = signed_write(switch=switch, key=K_LOCAL ^ 1)
        switch.process(message, 0)
        assert dataplane.stats.digest_fail_cdp == 1
        assert switch.registers.get("demo").read(2) == 0

    def test_unknown_register_nacked_and_alerted(self):
        switch, dataplane = make_dataplane()
        message = signed_write(switch=switch, reg_id=9999)
        actions = switch.process(message, 0)
        packets = [a.packet for a in responses_of(actions)]
        # Both an operator alert and a nAck toward the requester.
        alert = next(p for p in packets
                     if p.get(P4AUTH)["hdrType"] == HdrType.ALERT)
        assert alert.get("alert")["code"] == AlertCode.UNKNOWN_REGISTER
        nack = next(p for p in packets
                    if p.get(P4AUTH)["hdrType"] == HdrType.REGISTER_OP)
        assert nack.get(P4AUTH)["msgType"] == RegOpType.NACK
        assert dataplane.stats.unknown_register == 1


class TestReplayDefense:
    def test_replay_detected(self):
        switch, dataplane = make_dataplane()
        message = signed_write(switch=switch, seq=5)
        switch.process(message.copy(), 0)
        # Bit-exact replay: valid digest, stale sequence number.
        actions = switch.process(message.copy(), 0)
        assert dataplane.stats.replays_detected == 1
        nacks = [a.packet for a in responses_of(actions)
                 if a.packet.has(P4AUTH)
                 and a.packet.get(P4AUTH)["msgType"] == RegOpType.NACK]
        assert nacks

    def test_seq_gap_tolerated(self):
        """Higher-than-expected sequence numbers are accepted (losses)."""
        switch, dataplane = make_dataplane()
        switch.process(signed_write(switch=switch, seq=1), 0)
        switch.process(signed_write(switch=switch, seq=10, value=0x7), 0)
        assert dataplane.stats.replays_detected == 0
        assert switch.registers.get("demo").read(2) == 0x7

    def test_replayed_value_not_applied(self):
        switch, dataplane = make_dataplane()
        message = signed_write(switch=switch, seq=5, value=0x1111)
        switch.process(message.copy(), 0)
        switch.registers.get("demo").write(2, 0x2222)
        switch.process(message.copy(), 0)
        assert switch.registers.get("demo").read(2) == 0x2222


class TestStrictCpu:
    def test_unauthenticated_reg_op_dropped(self):
        switch, dataplane = make_dataplane(strict_cpu=True)
        from repro.core.constants import REG_OP_HEADER
        raw = Packet()
        raw.push("reg_op", REG_OP_HEADER.instantiate(
            regId=switch.registers.id_of("demo"), index=2, value=9))
        actions = switch.process(raw, 0)
        assert any(isinstance(a, Drop) for a in actions)
        assert switch.registers.get("demo").read(2) == 0
        assert dataplane.stats.unauthenticated_dropped == 1

    def test_non_regop_cpu_traffic_passes(self):
        switch, dataplane = make_dataplane(strict_cpu=True)
        actions = switch.process(Packet(), 0)
        assert not any(isinstance(a, Drop) for a in actions)


class TestAlertRateLimit:
    def test_alert_budget_enforced(self):
        switch, dataplane = make_dataplane(alert_threshold=3,
                                           alert_window_s=10.0)
        for seq in range(10):
            message = signed_write(switch=switch, seq=seq + 1,
                                   key=K_LOCAL ^ 1)
            switch.process(message, 0, now=0.1)
        assert dataplane.stats.alerts_raised == 3
        assert dataplane.stats.alerts_suppressed == 7

    def test_budget_resets_each_window(self):
        switch, dataplane = make_dataplane(alert_threshold=2,
                                           alert_window_s=1.0)
        for window in range(3):
            for seq in range(5):
                message = signed_write(switch=switch, seq=seq + 1,
                                       key=K_LOCAL ^ 1)
                switch.process(message, 0, now=window * 1.0 + 0.1)
        assert dataplane.stats.alerts_raised == 6

    def test_no_limit_when_disabled(self):
        switch, dataplane = make_dataplane(alert_threshold=None)
        for seq in range(20):
            switch.process(signed_write(switch=switch, seq=seq + 1,
                                        key=K_LOCAL ^ 1), 0)
        assert dataplane.stats.alerts_suppressed == 0


class TestDpDpProtection:
    def probe(self):
        from repro.systems.hula import make_probe
        return make_probe(5, 1, path_util=10)

    def keyed(self, protected=("hula_probe",)):
        switch = DataplaneSwitch("s1", num_ports=4)
        dataplane = P4AuthDataplane(
            switch, K_SEED,
            config=P4AuthConfig(protected_headers=set(protected)))
        # An app stage that forwards probes from port 1 to port 2.
        switch.pipeline.add_stage(
            "app", lambda ctx: ctx.emit(2) if ctx.packet.has("hula_probe")
            else None)
        dataplane.install()
        dataplane.keys.set_port_key(1, 0x1111)
        dataplane.keys.set_port_key(2, 0x2222)
        return switch, dataplane

    def test_sign_stage_adds_header_on_keyed_egress(self):
        switch, dataplane = self.keyed()
        # Build a second switch to verify against; simpler: verify digest
        # with the known egress key.
        probe = self.probe()
        # Ingress via CPU-less edge: use port 3 (no key).
        switch.keys_unused = None
        actions = switch.process(probe, 3)
        emits = [a for a in actions if isinstance(a, Emit)]
        assert emits
        out = emits[0].packet
        assert out.has(P4AUTH)
        assert out.get(P4AUTH)["hdrType"] == HdrType.DP_FEEDBACK
        assert DigestEngine().verify(0x2222, out)
        assert dataplane.stats.feedback_signed == 1

    def test_unauthenticated_probe_on_keyed_port_dropped(self):
        switch, dataplane = self.keyed()
        actions = switch.process(self.probe(), 1)
        assert any(isinstance(a, Drop) for a in actions)
        assert dataplane.stats.digest_fail_dpdp == 1
        alerts = [a for a in actions if isinstance(a, ToController)]
        assert alerts  # alert raised toward the controller

    def test_valid_probe_verified_and_resigned(self):
        switch, dataplane = self.keyed()
        probe = self.probe()
        from repro.core.constants import P4AUTH_HEADER
        # The sender tags the key version it signed with; version
        # counters advance in lockstep because every exchange installs
        # exactly once at both endpoints.
        probe.push(P4AUTH, P4AUTH_HEADER.instantiate(
            hdrType=int(HdrType.DP_FEEDBACK),
            keyVer=dataplane.keys.active_version(1)))
        DigestEngine().sign(0x1111, probe)
        actions = switch.process(probe, 1)
        emits = [a for a in actions if isinstance(a, Emit)]
        assert emits
        assert DigestEngine().verify(0x2222, emits[0].packet)
        assert dataplane.stats.feedback_verified == 1

    def test_tampered_probe_dropped(self):
        switch, dataplane = self.keyed()
        probe = self.probe()
        from repro.core.constants import P4AUTH_HEADER
        probe.push(P4AUTH, P4AUTH_HEADER.instantiate(
            hdrType=int(HdrType.DP_FEEDBACK),
            keyVer=dataplane.keys.active_version(1)))
        DigestEngine().sign(0x1111, probe)
        probe.get("hula_probe")["path_util"] = 99  # MitM tamper
        actions = switch.process(probe, 1)
        assert any(isinstance(a, Drop) for a in actions)
        assert dataplane.stats.digest_fail_dpdp == 1

    def test_header_stripped_on_unkeyed_egress(self):
        switch, dataplane = self.keyed()
        # Forward from keyed port 1 out to unkeyed port via app stage?
        # The app stage sends to port 2 (keyed); instead test the sign
        # stage directly with an emit to the unkeyed port 3.
        switch2 = DataplaneSwitch("s2", num_ports=4)
        dataplane2 = P4AuthDataplane(
            switch2, K_SEED,
            config=P4AuthConfig(protected_headers={"hula_probe"}))
        switch2.pipeline.add_stage("app", lambda ctx: ctx.emit(3))
        dataplane2.install()
        dataplane2.keys.set_port_key(1, 0x1111)
        probe = self.probe()
        from repro.core.constants import P4AUTH_HEADER
        probe.push(P4AUTH, P4AUTH_HEADER.instantiate(
            hdrType=int(HdrType.DP_FEEDBACK),
            keyVer=dataplane2.keys.active_version(1)))
        DigestEngine().sign(0x1111, probe)
        actions = switch2.process(probe, 1)
        emits = [a for a in actions if isinstance(a, Emit)]
        assert emits and not emits[0].packet.has(P4AUTH)

    def test_unprotected_traffic_unaffected(self):
        switch, dataplane = self.keyed(protected=())
        probe = self.probe()
        actions = switch.process(probe, 1)
        emits = [a for a in actions if isinstance(a, Emit)]
        assert emits and not emits[0].packet.has(P4AUTH)
