"""Wire codec: byte-exact round trips and malformed-input rejection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.constants import AlertCode, KeyExchType, P4AUTH
from repro.core.digest import DigestEngine
from repro.core.messages import (
    build_adhkd_message,
    build_alert,
    build_eak_message,
    build_keyctl_message,
    build_reg_read_request,
    build_reg_write_request,
)
from repro.core.wire import WireFormatError, parse_message, serialize_message
from repro.systems.hula import HULA_PROBE_HEADER, make_probe

U32 = st.integers(min_value=0, max_value=(1 << 32) - 1)
U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


def roundtrip(packet):
    return parse_message(serialize_message(packet))


class TestRoundTrips:
    @given(U32, U32, U64, U32)
    @settings(max_examples=40, deadline=None)
    def test_reg_write(self, reg_id, index, value, seq):
        original = build_reg_write_request(reg_id, index, value, seq)
        parsed = roundtrip(original)
        assert parsed.get(P4AUTH) == original.get(P4AUTH)
        assert parsed.get("reg_op") == original.get("reg_op")

    def test_all_message_kinds(self):
        messages = [
            build_reg_read_request(1, 2, 3),
            build_reg_write_request(1, 2, 3, 4),
            build_eak_message(KeyExchType.EAK_SALT1, 0xABCD, 1),
            build_adhkd_message(KeyExchType.ADHKD_MSG2, 7, 8, 2),
            build_adhkd_message(KeyExchType.UPD_MSG1, 7, 8, 2),
            build_keyctl_message(KeyExchType.PORT_KEY_INIT, 3, 5),
            build_alert(AlertCode.REPLAY_SUSPECTED, 99, 6),
        ]
        for original in messages:
            parsed = roundtrip(original)
            assert parsed.serialize() == original.serialize()

    def test_digest_survives_the_wire(self):
        """Sign, serialize, parse, verify — the full path."""
        engine = DigestEngine()
        key = 0xFEEDFACE
        message = build_reg_write_request(1, 0, 0xBEEF, 9)
        engine.sign(key, message)
        parsed = roundtrip(message)
        assert engine.verify(key, parsed)

    def test_bit_flip_on_the_wire_detected(self):
        engine = DigestEngine()
        key = 0xFEEDFACE
        message = build_reg_write_request(1, 0, 0xBEEF, 9)
        engine.sign(key, message)
        wire = bytearray(serialize_message(message))
        wire[-3] ^= 0x40  # flip a payload bit in flight
        parsed = parse_message(bytes(wire))
        assert not engine.verify(key, parsed)

    def test_feedback_message_with_app_header(self):
        from repro.core.constants import P4AUTH_HEADER, HdrType
        probe = make_probe(5, 9, path_util=42)
        probe.push(P4AUTH, P4AUTH_HEADER.instantiate(
            hdrType=int(HdrType.DP_FEEDBACK)))
        # Serialize puts the probe header before p4auth (stack order);
        # reorder for the canonical wire layout: p4auth first.
        wire = (probe.get(P4AUTH).serialize()
                + probe.get("hula_probe").serialize())
        parsed = parse_message(wire, feedback_header=HULA_PROBE_HEADER)
        assert parsed.get("hula_probe")["path_util"] == 42


class TestMalformedInput:
    def test_truncated_header(self):
        with pytest.raises(WireFormatError):
            parse_message(b"\x01\x02\x03")

    def test_truncated_payload(self):
        wire = serialize_message(build_reg_read_request(1, 2, 3))
        with pytest.raises(WireFormatError):
            parse_message(wire[:16])

    def test_unknown_hdr_type(self):
        wire = bytearray(serialize_message(build_reg_read_request(1, 2, 3)))
        wire[0] = 0x7F
        with pytest.raises(WireFormatError):
            parse_message(bytes(wire))

    def test_unknown_key_exchange_subtype(self):
        wire = bytearray(serialize_message(
            build_eak_message(KeyExchType.EAK_SALT1, 1, 1)))
        wire[0] = 3  # KEY_EXCHANGE
        wire[1] = 0x7F  # bogus msgType
        with pytest.raises(WireFormatError):
            parse_message(bytes(wire))

    def test_length_mismatch_rejected(self):
        wire = bytearray(serialize_message(build_reg_read_request(1, 2, 3)))
        wire[8] = 0xFF  # corrupt the length field (bytes 8-9)
        with pytest.raises(WireFormatError):
            parse_message(bytes(wire))

    def test_non_p4auth_packet_rejected_for_serialize(self):
        from repro.dataplane.packet import Packet
        with pytest.raises(WireFormatError):
            serialize_message(Packet(payload=b"raw"))

    @given(st.binary(max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_bytes_never_crash(self, data):
        try:
            parse_message(data)
        except WireFormatError:
            pass  # rejection is the expected outcome for garbage
