"""Wire formats: builders, digest material, Table III message sizes."""

import pytest

from repro.core.constants import (
    AlertCode,
    HdrType,
    KeyExchType,
    P4AUTH_HEADER,
    RegOpType,
)
from repro.core.messages import (
    build_adhkd_message,
    build_alert,
    build_eak_message,
    build_keyctl_message,
    build_reg_read_request,
    build_reg_write_request,
    build_reg_response,
    digest_material,
    payload_of,
)


def test_p4auth_header_is_14_bytes():
    """The header size drives every Table III byte count."""
    assert P4AUTH_HEADER.byte_width == 14


class TestTableIIIMessageSizes:
    """EAK=22B, ADHKD=30B, portKeyInit/Update=18B (DESIGN.md calibration)."""

    def test_eak_is_22_bytes(self):
        message = build_eak_message(KeyExchType.EAK_SALT1, 0x1234, 1)
        assert message.size_bytes == 22

    def test_adhkd_is_30_bytes(self):
        message = build_adhkd_message(KeyExchType.ADHKD_MSG1, 1, 2, 1)
        assert message.size_bytes == 30

    def test_keyctl_is_18_bytes(self):
        for msg_type in (KeyExchType.PORT_KEY_INIT,
                         KeyExchType.PORT_KEY_UPDATE):
            assert build_keyctl_message(msg_type, 1, 1).size_bytes == 18

    def test_local_init_totals_104_bytes(self):
        total = (2 * build_eak_message(KeyExchType.EAK_SALT1, 0, 1).size_bytes
                 + 2 * build_adhkd_message(KeyExchType.ADHKD_MSG1, 0, 0,
                                           1).size_bytes)
        assert total == 104

    def test_port_init_totals_138_bytes(self):
        total = (build_keyctl_message(KeyExchType.PORT_KEY_INIT, 1,
                                      1).size_bytes
                 + 4 * build_adhkd_message(KeyExchType.ADHKD_MSG1, 0, 0,
                                           1).size_bytes)
        assert total == 138


def test_read_request_fields():
    message = build_reg_read_request(reg_id=7, index=3, seq_num=42)
    hdr = message.get("p4auth")
    assert hdr["hdrType"] == HdrType.REGISTER_OP
    assert hdr["msgType"] == RegOpType.READ_REQ
    assert hdr["seqNum"] == 42
    assert hdr["digest"] == 0
    payload = message.get("reg_op")
    assert payload["regId"] == 7 and payload["index"] == 3


def test_write_request_carries_value():
    message = build_reg_write_request(7, 3, 0xDEAD, 42)
    assert message.get("reg_op")["value"] == 0xDEAD
    assert message.get("p4auth")["msgType"] == RegOpType.WRITE_REQ


def test_response_ack_nack():
    ack = build_reg_response(True, 7, 3, 5, 42)
    nack = build_reg_response(False, 7, 3, 0, 42)
    assert ack.get("p4auth")["msgType"] == RegOpType.ACK
    assert nack.get("p4auth")["msgType"] == RegOpType.NACK


def test_alert_fields():
    alert = build_alert(AlertCode.REPLAY_SUSPECTED, 99, 5)
    assert alert.get("p4auth")["hdrType"] == HdrType.ALERT
    assert alert.get("alert")["code"] == AlertCode.REPLAY_SUSPECTED
    assert alert.get("alert")["detail"] == 99


def test_builders_reject_wrong_types():
    with pytest.raises(ValueError):
        build_eak_message(KeyExchType.ADHKD_MSG1, 0, 1)
    with pytest.raises(ValueError):
        build_adhkd_message(KeyExchType.EAK_SALT1, 0, 0, 1)
    with pytest.raises(ValueError):
        build_keyctl_message(KeyExchType.ADHKD_MSG2, 1, 1)


def test_payload_of():
    assert payload_of(build_reg_read_request(1, 0, 1)) == "reg_op"
    assert payload_of(build_eak_message(KeyExchType.EAK_SALT1, 0, 1)) == "eak"


def test_length_field_matches_payload():
    message = build_adhkd_message(KeyExchType.ADHKD_MSG1, 1, 2, 1)
    assert message.get("p4auth")["length"] == 16


class TestDigestMaterial:
    def test_excludes_digest_field(self):
        message = build_reg_read_request(1, 0, 1)
        before = digest_material(message)
        message.get("p4auth")["digest"] = 0xFFFFFFFF
        assert digest_material(message) == before

    def test_covers_header_fields(self):
        a = build_reg_read_request(1, 0, seq_num=1)
        b = build_reg_read_request(1, 0, seq_num=2)
        assert digest_material(a) != digest_material(b)

    def test_covers_payload(self):
        a = build_reg_write_request(1, 0, 5, 1)
        b = build_reg_write_request(1, 0, 6, 1)
        assert digest_material(a) != digest_material(b)

    def test_covers_extra_protected_headers(self):
        """A probe body riding with the P4Auth header is covered too."""
        from repro.systems.hula import make_probe
        from repro.core.constants import P4AUTH
        probe = make_probe(5, 1, path_util=10)
        probe.push(P4AUTH, P4AUTH_HEADER.instantiate(
            hdrType=int(HdrType.DP_FEEDBACK)))
        before = digest_material(probe)
        probe.get("hula_probe")["path_util"] = 99
        assert digest_material(probe) != before

    def test_covers_raw_payload_bytes(self):
        message = build_reg_read_request(1, 0, 1)
        before = digest_material(message)
        message.payload = b"extra"
        assert digest_material(message) != before
