"""Digest-width cost model (§XI): anchors and monotonicity."""

import pytest

from repro.core.digestwidth import (
    SUPPORTED_WIDTHS,
    brute_force_trials,
    digest_width_cost,
    width_sweep,
)


def test_base_width_costs_nothing_extra():
    base = digest_width_cost(32)
    assert base.lanes == 1
    assert base.recirculations == 0


def test_paper_anchor_256_bits():
    base = digest_width_cost(32)
    wide = digest_width_cost(256)
    assert 540 <= wide.hash_unit_increase_pct(base) <= 580  # paper: 560%
    assert wide.stage_increase_pct(base) == 100.0           # paper: 100%


def test_recirculation_cost_is_100s_of_ns():
    wide = digest_width_cost(256)
    assert wide.recirculations == 1
    assert wide.extra_latency_ns >= 300


def test_monotone_in_width():
    sweep = width_sweep()
    for attr in ("hash_units", "stages", "extra_latency_ns"):
        values = [getattr(c, attr) for c in sweep]
        assert values == sorted(values)


def test_compute_doubles_per_doubling():
    """'digest computation ... multiplied by a factor of 2' per size step
    (the lane-time component, before recirculation penalties)."""
    lane_ns_32 = digest_width_cost(32).lanes
    lane_ns_64 = digest_width_cost(64).lanes
    assert lane_ns_64 == 2 * lane_ns_32


def test_unsupported_width_rejected():
    with pytest.raises(ValueError):
        digest_width_cost(48)


def test_brute_force_scaling():
    assert brute_force_trials(32) == 1 << 31
    assert brute_force_trials(64) == 1 << 63
    for width in SUPPORTED_WIDTHS[:-1]:
        assert brute_force_trials(width * 2) > brute_force_trials(width) ** 1.5
