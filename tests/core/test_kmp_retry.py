"""KMP failure recovery: retries under lossy and hostile channels."""

import pytest

from repro.attacks.base import MessageDropper
from repro.core.constants import P4AUTH
from repro.crypto.prng import XorShiftPrng
from tests.conftest import Deployment


class LossyTap:
    """Drops each message with a fixed probability (deterministic PRNG)."""

    def __init__(self, probability: float, seed: int = 77):
        self.probability = probability
        self._prng = XorShiftPrng(seed)
        self.dropped = 0

    def __call__(self, packet, direction):
        if self._prng.uniform() < self.probability:
            self.dropped += 1
            return None
        return packet


def test_local_init_survives_lossy_channel():
    dep = Deployment(num_switches=1, bootstrap=False)
    # 30% loss kills ~3/4 of 4-message attempts; allow enough retries
    # that the run converges (deterministic PRNG seed).
    dep.controller.kmp.max_attempts = 10
    tap = LossyTap(0.3, seed=5)
    dep.net.control_channels["s1"].add_tap(tap)
    records = []
    dep.controller.kmp.local_key_init("s1", on_done=records.append)
    dep.run(2.0)
    assert tap.dropped > 0 or records  # the tap had a chance to interfere
    assert records, "exchange never completed despite retries"
    assert (dep.controller.keys.local_key("s1")
            == dep.dataplanes["s1"].keys.local_key())


def test_retries_counted():
    dep = Deployment(num_switches=1, bootstrap=False)
    # Drop exactly the first EAK message, then go clean.
    state = {"dropped": False}

    def drop_first(packet, direction):
        if not state["dropped"] and packet.has(P4AUTH):
            state["dropped"] = True
            return None
        return packet

    dep.net.control_channels["s1"].add_tap(drop_first)
    dep.controller.kmp.local_key_init("s1")
    dep.run(1.0)
    assert dep.controller.kmp.stats.retries == 1
    assert dep.controller.keys.has_local_key("s1")


def test_gives_up_after_max_attempts():
    dep = Deployment(num_switches=1, bootstrap=False)
    dropper = MessageDropper(lambda p: p.has(P4AUTH))
    dropper.attach(dep.net.control_channels["s1"])
    dep.controller.kmp.local_key_init("s1")
    dep.run(2.0)
    failures = dep.controller.kmp.stats.failures
    assert len(failures) == 1
    assert failures[0].op == "local_init"
    assert failures[0].attempts == dep.controller.kmp.max_attempts
    assert not dep.controller.keys.has_local_key("s1")


def test_port_init_retries_on_loss():
    dep = Deployment(num_switches=2, bootstrap=False)
    dep.net.connect("s1", 1, "s2", 1)
    # Clean local inits first.
    dep.controller.kmp.local_key_init("s1")
    dep.controller.kmp.local_key_init("s2")
    dep.run(1.0)
    # Now drop the first redirected ADHKD leg toward s2.
    state = {"dropped": False}

    def drop_first(packet, direction):
        if (not state["dropped"] and direction == "c->dp"
                and packet.has("adhkd")):
            state["dropped"] = True
            return None
        return packet

    dep.net.control_channels["s2"].add_tap(drop_first)
    records = []
    dep.controller.kmp.port_key_init("s1", 1, on_done=records.append)
    dep.run(2.0)
    assert records
    assert (dep.dataplanes["s1"].keys.port_key(1)
            == dep.dataplanes["s2"].keys.port_key(1) != 0)
    assert dep.controller.kmp.stats.retries >= 1


def test_port_update_gives_up_on_dead_link():
    dep = Deployment(num_switches=2,
                     connect_pairs=[("s1", 1, "s2", 1)])
    old_key = dep.dataplanes["s1"].keys.port_key(1)
    link = dep.net.link_between("s1", "s2")
    dropper = MessageDropper(lambda p: p.has("adhkd"))
    dropper.attach(link)
    dep.controller.kmp.port_key_update("s1", 1)
    dep.run(2.0)
    failures = [f for f in dep.controller.kmp.stats.failures
                if f.op == "port_update"]
    assert failures
    # The endpoints never desynchronize: both still hold a usable key.
    assert (dep.dataplanes["s1"].keys.port_key(1, 0),
            dep.dataplanes["s1"].keys.port_key(1, 1)).count(old_key) >= 1


def test_successful_exchange_triggers_no_retry(single_switch):
    # Bootstrap already ran in the fixture; quiesce and assert cleanliness.
    single_switch.run(1.0)
    assert single_switch.controller.kmp.stats.retries == 0
    assert single_switch.controller.kmp.stats.failures == []


class TestDeadPeer:
    """Regression: a dead peer must not spin the event loop (ISSUE 2)."""

    def test_dead_peer_abandons_within_a_tiny_event_budget(self):
        dep = Deployment(num_switches=1, bootstrap=False)
        dep.net.nodes["s1"].up = False  # crashed before key exchange
        records = []
        dep.controller.kmp.on_abandoned.append(records.append)
        dep.controller.kmp.local_key_init("s1")
        dep.sim.run(until=10.0, max_events=5_000)
        # Bounded retries: the exchange is abandoned, not retried forever.
        assert dep.sim.budget_exhaustions == 0
        assert [f.op for f in records] == ["local_init"]
        assert dep.controller.kmp.stats.failures == records
        # The loop actually drained: nothing left pending anywhere.
        assert dep.sim.pending() == 0
        assert not dep.controller.kmp._by_seq

    def test_dead_peer_leaves_the_loop_idle_afterwards(self):
        dep = Deployment(num_switches=1, bootstrap=False)
        dep.net.nodes["s1"].up = False
        dep.controller.kmp.local_key_init("s1")
        dep.sim.run(until=10.0)
        executed_after_abandon = dep.sim.run(until=100.0)
        assert executed_after_abandon == 0  # no self-rescheduling spin

    def test_bootstrap_all_resolves_despite_a_dead_switch(self):
        dep = Deployment(num_switches=2, bootstrap=False,
                         connect_pairs=[("s1", 1, "s2", 1)])
        dep.net.nodes["s2"].up = False
        done = []
        dep.controller.kmp.bootstrap_all(on_done=lambda: done.append(
            dep.sim.now))
        dep.sim.run(until=10.0, max_events=50_000)
        # The barrier tolerates the failure instead of hanging forever.
        assert done, "bootstrap_all never resolved with a dead switch"
        assert dep.controller.keys.has_local_key("s1")
        assert not dep.controller.keys.has_local_key("s2")
        # Port keying over the half-dead link was skipped, not leaked.
        assert not dep.controller.kmp._by_seq
        assert not dep.controller.kmp._by_port
        failures = {f.switch for f in dep.controller.kmp.stats.failures}
        assert failures == {"s2"}


class TestBackoffCeiling:
    """``retry_delay`` must never exceed ``max_backoff_s`` (the documented
    hard ceiling), even after jitter is applied.  The historical bug
    applied jitter *after* capping, overshooting the ceiling by up to
    ``backoff_jitter`` on late attempts."""

    def test_jittered_delay_respects_max_backoff(self):
        dep = Deployment(num_switches=1, bootstrap=False)
        kmp = dep.controller.kmp
        for attempt in range(1, 40):
            delay = kmp.retry_delay(attempt)
            assert delay <= kmp.max_backoff_s, (
                f"attempt {attempt}: delay {delay} exceeds the "
                f"max_backoff_s ceiling {kmp.max_backoff_s}")

    def test_uncapped_attempts_still_grow_and_jitter(self):
        dep = Deployment(num_switches=1, bootstrap=False)
        kmp = dep.controller.kmp
        # Attempt 1 is the bare base timeout (no jitter, no PRNG draw).
        assert kmp.retry_delay(1) == kmp.retry_timeout_s
        # Attempt 2 grows exponentially and adds positive jitter, but
        # stays below the ceiling when the base delay leaves headroom.
        delay2 = kmp.retry_delay(2)
        base2 = kmp.retry_timeout_s * kmp.backoff_factor
        assert base2 <= delay2 <= base2 * (1.0 + kmp.backoff_jitter)

    def test_ceiling_holds_at_the_cap_boundary(self):
        """Once the exponential schedule reaches the cap, jitter has no
        headroom at all: the delay is exactly ``max_backoff_s``."""
        dep = Deployment(num_switches=1, bootstrap=False)
        kmp = dep.controller.kmp
        # With the defaults (0.02 * 2^(n-1), cap 0.25) attempt 5 onward
        # saturates the ceiling.
        for attempt in (5, 8, 13, 21):
            assert kmp.retry_delay(attempt) == kmp.max_backoff_s
