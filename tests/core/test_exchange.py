"""EAK and ADHKD endpoint logic: agreement, state handling, secrecy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exchange import AdhkdEndpoint, EakEndpoint, combine_salts
from repro.crypto.modified_dh import DhParameters, dh_shared
from repro.crypto.prng import XorShiftPrng


def test_combine_salts_uses_low_lanes():
    assert combine_salts(0xFFFF_FFFF_0000_0001,
                         0xAAAA_AAAA_0000_0002) == 0x0000_0001_0000_0002


class TestEak:
    def test_both_sides_derive_same_kauth(self):
        seed = 0x5EED5EED5EED5EED
        controller = EakEndpoint(seed, XorShiftPrng(1))
        dataplane = EakEndpoint(seed, XorShiftPrng(2))
        salt1 = controller.start()
        salt2, k_auth_dp = dataplane.respond(salt1)
        k_auth_c = controller.finish(salt2)
        assert k_auth_c == k_auth_dp

    def test_different_seed_diverges(self):
        controller = EakEndpoint(1, XorShiftPrng(1))
        dataplane = EakEndpoint(2, XorShiftPrng(2))
        salt1 = controller.start()
        salt2, k_auth_dp = dataplane.respond(salt1)
        assert controller.finish(salt2) != k_auth_dp

    def test_finish_without_start_rejected(self):
        endpoint = EakEndpoint(1, XorShiftPrng(1))
        with pytest.raises(RuntimeError):
            endpoint.finish(0)

    def test_state_consumed_after_finish(self):
        endpoint = EakEndpoint(1, XorShiftPrng(1))
        endpoint.start()
        endpoint.finish(0)
        with pytest.raises(RuntimeError):
            endpoint.finish(0)

    def test_fresh_salts_fresh_keys(self):
        seed = 0x1234
        c1, d1 = EakEndpoint(seed, XorShiftPrng(1)), EakEndpoint(seed, XorShiftPrng(2))
        c2, d2 = EakEndpoint(seed, XorShiftPrng(3)), EakEndpoint(seed, XorShiftPrng(4))
        s1 = c1.start()
        key_a = d1.respond(s1)[1]
        s2 = c2.start()
        key_b = d2.respond(s2)[1]
        assert key_a != key_b


class TestAdhkd:
    def test_both_sides_derive_same_master(self):
        initiator = AdhkdEndpoint(XorShiftPrng(10))
        responder = AdhkdEndpoint(XorShiftPrng(20))
        pk1, salt1 = initiator.start()
        pk2, salt2, master_r = responder.respond(pk1, salt1)
        master_i = initiator.finish(pk2, salt2)
        assert master_i == master_r

    def test_pending_state_roundtrip(self):
        """DP initiators persist (R1, S1) in registers and resume."""
        initiator = AdhkdEndpoint(XorShiftPrng(10))
        pk1, salt1 = initiator.start()
        r1, s1 = initiator.pending_state()
        responder = AdhkdEndpoint(XorShiftPrng(20))
        pk2, salt2, master_r = responder.respond(pk1, salt1)

        resumed = AdhkdEndpoint(XorShiftPrng(99))
        resumed.resume(r1, s1)
        assert resumed.finish(pk2, salt2) == master_r

    def test_finish_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            AdhkdEndpoint(XorShiftPrng(1)).finish(0, 0)
        with pytest.raises(RuntimeError):
            AdhkdEndpoint(XorShiftPrng(1)).pending_state()

    def test_tampered_pk_desynchronizes(self):
        """Without authentication, a MitM flipping PK bits silently
        desynchronizes the derived keys — the R3 failure mode."""
        initiator = AdhkdEndpoint(XorShiftPrng(10))
        responder = AdhkdEndpoint(XorShiftPrng(20))
        pk1, salt1 = initiator.start()
        pk2, salt2, master_r = responder.respond(pk1 ^ 0b100, salt1)
        master_i = initiator.finish(pk2, salt2)
        assert master_i != master_r

    def test_eavesdropper_with_group_constants_inverts_dh(self):
        """Documented weakness of the paper's modified DH (DESIGN.md):
        PK = (G XOR P) AND R, so an eavesdropper who knows the group
        constants recovers the pre-master as (PK1 AND PK2) XOR P.  The
        paper's own security argument (§VIII, §XI) therefore rests on
        keeping P/G and the KDF logic secret inside the P4 binary, not
        on DH hardness.  We reproduce the algebra faithfully and assert
        it, so the property is visible rather than hidden."""
        initiator = AdhkdEndpoint(XorShiftPrng(10))
        responder = AdhkdEndpoint(XorShiftPrng(20))
        pk1, salt1 = initiator.start()
        pk2, salt2, master = responder.respond(pk1, salt1)
        assert initiator.finish(pk2, salt2) == master

        params = DhParameters()
        from repro.crypto.kdf import kdf
        salt = combine_salts(salt1, salt2)
        recovered_premaster = (pk1 & pk2) ^ params.prime
        assert kdf(recovered_premaster, salt) == master

    def test_eavesdropper_without_group_constants_fails(self):
        """Without the (binary-resident) group constants and KDF logic,
        observing (PK1, S1, PK2, S2) does not yield the master secret —
        the boundary the paper's obfuscation argument defends."""
        initiator = AdhkdEndpoint(XorShiftPrng(10))
        responder = AdhkdEndpoint(XorShiftPrng(20))
        pk1, salt1 = initiator.start()
        pk2, salt2, master = responder.respond(pk1, salt1)
        initiator.finish(pk2, salt2)

        from repro.crypto.kdf import kdf
        salt = combine_salts(salt1, salt2)
        guesses = [
            kdf(pk1 & pk2, salt),            # missing the XOR with P
            kdf(pk1 ^ pk2, salt),
            kdf(pk1, salt),
            kdf(pk2, salt),
            kdf((pk1 & pk2) ^ 0x1234, salt),  # wrong P guess
            (pk1 & pk2),                      # skipping the private KDF
        ]
        assert master not in guesses

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1),
           st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=30, deadline=None)
    def test_agreement_property(self, seed_a, seed_b):
        initiator = AdhkdEndpoint(XorShiftPrng(seed_a or 1))
        responder = AdhkdEndpoint(XorShiftPrng(seed_b or 2))
        pk1, salt1 = initiator.start()
        pk2, salt2, master_r = responder.respond(pk1, salt1)
        assert initiator.finish(pk2, salt2) == master_r
