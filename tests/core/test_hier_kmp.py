"""Hierarchical KMP: regional authorities and the two-version invariant."""

import pytest

from repro.core.kmp import HierarchicalKMP, RegionalKeyAuthority
from repro.experiments.fleet_scale import build_fleet_deployment
from repro.experiments.table3_scalability import build_regular_network
from repro.telemetry import Telemetry


def small_region(m=9, seed=1, telemetry=None):
    sim, _net, controller, graph = build_regular_network(m=m, seed=seed)
    authority = RegionalKeyAuthority("r0", controller, telemetry=telemetry)
    return sim, controller, graph, authority


class TestRegionalKeyAuthority:
    def test_bootstrap_times_and_counts_the_round(self):
        sim, controller, graph, authority = small_region()
        done = []
        authority.bootstrap(on_done=done.append)
        sim.run(until=30.0)
        assert len(done) == 1
        convergence = done[0]
        assert convergence.op == "bootstrap"
        assert convergence.region == "r0"
        # One record per local init plus one per link's port init.
        assert convergence.completed == 9 + graph.number_of_edges()
        assert convergence.failed == 0
        assert convergence.duration_s > 0
        assert authority.bootstraps == 1

    def test_rollover_bumps_every_epoch_exactly_once(self):
        sim, controller, _graph, authority = small_region()
        authority.bootstrap()
        sim.run(until=30.0)
        assert all(authority.rollover_epoch(sw) == 0
                   for sw in authority.switches())
        done = []
        authority.rollover(on_done=done.append)
        sim.run(until=sim.now + 30.0)
        assert len(done) == 1 and done[0].failed == 0
        assert all(authority.rollover_epoch(sw) == 1
                   for sw in authority.switches())
        assert authority.rollovers == 1

    def test_concurrent_rollover_is_rejected(self):
        sim, _controller, _graph, authority = small_region()
        authority.bootstrap()
        sim.run(until=30.0)
        authority.rollover()
        with pytest.raises(RuntimeError, match="already in flight"):
            authority.rollover()
        sim.run(until=sim.now + 30.0)  # let the first one finish
        authority.rollover()           # now legal again
        sim.run(until=sim.now + 30.0)
        assert authority.rollovers == 2

    def test_clean_fleet_has_no_forgery_evidence(self):
        sim, _controller, _graph, authority = small_region()
        authority.bootstrap()
        sim.run(until=30.0)
        divergence = authority.seq_divergence()
        assert min(divergence.values()) >= 0
        assert not any(authority.tamper_indicators().values())

    def test_per_region_telemetry_labels(self):
        telemetry = Telemetry(enabled=True)
        sim, _controller, _graph, authority = small_region(
            telemetry=telemetry)
        authority.bootstrap()
        sim.run(until=30.0)
        authority.rollover()
        sim.run(until=sim.now + 30.0)
        metrics = telemetry.metrics
        assert metrics.value("kmp_region_bootstrap_total", region="r0") == 1
        assert metrics.value("kmp_region_rollover_total", region="r0") == 1
        histogram = metrics.get("kmp_region_convergence_seconds",
                                region="r0", op="rollover")
        assert histogram is not None and histogram.count == 1


class TestHierarchicalKMP:
    def test_every_region_needs_an_authority(self):
        world, _extras, hier, controllers = build_fleet_deployment(
            12, 2, degree=4, seed=1)
        with pytest.raises(ValueError, match="without a key authority"):
            HierarchicalKMP(world, {"r0": hier.authorities["r0"]})

    def test_fleet_bootstrap_and_rollover_converge(self):
        world, _extras, hier, _controllers = build_fleet_deployment(
            12, 2, degree=4, seed=1)
        bootstrap = hier.bootstrap_fleet(deadline_s=30.0)
        assert bootstrap["converged"] and not bootstrap["failed"]
        assert sorted(bootstrap["regions"]) == ["r0", "r1"]
        rollover = hier.rollover_fleet(deadline_s=30.0)
        assert rollover["converged"] and not rollover["failed"]
        assert rollover["boundary_violations"] == 0
        for region in world.regions:
            authority = hier.authorities[region.id]
            assert all(authority.rollover_epoch(sw) == 1
                       for sw in region.switches)

    def test_boundary_gaps_and_invariant(self):
        world, _extras, hier, _controllers = build_fleet_deployment(
            12, 2, degree=4, seed=1)
        hier.bootstrap_fleet(deadline_s=30.0)
        gaps = hier.boundary_epoch_gaps()
        assert len(gaps) == len(world.boundary_links)
        assert all(gap["gap"] == 0 for gap in gaps)
        assert hier.check_two_version_invariant() == []
        # Fabricate a region that raced two rollovers ahead: the
        # invariant check must flag every boundary link it touches.
        link = world.boundary_links[0]
        hier.authorities[link.region_a]._update_counts[link.switch_a] = 2
        violations = hier.check_two_version_invariant()
        assert violations and violations[0]["gap"] == 2

    def test_consistency_report_is_clean_after_rollover(self):
        world, _extras, hier, _controllers = build_fleet_deployment(
            12, 2, degree=4, seed=1)
        hier.bootstrap_fleet(deadline_s=30.0)
        hier.rollover_fleet(deadline_s=30.0)
        world.run_until(lambda: world.pending() == 0,
                        deadline=world.now + 1.0)
        report = hier.consistency_report()
        assert report["seq_divergence_min"] >= 0
        assert report["boundary_violations"] == 0
        assert not any(report["tamper_indicators"].values())
