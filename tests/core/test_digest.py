"""DigestEngine: sign/verify symmetry, tamper sensitivity, accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.digest import DigestEngine
from repro.core.messages import build_reg_write_request
from repro.dataplane.externs import HashExtern

KEY = 0xA5A5A5A55A5A5A5A


def signed_message(engine, key=KEY, value=0xBEEF, seq=1):
    message = build_reg_write_request(1, 0, value, seq)
    engine.sign(key, message)
    return message


def test_sign_then_verify():
    engine = DigestEngine()
    message = signed_message(engine)
    assert engine.verify(KEY, message)


def test_wrong_key_fails():
    engine = DigestEngine()
    message = signed_message(engine)
    assert not engine.verify(KEY ^ 1, message)


def test_payload_tamper_fails():
    engine = DigestEngine()
    message = signed_message(engine)
    message.get("reg_op")["value"] = 0xDEAD
    assert not engine.verify(KEY, message)


def test_header_tamper_fails():
    engine = DigestEngine()
    message = signed_message(engine)
    message.get("p4auth")["seqNum"] = 999
    assert not engine.verify(KEY, message)


def test_digest_field_tamper_fails():
    engine = DigestEngine()
    message = signed_message(engine)
    message.get("p4auth")["digest"] ^= 1
    assert not engine.verify(KEY, message)


def test_extern_and_software_agree():
    extern_engine = DigestEngine(extern=HashExtern("halfsiphash"))
    software_engine = DigestEngine(algorithm="halfsiphash")
    message = signed_message(extern_engine)
    assert software_engine.verify(KEY, message)


def test_crc_flavor_differs_from_halfsiphash():
    hsh = DigestEngine(algorithm="halfsiphash")
    crc = DigestEngine(algorithm="crc32")
    message = build_reg_write_request(1, 0, 1, 1)
    assert hsh.compute(KEY, message) != crc.compute(KEY, message)


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError):
        DigestEngine(algorithm="sha256")


def test_extern_invocations_counted():
    extern = HashExtern("halfsiphash")
    engine = DigestEngine(extern=extern)
    message = signed_message(engine)
    engine.verify(KEY, message)
    assert extern.invocations == 2  # one sign + one verify


def test_verify_counters():
    engine = DigestEngine()
    message = signed_message(engine)
    engine.verify(KEY, message)
    engine.verify(KEY ^ 1, message)
    assert engine.verified_ok == 1
    assert engine.verified_fail == 1
    assert engine.computed == 3  # sign + 2 verifies


class TestKeyStateFastPath:
    """The batch fast path: one schedule derivation per key, bit-identical
    tags, and no effect on the extern (data-plane) digest path."""

    def test_batch_under_one_key_derives_the_schedule_once(self):
        engine = DigestEngine()
        for seq in range(1, 33):
            message = build_reg_write_request(1, 0, 0x10 + seq, seq)
            engine.sign(KEY, message)
            assert engine.verify(KEY, message)
        assert engine.key_state_misses == 1
        assert engine.key_state_hits == 63  # 32 signs + 32 verifies - 1 miss

    def test_cached_and_cold_engines_agree(self):
        warm = DigestEngine()
        warm.compute(KEY, build_reg_write_request(1, 0, 1, 1))  # prime
        cold = DigestEngine()
        for seq in (1, 7, 0xFFFFFFFF):
            message = build_reg_write_request(2, 3, 0xCAFE, seq)
            assert warm.compute(KEY, message) == cold.compute(KEY, message)

    def test_rolled_key_is_a_cache_miss_not_a_stale_hit(self):
        engine = DigestEngine()
        message = build_reg_write_request(1, 0, 1, 1)
        old = engine.compute(KEY, message)
        new = engine.compute(KEY ^ 0xFF, message)
        assert old != new
        assert engine.key_state_misses == 2

    def test_cache_bound_resets_instead_of_growing(self):
        engine = DigestEngine()
        message = build_reg_write_request(1, 0, 1, 1)
        for i in range(engine.KEY_CACHE_MAX + 8):
            engine.compute(i, message)
        assert len(engine._key_states) <= engine.KEY_CACHE_MAX

    def test_extern_engines_bypass_the_cache(self):
        extern = HashExtern("halfsiphash")
        engine = DigestEngine(extern=extern)
        for seq in (1, 2, 3):
            engine.compute(KEY, build_reg_write_request(1, 0, 1, seq))
        # Every data-plane digest still hits the hash unit (the modeled
        # PISA pipeline runs every stage for every packet).
        assert extern.invocations == 3
        assert engine.key_state_hits == engine.key_state_misses == 0

    def test_crc_flavor_is_unaffected(self):
        engine = DigestEngine(algorithm="crc32")
        message = build_reg_write_request(1, 0, 1, 1)
        first = engine.compute(KEY, message)
        assert engine.compute(KEY, message) == first
        assert engine.key_state_hits == engine.key_state_misses == 0


@given(st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.integers(min_value=0, max_value=(1 << 32) - 1))
@settings(max_examples=50, deadline=None)
def test_sign_verify_roundtrip_property(key, value, seq):
    engine = DigestEngine()
    message = build_reg_write_request(3, 1, value, seq)
    engine.sign(key, message)
    assert engine.verify(key, message)
