"""Key management protocol: the four operations, automation, accounting."""

import pytest

from tests.conftest import Deployment


def test_local_init_agrees(single_switch):
    dep = single_switch
    assert (dep.controller.keys.local_key("s1")
            == dep.dataplanes["s1"].keys.local_key())


def test_local_init_message_footprint(single_switch):
    stats = single_switch.controller.kmp.stats
    assert stats.message_count("local_init") == 4
    assert stats.byte_count("local_init") == 104


def test_port_init_agrees(switch_pair):
    dep = switch_pair
    k1 = dep.dataplanes["s1"].keys.port_key(1)
    k2 = dep.dataplanes["s2"].keys.port_key(1)
    assert k1 == k2 != 0


def test_port_init_message_footprint(switch_pair):
    stats = switch_pair.controller.kmp.stats
    assert stats.message_count("port_init") == 5
    assert stats.byte_count("port_init") == 138


def test_controller_never_stores_port_key(switch_pair):
    """The controller relays the port-key exchange but cannot hold the
    derived key: nothing in its key store matches K_port."""
    dep = switch_pair
    k_port = dep.dataplanes["s1"].keys.port_key(1)
    keys = dep.controller.keys
    controller_known = {
        keys.seed("s1"), keys.seed("s2"),
        keys.auth_key("s1"), keys.auth_key("s2"),
        keys.local_key("s1"), keys.local_key("s2"),
    }
    assert k_port not in controller_known


def test_local_update_rolls_key(single_switch):
    dep = single_switch
    old = dep.controller.keys.local_key("s1")
    records = []
    dep.controller.kmp.local_key_update("s1", on_done=records.append)
    dep.run(1.0)
    new = dep.controller.keys.local_key("s1")
    assert new != old
    assert new == dep.dataplanes["s1"].keys.local_key()
    assert records[0].messages == 2
    assert records[0].bytes == 60


def test_reg_ops_work_after_local_update(single_switch):
    dep = single_switch
    dep.controller.kmp.local_key_update("s1")
    dep.run(1.0)
    results = []
    dep.controller.write_register("s1", "demo", 1, 0xAB,
                                  lambda ok, v: results.append(ok))
    dep.run(1.0)
    assert results == [True]


def test_port_update_rolls_key(switch_pair):
    dep = switch_pair
    old = dep.dataplanes["s1"].keys.port_key(1)
    records = []
    dep.controller.kmp.port_key_update("s1", 1, on_done=records.append)
    dep.run(1.0)
    k1 = dep.dataplanes["s1"].keys.port_key(1)
    k2 = dep.dataplanes["s2"].keys.port_key(1)
    assert k1 == k2 != old
    assert records[0].messages == 3
    assert records[0].bytes == 78


def test_port_reinit_after_update_works(switch_pair):
    dep = switch_pair
    dep.controller.kmp.port_key_update("s1", 1)
    dep.run(1.0)
    dep.controller.kmp.port_key_init("s1", 1)
    dep.run(1.0)
    assert (dep.dataplanes["s1"].keys.port_key(1)
            == dep.dataplanes["s2"].keys.port_key(1))


def test_rtt_ordering_matches_fig20(switch_pair):
    """port_init > local_init > local_update > port_update (Fig 20)."""
    dep = switch_pair
    kmp = dep.controller.kmp
    kmp.local_key_update("s1")
    dep.run(0.5)
    kmp.port_key_update("s1", 1)
    dep.run(0.5)
    stats = kmp.stats
    assert (stats.mean_rtt("port_init") > stats.mean_rtt("local_init")
            > stats.mean_rtt("local_update") > stats.mean_rtt("port_update"))


def test_keys_differ_across_switches(switch_pair):
    dep = switch_pair
    assert (dep.controller.keys.local_key("s1")
            != dep.controller.keys.local_key("s2"))


def test_rollover_refreshes_everything(switch_pair):
    dep = switch_pair
    old_local = dep.controller.keys.local_key("s1")
    old_port = dep.dataplanes["s1"].keys.port_key(1)
    dep.controller.kmp.schedule_rollover(0.5)
    dep.run(0.8)
    assert dep.controller.keys.local_key("s1") != old_local
    assert dep.dataplanes["s1"].keys.port_key(1) != old_port
    assert (dep.dataplanes["s1"].keys.port_key(1)
            == dep.dataplanes["s2"].keys.port_key(1))
    dep.controller.kmp.cancel_rollover()


def test_rollover_repeats(switch_pair):
    dep = switch_pair
    dep.controller.kmp.schedule_rollover(0.2)
    dep.run(1.0)
    dep.controller.kmp.cancel_rollover()
    assert dep.controller.kmp.stats.count("local_update") >= 4


def test_rollover_interval_validated(switch_pair):
    with pytest.raises(ValueError):
        switch_pair.controller.kmp.schedule_rollover(0)


def test_topology_automation_keys_new_link():
    dep = Deployment(num_switches=2, bootstrap=False)
    dep.controller.kmp.enable_topology_automation()
    done = []
    dep.controller.kmp.bootstrap_all(on_done=lambda: done.append(1))
    dep.run(1.0)
    # Wire a new link after bootstrap: the port-up event triggers init.
    link = dep.net.connect("s1", 2, "s2", 2)
    dep.net.set_link_up(link, True)
    dep.run(1.0)
    assert (dep.dataplanes["s1"].keys.port_key(2)
            == dep.dataplanes["s2"].keys.port_key(2) != 0)


def test_topology_automation_single_initiator():
    """A link-up event must trigger exactly one exchange, not one per
    endpoint (racing exchanges could desynchronize the key)."""
    dep = Deployment(num_switches=2, bootstrap=False)
    dep.controller.kmp.enable_topology_automation()
    dep.controller.kmp.bootstrap_all()
    dep.run(1.0)
    before = dep.controller.kmp.stats.count("port_init")
    link = dep.net.connect("s1", 3, "s2", 3)
    dep.net.set_link_up(link, True)
    dep.run(1.0)
    assert dep.controller.kmp.stats.count("port_init") == before + 1


def test_switch_links_deduplicates(switch_pair):
    links = switch_pair.controller.kmp.switch_links()
    assert links == [("s1", 1, "s2", 1)]


def test_bootstrap_empty_network_completes():
    dep = Deployment(num_switches=0, bootstrap=False)
    done = []
    dep.controller.kmp.bootstrap_all(on_done=lambda: done.append(1))
    assert done == [1]
