"""Sequence-number wraparound (§VIII replay-defense corner case).

The paper: "A corner possibility for the attacker to succeed is if the
sequence number wraps around to the same value as in the recorded
message.  This can be further mitigated by allocating more bits ... and
changing the local and port keys within the wrap-around time so the
replayed message's digest becomes invalid."

These tests pin the implemented behavior at the 32-bit boundary and
demonstrate exactly the paper's mitigation: a key rollover before the
wrap invalidates recorded messages outright.
"""

from repro.core.constants import P4AUTH
from repro.core.digest import DigestEngine
from repro.core.messages import build_reg_write_request
from tests.conftest import Deployment

SEQ_MAX = 0xFFFFFFFF


def signed_write(dep, seq, value):
    switch = dep.switch("s1")
    message = build_reg_write_request(
        switch.registers.id_of("demo"), 0, value, seq)
    message.get(P4AUTH)["keyVer"] = \
        dep.controller.keys.local_key_version("s1")
    DigestEngine().sign(dep.controller.keys.local_key("s1"), message)
    return message


def inject(dep, message):
    node = dep.net.nodes["s1"]
    dep.sim.schedule(0.0, node.receive, message.copy(), 0)
    dep.run(0.1)


def test_expected_seq_wraps_to_zero(single_switch):
    dep = single_switch
    dataplane = dep.dataplanes["s1"]
    inject(dep, signed_write(dep, SEQ_MAX, 0x1))
    # expected_seq advanced past the maximum, wrapping to 0.
    assert dataplane._expected_seq.read(0) == 0
    # A seq-0 message after the wrap is accepted (not a false replay).
    inject(dep, signed_write(dep, 0, 0x2))
    assert dep.switch("s1").registers.get("demo").read(0) == 0x2
    assert dataplane.stats.replays_detected == 0


def test_wraparound_replay_window_exists_without_rollover(single_switch):
    """The documented corner: after a wrap, an old recorded message's
    sequence number can look fresh again (still authenticated, so the
    value it re-applies is a *stale authorized* value, not arbitrary)."""
    dep = single_switch
    recorded = signed_write(dep, 5, 0xAAAA)
    inject(dep, recorded)           # applied at seq 5
    inject(dep, signed_write(dep, SEQ_MAX, 0xBBBB))  # wrap
    inject(dep, recorded)           # seq 5 >= expected 0: accepted again
    assert dep.switch("s1").registers.get("demo").read(0) == 0xAAAA


def test_one_rollover_does_not_retire_the_old_key(single_switch):
    """Two-version consistency keeps the previous key addressable for
    exactly one rollover: a message recorded under it still verifies.
    This is the §VI-C availability/security trade-off made explicit."""
    dep = single_switch
    recorded = signed_write(dep, 5, 0xAAAA)
    inject(dep, recorded)
    dep.controller.kmp.local_key_update("s1")
    dep.run(1.0)
    inject(dep, signed_write(dep, SEQ_MAX, 0xBBBB))
    inject(dep, recorded)  # old slot still holds the recorded key
    assert dep.switch("s1").registers.get("demo").read(0) == 0xAAAA


def test_two_rollovers_close_the_wraparound_window(single_switch):
    """The paper's mitigation, precisely: after the slot the recorded
    message was signed under is overwritten (the *second* rollover), the
    replay's digest is invalid regardless of sequence numbers."""
    dep = single_switch
    recorded = signed_write(dep, 5, 0xAAAA)
    inject(dep, recorded)
    for _ in range(2):
        dep.controller.kmp.local_key_update("s1")
        dep.run(1.0)
    inject(dep, signed_write(dep, SEQ_MAX, 0xBBBB))
    before = dep.dataplanes["s1"].stats.digest_fail_cdp
    inject(dep, recorded)
    assert dep.switch("s1").registers.get("demo").read(0) == 0xBBBB
    assert dep.dataplanes["s1"].stats.digest_fail_cdp == before + 1
