"""Sequence-number wraparound (§VIII replay-defense corner case).

The paper: "A corner possibility for the attacker to succeed is if the
sequence number wraps around to the same value as in the recorded
message.  This can be further mitigated by allocating more bits ... and
changing the local and port keys within the wrap-around time so the
replayed message's digest becomes invalid."

These tests pin the implemented behavior at the 32-bit boundary and
demonstrate exactly the paper's mitigation: a key rollover before the
wrap invalidates recorded messages outright.
"""

from repro.core.constants import P4AUTH
from repro.core.digest import DigestEngine
from repro.core.messages import build_reg_write_request
from repro.runtime.batch import BatchController
from tests.conftest import Deployment

SEQ_MAX = 0xFFFFFFFF


def signed_write(dep, seq, value):
    switch = dep.switch("s1")
    message = build_reg_write_request(
        switch.registers.id_of("demo"), 0, value, seq)
    message.get(P4AUTH)["keyVer"] = \
        dep.controller.keys.local_key_version("s1")
    DigestEngine().sign(dep.controller.keys.local_key("s1"), message)
    return message


def inject(dep, message):
    node = dep.net.nodes["s1"]
    dep.sim.schedule(0.0, node.receive, message.copy(), 0)
    dep.run(0.1)


def test_expected_seq_wraps_to_zero(single_switch):
    dep = single_switch
    dataplane = dep.dataplanes["s1"]
    inject(dep, signed_write(dep, SEQ_MAX, 0x1))
    # expected_seq advanced past the maximum, wrapping to 0.
    assert dataplane._expected_seq.read(0) == 0
    # A seq-0 message after the wrap is accepted (not a false replay).
    inject(dep, signed_write(dep, 0, 0x2))
    assert dep.switch("s1").registers.get("demo").read(0) == 0x2
    assert dataplane.stats.replays_detected == 0


def test_wraparound_replay_window_exists_without_rollover(single_switch):
    """The documented corner: after a wrap, an old recorded message's
    sequence number can look fresh again (still authenticated, so the
    value it re-applies is a *stale authorized* value, not arbitrary)."""
    dep = single_switch
    recorded = signed_write(dep, 5, 0xAAAA)
    inject(dep, recorded)           # applied at seq 5
    inject(dep, signed_write(dep, SEQ_MAX, 0xBBBB))  # wrap
    inject(dep, recorded)           # seq 5 >= expected 0: accepted again
    assert dep.switch("s1").registers.get("demo").read(0) == 0xAAAA


def test_one_rollover_does_not_retire_the_old_key(single_switch):
    """Two-version consistency keeps the previous key addressable for
    exactly one rollover: a message recorded under it still verifies.
    This is the §VI-C availability/security trade-off made explicit."""
    dep = single_switch
    recorded = signed_write(dep, 5, 0xAAAA)
    inject(dep, recorded)
    dep.controller.kmp.local_key_update("s1")
    dep.run(1.0)
    inject(dep, signed_write(dep, SEQ_MAX, 0xBBBB))
    inject(dep, recorded)  # old slot still holds the recorded key
    assert dep.switch("s1").registers.get("demo").read(0) == 0xAAAA


def _park_before_wrap(dep, start_seq):
    """Put both ends of the C-DP channel just shy of the 32-bit boundary
    (as if the deployment had been running for ~2^32 requests)."""
    dep.controller._seq["s1"] = start_seq
    dep.dataplanes["s1"]._expected_seq.write(0, start_seq)


class TestControllerRoundTripAcrossWrap:
    """Full controller-driven round trips straddling the wrap: every
    message must verify cleanly end to end — no replay flags, no tamper
    records, no DoS alerts — with the counter crossing 0xFFFFFFFF -> 0
    mid-burst."""

    def test_write_read_round_trips_verify_across_the_wrap(self, single_switch):
        dep = single_switch
        _park_before_wrap(dep, SEQ_MAX - 2)
        outcomes = []
        for i in range(6):  # seqs MAX-2, MAX-1, MAX, 0, 1, 2
            dep.controller.write_register(
                "s1", "demo", 0, 0x900 + i,
                lambda ok, v: outcomes.append(("write", ok, v)))
            dep.run(0.1)
        dep.controller.read_register(
            "s1", "demo", 0, lambda ok, v: outcomes.append(("read", ok, v)))
        dep.run(0.1)
        assert outcomes == [("write", True, 0x900 + i) for i in range(6)] \
            + [("read", True, 0x905)]
        # The counter actually crossed the boundary and kept agreeing.
        assert dep.controller._seq["s1"] == 4
        assert dep.dataplanes["s1"]._expected_seq.read(0) == 4
        # Nothing on either side mistook the wrap for an attack.
        assert dep.dataplanes["s1"].stats.replays_detected == 0
        assert dep.dataplanes["s1"].stats.digest_fail_cdp == 0
        assert dep.controller.tamper_events == []
        assert dep.controller.alerts == []
        assert dep.controller.stats.unsolicited_nacks == 0

    def test_pipelined_burst_across_the_wrap(self, single_switch):
        """The batched path holds several in-flight seqs at once; a burst
        whose window straddles the wrap must still complete cleanly."""
        dep = single_switch
        _park_before_wrap(dep, SEQ_MAX - 3)
        batch = BatchController(dep.controller, max_in_flight=3)
        done = []
        for i in range(8):
            batch.write_register("s1", "demo", 0, 0xA00 + i,
                                 lambda ok, v, i=i: done.append((i, ok)))
        dep.run(5.0)
        assert done == [(i, True) for i in range(8)]
        assert batch.idle
        assert dep.dataplanes["s1"].stats.replays_detected == 0
        assert dep.dataplanes["s1"].stats.digest_fail_cdp == 0
        assert dep.controller.unacknowledged_seqs("s1") == []


def test_two_rollovers_close_the_wraparound_window(single_switch):
    """The paper's mitigation, precisely: after the slot the recorded
    message was signed under is overwritten (the *second* rollover), the
    replay's digest is invalid regardless of sequence numbers."""
    dep = single_switch
    recorded = signed_write(dep, 5, 0xAAAA)
    inject(dep, recorded)
    for _ in range(2):
        dep.controller.kmp.local_key_update("s1")
        dep.run(1.0)
    inject(dep, signed_write(dep, SEQ_MAX, 0xBBBB))
    before = dep.dataplanes["s1"].stats.digest_fail_cdp
    inject(dep, recorded)
    assert dep.switch("s1").registers.get("demo").read(0) == 0xBBBB
    assert dep.dataplanes["s1"].stats.digest_fail_cdp == before + 1
