"""DigestEngine batch lanes: selection, equivalence, cache discipline.

The batch API (`compute_many`/`sign_many`/`verify_many`) must be a pure
host-CPU optimization: same tags as the per-message path on every lane,
same hash-unit invocation accounting on the extern path, and the same
key-schedule cache rules — :attr:`DigestEngine.KEY_CACHE_MAX` eviction
and rollover auto-miss apply to the vector lane because both lanes
share the one ``_key_states`` cache (the regression this file pins).
"""

import pytest

from repro.core.constants import P4AUTH
from repro.core.digest import DigestEngine, LANES
from repro.core.messages import build_reg_write_request
from repro.crypto import vectorized
from repro.dataplane.externs import HashExtern

KEY = 0xA5A5A5A55A5A5A5A


def batch(count, start_seq=1):
    return [build_reg_write_request(1, i % 16, 0xBE00 + i, start_seq + i)
            for i in range(count)]


# ---------------------------------------------------------------------------
# lane selection
# ---------------------------------------------------------------------------

def test_invalid_lane_rejected():
    with pytest.raises(ValueError):
        DigestEngine(lane="turbo")


def test_lanes_constant_covers_ctor():
    for lane in LANES:
        assert DigestEngine(lane=lane).lane == lane


def test_auto_lane_crossover_at_threshold():
    engine = DigestEngine()
    assert engine.lane_for(engine.vector_threshold - 1) == "scalar"
    expected = "vector" if vectorized.HAVE_NUMPY else "scalar"
    assert engine.lane_for(engine.vector_threshold) == expected
    assert engine.lane_for(4096) == expected


def test_forced_lanes_ignore_threshold():
    assert DigestEngine(lane="vector").lane_for(1) == "vector"
    assert DigestEngine(lane="scalar").lane_for(4096) == "scalar"


def test_custom_threshold_respected():
    engine = DigestEngine(vector_threshold=4)
    assert engine.lane_for(3) == "scalar"
    if vectorized.HAVE_NUMPY:
        assert engine.lane_for(4) == "vector"


def test_extern_engine_reports_extern_lane():
    engine = DigestEngine(extern=HashExtern())
    assert engine.lane_for(4096) == "extern"


# ---------------------------------------------------------------------------
# batch/scalar equivalence (every lane, both algorithms)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("algorithm", ["halfsiphash", "crc32"])
@pytest.mark.parametrize("lane", ["scalar", "vector"])
@pytest.mark.parametrize("count", [1, 2, 31, 32, 33, 100])
def test_compute_many_matches_compute(algorithm, lane, count):
    reference = DigestEngine(algorithm=algorithm, lane="scalar")
    engine = DigestEngine(algorithm=algorithm, lane=lane)
    packets = batch(count)
    assert engine.compute_many(KEY, packets) \
        == [reference.compute(KEY, p) for p in packets]


@pytest.mark.parametrize("lane", ["scalar", "vector"])
def test_sign_many_then_verify_each(lane):
    signer = DigestEngine(lane=lane)
    verifier = DigestEngine(lane="scalar")
    packets = signer.sign_many(KEY, batch(40))
    assert all(verifier.verify(KEY, p) for p in packets)


@pytest.mark.parametrize("lane", ["scalar", "vector"])
def test_sign_each_then_verify_many(lane):
    signer = DigestEngine(lane="scalar")
    verifier = DigestEngine(lane=lane)
    packets = batch(40)
    for packet in packets:
        signer.sign(KEY, packet)
    assert verifier.verify_many(KEY, packets) == [True] * 40
    assert verifier.verified_ok == 40


def test_verify_many_flags_exactly_the_tampered_packets():
    engine = DigestEngine(lane="vector")
    packets = engine.sign_many(KEY, batch(40))
    for index in (0, 7, 39):
        packets[index].get("reg_op")["value"] ^= 1
    verdicts = engine.verify_many(KEY, packets)
    assert [i for i, ok in enumerate(verdicts) if not ok] == [0, 7, 39]
    assert engine.verified_fail == 3
    assert engine.verified_ok == 37


def test_empty_batch_noops():
    engine = DigestEngine(lane="vector")
    assert engine.compute_many(KEY, []) == []
    assert engine.sign_many(KEY, []) == []
    assert engine.verify_many(KEY, []) == []
    assert engine.computed == 0


def test_extern_compute_many_counts_per_packet_invocations():
    """The extern path must charge one hash-unit invocation per packet —
    batching is a host optimization, never a modeled-hardware discount."""
    extern = HashExtern()
    engine = DigestEngine(extern=extern)
    packets = batch(17)
    expected = [DigestEngine(extern=HashExtern()).compute(KEY, p)
                for p in packets]
    assert engine.compute_many(KEY, packets) == expected
    assert extern.invocations == 17


def test_lane_counters_track_batches_and_messages():
    engine = DigestEngine()
    engine.compute_many(KEY, batch(engine.vector_threshold - 1))
    engine.compute_many(KEY, batch(engine.vector_threshold + 8))
    if vectorized.HAVE_NUMPY:
        assert engine.scalar_batches == 1
        assert engine.scalar_messages == engine.vector_threshold - 1
        assert engine.vector_batches == 1
        assert engine.vector_messages == engine.vector_threshold + 8
    else:
        # auto never picks the vector lane without numpy.
        assert engine.scalar_batches == 2
        assert engine.vector_batches == 0
    forced = DigestEngine(lane="vector")
    forced.compute_many(KEY, batch(3))
    assert forced.vector_batches == 1
    assert forced.vector_messages == 3


# ---------------------------------------------------------------------------
# key-schedule cache: shared across lanes, bounded, rollover-correct
# ---------------------------------------------------------------------------

def test_vector_lane_uses_shared_schedule_cache():
    engine = DigestEngine(lane="vector")
    engine.compute(KEY, batch(1)[0])
    assert engine.key_state_misses == 1
    engine.compute_many(KEY, batch(50))
    # The batch reused the scalar path's cached schedule: no second miss.
    assert engine.key_state_misses == 1
    assert engine.key_state_hits >= 1


def test_key_cache_eviction_applies_to_vector_lane():
    """Regression: KEY_CACHE_MAX must bound the cache no matter which
    lane populated it — churning keys through sign_many must not grow
    ``_key_states`` past the cap."""
    engine = DigestEngine(lane="vector")
    engine.KEY_CACHE_MAX = 8
    for key in range(1, 30):
        engine.sign_many(key, batch(2))
        assert len(engine._key_states) <= 8
    assert engine.key_state_misses == 29


def test_key_rollover_between_batches_auto_misses():
    """A rolled master key must re-derive the schedule (the cache is
    keyed by key *value*) and old-key signatures must stop verifying."""
    engine = DigestEngine(lane="vector")
    old_key, new_key = KEY, KEY ^ 0xFFFF
    packets = engine.sign_many(old_key, batch(40))
    misses_before = engine.key_state_misses
    assert engine.verify_many(new_key, packets) == [False] * 40
    assert engine.key_state_misses == misses_before + 1  # new schedule
    resigned = engine.sign_many(new_key, batch(40))
    assert engine.verify_many(new_key, resigned) == [True] * 40
    assert engine.key_state_misses == misses_before + 1  # now cached


def test_rollover_mid_stream_signs_with_distinct_tags():
    """Same material under old vs new key must produce different tags —
    a stale cached schedule would silently reuse the old key."""
    engine = DigestEngine(lane="vector")
    old = [p.get(P4AUTH)["digest"]
           for p in engine.sign_many(KEY, batch(40))]
    new = [p.get(P4AUTH)["digest"]
           for p in engine.sign_many(KEY ^ 1, batch(40))]
    assert old != new
