"""Property battery for the wire codec (chaos-run prerequisite).

Before fault injection corrupts bytes in flight, pin the parser contract:
every well-formed message round-trips byte-exactly for *arbitrary* field
values, and every truncation or bit flip of a valid message either parses
or raises :class:`WireFormatError` with a named reason — never any other
exception, never a hang, never a partial crash.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.constants import (
    AlertCode,
    KeyExchType,
    P4AUTH,
    RegOpType,
)
from repro.core.messages import (
    build_adhkd_message,
    build_alert,
    build_eak_message,
    build_keyctl_message,
    build_reg_read_request,
    build_reg_response,
    build_reg_write_request,
)
from repro.core.wire import WireFormatError, parse_message, serialize_message

U8 = st.integers(min_value=0, max_value=(1 << 8) - 1)
U32 = st.integers(min_value=0, max_value=(1 << 32) - 1)
U56 = st.integers(min_value=0, max_value=(1 << 56) - 1)
U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)

EXCHANGE_TYPES = st.sampled_from([KeyExchType.EAK_SALT1,
                                  KeyExchType.EAK_SALT2])
ADHKD_TYPES = st.sampled_from([KeyExchType.ADHKD_MSG1, KeyExchType.ADHKD_MSG2,
                               KeyExchType.UPD_MSG1, KeyExchType.UPD_MSG2])
KEYCTL_TYPES = st.sampled_from([KeyExchType.PORT_KEY_INIT,
                                KeyExchType.PORT_KEY_UPDATE])


@st.composite
def messages(draw):
    """An arbitrary well-formed P4Auth message of any kind."""
    kind = draw(st.integers(min_value=0, max_value=6))
    if kind == 6:
        return build_reg_response(draw(st.booleans()), draw(U32), draw(U32),
                                  draw(U64), draw(U32), key_ver=draw(U8))
    if kind == 0:
        return build_reg_read_request(draw(U32), draw(U32), draw(U32),
                                      key_ver=draw(U8))
    if kind == 1:
        return build_reg_write_request(draw(U32), draw(U32), draw(U64),
                                       draw(U32), key_ver=draw(U8))
    if kind == 2:
        return build_eak_message(draw(EXCHANGE_TYPES), draw(U64), draw(U32))
    if kind == 3:
        return build_adhkd_message(draw(ADHKD_TYPES), draw(U64), draw(U64),
                                   draw(U32), key_ver=draw(U8))
    if kind == 4:
        return build_keyctl_message(draw(KEYCTL_TYPES), draw(U32), draw(U32),
                                    key_ver=draw(U8))
    return build_alert(draw(st.sampled_from(list(AlertCode))), draw(U56),
                       draw(U32))


@given(messages())
@settings(max_examples=200, deadline=None)
def test_any_message_roundtrips_byte_exactly(message):
    wire = serialize_message(message)
    parsed = parse_message(wire)
    assert parsed.serialize() == wire
    assert parsed.header_names() == message.header_names()
    assert parsed.get(P4AUTH) == message.get(P4AUTH)


@given(st.booleans(), U32, U32, U64, U32, U8)
@settings(max_examples=200, deadline=None)
def test_reg_response_roundtrips(ok, reg_id, index, value, seq, key_ver):
    """ACK/NACK responses (PR 2's coverage gap) round-trip byte-exactly
    and keep the ok bit in the message type across the wire."""
    message = build_reg_response(ok, reg_id, index, value, seq,
                                 key_ver=key_ver)
    wire = serialize_message(message)
    parsed = parse_message(wire)
    assert parsed.serialize() == wire
    expected = RegOpType.ACK if ok else RegOpType.NACK
    assert parsed.get(P4AUTH)["msgType"] == int(expected)


@given(messages(), st.data())
@settings(max_examples=200, deadline=None)
def test_truncation_never_crashes(message, data):
    """Every strict prefix parses or rejects with a named reason."""
    wire = serialize_message(message)
    cut = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
    try:
        parse_message(wire[:cut])
    except WireFormatError as exc:
        assert str(exc)  # rejection carries a reason, not a bare raise


@given(messages(), st.data())
@settings(max_examples=200, deadline=None)
def test_bit_flip_never_crashes(message, data):
    """A single flipped bit parses (caught later by the digest) or is
    rejected as malformed — no other exception may escape."""
    wire = bytearray(serialize_message(message))
    position = data.draw(st.integers(min_value=0, max_value=len(wire) * 8 - 1))
    wire[position // 8] ^= 1 << (position % 8)
    try:
        parsed = parse_message(bytes(wire))
    except WireFormatError as exc:
        assert str(exc)
    else:
        # A structurally valid mutation must re-serialize to what was
        # parsed (parse is a left inverse of serialize on its range).
        assert parsed.serialize() == bytes(wire)


def test_every_prefix_of_each_kind_is_handled():
    """Exhaustive (not sampled) truncation sweep over one of each kind."""
    samples = [
        build_reg_read_request(1, 2, 3),
        build_reg_write_request(1, 2, 3, 4),
        build_reg_response(True, 1, 2, 3, 4),
        build_reg_response(False, 1, 2, 3, 4),
        build_eak_message(KeyExchType.EAK_SALT1, 0xABCD, 1),
        build_adhkd_message(KeyExchType.ADHKD_MSG1, 7, 8, 2),
        build_keyctl_message(KeyExchType.PORT_KEY_UPDATE, 3, 5),
        build_alert(AlertCode.REPLAY_SUSPECTED, 99, 6),
    ]
    for message in samples:
        wire = serialize_message(message)
        for cut in range(len(wire)):
            with pytest.raises(WireFormatError):
                parse_message(wire[:cut])
        assert parse_message(wire).serialize() == wire
