"""FaultPlan validation: bad plans are rejected before they can arm."""

import pytest

from repro.faults import (
    ChannelBlackout,
    ClockSkewFault,
    FaultPlan,
    LinkFault,
    NodeFault,
)


class TestLinkFaultValidation:
    def test_valid_probabilistic_fault(self):
        LinkFault("drop", probability=0.05).validate()

    def test_valid_nth_packet_fault(self):
        LinkFault("corrupt", every_nth=3).validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown link fault kind"):
            LinkFault("melt", probability=0.5).validate()

    def test_no_trigger_rejected(self):
        with pytest.raises(ValueError, match="no trigger"):
            LinkFault("drop").validate()

    def test_both_triggers_rejected(self):
        with pytest.raises(ValueError, match="one trigger"):
            LinkFault("drop", probability=0.5, every_nth=2).validate()

    def test_probability_out_of_range(self):
        with pytest.raises(ValueError, match="probability"):
            LinkFault("drop", probability=1.5).validate()

    def test_bad_direction(self):
        with pytest.raises(ValueError, match="direction"):
            LinkFault("drop", probability=0.1, direction="up").validate()

    def test_inverted_window(self):
        with pytest.raises(ValueError, match="end_s"):
            LinkFault("drop", probability=0.1,
                      start_s=2.0, end_s=1.0).validate()

    def test_window_activation(self):
        fault = LinkFault("drop", probability=0.1, start_s=1.0, end_s=2.0)
        assert not fault.active_at(0.5)
        assert fault.active_at(1.0)
        assert fault.active_at(1.999)
        assert not fault.active_at(2.0)

    def test_open_ended_window(self):
        fault = LinkFault("drop", probability=0.1, start_s=1.0)
        assert fault.active_at(1e9)


class TestOtherFaultValidation:
    def test_node_fault_restart_must_follow_crash(self):
        with pytest.raises(ValueError, match="restart_at_s"):
            NodeFault("s1", crash_at_s=1.0, restart_at_s=0.5).validate()

    def test_blackout_window(self):
        with pytest.raises(ValueError, match="end_s"):
            ChannelBlackout("s1", start_s=1.0, end_s=1.0).validate()

    def test_blackout_direction(self):
        with pytest.raises(ValueError, match="direction"):
            ChannelBlackout("s1", 0.0, 1.0, direction="a->b").validate()

    def test_clock_skew_negative_start(self):
        with pytest.raises(ValueError, match="at_s"):
            ClockSkewFault("s1", skew_s=0.1, at_s=-1.0).validate()

    def test_plan_validates_all_members(self):
        plan = FaultPlan(link_faults=[LinkFault("drop", probability=0.1)],
                         node_faults=[NodeFault("s1", crash_at_s=0.5)],
                         blackouts=[ChannelBlackout("s1", 0.1, 0.2)],
                         clock_skews=[ClockSkewFault("s1", 1e-3)])
        plan.validate()
        assert plan.fault_count() == 4
        plan.link_faults.append(LinkFault("drop"))
        with pytest.raises(ValueError):
            plan.validate()
