"""FaultInjector behavior: each fault kind does what the plan says,
deterministically under a fixed seed, and disarm restores the network."""

import pytest

from repro.dataplane.headers import HeaderType
from repro.dataplane.packet import Packet
from repro.faults import (
    ChannelBlackout,
    ClockSkewFault,
    FaultInjector,
    FaultPlan,
    LinkFault,
    NodeFault,
)
from repro.net.network import (
    DROP_FAULT_INJECTED,
    DROP_NODE_DOWN,
    Network,
)
from repro.net.simulator import EventSimulator
from tests.conftest import Deployment

PROBE = HeaderType("probe", [("seq", 32), ("value", 32)])


class HostPair:
    """Two hosts on one link: the smallest delivery-shaping testbed."""

    def __init__(self):
        self.sim = EventSimulator()
        self.net = Network(self.sim)
        self.h1 = self.net.add_host("h1")
        self.h2 = self.net.add_host("h2")
        self.net.connect("h1", 1, "h2", 1)

    def arm(self, *link_faults, seed=0xFA017):
        plan = FaultPlan(seed=seed, link_faults=list(link_faults))
        return FaultInjector(self.net, plan).arm()

    def send_burst(self, count, gap_s=1e-4, value=0xAAAA):
        for seq in range(count):
            packet = Packet([("probe", PROBE.instantiate(seq=seq,
                                                         value=value))])
            self.sim.schedule(seq * gap_s, self.h1.send, packet, 1)
        self.sim.run(until=1.0)

    def received_seqs(self):
        return [packet.get("probe")["seq"]
                for _t, packet in self.h2.received]


class TestLinkFaults:
    def test_nth_packet_drop_is_exact(self):
        pair = HostPair()
        injector = pair.arm(LinkFault("drop", every_nth=3))
        pair.send_burst(9)
        assert pair.received_seqs() == [0, 1, 3, 4, 6, 7]
        assert injector.stats.count("drop") == 3
        assert pair.net.drop_counts[DROP_FAULT_INJECTED] == 3

    def test_probabilistic_drop_is_seed_deterministic(self):
        outcomes = []
        for _ in range(2):
            pair = HostPair()
            pair.arm(LinkFault("drop", probability=0.5), seed=7)
            pair.send_burst(40)
            outcomes.append(pair.received_seqs())
        assert outcomes[0] == outcomes[1]
        assert 0 < len(outcomes[0]) < 40  # both branches actually exercised

    def test_different_seed_changes_the_loss_pattern(self):
        patterns = []
        for seed in (1, 2):
            pair = HostPair()
            pair.arm(LinkFault("drop", probability=0.5), seed=seed)
            pair.send_burst(40)
            patterns.append(pair.received_seqs())
        assert patterns[0] != patterns[1]

    def test_corrupt_mutates_a_field_but_keeps_the_packet(self):
        pair = HostPair()
        injector = pair.arm(LinkFault("corrupt", every_nth=1))
        pair.send_burst(5)
        assert len(pair.h2.received) == 5
        assert injector.stats.count("corrupt") == 5
        for seq, (_t, packet) in enumerate(pair.h2.received):
            header = packet.get("probe")
            # Exactly one field was XORed with a nonzero mask.
            assert (header["seq"], header["value"]) != (seq, 0xAAAA)

    def test_duplicate_delivers_the_packet_twice(self):
        pair = HostPair()
        pair.arm(LinkFault("duplicate", every_nth=1, delay_s=1e-5))
        pair.send_burst(3, gap_s=1e-3)
        assert sorted(pair.received_seqs()) == [0, 0, 1, 1, 2, 2]

    def test_reorder_lets_later_traffic_overtake(self):
        pair = HostPair()
        pair.arm(LinkFault("reorder", every_nth=2, delay_s=5e-3))
        pair.send_burst(4)
        # Packets 1 and 3 (2nd and 4th matched) are held back 5 ms.
        assert pair.received_seqs() == [0, 2, 1, 3]

    def test_jitter_delays_but_never_loses(self):
        pair = HostPair()
        injector = pair.arm(LinkFault("jitter", every_nth=1, delay_s=1e-3))
        pair.send_burst(6)
        assert sorted(pair.received_seqs()) == list(range(6))
        assert injector.stats.count("jitter") == 6

    def test_window_bounds_the_fault(self):
        pair = HostPair()
        pair.arm(LinkFault("drop", every_nth=1, start_s=0.1, end_s=0.2))
        for seq, at_s in enumerate((0.05, 0.15, 0.25)):
            packet = Packet([("probe", PROBE.instantiate(seq=seq))])
            pair.sim.schedule(at_s, pair.h1.send, packet, 1)
        pair.sim.run(until=1.0)
        assert pair.received_seqs() == [0, 2]

    def test_direction_filter(self):
        # h1 was wired first, so h1 -> h2 traffic travels "a->b".
        pair = HostPair()
        injector = pair.arm(LinkFault("drop", every_nth=1, direction="b->a"))
        pair.send_burst(4)
        assert pair.received_seqs() == [0, 1, 2, 3]
        assert injector.stats.total() == 0

    def test_node_name_filter(self):
        pair = HostPair()
        injector = pair.arm(LinkFault("drop", every_nth=1,
                                      node_a="h1", node_b="h9"))
        pair.send_burst(2)
        assert len(pair.received_seqs()) == 2
        assert injector.stats.total() == 0


class TestLifecycle:
    def test_arm_twice_raises(self):
        pair = HostPair()
        injector = pair.arm(LinkFault("drop", probability=0.1))
        with pytest.raises(RuntimeError, match="already armed"):
            injector.arm()

    def test_conflicting_shaper_raises(self):
        pair = HostPair()
        pair.net.delivery_shaper = lambda link, d, p, delay: [(p, delay)]
        plan = FaultPlan(link_faults=[LinkFault("drop", probability=0.1)])
        with pytest.raises(RuntimeError, match="delivery shaper"):
            FaultInjector(pair.net, plan).arm()

    def test_invalid_plan_rejected_at_construction(self):
        pair = HostPair()
        with pytest.raises(ValueError, match="no trigger"):
            FaultInjector(pair.net, FaultPlan(link_faults=[LinkFault("drop")]))

    def test_disarm_restores_delivery_and_cancels_crashes(self):
        dep = Deployment(num_switches=1, bootstrap=False,
                         registers=[("demo", 64, 16)])
        plan = FaultPlan(node_faults=[NodeFault("s1", crash_at_s=1.0)])
        injector = FaultInjector(dep.net, plan).arm()
        injector.disarm()
        dep.sim.run(until=2.0)
        assert dep.net.nodes["s1"].up  # cancelled crash never fired
        assert dep.net.delivery_shaper is None
        assert dep.sim.events_cancelled == 1

    def test_disarm_removes_blackout_taps(self):
        dep = Deployment(num_switches=1, bootstrap=False)
        plan = FaultPlan(blackouts=[ChannelBlackout("s1", 0.0, 10.0)])
        injector = FaultInjector(dep.net, plan).arm()
        channel = dep.net.control_channels["s1"]
        assert len(channel.taps) == 1
        injector.disarm()
        assert channel.taps == []


class TestNodeFaults:
    def test_crash_downs_the_node_and_wipes_registers(self):
        dep = Deployment(num_switches=1, bootstrap=False,
                         registers=[("demo", 64, 16)])
        dep.switch("s1").registers.get("demo").write(3, 0x1234)
        plan = FaultPlan(node_faults=[NodeFault("s1", crash_at_s=0.1)])
        injector = FaultInjector(dep.net, plan).arm()
        dep.sim.run(until=0.2)
        node = dep.net.nodes["s1"]
        assert not node.up
        assert dep.switch("s1").registers.get("demo").read(3) == 0
        assert injector.stats.count("crash") == 1
        # A downed node eats everything that arrives.
        dep.net.send_packet_out("s1", Packet())
        dep.sim.run(until=0.3)
        assert dep.net.drop_counts[DROP_NODE_DOWN] == 1

    def test_crash_can_retain_registers(self):
        dep = Deployment(num_switches=1, bootstrap=False,
                         registers=[("demo", 64, 16)])
        dep.switch("s1").registers.get("demo").write(3, 0x1234)
        plan = FaultPlan(node_faults=[
            NodeFault("s1", crash_at_s=0.1, wipe_registers=False)])
        FaultInjector(dep.net, plan).arm()
        dep.sim.run(until=0.2)
        assert not dep.net.nodes["s1"].up
        assert dep.switch("s1").registers.get("demo").read(3) == 0x1234

    def test_restart_brings_the_node_back_and_fires_hooks(self):
        dep = Deployment(num_switches=1, bootstrap=False)
        plan = FaultPlan(node_faults=[
            NodeFault("s1", crash_at_s=0.1, restart_at_s=0.3)])
        injector = FaultInjector(dep.net, plan).arm()
        restarted = []
        injector.on_node_restart.append(restarted.append)
        dep.sim.run(until=0.2)
        assert not dep.net.nodes["s1"].up
        dep.sim.run(until=0.4)
        assert dep.net.nodes["s1"].up
        assert restarted == ["s1"]
        assert injector.stats.count("restart") == 1

    def test_clock_skew_applied_at_its_start_time(self):
        dep = Deployment(num_switches=1, bootstrap=False)
        plan = FaultPlan(clock_skews=[
            ClockSkewFault("s1", skew_s=2e-3, at_s=0.5)])
        injector = FaultInjector(dep.net, plan).arm()
        dep.sim.run(until=0.4)
        assert dep.net.nodes["s1"].clock_skew_s == 0.0
        dep.sim.run(until=0.6)
        assert dep.net.nodes["s1"].clock_skew_s == 2e-3
        assert injector.stats.count("clock_skew") == 1


class TestBlackout:
    def test_blackout_loses_requests_then_recovers(self):
        dep = Deployment(num_switches=1, registers=[("demo", 64, 16)])
        t0 = dep.sim.now  # bootstrap already advanced the clock
        plan = FaultPlan(blackouts=[
            ChannelBlackout("s1", t0 + 1.0, t0 + 2.0, direction="c->dp")])
        injector = FaultInjector(dep.net, plan).arm()
        outcomes = []
        dep.sim.schedule(1.5, dep.controller.write_register,
                         "s1", "demo", 0, 0x55,
                         lambda ok, value: outcomes.append(("mid", ok)))
        dep.sim.schedule(2.5, dep.controller.write_register,
                         "s1", "demo", 1, 0x66,
                         lambda ok, value: outcomes.append(("after", ok)))
        dep.sim.run(until=t0 + 3.0)
        # The in-window request was swallowed (legacy no-timeout mode:
        # no callback at all); the post-window one completed.
        assert outcomes == [("after", True)]
        assert injector.stats.count("blackout") == 1
        assert dep.controller.outstanding_count() == 1

    def test_blackout_direction_filter_passes_other_direction(self):
        dep = Deployment(num_switches=1, registers=[("demo", 64, 16)])
        plan = FaultPlan(blackouts=[
            ChannelBlackout("s1", 0.0, dep.sim.now + 10.0,
                            direction="dp->c")])
        FaultInjector(dep.net, plan).arm()
        outcomes = []
        # Requests still reach the switch (c->dp untouched); only the
        # response leg dies, so the write lands but never confirms.
        dep.controller.write_register("s1", "demo", 0, 0x77,
                                      lambda ok, v: outcomes.append(ok))
        dep.sim.run(until=dep.sim.now + 1.0)
        assert outcomes == []
        assert dep.switch("s1").registers.get("demo").read(0) != 0
