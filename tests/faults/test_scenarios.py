"""ChaosScenario runner: the smoke scenarios pass and report stably."""

import pytest

from repro.faults import (
    SCENARIOS,
    SMOKE_SCENARIOS,
    ChaosReport,
    run_scenario,
)


def test_smoke_scenarios_are_registered_and_cheap():
    assert set(SMOKE_SCENARIOS) <= set(SCENARIOS)
    assert "lossy-fig17" in SCENARIOS  # the expensive one stays out of smoke
    assert "lossy-fig17" not in SMOKE_SCENARIOS


@pytest.mark.parametrize("name", SMOKE_SCENARIOS)
def test_smoke_scenario_passes(name):
    report = run_scenario(name, seed=1)
    assert report.scenario == name
    assert report.seed == 1
    assert report.passed, report.summary()
    assert report.failures() == []


def test_unknown_scenario_raises():
    with pytest.raises(KeyError):
        run_scenario("no-such-scenario")


def test_same_seed_gives_identical_reports():
    first = run_scenario("kmp-blackout", seed=3)
    second = run_scenario("kmp-blackout", seed=3)
    assert first.invariants == second.invariants
    assert first.metrics == second.metrics


def test_report_summary_formatting():
    report = ChaosReport(scenario="demo", seed=9)
    report.check("holds", True, "fine")
    report.check("breaks", False, "boom")
    assert not report.passed
    assert [inv.name for inv in report.failures()] == ["breaks"]
    text = report.summary()
    assert "scenario 'demo' (seed=9): FAIL" in text
    assert "[ok ] holds — fine" in text
    assert "[FAIL] breaks — boom" in text
