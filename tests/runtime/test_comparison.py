"""The Fig 18/19 comparison harness and jittered distributions."""

import pytest

from repro.net.costs import CostModel
from repro.runtime.comparison import STACKS, build_stack, measure


def test_unknown_stack_rejected():
    with pytest.raises(ValueError):
        build_stack("OpenFlow")


def test_all_three_stacks_build_and_serve():
    for name in STACKS:
        sim, stack = build_stack(name)
        results = []
        stack.write_register("s1", "target", 0, 0x7,
                             lambda ok, v: results.append(ok))
        sim.run(until=sim.now + 1.0)
        assert results == [True], name


def test_deterministic_costs_give_constant_rct():
    table = measure(duration_s=1.0)
    stats = table[("DP-Reg-RW", "read")]
    assert stats.percentile_rct_s(5) == pytest.approx(
        stats.percentile_rct_s(95))


def test_jitter_spreads_the_distribution():
    table = measure(duration_s=1.0, costs=CostModel(jitter_fraction=0.2))
    stats = table[("DP-Reg-RW", "read")]
    spread = stats.percentile_rct_s(95) - stats.percentile_rct_s(5)
    assert spread > 0.1 * stats.mean_rct_s


def test_jitter_preserves_ordering_of_means():
    table = measure(duration_s=2.0, costs=CostModel(jitter_fraction=0.15))
    assert (table[("DP-Reg-RW", "read")].mean_rct_s
            < table[("P4Auth", "read")].mean_rct_s
            < table[("P4Runtime", "read")].mean_rct_s * 1.02)


def test_jitter_is_seeded_and_reproducible():
    costs = CostModel(jitter_fraction=0.15)
    first = measure(duration_s=0.5, costs=costs)
    second = measure(duration_s=0.5, costs=costs)
    assert (first[("P4Auth", "read")].rcts_s
            == second[("P4Auth", "read")].rcts_s)
