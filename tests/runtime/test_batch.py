"""BatchController: windowing, ordering, coalescing, telemetry, loss."""

from __future__ import annotations

import pytest

from repro.core.wire import serialize_message
from repro.experiments.cdp_batch import (build_batch_deployment,
                                         run_batch_workload)
from repro.runtime.batch import BatchController
from repro.runtime.comparison import STACKS, build_stack
from repro.telemetry import Telemetry

from tests.conftest import Deployment


def _single_switch():
    return Deployment(num_switches=1, registers=[("demo", 64, 16)])


class TestWindowing:
    def test_rejects_nonpositive_window(self):
        dep = _single_switch()
        with pytest.raises(ValueError):
            BatchController(dep.controller, max_in_flight=0)

    def test_window_cap_respected(self):
        dep = _single_switch()
        batch = BatchController(dep.controller, max_in_flight=3)
        observed = []

        def on_done(ok, _value):
            assert ok
            observed.append(batch.in_flight("s1"))

        for i in range(10):
            batch.write_register("s1", "demo", i % 16, 100 + i, on_done)
        # Submission alone never exceeds the window.
        assert batch.in_flight("s1") == 3
        assert batch.queued() == 7
        assert batch.stats.in_flight_high_water == 3
        dep.run(5.0)
        assert batch.idle
        assert batch.stats.completed == 10
        # Every mid-run sample stayed within the cap too.
        assert max(observed) <= 3

    def test_window_one_degenerates_to_sequential(self):
        dep = _single_switch()
        batch = BatchController(dep.controller, max_in_flight=1)
        for i in range(5):
            batch.write_register("s1", "demo", 0, 200 + i)
        dep.run(5.0)
        assert batch.stats.in_flight_high_water == 1
        assert batch.stats.completed == 5

    def test_completion_order_matches_submission_order(self):
        dep = _single_switch()
        batch = BatchController(dep.controller, max_in_flight=4)
        done = []
        for i in range(12):
            batch.write_register("s1", "demo", 0, i,
                                 lambda ok, v, i=i: done.append((i, ok, v)))
        dep.run(5.0)
        assert [entry[0] for entry in done] == list(range(12))
        assert all(ok for _i, ok, _v in done)
        # FIFO writes: the register ends on the last submitted value.
        assert dep.switch("s1").registers.get("demo").read(0) == 11

    def test_read_callbacks_carry_values(self):
        dep = _single_switch()
        batch = BatchController(dep.controller, max_in_flight=2)
        for index in range(4):
            batch.write_register("s1", "demo", index, 0x50 + index)
        dep.run(2.0)
        values = {}
        for index in range(4):
            batch.read_register("s1", "demo", index,
                                lambda ok, v, i=index: values.setdefault(i, v))
        dep.run(2.0)
        assert values == {0: 0x50, 1: 0x51, 2: 0x52, 3: 0x53}


class TestCallbackIsolation:
    def test_raising_callback_does_not_stall_the_window_drain(self):
        """A completion callback that raises must not leak the exception
        into the simulator event loop or skip the pump: every request
        still queued behind that switch's window must complete."""
        dep = _single_switch()
        batch = BatchController(dep.controller, max_in_flight=2)
        done = []

        def bad_callback(ok, _value):
            raise RuntimeError("user callback bug")

        # The first two occupy the whole window; both callbacks raise.
        batch.write_register("s1", "demo", 0, 1, bad_callback)
        batch.write_register("s1", "demo", 0, 2, bad_callback)
        for i in range(6):
            batch.write_register("s1", "demo", 0, 10 + i,
                                 lambda ok, v, i=i: done.append((i, ok)))
        dep.run(5.0)
        # The queued requests behind the raising ones all completed...
        assert done == [(i, True) for i in range(6)]
        assert batch.idle
        assert batch.stats.completed == 8
        # ...and the failures were counted, not swallowed silently.
        assert batch.stats.callback_errors == 2

    def test_callback_errors_emit_telemetry(self):
        telemetry = Telemetry(enabled=True)
        sim, stack = build_stack("P4Auth", telemetry=telemetry)
        batch = BatchController(stack, max_in_flight=2)

        def bad_callback(ok, _value):
            raise ValueError("boom")

        batch.write_register("s1", "target", 0, 1, bad_callback)
        batch.write_register("s1", "target", 0, 2)
        sim.run(until=sim.now + 2.0)
        assert batch.stats.completed == 2
        assert telemetry.metrics.value("batch_callback_errors_total") == 1
        events = telemetry.tracer.events("batch.callback_error")
        assert len(events) == 1
        assert events[0].fields["error"] == "ValueError"

    def test_clean_callbacks_count_no_errors(self):
        dep = _single_switch()
        batch = BatchController(dep.controller, max_in_flight=2)
        batch.write_register("s1", "demo", 0, 7, lambda ok, v: None)
        dep.run(2.0)
        assert batch.stats.callback_errors == 0


class TestCoalescing:
    def test_broadcast_write_reaches_every_switch(self):
        sim, net, stack, switches = build_batch_deployment(
            "P4Auth", m=6, degree=3, seed=3)
        batch = BatchController(stack, max_in_flight=4)
        results = []
        batch.broadcast_write("target", 2, 0x77, list(switches),
                              on_done=results.append)
        sim.run(until=sim.now + 5.0)
        assert len(results) == 1
        assert results[0] == {name: True for name in switches}
        for name in switches:
            assert net.switch(name).registers.get("target").read(2) == 0x77

    def test_broadcast_on_empty_switch_list_completes_immediately(self):
        dep = _single_switch()
        batch = BatchController(dep.controller, max_in_flight=2)
        results = []
        batch.broadcast_write("demo", 0, 1, [], on_done=results.append)
        assert results == [{}]


class TestAcrossStacks:
    @pytest.mark.parametrize("stack_name", STACKS)
    def test_batched_run_completes_on_every_stack(self, stack_name):
        sim, _net, stack, switches = build_batch_deployment(
            stack_name, m=6, degree=3, seed=2)
        result = run_batch_workload(sim, stack, switches, mode="batched",
                                    requests_per_switch=3, max_in_flight=4)
        assert result["completed"] == result["submitted"] == 18
        assert result["failed"] == 0
        assert result["leaked_in_flight"] == 0
        assert result["still_queued"] == 0

    @pytest.mark.parametrize("stack_name", STACKS)
    def test_batched_beats_sequential(self, stack_name):
        seq_sim, _n1, seq_stack, seq_sw = build_batch_deployment(
            stack_name, m=6, degree=3, seed=2)
        seq = run_batch_workload(seq_sim, seq_stack, seq_sw,
                                 mode="sequential", requests_per_switch=3)
        bat_sim, _n2, bat_stack, bat_sw = build_batch_deployment(
            stack_name, m=6, degree=3, seed=2)
        bat = run_batch_workload(bat_sim, bat_stack, bat_sw,
                                 mode="batched", requests_per_switch=3,
                                 max_in_flight=4)
        assert bat["throughput_rps"] >= 3.0 * seq["throughput_rps"]


class TestLossyChannel:
    def test_every_request_reaches_a_terminal_outcome(self):
        sim, _net, stack, switches = build_batch_deployment(
            "P4Auth", m=6, degree=3, seed=5, request_timeout_s=0.05,
            loss_rate=0.3)
        result = run_batch_workload(sim, stack, switches, mode="batched",
                                    requests_per_switch=4, max_in_flight=4)
        assert result["completed"] + result["failed"] == result["submitted"]
        # Window slots must drain even when outcomes are failures.
        assert result["leaked_in_flight"] == 0
        assert result["still_queued"] == 0

    def test_heavy_loss_actually_abandons_requests(self):
        sim, _net, stack, switches = build_batch_deployment(
            "P4Auth", m=6, degree=3, seed=7, request_timeout_s=0.02,
            loss_rate=0.8)
        result = run_batch_workload(sim, stack, switches, mode="batched",
                                    requests_per_switch=4, max_in_flight=4)
        assert result["failed"] > 0
        assert result["completed"] + result["failed"] == result["submitted"]


class TestTelemetry:
    def test_batch_metrics_are_emitted(self):
        telemetry = Telemetry(enabled=True)
        sim, stack = build_stack("P4Auth", telemetry=telemetry)
        batch = BatchController(stack, max_in_flight=4)
        for i in range(10):
            batch.write_register("s1", "target", 0, i)
        sim.run(until=sim.now + 5.0)
        metrics = telemetry.metrics
        assert metrics.value("batch_requests_total") == 10
        assert metrics.value("batch_in_flight_requests") == 0  # drained
        burst = metrics.get("batch_burst_size")
        assert burst is not None and burst.count >= 1
        rct = metrics.get("batch_rct_seconds")
        assert rct is not None and rct.count == 10

    def test_disabled_telemetry_stays_silent(self):
        sim, stack = build_stack("P4Auth")
        batch = BatchController(stack, max_in_flight=2)
        batch.write_register("s1", "target", 0, 1)
        sim.run(until=sim.now + 2.0)
        assert batch.stats.completed == 1


class TestWireFormatIdentity:
    def test_batched_messages_are_byte_identical_to_sequential(self):
        """The facade changes scheduling only: the exact bytes each
        request puts on the control channel are those the sequential
        path would have sent (same seqs, same digests, same order on a
        FIFO channel)."""

        def capture(dep):
            wire = []

            def tap(packet, direction):
                if direction == "c->dp" and packet.has("p4auth"):
                    wire.append(serialize_message(packet))
                return packet

            dep.net.control_channels["s1"].add_tap(tap)
            return wire

        workload = [(i % 16, 0xC0DE + i) for i in range(8)]

        seq_dep = _single_switch()
        seq_wire = capture(seq_dep)
        state = {"next": 0}

        def issue():
            if state["next"] >= len(workload):
                return
            index, value = workload[state["next"]]
            state["next"] += 1
            seq_dep.controller.write_register("s1", "demo", index, value,
                                              lambda ok, v: issue())

        issue()
        seq_dep.run(5.0)

        bat_dep = _single_switch()
        bat_wire = capture(bat_dep)
        batch = BatchController(bat_dep.controller, max_in_flight=4)
        for index, value in workload:
            batch.write_register("s1", "demo", index, value)
        bat_dep.run(5.0)

        assert len(seq_wire) == len(bat_wire) == len(workload)
        assert seq_wire == bat_wire
