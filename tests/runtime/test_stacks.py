"""The three register R/W stacks and the sequential harness."""

import pytest

from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.simulator import EventSimulator
from repro.runtime.harness import RunStats, run_sequential
from repro.runtime.p4runtime import P4RuntimeStack
from repro.runtime.plain import PlainController, PlainRegOpDataplane


def plain_deployment():
    sim = EventSimulator()
    net = Network(sim)
    switch = DataplaneSwitch("s1", num_ports=2)
    net.add_switch(switch)
    switch.registers.define("target", 64, 16)
    dataplane = PlainRegOpDataplane(switch).install()
    dataplane.map_register("target")
    controller = PlainController(net)
    controller.provision(switch)
    return sim, net, switch, controller


def p4runtime_deployment():
    sim = EventSimulator()
    net = Network(sim)
    switch = DataplaneSwitch("s1", num_ports=2)
    net.add_switch(switch)
    switch.registers.define("target", 64, 16)
    stack = P4RuntimeStack(net)
    stack.provision(switch)
    return sim, net, switch, stack


class TestPlainStack:
    def test_write_then_read(self):
        sim, net, switch, controller = plain_deployment()
        results = []
        controller.write_register("s1", "target", 2, 0x99,
                                  lambda ok, v: results.append(("w", ok, v)))
        sim.run(until=1.0)
        controller.read_register("s1", "target", 2,
                                 lambda ok, v: results.append(("r", ok, v)))
        sim.run(until=2.0)
        assert results == [("w", True, 0x99), ("r", True, 0x99)]

    def test_unknown_register_nacked(self):
        sim, net, switch, controller = plain_deployment()
        controller._reg_ids["s1"]["ghost"] = 9999
        results = []
        controller.read_register("s1", "ghost", 0,
                                 lambda ok, v: results.append(ok))
        sim.run(until=1.0)
        assert results == [False]
        assert controller.nacks == 1

    def test_rct_samples(self):
        sim, net, switch, controller = plain_deployment()
        controller.read_register("s1", "target", 0)
        sim.run(until=1.0)
        kind, rct, ok = controller.rct_samples[0]
        assert kind == "read" and ok and 0 < rct < 0.01


class TestP4RuntimeStack:
    def test_write_then_read(self):
        sim, net, switch, stack = p4runtime_deployment()
        results = []
        stack.write_register("s1", "target", 1, 0x55,
                             lambda ok, v: results.append(("w", ok, v)))
        sim.run(until=1.0)
        stack.read_register("s1", "target", 1,
                            lambda ok, v: results.append(("r", ok, v)))
        sim.run(until=2.0)
        assert results == [("w", True, 0x55), ("r", True, 0x55)]

    def test_goes_through_control_channel_taps(self):
        """P4Runtime still crosses the compromised OS (the paper's point
        about TLS-protected P4Runtime being insufficient)."""
        sim, net, switch, stack = p4runtime_deployment()

        def tamper(packet, direction):
            if direction == "c->dp" and packet.has("reg_op"):
                packet.get("reg_op")["value"] = 0x666
            return packet

        net.control_channels["s1"].add_tap(tamper)
        stack.write_register("s1", "target", 0, 0x111)
        sim.run(until=1.0)
        assert switch.registers.get("target").read(0) == 0x666

    def test_read_faster_than_write(self):
        sim, net, switch, stack = p4runtime_deployment()
        read_stats = run_sequential(sim, stack, "read", "s1", "target",
                                    duration_s=1.0)
        sim2, net2, switch2, stack2 = p4runtime_deployment()
        write_stats = run_sequential(sim2, stack2, "write", "s1", "target",
                                     duration_s=1.0)
        ratio = read_stats.throughput_rps / write_stats.throughput_rps
        assert 1.5 < ratio < 1.9  # paper: 1.7x


class TestHarness:
    def test_sequential_counts(self):
        sim, net, switch, controller = plain_deployment()
        stats = run_sequential(sim, controller, "read", "s1", "target",
                               duration_s=0.5)
        assert stats.completed > 100
        assert stats.throughput_rps == pytest.approx(
            stats.completed / stats.duration_s)
        assert 0 < stats.mean_rct_s < 0.01
        assert stats.percentile_rct_s(99) >= stats.percentile_rct_s(50)

    def test_invalid_kind_rejected(self):
        sim, net, switch, controller = plain_deployment()
        with pytest.raises(ValueError):
            run_sequential(sim, controller, "erase", "s1", "target")

    def test_empty_stats_are_nan(self):
        import math
        stats = RunStats("read", 1.0)
        assert math.isnan(stats.mean_rct_s)
        assert math.isnan(stats.percentile_rct_s(50))
        assert stats.throughput_rps == 0
