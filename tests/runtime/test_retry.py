"""Bounded request retries in the comparison stacks (ISSUE 2).

Both non-P4Auth stacks default to the legacy behaviour (a lost request
vanishes silently); opting into ``request_timeout_s`` turns loss into
bounded retries with a terminal ``callback(False, 0)``.
"""

from repro.core.constants import REG_OP
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.simulator import EventSimulator
from repro.runtime.p4runtime import P4RuntimeStack
from repro.runtime.plain import PlainController, PlainRegOpDataplane


def plain_deployment(**controller_kwargs):
    sim = EventSimulator()
    net = Network(sim)
    switch = DataplaneSwitch("s1", num_ports=2)
    net.add_switch(switch)
    switch.registers.define("target", 64, 16)
    dataplane = PlainRegOpDataplane(switch).install()
    dataplane.map_register("target")
    controller = PlainController(net, **controller_kwargs)
    controller.provision(switch)
    return sim, net, controller


def p4runtime_deployment(**stack_kwargs):
    sim = EventSimulator()
    net = Network(sim)
    switch = DataplaneSwitch("s1", num_ports=2)
    net.add_switch(switch)
    switch.registers.define("target", 64, 16)
    stack = P4RuntimeStack(net, **stack_kwargs)
    stack.provision(switch)
    return sim, net, stack


def drop_requests(net, count=None):
    """Tap the control channel: eat up to ``count`` c->dp requests."""
    state = {"eaten": 0}

    def tap(packet, direction):
        if direction != "c->dp" or not packet.has(REG_OP):
            return packet
        if count is not None and state["eaten"] >= count:
            return packet
        state["eaten"] += 1
        return None

    net.control_channels["s1"].add_tap(tap)
    return state


class TestPlainStackRetry:
    def test_lost_request_abandoned_terminally(self):
        sim, net, controller = plain_deployment(request_timeout_s=0.01,
                                                max_request_attempts=3)
        drop_requests(net)
        outcomes = []
        controller.write_register("s1", "target", 0, 0x42,
                                  lambda ok, v: outcomes.append((ok, v)))
        sim.run(until=2.0)
        assert outcomes == [(False, 0)]
        assert controller.request_retries == 2
        assert controller.requests_abandoned == 1
        assert not controller._pending

    def test_retry_recovers_from_a_single_loss(self):
        sim, net, controller = plain_deployment(request_timeout_s=0.01)
        drop_requests(net, count=1)
        outcomes = []
        controller.write_register("s1", "target", 3, 0x77,
                                  lambda ok, v: outcomes.append((ok, v)))
        sim.run(until=2.0)
        assert outcomes == [(True, 0x77)]
        assert controller.request_retries == 1
        assert controller.requests_abandoned == 0
        assert net.switch("s1").registers.get("target").read(3) == 0x77

    def test_success_cancels_the_timeout(self):
        sim, net, controller = plain_deployment(request_timeout_s=0.01)
        outcomes = []
        controller.write_register("s1", "target", 0, 0x11,
                                  lambda ok, v: outcomes.append(ok))
        sim.run(until=2.0)
        assert outcomes == [True]  # no spurious late failure callback
        assert controller.request_retries == 0
        assert sim.events_cancelled == 1  # the armed timeout was withdrawn

    def test_legacy_default_stays_silent(self):
        sim, net, controller = plain_deployment()  # request_timeout_s=None
        drop_requests(net)
        outcomes = []
        controller.write_register("s1", "target", 0, 0x42,
                                  lambda ok, v: outcomes.append(ok))
        sim.run(until=2.0)
        assert outcomes == []  # the old contract: loss means no callback
        assert controller.requests_abandoned == 0


class TestP4RuntimeStackRetry:
    def test_lost_request_abandoned_terminally(self):
        sim, net, stack = p4runtime_deployment(request_timeout_s=0.01,
                                               max_request_attempts=3)
        drop_requests(net)
        outcomes = []
        stack.write_register("s1", "target", 0, 0x42,
                             lambda ok, v: outcomes.append((ok, v)))
        sim.run(until=2.0)
        assert outcomes == [(False, 0)]
        assert stack.request_retries == 2
        assert stack.requests_abandoned == 1

    def test_retry_recovers_from_a_single_loss(self):
        sim, net, stack = p4runtime_deployment(request_timeout_s=0.01)
        drop_requests(net, count=1)
        outcomes = []
        stack.read_register("s1", "target", 0,
                            lambda ok, v: outcomes.append((ok, v)))
        sim.run(until=2.0)
        assert outcomes == [(True, 0)]
        assert stack.request_retries == 1
        assert stack.requests_abandoned == 0

    def test_response_leg_loss_also_retried(self):
        sim, net, stack = p4runtime_deployment(request_timeout_s=0.01)
        state = {"eaten": 0}

        def tap(packet, direction):
            if direction == "dp->c" and state["eaten"] < 1:
                state["eaten"] += 1
                return None
            return packet

        net.control_channels["s1"].add_tap(tap)
        outcomes = []
        stack.write_register("s1", "target", 5, 0x99,
                             lambda ok, v: outcomes.append((ok, v)))
        sim.run(until=2.0)
        assert outcomes == [(True, 0x99)]
        assert stack.request_retries == 1

    def test_legacy_default_stays_silent(self):
        sim, net, stack = p4runtime_deployment()
        drop_requests(net)
        outcomes = []
        stack.write_register("s1", "target", 0, 0x42,
                             lambda ok, v: outcomes.append(ok))
        sim.run(until=2.0)
        assert outcomes == []
        assert stack.requests_abandoned == 0
