"""Cost model: calibration invariants the benchmarks rely on."""

import pytest

from repro.net.costs import CostModel


def test_defaults_are_positive():
    costs = CostModel()
    for name in ("cdp_one_way_s", "switch_fwd_s", "link_latency_s",
                 "host_fixed_s", "digest_op_s", "controller_digest_s",
                 "compose_read_s", "compose_write_s",
                 "p4runtime_overhead_s", "controller_proc_s"):
        assert getattr(costs, name) > 0


def test_bandwidth_delay():
    costs = CostModel()
    assert costs.bandwidth_delay(1250, bandwidth_bps=10e9) == pytest.approx(
        1e-6)


def test_fig19_ratio_anchor():
    """The compose asymmetry must keep P4Runtime's read/write throughput
    ratio near the paper's 1.7x (guards against calibration drift)."""
    costs = CostModel()
    transit = (costs.cdp_one_way_s * 2 + costs.switch_fwd_s
               + costs.controller_proc_s)
    read_rct = costs.compose_read_s + costs.p4runtime_overhead_s + transit
    write_rct = costs.compose_write_s + costs.p4runtime_overhead_s + transit
    assert 1.6 < write_rct / read_rct < 1.8


def test_fig21_anchor():
    """digest_op_s and host_fixed_s must keep the 2-hop overhead near
    0.95% and the 10-hop overhead near 5.9%."""
    costs = CostModel()

    def overhead(hops):
        base = (costs.host_fixed_s + hops * costs.switch_fwd_s
                + (hops + 1) * costs.link_latency_s)
        auth = 2 * (hops - 1) * costs.digest_op_s
        return auth / base * 100

    assert 0.8 < overhead(2) < 1.2
    assert 5.4 < overhead(10) < 6.4


def test_fig20_band_anchor():
    """Four C-DP exchanges must land key initialization in 1-2 ms."""
    costs = CostModel()
    assert 1e-3 < 4 * costs.cdp_one_way_s < 2e-3


def test_custom_model_accepted():
    costs = CostModel(cdp_one_way_s=1e-3)
    assert costs.cdp_one_way_s == 1e-3
