"""Topology builders: wiring conventions of the experiment setups."""

import networkx as nx
import pytest

from repro.dataplane.packet import Packet
from repro.net.topology import (
    as_graph,
    hula_fig3_topology,
    leaf_spine,
    linear_chain,
)


class TestLinearChain:
    def test_structure(self):
        net, extras = linear_chain(3)
        assert extras["switches"] == ["s1", "s2", "s3"]
        assert net.neighbor_ports("s1") == {2: ("s2", 1)}
        assert net.neighbor_ports("s2") == {1: ("s1", 2), 2: ("s3", 1)}

    def test_end_to_end_delivery(self):
        net, extras = linear_chain(4)
        for name in extras["switches"]:
            net.switch(name).pipeline.add_stage(
                "fwd", lambda ctx: ctx.emit(2 if ctx.ingress_port == 1 else 1))
        extras["src"].send(Packet())
        extras["sim"].run()
        assert len(extras["dst"].received) == 1

    def test_needs_at_least_one_switch(self):
        with pytest.raises(ValueError):
            linear_chain(0)


class TestFig3:
    def test_three_parallel_paths(self):
        net, extras = hula_fig3_topology()
        neighbors = net.neighbor_ports("s1")
        assert neighbors == {2: ("s2", 1), 3: ("s3", 1), 4: ("s4", 1)}
        assert extras["paths"] == {"s2": 2, "s3": 3, "s4": 4}

    def test_mid_switches_reach_s5(self):
        net, _ = hula_fig3_topology()
        for mid in ("s2", "s3", "s4"):
            assert net.neighbor_ports(mid)[2][0] == "s5"

    def test_six_switch_links(self):
        net, _ = hula_fig3_topology()
        graph = as_graph(net)
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 6


class TestLeafSpine:
    def test_structure(self):
        net, extras = leaf_spine(num_leaves=4, num_spines=2)
        assert len(extras["leaves"]) == 4
        assert len(extras["spines"]) == 2
        graph = as_graph(net)
        assert graph.number_of_edges() == 8  # full bipartite
        assert nx.is_connected(graph)

    def test_each_leaf_has_host(self):
        net, extras = leaf_spine(3, 2)
        for leaf in extras["leaves"]:
            assert leaf in extras["hosts"]

    def test_validation(self):
        with pytest.raises(ValueError):
            leaf_spine(num_leaves=1)
        with pytest.raises(ValueError):
            leaf_spine(num_spines=0)
