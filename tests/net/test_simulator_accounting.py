"""Event-budget accounting and the run(until=..., max_events=...) clock.

Regression coverage for the interaction the telemetry work surfaced:
when ``max_events`` runs out with eligible events still queued, the
clock must stay at the last executed event (not jump to ``until``), the
deferred events must be tallied, and a later ``run`` must drain them.
"""

from repro.net.simulator import EventSimulator
from repro.telemetry import Telemetry


def _schedule_ticks(sim, count=10, period=0.1):
    fired = []
    for index in range(count):
        sim.schedule_at(period * (index + 1), fired.append, index)
    return fired


def test_budget_exhaustion_defers_without_advancing_clock():
    sim = EventSimulator()
    fired = _schedule_ticks(sim)
    executed = sim.run(until=2.0, max_events=3)
    assert executed == 3
    assert fired == [0, 1, 2]
    # Clock stays at the last executed event, not at until=2.0.
    assert sim.now == 0.1 * 3
    # The 7 remaining events were all eligible (<= until) and deferred.
    assert sim.events_dropped == 7
    assert sim.budget_exhaustions == 1
    assert sim.pending() == 7


def test_deferred_events_survive_and_drain_later():
    sim = EventSimulator()
    fired = _schedule_ticks(sim)
    sim.run(until=2.0, max_events=3)
    executed = sim.run(until=2.0)
    assert executed == 7
    assert fired == list(range(10))
    # With the queue drained, the clock advances to until as usual.
    assert sim.now == 2.0
    assert sim.events_dropped == 7  # counted once, not re-counted


def test_budget_exhaustion_without_until_counts_whole_queue():
    sim = EventSimulator()
    _schedule_ticks(sim, count=5)
    sim.run(max_events=2)
    assert sim.events_dropped == 3
    assert sim.now == 0.2


def test_events_beyond_until_are_not_counted_as_deferred():
    sim = EventSimulator()
    _schedule_ticks(sim, count=10, period=0.1)  # events at 0.1 .. 1.0
    sim.run(until=0.45, max_events=3)
    # Only the 0.4 event was eligible and deferred; 0.5..1.0 are simply
    # outside the window, which is normal operation, not starvation.
    assert sim.events_dropped == 1


def test_clean_until_run_still_advances_clock():
    sim = EventSimulator()
    sim.schedule_at(0.5, lambda: None)
    sim.run(until=3.0)
    assert sim.now == 3.0
    assert sim.events_dropped == 0
    assert sim.budget_exhaustions == 0


def test_heap_depth_high_water():
    sim = EventSimulator()
    for index in range(6):
        sim.schedule_at(0.1 * (index + 1), lambda: None)
    assert sim.heap_depth_high_water == 6
    sim.run()
    assert sim.heap_depth_high_water == 6  # high-water survives the drain
    assert sim.pending() == 0


def test_budget_metrics_and_trace_event():
    telemetry = Telemetry(enabled=True)
    sim = EventSimulator(telemetry=telemetry)
    _schedule_ticks(sim)
    sim.run(until=2.0, max_events=3)
    assert telemetry.metrics.value("sim_events_deferred_total") == 7
    assert telemetry.metrics.value("sim_budget_exhausted_total") == 1
    assert telemetry.metrics.value("sim_events_executed_total") == 3
    events = telemetry.tracer.events("sim.budget_exhausted")
    assert len(events) == 1
    assert events[0].fields == {"deferred": 7, "executed": 3}
    # Stamped with the virtual clock at exhaustion time.
    assert events[0].time == sim.now


def test_consecutive_exhausted_runs_count_each_deferral_once():
    """Two budget-exhausted ``run()`` calls in a row must not re-count
    events that were already tallied as deferred the first time."""
    sim = EventSimulator()
    _schedule_ticks(sim, count=10)
    sim.run(until=2.0, max_events=3)
    assert sim.events_dropped == 7
    # Second exhausted run executes 3 more; the 4 events that remain
    # eligible were already counted, so the tally must not move.
    sim.run(until=2.0, max_events=3)
    assert sim.events_dropped == 7
    assert sim.budget_exhaustions == 2
    # Draining the rest never re-counts either.
    sim.run(until=2.0)
    assert sim.events_dropped == 7
    assert sim.pending() == 0


def test_newly_scheduled_events_still_count_as_fresh_deferrals():
    """Only *re*-counting is suppressed: genuinely new eligible events
    arriving between exhausted runs are tallied."""
    sim = EventSimulator()
    _schedule_ticks(sim, count=6)
    sim.run(until=2.0, max_events=3)
    assert sim.events_dropped == 3
    for index in range(3):
        sim.schedule_at(1.5 + index * 0.01, lambda: None)
    sim.run(until=2.0, max_events=1)
    # 2 old deferrals were already counted; the 3 new events are fresh.
    # (One old deferred event executed, leaving 2 old + 3 new queued.)
    assert sim.events_dropped == 3 + 3


def test_deferred_bookkeeping_clears_as_events_execute():
    sim = EventSimulator()
    _schedule_ticks(sim, count=5)
    sim.run(until=2.0, max_events=2)
    assert len(sim._deferred_seen) == 3
    sim.run(until=2.0)
    assert not sim._deferred_seen
