"""Event simulator: ordering, time semantics, bounded runs."""

import pytest

from repro.net.simulator import EventSimulator


def test_events_run_in_time_order():
    sim = EventSimulator()
    trace = []
    sim.schedule(0.3, trace.append, "c")
    sim.schedule(0.1, trace.append, "a")
    sim.schedule(0.2, trace.append, "b")
    sim.run()
    assert trace == ["a", "b", "c"]


def test_simultaneous_events_fifo():
    sim = EventSimulator()
    trace = []
    for tag in range(5):
        sim.schedule(1.0, trace.append, tag)
    sim.run()
    assert trace == [0, 1, 2, 3, 4]


def test_now_advances_to_event_time():
    sim = EventSimulator()
    seen = []
    sim.schedule(0.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [0.5]
    assert sim.now == 0.5


def test_run_until_stops_and_advances_clock():
    sim = EventSimulator()
    trace = []
    sim.schedule(1.0, trace.append, "early")
    sim.schedule(3.0, trace.append, "late")
    sim.run(until=2.0)
    assert trace == ["early"]
    assert sim.now == 2.0
    sim.run()
    assert trace == ["early", "late"]


def test_events_scheduled_during_run_execute():
    sim = EventSimulator()
    trace = []

    def chain(depth):
        trace.append(depth)
        if depth < 3:
            sim.schedule(0.1, chain, depth + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert trace == [0, 1, 2, 3]


def test_cannot_schedule_into_past():
    sim = EventSimulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_max_events_guard():
    sim = EventSimulator()

    def storm():
        sim.schedule(0.0, storm)

    sim.schedule(0.0, storm)
    executed = sim.run(max_events=100)
    assert executed == 100
    assert sim.pending() >= 1


def test_pending_count():
    sim = EventSimulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending() == 2
    sim.run()
    assert sim.pending() == 0


class TestCancellableEvents:
    def test_cancel_before_fire_suppresses_the_call(self):
        sim = EventSimulator()
        fired = []
        handle = sim.schedule_cancellable(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled and handle.fired
        assert sim.events_cancelled == 1

    def test_uncancelled_handle_fires_normally(self):
        sim = EventSimulator()
        fired = []
        handle = sim.schedule_cancellable(1.0, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        assert handle.fired and not handle.cancelled
        assert sim.events_cancelled == 0

    def test_cancel_after_fire_is_a_noop(self):
        sim = EventSimulator()
        fired = []
        handle = sim.schedule_cancellable(1.0, fired.append, "x")
        sim.run()
        handle.cancel()
        sim.run()
        assert fired == ["x"]
        assert not handle.cancelled
        assert sim.events_cancelled == 0

    def test_lazy_cancellation_keeps_heap_discipline(self):
        # A cancelled entry still occupies its heap slot and is counted
        # as executed when its time comes (determinism: the event order
        # of every OTHER event is unchanged by the cancellation).
        sim = EventSimulator()
        order = []
        sim.schedule(1.0, order.append, "a")
        handle = sim.schedule_cancellable(2.0, order.append, "b")
        sim.schedule(3.0, order.append, "c")
        handle.cancel()
        executed = sim.run()
        assert order == ["a", "c"]
        assert executed == 3  # the tombstone still passed through the loop
