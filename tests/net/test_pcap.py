"""PCAP capture: format correctness and live-capture integration."""

import struct

import pytest

from repro.core.constants import P4AUTH
from repro.dataplane.packet import Packet
from repro.net.pcap import (
    ETHERTYPE_OTHER,
    ETHERTYPE_P4AUTH,
    PCAP_MAGIC,
    PcapCapture,
    read_pcap,
)
from tests.conftest import Deployment


def test_global_header_format():
    capture = PcapCapture(lambda: 0.0)
    data = capture.dump()
    magic, major, minor = struct.unpack_from("<IHH", data, 0)
    assert magic == PCAP_MAGIC
    assert (major, minor) == (2, 4)


def test_records_roundtrip():
    now = {"t": 1.5}
    capture = PcapCapture(lambda: now["t"])
    capture(Packet(payload=b"AAAA"), "a->b")
    now["t"] = 2.25
    capture(Packet(payload=b"BBBBBB"), "b->a")
    records = read_pcap(capture.dump())
    assert len(records) == 2
    assert records[0][0] == pytest.approx(1.5)
    assert records[1][0] == pytest.approx(2.25)
    assert records[0][1].endswith(b"AAAA")
    assert records[1][1].endswith(b"BBBBBB")


def test_ethertype_marks_p4auth_frames():
    from repro.core.messages import build_reg_read_request
    capture = PcapCapture(lambda: 0.0)
    capture(build_reg_read_request(1, 0, 1), "c->dp")
    capture(Packet(payload=b"x"), "a->b")
    records = read_pcap(capture.dump())
    etype0 = int.from_bytes(records[0][1][12:14], "big")
    etype1 = int.from_bytes(records[1][1][12:14], "big")
    assert etype0 == ETHERTYPE_P4AUTH
    assert etype1 == ETHERTYPE_OTHER


def test_snaplen_truncates_capture_not_original_length():
    capture = PcapCapture(lambda: 0.0, snaplen=20)
    capture(Packet(payload=bytes(100)), "a->b")
    data = capture.dump()
    _sec, _us, captured, original = struct.unpack_from("<IIII", data, 24)
    assert captured == 20
    assert original == 114  # 14B synthetic ethernet + 100B payload


def test_capture_is_passive():
    capture = PcapCapture(lambda: 0.0)
    packet = Packet(payload=b"untouched")
    assert capture(packet, "a->b") is packet


def test_live_capture_of_kmp_exchange(tmp_path):
    """Capture a full key bootstrap off the control channel and check
    the P4Auth messages appear with their exact wire sizes."""
    dep = Deployment(num_switches=1, bootstrap=False)
    capture = PcapCapture(lambda: dep.sim.now)
    dep.net.control_channels["s1"].add_tap(capture)
    dep.controller.kmp.local_key_init("s1")
    dep.run(1.0)
    path = tmp_path / "kmp.pcap"
    count = capture.save(str(path))
    assert count == 4  # EAK x2 + ADHKD x2
    records = read_pcap(path.read_bytes())
    sizes = sorted(len(frame) - 14 for _, frame in records)
    assert sizes == [22, 22, 30, 30]  # Table III message sizes
    times = [t for t, _ in records]
    assert times == sorted(times)
