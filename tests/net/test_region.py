"""Region partition: lockstep epochs, mailbox determinism, gateways."""

import pytest

from repro.dataplane.packet import Packet
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.region import (
    DEFAULT_BOUNDARY_LATENCY_S,
    Region,
    RegionalWorld,
)
from repro.net.simulator import EventSimulator
from repro.net.topology import (
    random_regular_fabric,
    region_seed,
    region_sizes,
    regional_fabric,
)


class Recorder:
    """Minimal network node: records every delivery with its region time."""

    def __init__(self, sim):
        self.sim = sim
        self.got = []

    def receive(self, packet, port):
        self.got.append((self.sim.now, packet, port))


def make_region(rid, index, num_switches=1):
    sim = EventSimulator()
    net = Network(sim)
    switches = []
    for i in range(num_switches):
        name = f"{rid}sw{i}"
        net.add_switch(DataplaneSwitch(name, num_ports=8,
                                       seed=100 * index + i))
        switches.append(name)
    return Region(id=rid, index=index, sim=sim, net=net, switches=switches)


def make_world(num_switches=1, epoch_s=None):
    regions = [make_region("ra", 0, num_switches),
               make_region("rb", 1, num_switches)]
    return RegionalWorld(regions, epoch_s=epoch_s)


class TestConstruction:
    def test_region_rejects_foreign_network(self):
        sim_a, sim_b = EventSimulator(), EventSimulator()
        net_b = Network(sim_b)
        with pytest.raises(ValueError, match="different simulator"):
            Region(id="ra", index=0, sim=sim_a, net=net_b)

    def test_world_rejects_duplicate_region_ids(self):
        with pytest.raises(ValueError, match="duplicate region ids"):
            RegionalWorld([make_region("ra", 0), make_region("ra", 1)])

    def test_world_rejects_disagreeing_clocks(self):
        late = make_region("rb", 1)
        late.sim.schedule(1.0, lambda: None)
        late.sim.run(until=1.0)
        with pytest.raises(ValueError, match="disagree on the clock"):
            RegionalWorld([make_region("ra", 0), late])

    def test_boundary_link_must_cross_regions(self):
        world = make_world()
        with pytest.raises(ValueError, match="differ in region"):
            world.add_boundary_link("ra", "rasw0", 5, "ra", "rasw0", 6)

    def test_boundary_latency_must_be_positive(self):
        world = make_world()
        with pytest.raises(ValueError, match="positive"):
            world.add_boundary_link("ra", "rasw0", 5, "rb", "rbsw0", 5,
                                    latency_s=0.0)

    def test_boundary_latency_must_cover_explicit_epoch(self):
        world = make_world(epoch_s=1e-3)
        with pytest.raises(ValueError, match="lookahead invariant"):
            world.add_boundary_link("ra", "rasw0", 5, "rb", "rbsw0", 5,
                                    latency_s=100e-6)

    def test_gateways_invisible_to_neighbor_ports(self):
        """Boundary ports carry no port keys: the gateway is not a
        SwitchNode, so KMP's neighbor discovery never sees it."""
        world = make_world(num_switches=2)
        world.region("ra").net.connect("rasw0", 1, "rasw1", 1)
        world.add_boundary_link("ra", "rasw0", 5, "rb", "rbsw0", 5)
        neighbors = world.region("ra").net.neighbor_ports("rasw0")
        assert 5 not in dict(neighbors)
        assert 1 in dict(neighbors)


class TestDelivery:
    def test_boundary_delivery_charges_full_latency(self):
        world = make_world()
        world.add_boundary_link("ra", "rasw0", 5, "rb", "rbsw0", 5,
                                latency_s=2e-3)
        recorder = Recorder(world.region("rb").sim)
        world.region("rb").net.nodes["rbsw0"].receive = recorder.receive
        packet = Packet()
        world.region("ra").net.transmit("rasw0", 5, packet)
        world.run(until=5e-3)
        assert [(t, p) for t, p, _port in recorder.got] == [(2e-3, packet)]
        assert world.mailbox.posted == world.mailbox.delivered == 1

    def test_flush_orders_by_time_then_src_region_then_seq(self):
        world = make_world()
        recorder = Recorder(world.region("rb").sim)
        world.region("rb").net.nodes["rbsw0"].receive = recorder.receive
        p_late, p_second, p_first = Packet(), Packet(), Packet()
        # Posted out of order: later deliver_at first, then a higher
        # src_index at the same instant as a lower one.
        world.mailbox.post(0, "rb", "rbsw0", 1, p_late, deliver_at=2e-3)
        world.mailbox.post(1, "rb", "rbsw0", 1, p_second, deliver_at=1e-3)
        world.mailbox.post(0, "rb", "rbsw0", 1, p_first, deliver_at=1e-3)
        world.mailbox.flush(world.by_id)
        world.region("rb").sim.run(until=5e-3)
        assert [p for _t, p, _port in recorder.got] \
            == [p_first, p_second, p_late]

    def test_flush_rejects_delivery_into_the_past(self):
        world = make_world()
        region_b = world.region("rb")
        region_b.sim.schedule(1.0, lambda: None)
        region_b.sim.run(until=1.0)
        world.mailbox.post(0, "rb", "rbsw0", 1, Packet(), deliver_at=0.5)
        with pytest.raises(RuntimeError, match="lookahead violation"):
            world.mailbox.flush(world.by_id)

    def test_same_seed_worlds_deliver_identically(self):
        logs = []
        for _attempt in range(2):
            world = make_world()
            world.add_boundary_link("ra", "rasw0", 5, "rb", "rbsw0", 5)
            world.add_boundary_link("rb", "rbsw0", 6, "ra", "rasw0", 6)
            recorders = {}
            for rid, sw in (("ra", "rasw0"), ("rb", "rbsw0")):
                recorder = Recorder(world.region(rid).sim)
                world.region(rid).net.nodes[sw].receive = recorder.receive
                recorders[rid] = recorder
            for i in range(4):
                world.region("ra").net.transmit("rasw0", 5, Packet())
                world.region("rb").net.transmit("rbsw0", 6, Packet())
            world.run(until=4e-3)
            logs.append([(rid, [(t, port) for t, _p, port in rec.got])
                         for rid, rec in sorted(recorders.items())])
        assert logs[0] == logs[1]


class TestLockstep:
    def test_single_region_run_is_pure_pass_through(self):
        region = make_region("ra", 0)
        world = RegionalWorld([region])
        fired = []
        region.sim.schedule(1.5e-3, lambda: fired.append(region.sim.now))
        world.run(until=3e-3)
        assert fired == [1.5e-3]
        assert world.epochs == 0          # no lockstep machinery engaged
        assert region.sim.now == 3e-3

    def test_epoch_hooks_fire_at_every_barrier(self):
        world = make_world()
        world.add_boundary_link("ra", "rasw0", 5, "rb", "rbsw0", 5,
                                latency_s=1e-3)
        barriers = []
        world.on_epoch.append(barriers.append)
        world.run(until=3e-3)
        assert barriers == pytest.approx([1e-3, 2e-3, 3e-3])
        assert world.epochs == 3

    def test_epoch_defaults_to_min_boundary_latency(self):
        world = make_world()
        world.add_boundary_link("ra", "rasw0", 5, "rb", "rbsw0", 5,
                                latency_s=4e-3)
        world.add_boundary_link("rb", "rbsw0", 6, "ra", "rasw0", 6,
                                latency_s=2e-3)
        assert world.epoch_s == 2e-3
        assert make_world().epoch_s == DEFAULT_BOUNDARY_LATENCY_S

    def test_run_until_samples_only_at_barriers(self):
        world = make_world()
        world.add_boundary_link("ra", "rasw0", 5, "rb", "rbsw0", 5,
                                latency_s=1e-3)
        seen = []

        def condition():
            seen.append(world.now)
            return world.now >= 2e-3

        assert world.run_until(condition, deadline=10e-3)
        assert world.now == pytest.approx(2e-3)
        # Every sample happened at a barrier multiple of the epoch.
        for t in seen:
            assert abs(t / 1e-3 - round(t / 1e-3)) < 1e-9

    def test_stats_and_pending_account_for_mailbox(self):
        world = make_world()
        world.add_boundary_link("ra", "rasw0", 5, "rb", "rbsw0", 5)
        world.mailbox.post(0, "rb", "rbsw0", 1, Packet(), deliver_at=1e-3)
        assert world.pending() == 1       # sits in the mailbox, unflushed
        world.run(until=2e-3)
        stats = world.stats()
        assert stats["mailbox_posted"] == stats["mailbox_delivered"] == 1
        assert stats["boundary_links"] == 1
        assert world.pending() == 0


class TestRegionalFabric:
    def test_region_sizes_near_even_split(self):
        assert region_sizes(10, 3) == [4, 3, 3]
        assert region_sizes(12, 4) == [3, 3, 3, 3]
        with pytest.raises(ValueError):
            region_sizes(2, 3)
        with pytest.raises(ValueError):
            region_sizes(10, 0)

    def test_regions_1_keeps_legacy_names_and_world(self):
        net, extras = random_regular_fabric(9, 4, seed=1)
        assert extras["switches"][0] == "sw0"
        world = extras["world"]
        assert len(world.regions) == 1
        assert world.boundary_links == []

    def test_multi_region_fabric_shape(self):
        world, extras = regional_fabric(30, regions=3, degree=4, seed=1,
                                        boundary_links_per_pair=2)
        assert [r.id for r in world.regions] == ["r0", "r1", "r2"]
        assert [len(r.switches) for r in world.regions] == [10, 10, 10]
        assert extras["switches_by_region"]["r1"][0] == "r1sw0"
        # Ring of 3 regions, 2 links per adjacent pair.
        assert len(world.boundary_links) == 6
        for link in world.boundary_links:
            assert link.region_a != link.region_b
            # Boundary ports sit beyond the intra-region degree.
            assert link.port_a > 4 and link.port_b > 4

    def test_region_graph_matches_standalone_slice(self):
        """Phase A's standalone region worlds see the same graphs as the
        lockstep fabric — same size, same per-region seed."""
        _world, extras = regional_fabric(30, regions=3, degree=4, seed=7)
        for index in range(3):
            size = region_sizes(30, 3)[index]
            _net, standalone = random_regular_fabric(
                size, 4, region_seed(7, index))
            lockstep_graph = extras["graphs"][f"r{index}"]
            assert (sorted(standalone["graph"].edges())
                    == sorted(lockstep_graph.edges()))

    def test_min_region_size_must_exceed_degree(self):
        with pytest.raises(ValueError):
            regional_fabric(12, regions=4, degree=4, seed=1)
