"""Links and control channels: taps, drops, delay math."""

import pytest

from repro.dataplane.packet import Packet
from repro.net.links import ControlChannel, Link


def make_link(**kwargs):
    return Link(("a", 1), ("b", 2), **kwargs)


def test_peer_resolution():
    link = make_link()
    assert link.peer_of("a", 1) == ("b", 2)
    assert link.peer_of("b", 2) == ("a", 1)
    with pytest.raises(ValueError):
        link.peer_of("c", 1)


def test_direction_naming():
    link = make_link()
    assert link.direction_from("a", 1) == "a->b"
    assert link.direction_from("b", 2) == "b->a"


def test_transit_without_taps_passes():
    link = make_link()
    packet = Packet()
    assert link.transit(packet, "a->b") is packet
    assert link.packets_carried == 1


def test_tap_can_modify():
    link = make_link()
    packet = Packet(payload=b"orig")

    def tap(pkt, direction):
        pkt.payload = b"tampered"
        return pkt

    link.add_tap(tap)
    survivor = link.transit(packet, "a->b")
    assert survivor.payload == b"tampered"


def test_tap_can_drop():
    link = make_link()
    link.add_tap(lambda pkt, d: None)
    assert link.transit(Packet(), "a->b") is None
    assert link.packets_dropped_by_taps == 1


def test_taps_chain_in_order():
    link = make_link()
    order = []
    link.add_tap(lambda pkt, d: (order.append(1), pkt)[1])
    link.add_tap(lambda pkt, d: (order.append(2), pkt)[1])
    link.transit(Packet(), "a->b")
    assert order == [1, 2]


def test_remove_tap():
    link = make_link()
    tap = lambda pkt, d: None
    link.add_tap(tap)
    link.remove_tap(tap)
    assert link.transit(Packet(), "a->b") is not None


def test_delay_includes_serialization():
    link = make_link(latency_s=1e-6, bandwidth_bps=8e6)  # 1 byte/us
    assert link.delay_for(100) == pytest.approx(1e-6 + 100e-6)


def test_bytes_accounting():
    link = make_link()
    link.transit(Packet(payload=b"x" * 50), "a->b")
    assert link.bytes_carried == 50


def test_invalid_parameters():
    with pytest.raises(ValueError):
        make_link(latency_s=-1)
    with pytest.raises(ValueError):
        make_link(bandwidth_bps=0)


class TestControlChannel:
    def test_directions_validated(self):
        channel = ControlChannel("s1")
        with pytest.raises(ValueError):
            channel.transit(Packet(), "a->b")

    def test_tap_applies_per_direction(self):
        channel = ControlChannel("s1")
        seen = []
        channel.add_tap(lambda pkt, d: (seen.append(d), pkt)[1])
        channel.transit(Packet(), "c->dp")
        channel.transit(Packet(), "dp->c")
        assert seen == ["c->dp", "dp->c"]

    def test_drop_counted(self):
        channel = ControlChannel("s1")
        channel.add_tap(lambda pkt, d: None)
        assert channel.transit(Packet(), "c->dp") is None
        assert channel.messages_dropped_by_taps == 1
