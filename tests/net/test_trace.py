"""Synthetic trace generator: reproducibility and distribution shape."""

import math

import pytest

from repro.net.trace import Flow, TraceGenerator


def test_reproducible_given_seed():
    a = TraceGenerator(seed=7).flow_list(5.0)
    b = TraceGenerator(seed=7).flow_list(5.0)
    assert [(f.start_time, f.size_bytes, f.five_tuple) for f in a] == \
           [(f.start_time, f.size_bytes, f.five_tuple) for f in b]


def test_different_seeds_differ():
    a = TraceGenerator(seed=1).flow_list(5.0)
    b = TraceGenerator(seed=2).flow_list(5.0)
    assert a[0].five_tuple != b[0].five_tuple or \
           a[0].size_bytes != b[0].size_bytes


def test_flows_time_ordered_and_bounded():
    flows = TraceGenerator(seed=3).flow_list(10.0)
    times = [f.start_time for f in flows]
    assert times == sorted(times)
    assert all(0 <= t < 10.0 for t in times)


def test_arrival_rate_approximate():
    flows = TraceGenerator(seed=5, arrival_rate_hz=100.0).flow_list(30.0)
    rate = len(flows) / 30.0
    assert 70 < rate < 130


def test_sizes_heavy_tailed():
    flows = TraceGenerator(seed=9, arrival_rate_hz=500.0).flow_list(20.0)
    sizes = sorted(f.size_bytes for f in flows)
    median = sizes[len(sizes) // 2]
    p99 = sizes[int(len(sizes) * 0.99)]
    # Heavy tail: the 99th percentile dwarfs the median.
    assert p99 > 10 * median
    assert all(s >= 1200 for s in sizes)


def test_size_cap_respected():
    flows = TraceGenerator(seed=1, max_flow_bytes=10_000).flow_list(20.0)
    assert all(f.size_bytes <= 10_000 for f in flows)


def test_packet_count():
    flow = Flow(1, 0.0, 4500, 0, 0, 0, 0)
    assert flow.packet_count(mtu=1500) == 3
    assert Flow(1, 0.0, 1, 0, 0, 0, 0).packet_count() == 1


def test_five_tuple_fields():
    flow = TraceGenerator(seed=1).flow_list(1.0)[0]
    src, dst, sport, dport, proto = flow.five_tuple
    assert 0x0A000000 <= src <= 0x0A00FFFF
    assert 0xC0A80000 <= dst <= 0xC0A8FFFF
    assert 1024 <= sport < 1024 + (1 << 14)
    assert dport in (80, 443, 8080, 53)
    assert proto == 6


def test_invalid_params():
    with pytest.raises(ValueError):
        TraceGenerator(arrival_rate_hz=0)
    with pytest.raises(ValueError):
        TraceGenerator(pareto_shape=0)
