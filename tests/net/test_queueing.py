"""Link output queues: serialization ordering and queueing delay."""

import pytest

from repro.net.links import Link


def make_link(bandwidth_bps=8e6):  # 1 byte/us
    return Link(("a", 1), ("b", 1), latency_s=0.0,
                bandwidth_bps=bandwidth_bps)


def test_single_packet_no_queueing():
    link = make_link()
    delay = link.transmit_delay(100, "a->b", now=0.0)
    assert delay == pytest.approx(100e-6)
    assert link.max_queue_delay_s == 0.0


def test_back_to_back_packets_queue():
    link = make_link()
    first = link.transmit_delay(100, "a->b", now=0.0)
    second = link.transmit_delay(100, "a->b", now=0.0)
    assert first == pytest.approx(100e-6)
    assert second == pytest.approx(200e-6)  # waits behind the first
    assert link.max_queue_delay_s == pytest.approx(100e-6)


def test_spaced_packets_do_not_queue():
    link = make_link()
    link.transmit_delay(100, "a->b", now=0.0)
    delay = link.transmit_delay(100, "a->b", now=500e-6)
    assert delay == pytest.approx(100e-6)


def test_directions_have_independent_queues():
    link = make_link()
    link.transmit_delay(100, "a->b", now=0.0)
    reverse = link.transmit_delay(100, "b->a", now=0.0)
    assert reverse == pytest.approx(100e-6)


def test_sustained_overload_grows_queue():
    link = make_link()
    delays = [link.transmit_delay(100, "a->b", now=index * 50e-6)
              for index in range(10)]
    # Arrivals every 50 us, service 100 us: each packet waits ~50 us more.
    assert delays[-1] > delays[0] + 400e-6


def test_latency_added_after_queueing():
    link = Link(("a", 1), ("b", 1), latency_s=1e-3, bandwidth_bps=8e6)
    delay = link.transmit_delay(100, "a->b", now=0.0)
    assert delay == pytest.approx(1e-3 + 100e-6)


class TestEndToEndQueueing:
    def test_burst_through_switch_experiences_queueing(self):
        from repro.dataplane.packet import Packet
        from repro.dataplane.switch import DataplaneSwitch
        from repro.net.network import Network
        from repro.net.simulator import EventSimulator
        sim = EventSimulator()
        net = Network(sim)
        switch = DataplaneSwitch("s1", num_ports=2)
        switch.pipeline.add_stage("fwd", lambda ctx: ctx.emit(2))
        net.add_switch(switch)
        host = net.add_host("h")
        net.connect("s1", 2, "h", 1, bandwidth_bps=1e6)  # slow egress
        node = net.nodes["s1"]
        for _ in range(5):
            sim.schedule(0.0, node.receive, Packet(payload=bytes(1250)), 1)
        sim.run()
        arrivals = [t for t, _ in host.received]
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        # 1250 B at 1 Mb/s = 10 ms serialization: arrivals are spaced out.
        assert all(gap == pytest.approx(10e-3, rel=0.01) for gap in gaps)
