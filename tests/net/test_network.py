"""Network: wiring, delivery, control-plane paths, topology events."""

import pytest

from repro.dataplane.packet import Packet
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.simulator import EventSimulator


def build(num_switches=2):
    sim = EventSimulator()
    net = Network(sim)
    for index in range(1, num_switches + 1):
        switch = DataplaneSwitch(f"s{index}", num_ports=4)
        switch.pipeline.add_stage("fwd", lambda ctx: ctx.emit(2))
        net.add_switch(switch)
    return sim, net


def test_duplicate_node_rejected():
    sim, net = build(1)
    with pytest.raises(ValueError):
        net.add_switch(DataplaneSwitch("s1"))
    with pytest.raises(ValueError):
        net.add_host("s1")


def test_connect_validates_nodes_and_ports():
    sim, net = build(2)
    with pytest.raises(KeyError):
        net.connect("s1", 1, "nope", 1)
    net.connect("s1", 1, "s2", 1)
    with pytest.raises(ValueError):
        net.connect("s1", 1, "s2", 2)  # port already wired


def test_packet_traverses_link():
    sim, net = build(2)
    net.connect("s1", 2, "s2", 1)
    host = net.add_host("h")
    net.connect("s2", 2, "h", 1)
    node = net.nodes["s1"]
    sim.schedule(0.0, node.receive, Packet(), 1)
    sim.run()
    assert len(host.received) == 1


def test_unwired_port_drops_silently():
    sim, net = build(1)
    node = net.nodes["s1"]
    sim.schedule(0.0, node.receive, Packet(), 1)
    sim.run()  # emit to unwired port 2: packet falls off the edge


def test_down_link_blocks_traffic():
    sim, net = build(2)
    link = net.connect("s1", 2, "s2", 1)
    net.set_link_up(link, False)
    node = net.nodes["s1"]
    sim.schedule(0.0, node.receive, Packet(), 1)
    sim.run()
    assert net.switch("s2").packets_processed == 0


def test_port_status_listener_fires_for_switch_ends():
    sim, net = build(2)
    link = net.connect("s1", 2, "s2", 1)
    events = []
    net.on_port_status(lambda name, port, up: events.append((name, port, up)))
    net.set_link_up(link, False)
    net.set_link_up(link, True)
    assert ("s1", 2, False) in events
    assert ("s2", 1, True) in events


def test_neighbor_ports_excludes_hosts():
    sim, net = build(2)
    net.connect("s1", 2, "s2", 1)
    host = net.add_host("h")
    net.connect("s1", 1, "h", 1)
    neighbors = net.neighbor_ports("s1")
    assert neighbors == {2: ("s2", 1)}


def test_link_between():
    sim, net = build(2)
    net.connect("s1", 2, "s2", 1)
    assert net.link_between("s1", "s2") is net.link_between("s2", "s1")
    with pytest.raises(KeyError):
        net.link_between("s1", "nope")


def test_packet_in_requires_controller():
    sim, net = build(1)
    # No controller attached: PacketIn is dropped without error.
    net.send_packet_in("s1", Packet())
    sim.run()


def test_packet_out_reaches_cpu_port():
    sim, net = build(1)
    seen = []
    switch = net.switch("s1")
    switch.pipeline.insert_stage(
        0, "spy", lambda ctx: seen.append(ctx.ingress_port))
    net.send_packet_out("s1", Packet())
    sim.run()
    assert seen == [DataplaneSwitch.CPU_PORT]


def test_controller_receives_packet_in():
    sim, net = build(1)

    class Controller:
        def __init__(self):
            self.messages = []

        def handle_packet_in(self, switch, packet):
            self.messages.append((switch, packet))

    controller = Controller()
    net.attach_controller(controller)
    net.send_packet_in("s1", Packet())
    sim.run()
    assert len(controller.messages) == 1
    assert controller.messages[0][0] == "s1"


def test_host_send_charges_fixed_cost():
    sim, net = build(1)
    host = net.add_host("h")
    net.connect("h", 1, "s1", 1)
    host.send(Packet())
    sim.run()
    assert sim.now >= net.costs.host_fixed_s


def test_switch_node_charges_digest_ops():
    """Hash extern invocations during a pipeline pass slow the packet."""
    sim, net = build(1)
    switch = net.switch("s1")

    def hashing_stage(ctx):
        ctx.switch.hash.compute_digest_bytes(1, b"x")

    switch.pipeline.insert_stage(0, "hashes", hashing_stage)
    host = net.add_host("h")
    net.connect("s1", 2, "h", 1)
    node = net.nodes["s1"]
    sim.schedule(0.0, node.receive, Packet(), 1)
    sim.run()
    arrival = host.received[0][0]
    expected = (net.costs.switch_fwd_s + net.costs.digest_op_s
                + net.costs.link_latency_s)
    assert arrival >= expected * 0.99
