"""Every way a packet can vanish is on record — no silent drops.

Each of the formerly silent loss paths in the network layer (unwired
port, downed link, tap kill, missing controller, control-channel tap)
must increment ``Network.drop_counts`` with a named reason and, when
telemetry is enabled, the ``net_dropped_packets_total`` counter plus a
``packet.drop`` trace event.
"""

import pytest

from repro.dataplane.packet import Packet
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import (
    DROP_CONTROL_TAP,
    DROP_LINK_DOWN,
    DROP_NO_CONTROLLER,
    DROP_TAP,
    DROP_UNWIRED_PORT,
    Network,
)
from repro.net.simulator import EventSimulator
from repro.telemetry import Telemetry


@pytest.fixture
def net():
    telemetry = Telemetry(enabled=True)
    sim = EventSimulator(telemetry=telemetry)
    network = Network(sim)
    network.add_switch(DataplaneSwitch("s1", num_ports=2))
    network.add_switch(DataplaneSwitch("s2", num_ports=2))
    network.connect("s1", 1, "s2", 1)
    return network


def _drop_events(net, reason):
    return [e for e in net.telemetry.tracer.events("packet.drop")
            if e.fields.get("reason") == reason]


def test_unwired_port_drop_is_recorded(net):
    net.transmit("s1", 2, Packet())  # port 2 was never connected
    assert net.drop_counts == {DROP_UNWIRED_PORT: 1}
    assert net.telemetry.metrics.value(
        "net_dropped_packets_total",
        reason=DROP_UNWIRED_PORT, node="s1") == 1
    (event,) = _drop_events(net, DROP_UNWIRED_PORT)
    assert event.fields["node"] == "s1"
    assert event.fields["port"] == 2


def test_link_down_drop_is_recorded(net):
    link = net.link_between("s1", "s2")
    net.set_link_up(link, False)
    net.transmit("s1", 1, Packet())
    assert net.drop_counts[DROP_LINK_DOWN] == 1
    assert _drop_events(net, DROP_LINK_DOWN)
    # The transition itself is also traced.
    assert net.telemetry.tracer.events("link.down")
    assert net.telemetry.metrics.value(
        "net_link_transitions_total", link=link.label, state="down") == 1


def test_tap_kill_drop_is_recorded(net):
    net.link_between("s1", "s2").add_tap(lambda packet, direction: None)
    net.transmit("s1", 1, Packet())
    assert net.drop_counts[DROP_TAP] == 1
    assert _drop_events(net, DROP_TAP)


def test_no_controller_drop_is_recorded(net):
    net.send_packet_in("s1", Packet())
    assert net.drop_counts[DROP_NO_CONTROLLER] == 1
    assert _drop_events(net, DROP_NO_CONTROLLER)


def test_control_tap_drop_is_recorded(net):
    net.control_channels["s1"].add_tap(lambda packet, direction: None)
    net.send_packet_out("s1", Packet())
    assert net.drop_counts[DROP_CONTROL_TAP] == 1
    assert _drop_events(net, DROP_CONTROL_TAP)


def test_successful_transit_counts_link_traffic(net):
    packet = Packet()
    net.transmit("s1", 1, packet)
    net.sim.run()
    link = net.link_between("s1", "s2")
    assert net.telemetry.metrics.value(
        "net_link_packets_total", link=link.label, direction="a->b") == 1
    assert net.telemetry.metrics.value(
        "net_link_bytes_total", link=link.label,
        direction="a->b") == packet.size_bytes
    assert net.drop_counts == {}


def test_drop_counts_work_without_telemetry():
    sim = EventSimulator()  # NULL_TELEMETRY
    network = Network(sim)
    network.add_switch(DataplaneSwitch("s1", num_ports=2))
    network.transmit("s1", 1, Packet())
    assert network.drop_counts == {DROP_UNWIRED_PORT: 1}
    assert len(network.telemetry.metrics) == 0
