"""Satellite 4: /metrics exposition format + the real HTTP surface.

Drives the stdlib-asyncio :class:`HttpServer` over a real loopback
socket (port 0) and checks that ``/metrics`` is valid Prometheus text
exposition: the versioned content type, well-formed metric naming on
every sample line, and the per-shard in-flight gauges and request
histograms the service publishes.
"""

from __future__ import annotations

import asyncio
import json
import re

from repro.service import ControllerService, FleetConfig
from repro.service.auth import TOKEN_HEADER
from repro.service.http import HttpServer

#: Prometheus metric/label naming, one sample per line:
#:   name{label="value",...} <number>
SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'           # metric name
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'   # first label
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r' [0-9eE+.\-]+$')


def run(coro):
    return asyncio.run(coro)


async def http_request(port, method, path, body=b"", headers=None,
                       reader_writer=None):
    """One HTTP/1.1 request over a (possibly reused) connection."""
    if reader_writer is None:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
    else:
        reader, writer = reader_writer
    head = [f"{method} {path} HTTP/1.1", "Host: test"]
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    head.append(f"Content-Length: {len(body)}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
    await writer.drain()

    status_line = await reader.readline()
    status = int(status_line.split()[1])
    resp_headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode().partition(":")
        resp_headers[name.strip().lower()] = value.strip()
    payload = await reader.readexactly(
        int(resp_headers.get("content-length", "0")))
    if reader_writer is None:
        writer.close()
        await writer.wait_closed()
    return status, resp_headers, payload


async def serve(config=None):
    service = ControllerService(config or FleetConfig(m=4, shards=2))
    await service.start()
    server = HttpServer(service)
    port = await server.start()
    return service, server, port


async def teardown(service, server):
    await server.stop()
    if not service.draining:
        await service.stop()


class TestMetricsExposition:
    def test_content_type_is_prometheus_text(self):
        async def scenario():
            service, server, port = await serve()
            status, headers, _body = await http_request(
                port, "GET", "/metrics")
            assert status == 200
            assert headers["content-type"] == \
                "text/plain; version=0.0.4; charset=utf-8"
            await teardown(service, server)

        run(scenario())

    def test_every_sample_line_is_well_formed(self):
        async def scenario():
            service, server, port = await serve()
            # Drive traffic so counters and histograms carry samples.
            from repro.service import ServiceClient
            client = ServiceClient(service)
            for i in range(6):
                await client.write("sw0", "target", i % 16, i)
            _status, _headers, body = await http_request(
                port, "GET", "/metrics")
            lines = body.decode("utf-8").splitlines()
            assert lines, "empty exposition"
            for line in lines:
                if not line or line.startswith("#"):
                    continue
                assert SAMPLE_RE.match(line), f"malformed sample: {line!r}"
            # Namespaced under the repo prefix, typed comments present.
            assert any(line.startswith("# TYPE repro_") for line in lines)
            await teardown(service, server)

        run(scenario())

    def test_per_shard_gauges_and_histograms_present(self):
        async def scenario():
            service, server, port = await serve()
            from repro.service import ServiceClient
            client = ServiceClient(service)
            for i in range(8):
                await client.write(f"sw{i % 4}", "target", 0, i)
            await client.rollover("sw0")
            _status, _headers, body = await http_request(
                port, "GET", "/metrics")
            text = body.decode("utf-8")
            for shard_id in service.config.shard_ids:
                assert f'repro_service_shard_in_flight{{shard="{shard_id}"}}' \
                    in text
                assert f'repro_service_shard_switches{{shard="{shard_id}"}}' \
                    in text
            # Request histogram in full bucket/sum/count form.
            assert "repro_service_request_seconds_bucket" in text
            assert "repro_service_request_seconds_sum" in text
            assert "repro_service_request_seconds_count" in text
            assert 'le="+Inf"' in text
            # Op-labeled counters, rollover included.
            assert re.search(
                r'repro_service_requests_total\{[^}]*op="write"', text)
            assert re.search(
                r'repro_service_requests_total\{[^}]*op="rollover"', text)
            await teardown(service, server)

        run(scenario())

    def test_metrics_needs_no_token(self):
        async def scenario():
            service, server, port = await serve()
            status, _headers, _body = await http_request(
                port, "GET", "/metrics")
            assert status == 200
            await teardown(service, server)

        run(scenario())


class TestHttpSurface:
    def test_authenticated_write_read_over_http(self):
        async def scenario():
            service, server, port = await serve()
            auth = service.auth

            def signed(method, path, payload):
                body = json.dumps(payload, sort_keys=True).encode()
                return body, {TOKEN_HEADER: auth.token(method, path, body)}

            body, headers = signed("POST", "/v1/write", {
                "switch": "sw2", "register": "target", "index": 4,
                "value": 0xABCD})
            status, _h, payload = await http_request(
                port, "POST", "/v1/write", body, headers)
            assert status == 200 and json.loads(payload)["ok"]

            body, headers = signed("POST", "/v1/read", {
                "switch": "sw2", "register": "target", "index": 4})
            status, _h, payload = await http_request(
                port, "POST", "/v1/read", body, headers)
            assert status == 200
            assert json.loads(payload)["value"] == 0xABCD
            await teardown(service, server)

        run(scenario())

    def test_missing_token_is_401_over_http(self):
        async def scenario():
            service, server, port = await serve()
            status, _h, payload = await http_request(
                port, "POST", "/v1/read", b'{"switch": "sw0"}')
            assert status == 401
            assert not json.loads(payload)["ok"]
            await teardown(service, server)

        run(scenario())

    def test_unknown_route_is_404_over_http(self):
        async def scenario():
            service, server, port = await serve()
            status, _h, _payload = await http_request(
                port, "GET", "/nope")
            assert status == 404
            await teardown(service, server)

        run(scenario())

    def test_keep_alive_serves_multiple_requests(self):
        async def scenario():
            service, server, port = await serve()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            for _ in range(3):
                status, headers, _body = await http_request(
                    port, "GET", "/healthz",
                    reader_writer=(reader, writer))
                assert status == 200
                assert headers["connection"] == "keep-alive"
            writer.close()
            await writer.wait_closed()
            await teardown(service, server)

        run(scenario())

    def test_malformed_request_line_is_400(self):
        async def scenario():
            service, server, port = await serve()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b"GARBAGE\r\n\r\n")
            await writer.drain()
            status_line = await reader.readline()
            assert b"400" in status_line
            writer.close()
            await writer.wait_closed()
            await teardown(service, server)

        run(scenario())
