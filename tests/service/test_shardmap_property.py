"""Property-based shardmap checks (hypothesis).

The example-based suite (``test_shardmap.py``) pins concrete numbers;
these properties state the invariants the region/worker sharding layers
lean on, over arbitrary fleets:

- assignment is a pure function of the *set* of switches (input order
  and duplicates of the map object don't matter);
- bounded load always holds, and the assignment is an exact partition;
- **split** (adding a shard) moves switches only *to* the new shard,
  and **merge** (removing one) moves switches only *from* it — the
  consistent-hashing minimal-movement guarantee.  The movement
  properties are stated with the capacity slack opened up, since
  bounded-load overflow legitimately re-homes extra switches when a
  cap binds.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.service.shardmap import ShardMap  # noqa: E402

NAMES = st.sets(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1,
            max_size=12),
    min_size=1, max_size=64,
).map(sorted)

SHARD_COUNTS = st.integers(min_value=2, max_value=6)

RELAXED = settings(max_examples=60, deadline=None, derandomize=True,
                   suppress_health_check=[HealthCheck.too_slow])


def shard_ids(count):
    return [f"shard-{i}" for i in range(count)]


def uncapped(switches):
    """A load factor so large no capacity cap can ever bind."""
    return float(max(1, len(switches)))


def owner_map(assignment):
    return {switch: shard for shard, switches in assignment.items()
            for switch in switches}


class TestAssignmentInvariants:
    @RELAXED
    @given(switches=NAMES, shards=SHARD_COUNTS,
           order_seed=st.randoms(use_true_random=False))
    def test_order_independence(self, switches, shards, order_seed):
        ring = ShardMap(shard_ids(shards))
        shuffled = list(switches)
        order_seed.shuffle(shuffled)
        assert ring.assign(shuffled) == ring.assign(switches)

    @RELAXED
    @given(switches=NAMES, shards=SHARD_COUNTS)
    def test_exact_partition_under_cap(self, switches, shards):
        ring = ShardMap(shard_ids(shards))
        assignment = ring.assign(switches)
        assert sorted(owner_map(assignment)) == sorted(switches)
        assert set(assignment) == set(shard_ids(shards))
        cap = ring.capacity(len(switches))
        assert all(len(group) <= cap for group in assignment.values())

    @RELAXED
    @given(switches=NAMES, shards=SHARD_COUNTS)
    def test_stable_across_map_instances(self, switches, shards):
        # sha256 ring, not salted hash(): two processes (or two ring
        # objects) must agree byte for byte.
        first = ShardMap(shard_ids(shards)).assign(switches)
        second = ShardMap(shard_ids(shards)).assign(switches)
        assert first == second


class TestMinimalMovement:
    @RELAXED
    @given(switches=NAMES, shards=SHARD_COUNTS)
    def test_split_moves_only_to_the_new_shard(self, switches, shards):
        factor = uncapped(switches)
        before = ShardMap(shard_ids(shards)).assign(switches, factor)
        after = ShardMap(shard_ids(shards + 1)).assign(switches, factor)
        new_shard = f"shard-{shards}"
        owners_before, owners_after = owner_map(before), owner_map(after)
        for switch in switches:
            if owners_after[switch] != owners_before[switch]:
                assert owners_after[switch] == new_shard
        assert ShardMap.moved(before, after) == len(after[new_shard])

    @RELAXED
    @given(switches=NAMES, shards=SHARD_COUNTS)
    def test_merge_moves_only_from_the_removed_shard(self, switches,
                                                     shards):
        factor = uncapped(switches)
        removed = f"shard-{shards}"
        before = ShardMap(shard_ids(shards + 1)).assign(switches, factor)
        after = ShardMap(shard_ids(shards)).assign(switches, factor)
        owners_before, owners_after = owner_map(before), owner_map(after)
        for switch in switches:
            if owners_before[switch] != owners_after[switch]:
                assert owners_before[switch] == removed
        assert ShardMap.moved(before, after) == len(before[removed])
