"""Satellite 3: concurrent multi-client ordering on one switch.

The service guarantee under test: interleaved clients sharing a switch
can never make the data plane's monotonic ``expected_seq`` replay
defense observe out-of-order sequence numbers — sequentially,
pipelined, and across the 32-bit sequence wrap.  Mixed reads and
writes matter here: a read is ~6x cheaper to compose than a write, so
without the controller's per-switch FIFO departure rule a pipelined
read would overtake an in-compose write and poison the sequence state.
"""

from __future__ import annotations

import asyncio

from repro.service import ControllerService, FleetConfig, ServiceClient

SEQ_MAX = 0xFFFFFFFF


def run(coro):
    return asyncio.run(coro)


def assert_defenses_quiet(service):
    """No replay flags, digest failures, tamper records, or seq skew."""
    for worker in service.workers.values():
        assert worker.stack.tamper_events == []
        for name in worker.switches:
            dataplane = worker.dataplanes[name]
            assert dataplane.stats.replays_detected == 0, name
            assert dataplane.stats.digest_fail_cdp == 0, name
            assert worker.stack._seq.get(name, 0) == \
                dataplane._expected_seq.read(0), name


async def one_switch_service(**overrides):
    config = dict(stack="P4Auth", m=1, shards=1)
    config.update(overrides)
    service = ControllerService(FleetConfig(**config))
    await service.start()
    return service


class TestSequentialInterleaving:
    def test_two_clients_alternating_on_one_switch(self):
        async def scenario():
            service = await one_switch_service()
            alice = ServiceClient(service)
            bob = ServiceClient(service)
            for round_idx in range(8):
                write = await alice.write("sw0", "target", 0,
                                          0x1000 + round_idx)
                assert write["ok"]
                read = await bob.read("sw0", "target", 0)
                assert read["ok"] and read["value"] == 0x1000 + round_idx
            await service.stop()
            assert_defenses_quiet(service)

        run(scenario())


class TestPipelinedInterleaving:
    def test_concurrent_mixed_readers_and_writers(self):
        """Many clients fire mixed reads/writes at one switch without
        waiting on each other; every op completes and no defense trips."""
        async def scenario():
            service = await one_switch_service(max_in_flight=8)
            clients = [ServiceClient(service) for _ in range(4)]

            async def hammer(client, base):
                results = []
                for i in range(6):
                    if i % 2:
                        results.append(await client.read(
                            "sw0", "target", (base + i) % 16))
                    else:
                        results.append(await client.write(
                            "sw0", "target", (base + i) % 16, base + i))
                return results

            outcomes = await asyncio.gather(
                *(hammer(c, 100 * n) for n, c in enumerate(clients)))
            assert all(r["ok"] for results in outcomes for r in results)
            await service.stop()
            assert service.idle
            assert_defenses_quiet(service)

        run(scenario())

    def test_concurrent_batches_from_many_clients(self):
        """Whole batches from different clients interleave at the shard
        FIFO; per-switch order within each batch is preserved and the
        union never produces an out-of-order sequence number."""
        async def scenario():
            service = await one_switch_service(max_in_flight=8)
            clients = [ServiceClient(service) for _ in range(3)]

            def plan(n):
                ops = []
                for i in range(10):
                    if (n + i) % 3 == 0:
                        ops.append({"kind": "read", "switch": "sw0",
                                    "register": "target", "index": i % 16})
                    else:
                        ops.append({"kind": "write", "switch": "sw0",
                                    "register": "target", "index": i % 16,
                                    "value": (n << 8) | i})
                return ops

            outcomes = await asyncio.gather(
                *(c.batch(plan(n)) for n, c in enumerate(clients)))
            for outcome in outcomes:
                assert all(r["ok"] for r in outcome["results"])
            await service.stop()
            assert_defenses_quiet(service)

        run(scenario())

    def test_read_never_overtakes_write_it_followed(self):
        """The compose-cost asymmetry regression: write-then-read from
        one client, pipelined (window > 1), must return the just-written
        value — the cheap read must not depart before the write."""
        async def scenario():
            service = await one_switch_service(max_in_flight=8)
            client = ServiceClient(service)
            for i in range(6):
                outcome = await client.batch([
                    {"kind": "write", "switch": "sw0",
                     "register": "target", "index": 7, "value": 0xD00 + i},
                    {"kind": "read", "switch": "sw0",
                     "register": "target", "index": 7},
                ])
                write_r, read_r = outcome["results"]
                assert write_r["ok"]
                assert read_r["ok"] and read_r["value"] == 0xD00 + i
            await service.stop()
            assert_defenses_quiet(service)

        run(scenario())


class TestSequenceWrap:
    def test_interleaved_clients_across_the_32bit_wrap(self):
        """Park both ends of the C-DP channel just shy of 0xFFFFFFFF
        (as if the deployment had served ~2^32 requests), then drive
        interleaved mixed traffic straight through the wrap."""
        async def scenario():
            service = await one_switch_service(max_in_flight=8)
            worker = service.workers["shard-0"]
            worker.stack._seq["sw0"] = SEQ_MAX - 5
            worker.dataplanes["sw0"]._expected_seq.write(0, SEQ_MAX - 5)

            clients = [ServiceClient(service) for _ in range(3)]

            async def drive(client, base):
                for i in range(8):  # 24 ops total: wrap crossed mid-burst
                    if i % 2:
                        result = await client.read("sw0", "target", 0)
                    else:
                        result = await client.write(
                            "sw0", "target", 0, base + i)
                    assert result["ok"]

            await asyncio.gather(
                *(drive(c, 0x2000 * (n + 1))
                  for n, c in enumerate(clients)))
            await service.stop()
            # The counter actually wrapped...
            assert worker.stack._seq["sw0"] == (SEQ_MAX - 5 + 24) \
                & 0xFFFFFFFF
            assert worker.stack._seq["sw0"] < SEQ_MAX - 5
            # ...and nothing mistook the wrap (or the interleaving) for
            # an attack.
            assert_defenses_quiet(service)
            assert worker.stats.failed == 0

        run(scenario())


class TestCrossShardIndependence:
    def test_interleaving_across_shards_is_also_clean(self):
        """Ops to different switches share no ordering constraint; the
        defenses must stay quiet when clients spray the whole fleet."""
        async def scenario():
            service = ControllerService(FleetConfig(m=6, shards=2))
            await service.start()
            clients = [ServiceClient(service) for _ in range(4)]

            async def spray(client, n):
                for i in range(12):
                    sw = f"sw{(n + i) % 6}"
                    if i % 3 == 0:
                        assert (await client.read(sw, "target", 0))["ok"]
                    else:
                        assert (await client.write(
                            sw, "target", 0, (n << 8) | i))["ok"]

            await asyncio.gather(*(spray(c, n)
                                   for n, c in enumerate(clients)))
            await service.stop()
            assert_defenses_quiet(service)

        run(scenario())
