"""ShardMap: determinism, coverage, bounded loads, movement, errors."""

from __future__ import annotations

import pytest

from repro.service.shardmap import DEFAULT_LOAD_FACTOR, ShardMap

SWITCHES_100 = [f"sw{i}" for i in range(100)]
SHARDS_4 = [f"shard-{i}" for i in range(4)]


class TestDeterminism:
    def test_assignment_is_a_pure_function_of_inputs(self):
        a = ShardMap(SHARDS_4).assign(SWITCHES_100)
        b = ShardMap(SHARDS_4).assign(SWITCHES_100)
        assert a == b

    def test_assignment_ignores_switch_listing_order(self):
        forward = ShardMap(SHARDS_4).assign(SWITCHES_100)
        backward = ShardMap(SHARDS_4).assign(list(reversed(SWITCHES_100)))
        assert forward == backward

    def test_ring_owner_is_stable(self):
        ring = ShardMap(SHARDS_4)
        owners = {sw: ring.ring_owner(sw) for sw in SWITCHES_100}
        assert owners == {sw: ShardMap(SHARDS_4).ring_owner(sw)
                          for sw in SWITCHES_100}


class TestCoverageAndBalance:
    def test_every_switch_owned_exactly_once(self):
        owned = ShardMap(SHARDS_4).assign(SWITCHES_100)
        assert sorted(owned) == sorted(SHARDS_4)
        flat = [sw for sws in owned.values() for sw in sws]
        assert sorted(flat) == sorted(SWITCHES_100)

    def test_no_shard_exceeds_the_bounded_load_cap(self):
        ring = ShardMap(SHARDS_4)
        owned = ring.assign(SWITCHES_100)
        cap = ring.capacity(len(SWITCHES_100))
        assert cap == 29  # ceil(100/4 * 1.15)
        assert all(len(sws) <= cap for sws in owned.values())

    def test_bounded_load_beats_raw_ring_imbalance(self):
        """The cap is the point: the most loaded shard under bounded-load
        assignment never exceeds fair_share * load_factor, which is what
        makes the >=3x shard-scaling acceptance criterion achievable."""
        ring = ShardMap(SHARDS_4)
        owned = ring.assign(SWITCHES_100)
        fair = len(SWITCHES_100) / len(SHARDS_4)
        assert max(len(sws) for sws in owned.values()) \
            <= fair * DEFAULT_LOAD_FACTOR + 1

    def test_single_shard_owns_everything(self):
        owned = ShardMap(["only"]).assign(SWITCHES_100)
        assert sorted(owned["only"]) == sorted(SWITCHES_100)

    def test_empty_fleet(self):
        owned = ShardMap(SHARDS_4).assign([])
        assert owned == {shard: [] for shard in SHARDS_4}


class TestMovement:
    def test_adding_a_shard_moves_a_minority_of_switches(self):
        before = ShardMap(SHARDS_4).assign(SWITCHES_100)
        after = ShardMap(SHARDS_4 + ["shard-4"]).assign(SWITCHES_100)
        moved = ShardMap.moved(before, after)
        # Consistent hashing: roughly 1/(N+1) of the fleet moves, never
        # a full reshuffle.  Allow slack for the bounded-load walk.
        assert 0 < moved < len(SWITCHES_100) // 2

    def test_identical_assignments_move_nothing(self):
        owned = ShardMap(SHARDS_4).assign(SWITCHES_100)
        assert ShardMap.moved(owned, owned) == 0


class TestErrors:
    def test_rejects_no_shards(self):
        with pytest.raises(ValueError):
            ShardMap([])

    def test_rejects_duplicate_shard_ids(self):
        with pytest.raises(ValueError):
            ShardMap(["a", "a"])

    def test_rejects_bad_replicas(self):
        with pytest.raises(ValueError):
            ShardMap(["a"], replicas=0)

    def test_rejects_load_factor_below_one(self):
        with pytest.raises(ValueError):
            ShardMap(["a", "b"]).assign(SWITCHES_100, load_factor=0.9)

    def test_rejects_duplicate_switches(self):
        with pytest.raises(ValueError):
            ShardMap(["a"]).assign(["sw1", "sw1"])
