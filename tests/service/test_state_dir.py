"""Durable daemon state: ``--state-dir`` cold start and warm restart.

Drives two full :class:`ControllerService` lifetimes against the same
state directory: the first cold-starts and journals, the second must
warm-restart every shard without tripping any of P4Auth's defenses and
with request handling intact.  (No pytest-asyncio in the environment:
each test wraps its coroutine in ``asyncio.run``.)
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.service import (
    ControllerService,
    FleetConfig,
    ServiceClient,
)


def run(coro):
    return asyncio.run(coro)


def durable_config(state_dir, **overrides) -> FleetConfig:
    base = dict(stack="P4Auth", m=4, shards=2, state_dir=str(state_dir))
    base.update(overrides)
    return FleetConfig(**base)


async def lifetime(config, fn):
    service = ControllerService(config)
    await service.start()
    try:
        return await fn(service, ServiceClient(service))
    finally:
        if not service.draining:
            await service.stop()


class TestConfigValidation:
    def test_bad_fsync_policy_refused(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            durable_config(tmp_path, fsync="sometimes")

    def test_state_dir_requires_p4auth_stack(self, tmp_path):
        with pytest.raises(ValueError, match="P4Auth"):
            durable_config(tmp_path, stack="Baseline")

    def test_shard_state_dirs_are_disjoint(self, tmp_path):
        config = durable_config(tmp_path)
        dirs = {config.shard_state_dir(s) for s in config.shard_ids}
        assert len(dirs) == len(config.shard_ids)
        assert all(d.startswith(str(tmp_path)) for d in dirs)

    def test_no_state_dir_means_no_shard_dirs(self):
        config = FleetConfig(stack="P4Auth", m=4, shards=2)
        assert config.shard_state_dir(config.shard_ids[0]) is None


class TestColdStart:
    def test_cold_start_journals_per_shard(self, tmp_path):
        async def scenario(service, client):
            assert await client.write("sw0", "target", 0, 0xC01D)
            status = service.status()
            assert status["fleet"]["recovered_shards"] == 0
            for worker in service.workers.values():
                store = worker.status()["store"]
                assert store["journal_records"] > 0
                assert store["recovered"] is False

        run(lifetime(durable_config(tmp_path), scenario))
        # Every shard left a journal on disk.
        for shard in os.listdir(tmp_path):
            assert os.listdir(tmp_path / shard / "journal")


class TestWarmRestart:
    def test_restart_recovers_all_shards_and_serves(self, tmp_path):
        config = durable_config(tmp_path)
        switches = ["sw%d" % i for i in range(config.m)]

        async def first_life(service, client):
            for index, sw in enumerate(switches):
                result = await client.write(sw, "target", index, 0xAB)
                assert result["ok"]

        async def second_life(service, client):
            status = service.status()
            assert status["fleet"]["recovered_shards"] == config.shards
            for worker in service.workers.values():
                store = worker.status()["store"]
                assert store["recovered"] is True
                assert store["recovery_s"] is not None
                assert store["torn_records"] == 0
            # The warm fleet serves reads and writes immediately...
            for index, sw in enumerate(switches):
                result = await client.write(sw, "target", index, 0xCD)
                assert result["ok"]
            # ...without a single self-inflicted defense trip.
            for worker in service.workers.values():
                for dataplane in worker.dataplanes.values():
                    assert dataplane.stats.replays_detected == 0
                    assert dataplane.stats.digest_fail_cdp == 0
            assert service.status()["fleet"]["failed"] == 0

        run(lifetime(config, first_life))
        run(lifetime(durable_config(tmp_path), second_life))

    def test_sequence_numbers_skip_ahead_across_restart(self, tmp_path):
        seqs = {}

        async def first_life(service, client):
            await client.write("sw0", "target", 0, 1)
            worker = service.worker_for("sw0")
            seqs["before"] = worker.stack._seq["sw0"]

        async def second_life(service, client):
            worker = service.worker_for("sw0")
            assert worker.stack._seq["sw0"] >= seqs["before"]
            result = await client.write("sw0", "target", 1, 2)
            assert result["ok"]

        run(lifetime(durable_config(tmp_path), first_life))
        run(lifetime(durable_config(tmp_path), second_life))

    def test_volatile_service_leaves_no_store(self, tmp_path):
        async def scenario(service, client):
            assert (await client.write("sw0", "target", 0, 7))["ok"]
            assert "store" not in service.worker_for("sw0").status()

        run(lifetime(FleetConfig(stack="P4Auth", m=4, shards=2), scenario))
        assert os.listdir(tmp_path) == []
