"""ControllerService: lifecycle, endpoints, auth, routing, backpressure.

Everything drives the in-process :class:`ServiceClient`, which signs
tokens and goes through the same ``dispatch`` surface as the HTTP codec
— so these tests cover the authenticated path end to end without
sockets.  (No pytest-asyncio in the environment: each test wraps its
coroutine in ``asyncio.run``.)
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service import (
    ControllerService,
    FleetConfig,
    ServiceClient,
    ServiceError,
)


def run(coro):
    return asyncio.run(coro)


def small_config(**overrides) -> FleetConfig:
    base = dict(stack="P4Auth", m=4, shards=2)
    base.update(overrides)
    return FleetConfig(**base)


async def with_service(config, fn):
    service = ControllerService(config)
    await service.start()
    try:
        return await fn(service, ServiceClient(service))
    finally:
        if not service.draining:
            await service.stop()


class TestLifecycle:
    def test_start_serve_drain(self):
        async def scenario(service, client):
            result = await client.write("sw0", "target", 3, 0xFEED)
            assert result["ok"]
            result = await client.read("sw0", "target", 3)
            assert result["ok"] and result["value"] == 0xFEED
            await service.stop()
            assert service.idle
            fleet = service.status()["fleet"]
            assert fleet["completed"] == 2
            assert fleet["failed"] == 0

        run(with_service(small_config(), scenario))

    def test_draining_service_rejects_new_work_with_503(self):
        async def scenario(service, client):
            await service.stop()
            with pytest.raises(ServiceError) as excinfo:
                await client.read("sw0")
            assert excinfo.value.status == 503

        run(with_service(small_config(), scenario))

    def test_every_shard_has_owned_switches_registered(self):
        async def scenario(service, client):
            owners = {service.owner_of(sw)
                      for sw in service.config.switch_names}
            assert owners == set(service.config.shard_ids)
            for sw in service.config.switch_names:
                worker = service.worker_for(sw)
                assert sw in worker.switches

        run(with_service(small_config(m=8), scenario))


class TestEndpoints:
    def test_batch_preserves_fifo_read_your_write(self):
        async def scenario(service, client):
            outcome = await client.batch([
                {"kind": "write", "switch": "sw1", "register": "target",
                 "index": 5, "value": 0xCAFE},
                {"kind": "read", "switch": "sw1", "register": "target",
                 "index": 5},
            ])
            write_r, read_r = outcome["results"]
            assert write_r["ok"] and read_r["ok"]
            assert read_r["value"] == 0xCAFE

        run(with_service(small_config(), scenario))

    def test_single_switch_rollover_bumps_key_version(self):
        async def scenario(service, client):
            before = service.worker_for("sw0").stack.keys \
                .local_key_version("sw0")
            outcome = await client.rollover("sw0")
            assert outcome["ok"]
            rolled = outcome["rolled"]["sw0"]
            assert rolled["ok"]
            assert rolled["key_version"] == before + 1

        run(with_service(small_config(), scenario))

    def test_fleet_wide_rollover_rolls_every_switch(self):
        async def scenario(service, client):
            outcome = await client.rollover()
            assert outcome["ok"]
            assert sorted(outcome["rolled"]) == \
                sorted(service.config.switch_names)
            assert all(entry["ok"] for entry in outcome["rolled"].values())

        run(with_service(small_config(), scenario))

    def test_rollover_on_keyless_stack_is_400(self):
        async def scenario(service, client):
            with pytest.raises(ServiceError) as excinfo:
                await client.rollover("sw0")
            assert excinfo.value.status == 400

        run(with_service(small_config(stack="DP-Reg-RW"), scenario))

    def test_status_reports_fleet_and_shards(self):
        async def scenario(service, client):
            await client.write("sw0", "target", 0, 1)
            status = await client.status()
            assert status["fleet"]["switches"] == 4
            assert status["fleet"]["submitted"] == 1
            assert len(status["shards"]) == 2
            assert {s["shard"] for s in status["shards"]} == \
                set(service.config.shard_ids)

        run(with_service(small_config(), scenario))

    def test_healthz_is_unauthenticated(self):
        async def scenario(service, client):
            status, ctype, body = await service.dispatch(
                "GET", "/healthz", b"", {})
            assert status == 200
            assert b'"ok": true' in body

        run(with_service(small_config(), scenario))

    def test_non_p4auth_stacks_serve_register_traffic(self):
        for stack in ("DP-Reg-RW", "P4Runtime"):
            async def scenario(service, client):
                result = await client.write("sw1", "target", 2, 99)
                assert result["ok"]
                result = await client.read("sw1", "target", 2)
                assert result["ok"] and result["value"] == 99

            run(with_service(small_config(stack=stack), scenario))


class TestAuthAndValidation:
    def test_bad_token_is_401(self):
        async def scenario(service, client):
            forged = ServiceClient(service, secret="not-the-secret")
            with pytest.raises(ServiceError) as excinfo:
                await forged.read("sw0")
            assert excinfo.value.status == 401

        run(with_service(small_config(), scenario))

    def test_missing_token_is_401(self):
        async def scenario(service, client):
            status, _ctype, _body = await service.dispatch(
                "POST", "/v1/read", b'{"switch": "sw0"}', {})
            assert status == 401

        run(with_service(small_config(), scenario))

    def test_token_covers_the_body(self):
        """A token minted for one body must not authorize another."""
        async def scenario(service, client):
            good = b'{"index": 0, "register": "target", "switch": "sw0"}'
            evil = b'{"index": 1, "register": "target", "switch": "sw0"}'
            token = service.auth.token("POST", "/v1/read", good)
            status, _ctype, _body = await service.dispatch(
                "POST", "/v1/read", evil, {"x-p4auth-token": token})
            assert status == 401

        run(with_service(small_config(), scenario))

    def test_unknown_switch_is_404(self):
        async def scenario(service, client):
            with pytest.raises(ServiceError) as excinfo:
                await client.read("sw99")
            assert excinfo.value.status == 404

        run(with_service(small_config(), scenario))

    def test_unknown_route_is_404(self):
        async def scenario(service, client):
            status, _ctype, _body = await service.dispatch(
                "POST", "/v1/nope", b"", {})
            assert status == 404

        run(with_service(small_config(), scenario))

    def test_malformed_json_is_400(self):
        async def scenario(service, client):
            body = b"{not json"
            token = service.auth.token("POST", "/v1/read", body)
            status, _ctype, _body = await service.dispatch(
                "POST", "/v1/read", body, {"x-p4auth-token": token})
            assert status == 400

        run(with_service(small_config(), scenario))

    def test_unknown_register_is_400(self):
        async def scenario(service, client):
            with pytest.raises(ServiceError) as excinfo:
                await client.read("sw0", register="nope")
            assert excinfo.value.status == 400

        run(with_service(small_config(), scenario))


class TestBackpressure:
    def test_full_queue_rejects_with_503(self):
        """queue_depth=1 and five concurrent clients: exactly one op is
        admitted before the worker can run; the rest see 503.  The
        asyncio ready queue makes this deterministic — all five tasks
        dispatch before the (later-scheduled) worker wakeup runs."""
        async def scenario(service, client):
            outcomes = await asyncio.gather(
                *(client.read("sw0") for _ in range(5)),
                return_exceptions=True)
            ok = [o for o in outcomes if isinstance(o, dict)]
            rejected = [o for o in outcomes if isinstance(o, ServiceError)]
            assert len(ok) == 1 and ok[0]["ok"]
            assert len(rejected) == 4
            assert all(e.status == 503 for e in rejected)
            assert service.workers["shard-0"].stats.rejected == 4

        run(with_service(
            small_config(m=1, shards=1, queue_depth=1), scenario))

    def test_batch_with_all_ops_rejected_is_503(self):
        async def scenario(service, client):
            # Fill the queue with a blocked single op, then batch more.
            first = asyncio.ensure_future(client.read("sw0"))
            await asyncio.sleep(0)  # let it submit, keep worker asleep

            async def overflow():
                with pytest.raises(ServiceError) as excinfo:
                    await client.batch(
                        [{"kind": "read", "switch": "sw0",
                          "register": "target", "index": 0}])
                assert excinfo.value.status == 503

            # Note: the first task already owns the queue's single slot;
            # this batch finds it full synchronously.
            await overflow()
            assert (await first)["ok"]

        run(with_service(
            small_config(m=1, shards=1, queue_depth=1), scenario))

    def test_big_queue_absorbs_concurrent_clients(self):
        async def scenario(service, client):
            outcomes = await asyncio.gather(
                *(client.write("sw%d" % (i % 4), "target", i % 16, i)
                  for i in range(64)))
            assert all(o["ok"] for o in outcomes)
            assert service.status()["fleet"]["rejected"] == 0

        run(with_service(small_config(queue_depth=256), scenario))


class TestServeCli:
    def test_smoke_mode_passes_and_exits_zero(self, capsys):
        from repro.__main__ import main
        assert main(["serve", "--smoke", "--m", "2", "--shards", "1"]) == 0
        out = capsys.readouterr().out
        assert "smoke passed" in out

    def test_smoke_mode_works_on_keyless_stack(self, capsys):
        from repro.service.cli import cmd_serve
        assert cmd_serve(["--smoke", "--m", "2", "--shards", "1",
                          "--stack", "DP-Reg-RW"]) == 0
        assert "rollover" not in capsys.readouterr().out


class TestConfigValidation:
    def test_rejects_unknown_stack(self):
        with pytest.raises(ValueError):
            FleetConfig(stack="OpenFlow")

    def test_rejects_more_shards_than_switches(self):
        with pytest.raises(ValueError):
            FleetConfig(m=2, shards=3)

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            FleetConfig(m=0)
