"""Digest brute forcing: loud, slow, and (at test scale) futile."""

from repro.attacks.bruteforce import DigestBruteForcer
from tests.conftest import Deployment


def test_guessed_digests_rejected_and_alerted(single_switch):
    dep = single_switch
    reg_id = dep.switch("s1").registers.id_of("demo")
    attacker = DigestBruteForcer(dep.net, "s1", reg_id, index=0,
                                 value=0x41414141)
    attacker.attempt(guesses=200)
    dep.run(1.0)
    stats = dep.dataplanes["s1"].stats
    # Every guess failed, none wrote state, and the data plane screamed.
    assert stats.digest_fail_cdp == 200
    assert dep.switch("s1").registers.get("demo").read(0) == 0
    assert stats.alerts_raised > 0
    assert attacker.attempts == 200


def test_every_attempt_is_visible(single_switch):
    """§VIII: 'during these adversarial trials ... an alert is raised,
    revealing the possibility of the adversary' — no free guesses."""
    dep = single_switch
    dep.dataplanes["s1"].config.alert_threshold = None  # no rate limit
    reg_id = dep.switch("s1").registers.id_of("demo")
    attacker = DigestBruteForcer(dep.net, "s1", reg_id, index=0, value=1)
    attacker.attempt(guesses=50)
    dep.run(1.0)
    # One nAck per guess reaches the controller; none match a request it
    # sent, so they land in the unsolicited-nAck counter — the §VIII
    # "requests sent vs responses received" discrepancy signal.
    assert dep.controller.stats.unsolicited_nacks == 50


def test_expected_trials_is_2_to_31():
    assert DigestBruteForcer.expected_trials() == 2 ** 31
