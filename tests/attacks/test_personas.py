"""Persona lifecycle, seeded byte-determinism, and ground truth.

The persona contract: frozen specs build live adversaries with a
uniform ``arm(world)/disarm()`` lifecycle; identical (spec, world) seeds
inject byte-identical wire traffic; and no persona ever lands a forged
write in the target register.
"""

import pytest

from repro.attacks.personas import (
    PERSONA_KINDS,
    GroundTruthSampler,
    PersonaSpec,
    PersonaWorld,
    WireRecorder,
    build_persona,
)
from repro.core.auth_dataplane import P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.dataplane.switch import DataplaneSwitch
from repro.faults.plan import FaultPlan
from repro.net.network import Network
from repro.net.simulator import EventSimulator

#: Personas that actively inject packets (vs. tamper in-path only).
INJECTING_KINDS = ("replay-flooder", "digest-bruteforcer", "dos-flooder")


def _deployment(seed=5):
    """One keyed switch + controller with a C-DP-mapped demo register."""
    sim = EventSimulator()
    net = Network(sim)
    switch = DataplaneSwitch("s1", num_ports=4, seed=seed)
    net.add_switch(switch)
    switch.registers.define("demo", 64, 8)
    dataplane = P4AuthDataplane(switch, k_seed=0xBEE0 + seed).install()
    dataplane.map_register("demo")
    controller = P4AuthController(net)
    controller.provision(dataplane)
    controller.kmp.bootstrap_all()
    sim.run(until=0.3)
    return sim, net, controller, dataplane


def _world(sim, net, controller, dataplane, duration=0.6):
    return PersonaWorld(
        sim=sim, net=net, controller=controller, switch_name="s1",
        dataplane=dataplane, target_register="demo",
        control_channel=net.control_channels["s1"], duration_s=duration)


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown persona kind"):
            PersonaSpec(kind="evil-twin").validate()

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError, match="rate_hz"):
            PersonaSpec(kind="dos-flooder", rate_hz=0.0).validate()

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            PersonaSpec(kind="dos-flooder", seed=-1).validate()

    def test_spec_is_frozen_pure_data(self):
        spec = PersonaSpec(kind="probe-mitm")
        with pytest.raises(Exception):
            spec.rate_hz = 9.0
        assert set(spec.as_dict()) == {
            "kind", "rate_hz", "seed", "xor_mask", "probe_value"}

    def test_build_persona_rejects_bad_spec(self):
        with pytest.raises(ValueError):
            build_persona(PersonaSpec(kind="nope"))


class TestLifecycle:
    @pytest.mark.parametrize("kind", PERSONA_KINDS)
    def test_arm_disarm_symmetric(self, kind):
        sim, net, controller, dataplane = _deployment()
        persona = build_persona(PersonaSpec(kind=kind, rate_hz=50.0))
        assert not persona.armed
        persona.arm(_world(sim, net, controller, dataplane))
        assert persona.armed
        assert persona.armed_at_s == sim.now
        with pytest.raises(RuntimeError, match="already armed"):
            persona.arm(_world(sim, net, controller, dataplane))
        sim.run(until=sim.now + 0.1)
        persona.disarm()
        assert not persona.armed
        assert persona.disarmed_at_s >= persona.armed_at_s
        persona.disarm()  # idempotent

    @pytest.mark.parametrize("kind", PERSONA_KINDS)
    def test_outcome_record_shape(self, kind):
        sim, net, controller, dataplane = _deployment()
        persona = build_persona(PersonaSpec(kind=kind, rate_hz=50.0))
        persona.arm(_world(sim, net, controller, dataplane))
        sim.run(until=sim.now + 0.1)
        persona.disarm()
        record = persona.outcome().as_dict()
        assert record["kind"] == kind
        for key in ("armed_at_s", "disarmed_at_s", "seen", "modified",
                    "dropped", "injected", "recorded"):
            assert key in record

    def test_injector_taps_withdraw_on_disarm(self):
        sim, net, controller, dataplane = _deployment()
        channel = net.control_channels["s1"]
        before = len(channel.taps)
        persona = build_persona(PersonaSpec(kind="switch-os-injector"))
        persona.arm(_world(sim, net, controller, dataplane))
        assert len(channel.taps) == before + 2
        persona.disarm()
        assert len(channel.taps) == before

    def test_rollover_racer_unhooks_on_disarm(self):
        sim, net, controller, dataplane = _deployment()
        before = len(dataplane.on_local_key_installed)
        persona = build_persona(PersonaSpec(kind="rollover-racer"))
        persona.arm(_world(sim, net, controller, dataplane))
        assert len(dataplane.on_local_key_installed) == before + 1
        persona.disarm()
        assert len(dataplane.on_local_key_installed) == before

    def test_probe_mitm_is_noop_without_feedback_link(self):
        sim, net, controller, dataplane = _deployment()
        persona = build_persona(PersonaSpec(kind="probe-mitm"))
        persona.arm(_world(sim, net, controller, dataplane))
        persona.disarm()
        assert persona.outcome().extra["surface_reachable"] == 0.0


def _recorded_run(kind, seed):
    """Drive one persona against a fresh world; capture CPU-port bytes.

    A small authenticated C-DP write loop gives the replay personas
    material to record, and a mid-run key rollover gives the
    rollover-racer its trigger.
    """
    sim, net, controller, dataplane = _deployment(seed=5)
    recorder = WireRecorder(net, "s1")
    issued = [0x100 + k for k in range(12)]
    allowed = {0} | set(issued)

    def tick(k=0):
        if k >= len(issued):
            return
        controller.write_register("s1", "demo", k % 8, issued[k])
        sim.schedule(0.03, tick, k + 1)

    sim.schedule(0.0, tick)
    controller.kmp.schedule_rollover(0.2)
    sampler = GroundTruthSampler(sim, net.switch("s1"), "demo", allowed)
    sim.schedule(0.01, sampler.start, sim.now + 0.75)

    persona = build_persona(PersonaSpec(kind=kind, rate_hz=150.0, seed=seed))
    world = _world(sim, net, controller, dataplane, duration=0.6)
    sim.schedule(0.05, persona.arm, world)
    sim.run(until=sim.now + 0.75)
    persona.disarm()
    recorder.restore()
    return recorder.frames, persona.outcome(), sampler.forged()


class TestSeededDeterminism:
    @pytest.mark.parametrize("kind", PERSONA_KINDS)
    def test_same_seed_same_wire_bytes(self, kind):
        frames_a, outcome_a, _ = _recorded_run(kind, seed=11)
        frames_b, outcome_b, _ = _recorded_run(kind, seed=11)
        assert frames_a == frames_b
        assert frames_a, "no CPU-port traffic captured at all"
        assert outcome_a.as_dict() == outcome_b.as_dict()

    @pytest.mark.parametrize("kind", INJECTING_KINDS)
    def test_injecting_personas_actually_inject(self, kind):
        _frames, outcome, _ = _recorded_run(kind, seed=11)
        assert outcome.stats.injected > 0


class TestGroundTruth:
    @pytest.mark.parametrize("kind", PERSONA_KINDS)
    def test_no_forged_write_ever_lands(self, kind):
        _frames, _outcome, forged = _recorded_run(kind, seed=11)
        assert forged == []


class TestFaultPlanIntegration:
    def test_plan_carries_and_validates_personas(self):
        plan = FaultPlan(seed=3, personas=[
            PersonaSpec(kind="dos-flooder", rate_hz=100.0)])
        plan.validate()
        assert plan.fault_count() == 1

    def test_plan_rejects_bad_persona(self):
        plan = FaultPlan(seed=3, personas=[PersonaSpec(kind="bogus")])
        with pytest.raises(ValueError):
            plan.validate()
