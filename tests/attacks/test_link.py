"""On-link adversaries and key-exchange tampering."""

from repro.attacks.base import Eavesdropper, MessageDropper
from repro.attacks.link import KeyExchangeTamperer, ProbeFieldTamperer
from repro.core.constants import P4AUTH
from repro.systems.hula import make_probe
from tests.conftest import Deployment


def probe_deployment():
    return Deployment(num_switches=2,
                      connect_pairs=[("s1", 1, "s2", 1)],
                      protected_headers=("hula_probe",))


def forwarding_stage(dep, name, out_port):
    switch = dep.switch(name)
    # Insert before the sign stage (index -1 == before last).
    switch.pipeline.insert_stage(
        len(switch.pipeline.stage_names()) - 1, "app",
        lambda ctx: ctx.emit(out_port) if ctx.packet.has("hula_probe")
        else None)


class TestProbeFieldTamperer:
    def test_tampered_probe_dropped_by_p4auth(self):
        dep = probe_deployment()
        forwarding_stage(dep, "s1", 1)  # s1 forwards probes to s2
        link = dep.net.link_between("s1", "s2")
        adversary = ProbeFieldTamperer("hula_probe", "path_util", 7)
        adversary.attach(link)
        node = dep.net.nodes["s1"]
        dep.sim.schedule(0.0, node.receive, make_probe(1, 1, path_util=50), 2)
        dep.run(1.0)
        assert adversary.stats.modified == 1
        assert dep.dataplanes["s2"].stats.digest_fail_dpdp == 1
        assert any(a.switch == "s2" for a in dep.controller.alerts)

    def test_untampered_probe_passes(self):
        dep = probe_deployment()
        forwarding_stage(dep, "s1", 1)
        node = dep.net.nodes["s1"]
        dep.sim.schedule(0.0, node.receive, make_probe(1, 1, path_util=50), 2)
        dep.run(1.0)
        assert dep.dataplanes["s2"].stats.feedback_verified == 1
        assert dep.dataplanes["s2"].stats.digest_fail_dpdp == 0

    def test_callable_value_transform(self):
        adversary = ProbeFieldTamperer("hula_probe", "path_util",
                                       lambda v: v // 2)
        probe = make_probe(1, 1, path_util=80)
        out = adversary.process(probe, "a->b")
        assert out.get("hula_probe")["path_util"] == 40

    def test_direction_filter(self):
        adversary = ProbeFieldTamperer("hula_probe", "path_util", 0,
                                       direction_filter="a->b")
        probe = make_probe(1, 1, path_util=80)
        assert adversary._tap(probe, "b->a").get("hula_probe")["path_util"] == 80
        assert adversary._tap(probe, "a->b").get("hula_probe")["path_util"] == 0


class TestKeyExchangeTamperer:
    def test_tampered_local_exchange_detected_not_installed(self):
        dep = Deployment(num_switches=1, bootstrap=False)
        adversary = KeyExchangeTamperer(flip_mask=0b1)
        adversary.attach(dep.net.control_channels["s1"])
        dep.controller.kmp.local_key_init("s1")
        dep.run(1.0)
        # The exchange never completes with a corrupted key: either it
        # stalls (digest mismatch detected) or — critically — the two
        # sides never end up with different keys silently.
        controller_has = dep.controller.keys.has_local_key("s1")
        dp_key = dep.dataplanes["s1"].keys.local_key()
        if controller_has and dp_key:
            assert dep.controller.keys.local_key("s1") == dp_key
        assert (dep.dataplanes["s1"].stats.digest_fail_cdp > 0
                or dep.controller.stats.tampered_responses > 0)

    def test_tampered_port_update_detected(self):
        dep = Deployment(num_switches=2,
                         connect_pairs=[("s1", 1, "s2", 1)])
        k_before = dep.dataplanes["s1"].keys.port_key(1)
        adversary = KeyExchangeTamperer(flip_mask=0b10)
        adversary.attach(dep.net.link_between("s1", "s2"))
        dep.controller.kmp.port_key_update("s1", 1)
        dep.run(1.0)
        k1 = dep.dataplanes["s1"].keys.port_key(1)
        k2 = dep.dataplanes["s2"].keys.port_key(1)
        # No silent desynchronization: the tampered exchange is detected
        # (alert / digest-fail), and any completed side still talks to
        # the other via the versioned old key.
        assert adversary.stats.modified >= 1
        assert (dep.dataplanes["s1"].stats.digest_fail_dpdp
                + dep.dataplanes["s2"].stats.digest_fail_dpdp) >= 1
        assert k_before in (k1, dep.dataplanes["s1"].keys.port_key(1, 0),
                            dep.dataplanes["s1"].keys.port_key(1, 1))

    def test_salt_tampering_also_detected(self):
        dep = Deployment(num_switches=1, bootstrap=False)
        adversary = KeyExchangeTamperer(flip_mask=0xFF, tamper_salt=True)
        adversary.attach(dep.net.control_channels["s1"])
        dep.controller.kmp.local_key_init("s1")
        dep.run(1.0)
        assert (dep.dataplanes["s1"].stats.digest_fail_cdp > 0
                or dep.controller.stats.tampered_responses > 0)


class TestPassiveAdversaries:
    def test_eavesdropper_records_without_modifying(self):
        dep = probe_deployment()
        forwarding_stage(dep, "s1", 1)
        spy = Eavesdropper(lambda p: p.has("hula_probe"))
        spy.attach(dep.net.link_between("s1", "s2"))
        node = dep.net.nodes["s1"]
        dep.sim.schedule(0.0, node.receive, make_probe(1, 1, path_util=50), 2)
        dep.run(1.0)
        assert spy.stats.recorded == 1
        assert dep.dataplanes["s2"].stats.feedback_verified == 1

    def test_eavesdropper_never_sees_port_key(self):
        """Passive capture of the full bootstrap: no recorded field equals
        the derived port key (confidentiality of the shared secret)."""
        dep = Deployment(num_switches=2,
                         connect_pairs=[("s1", 1, "s2", 1)],
                         bootstrap=False)
        spies = [Eavesdropper() for _ in range(3)]
        spies[0].attach(dep.net.control_channels["s1"])
        spies[1].attach(dep.net.control_channels["s2"])
        spies[2].attach(dep.net.link_between("s1", "s2"))
        dep.controller.kmp.bootstrap_all()
        dep.run(2.0)
        k_port = dep.dataplanes["s1"].keys.port_key(1)
        assert k_port != 0
        observed_words = set()
        for spy in spies:
            for packet in spy.recordings:
                for name in packet.header_names():
                    observed_words.update(packet.get(name).fields().values())
        assert k_port not in observed_words

    def test_dropper_starves_exchange(self):
        dep = Deployment(num_switches=1, bootstrap=False)
        dropper = MessageDropper(lambda p: p.has(P4AUTH))
        dropper.attach(dep.net.control_channels["s1"])
        dep.controller.kmp.local_key_init("s1")
        dep.run(1.0)
        assert dropper.stats.dropped >= 1
        assert not dep.controller.keys.has_local_key("s1")

    def test_detach_all(self):
        dep = Deployment(num_switches=1, bootstrap=False)
        dropper = MessageDropper()
        dropper.attach(dep.net.control_channels["s1"])
        dropper.detach_all()
        dep.controller.kmp.local_key_init("s1")
        dep.run(1.0)
        assert dep.controller.keys.has_local_key("s1")
