"""C-DP adversaries: tamper, replay, flood — with and without P4Auth."""

from repro.attacks.control_plane import (
    DosFlooder,
    RegisterRequestTamperer,
    RegisterResponseTamperer,
    ReplayAttacker,
)
from repro.runtime.plain import PlainController, PlainRegOpDataplane
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.simulator import EventSimulator
from tests.conftest import Deployment


def plain_deployment():
    sim = EventSimulator()
    net = Network(sim)
    switch = DataplaneSwitch("s1", num_ports=2)
    net.add_switch(switch)
    switch.registers.define("demo", 64, 8)
    dataplane = PlainRegOpDataplane(switch).install()
    dataplane.map_register("demo")
    controller = PlainController(net)
    controller.provision(switch)
    return sim, net, switch, controller


class TestResponseTamperer:
    def test_plain_stack_accepts_forged_value(self):
        sim, net, switch, controller = plain_deployment()
        switch.registers.get("demo").write(0, 100)
        reg_id = switch.registers.id_of("demo")
        adversary = RegisterResponseTamperer([(reg_id, 0)],
                                             lambda v: v * 6)
        adversary.attach(net.control_channels["s1"])
        results = []
        controller.read_register("s1", "demo", 0,
                                 lambda ok, v: results.append(v))
        sim.run(until=1.0)
        assert results == [600]
        assert adversary.stats.modified == 1

    def test_only_targeted_indices_touched(self):
        sim, net, switch, controller = plain_deployment()
        switch.registers.get("demo").write(1, 50)
        reg_id = switch.registers.id_of("demo")
        adversary = RegisterResponseTamperer([(reg_id, 0)], lambda v: 0)
        adversary.attach(net.control_channels["s1"])
        results = []
        controller.read_register("s1", "demo", 1,
                                 lambda ok, v: results.append(v))
        sim.run(until=1.0)
        assert results == [50]

    def test_p4auth_detects(self, single_switch):
        dep = single_switch
        dep.switch("s1").registers.get("demo").write(0, 100)
        reg_id = dep.switch("s1").registers.id_of("demo")
        adversary = RegisterResponseTamperer([(reg_id, 0)], lambda v: v * 6)
        adversary.attach(dep.net.control_channels["s1"])
        results = []
        dep.controller.read_register("s1", "demo", 0,
                                     lambda ok, v: results.append(v))
        dep.run(1.0)
        assert results == []
        assert dep.controller.stats.tampered_responses == 1


class TestRequestTamperer:
    def test_plain_stack_state_poisoned(self):
        sim, net, switch, controller = plain_deployment()
        reg_id = switch.registers.id_of("demo")
        adversary = RegisterRequestTamperer(reg_id, lambda v: 0x666)
        adversary.attach(net.control_channels["s1"])
        controller.write_register("s1", "demo", 0, 0x111)
        sim.run(until=1.0)
        assert switch.registers.get("demo").read(0) == 0x666

    def test_p4auth_prevents(self, single_switch):
        dep = single_switch
        reg_id = dep.switch("s1").registers.id_of("demo")
        adversary = RegisterRequestTamperer(reg_id, lambda v: 0x666)
        adversary.attach(dep.net.control_channels["s1"])
        results = []
        dep.controller.write_register("s1", "demo", 0, 0x111,
                                      lambda ok, v: results.append(ok))
        dep.run(1.0)
        assert dep.switch("s1").registers.get("demo").read(0) == 0
        assert results == [False]  # nAck tells the controller

    def test_index_transform(self):
        sim, net, switch, controller = plain_deployment()
        reg_id = switch.registers.id_of("demo")
        adversary = RegisterRequestTamperer(reg_id, lambda v: v,
                                            index_transform=lambda i: i + 1)
        adversary.attach(net.control_channels["s1"])
        controller.write_register("s1", "demo", 0, 0x42)
        sim.run(until=1.0)
        assert switch.registers.get("demo").read(1) == 0x42


class TestReplayAttacker:
    def test_replay_rejected_by_p4auth(self, single_switch):
        dep = single_switch
        recorder = ReplayAttacker(lambda p: p.has("reg_op"))
        recorder.attach(dep.net.control_channels["s1"])
        dep.controller.write_register("s1", "demo", 0, 0xAA)
        dep.run(1.0)
        assert recorder.recordings
        # Overwrite, then replay the recorded write.
        dep.controller.write_register("s1", "demo", 0, 0xBB)
        dep.run(1.0)
        replayed = recorder.replay(dep.net, "s1")
        dep.run(1.0)
        assert replayed >= 1
        assert dep.switch("s1").registers.get("demo").read(0) == 0xBB
        assert dep.dataplanes["s1"].stats.replays_detected >= 1

    def test_replay_succeeds_against_plain_stack(self):
        sim, net, switch, controller = plain_deployment()
        recorder = ReplayAttacker(lambda p: p.has("reg_op"))
        recorder.attach(net.control_channels["s1"])
        controller.write_register("s1", "demo", 0, 0xAA)
        sim.run(until=1.0)
        controller.write_register("s1", "demo", 0, 0xBB)
        sim.run(until=2.0)
        recorder.replay(net, "s1", count=1)
        sim.run(until=3.0)
        # The plain stack happily re-applies the stale write.
        assert switch.registers.get("demo").read(0) == 0xAA


class TestDosFlooder:
    def test_alert_rate_limit_bounds_nack_stream(self, single_switch):
        dep = single_switch
        dep.dataplanes["s1"].config.alert_threshold = 20
        dep.dataplanes["s1"].config.alert_window_s = 10.0
        reg_id = dep.switch("s1").registers.id_of("demo")
        flooder = DosFlooder(dep.net, "s1", reg_id, rate_hz=1000.0)
        flooder.start(duration_s=0.5)
        dep.run(1.0)
        assert flooder.sent > 100
        stats = dep.dataplanes["s1"].stats
        assert stats.alerts_raised <= 20
        assert stats.alerts_suppressed > 0
        # Nothing was written despite hundreds of forged requests.
        assert dep.switch("s1").registers.get("demo").snapshot() == [0] * 16

    def test_flood_never_authenticates(self, single_switch):
        dep = single_switch
        reg_id = dep.switch("s1").registers.id_of("demo")
        flooder = DosFlooder(dep.net, "s1", reg_id, rate_hz=500.0)
        flooder.start(duration_s=0.2)
        dep.run(0.5)
        assert dep.dataplanes["s1"].stats.regops_served == 0


class TestDosFlooderLifecycle:
    """Regressions for the timer-chaining / pre-start lifecycle bugs."""

    def test_double_start_does_not_double_the_rate(self, single_switch):
        # Pre-fix, a second start() chained an independent _fire loop,
        # doubling the effective rate; post-fix it only extends the
        # deadline, so sent stays bounded by rate * duration.
        dep = single_switch
        reg_id = dep.switch("s1").registers.id_of("demo")
        flooder = DosFlooder(dep.net, "s1", reg_id, rate_hz=100.0)
        flooder.start(duration_s=0.5)
        flooder.start(duration_s=0.5)
        dep.run(1.0)
        assert flooder.sent <= 100.0 * 0.5 + 2

    def test_restart_extends_the_deadline(self, single_switch):
        dep = single_switch
        reg_id = dep.switch("s1").registers.id_of("demo")
        flooder = DosFlooder(dep.net, "s1", reg_id, rate_hz=100.0)
        flooder.start(duration_s=0.2)
        dep.run(0.1)
        flooder.start(duration_s=0.4)  # mid-flood: extend, don't chain
        dep.run(1.0)
        # One loop over the extended 0.5s window: ~50 sends, never ~100.
        assert 40 <= flooder.sent <= 60

    def test_stop_before_any_start_is_safe(self, single_switch):
        # Pre-fix: AttributeError (_deadline only created in start()).
        dep = single_switch
        reg_id = dep.switch("s1").registers.id_of("demo")
        flooder = DosFlooder(dep.net, "s1", reg_id, rate_hz=100.0)
        flooder.stop()
        flooder._fire()
        dep.run(0.2)
        assert flooder.sent == 0

    def test_stop_then_restart_leaves_one_timer_loop(self, single_switch):
        dep = single_switch
        reg_id = dep.switch("s1").registers.id_of("demo")
        flooder = DosFlooder(dep.net, "s1", reg_id, rate_hz=100.0)
        flooder.start(duration_s=1.0)
        dep.run(0.1)
        flooder.stop()
        # Restart before the stopped loop's pending timer fires: the
        # stale-generation timer must die instead of resurrecting a
        # second chain.
        flooder.start(duration_s=0.4)
        dep.run(1.0)
        assert flooder.sent <= 100.0 * 0.5 + 2
