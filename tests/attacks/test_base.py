"""Adversary tap lifecycle: attach idempotence and detach symmetry.

Regressions for the duplicate-tap bug: ``Link.add_tap`` blindly appends,
so a double ``attach`` used to install two taps — double-counting stats
and leaving one tap behind after ``detach_all`` (``remove_tap`` removes
a single entry).
"""

from repro.attacks.base import Eavesdropper
from repro.dataplane.packet import Packet
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.simulator import EventSimulator


def _linked_pair():
    sim = EventSimulator()
    net = Network(sim)
    for name in ("a", "b"):
        net.add_switch(DataplaneSwitch(name, num_ports=2))
    link = net.connect("a", 1, "b", 1)
    return sim, net, link


def _send_one(link):
    """Run one packet through the link's tap path."""
    link.transit(Packet(payload=b"x"), "a->b")


class TestAttachIdempotence:
    def test_double_attach_installs_one_tap(self):
        _sim, _net, link = _linked_pair()
        adversary = Eavesdropper()
        adversary.attach(link)
        adversary.attach(link)
        assert len(link.taps) == 1

    def test_double_attach_counts_each_packet_once(self):
        sim, net, link = _linked_pair()
        adversary = Eavesdropper()
        adversary.attach(link).attach(link)
        _send_one(link)
        assert adversary.stats.seen == 1
        assert adversary.stats.recorded == 1

    def test_detach_all_after_double_attach_leaves_channel_clean(self):
        sim, net, link = _linked_pair()
        adversary = Eavesdropper()
        adversary.attach(link)
        adversary.attach(link)
        adversary.detach_all()
        assert link.taps == []
        _send_one(link)
        assert adversary.stats.seen == 0

    def test_attach_returns_self_for_chaining(self):
        _sim, _net, link = _linked_pair()
        adversary = Eavesdropper()
        assert adversary.attach(link) is adversary


class TestDetachSymmetry:
    def test_detach_single_channel(self):
        sim, net, link = _linked_pair()
        adversary = Eavesdropper()
        adversary.attach(link)
        adversary.detach(link)
        assert link.taps == []
        _send_one(link)
        assert adversary.stats.seen == 0

    def test_detach_unattached_channel_is_noop(self):
        _sim, _net, link = _linked_pair()
        adversary = Eavesdropper()
        adversary.detach(link)  # never attached: must not raise
        assert link.taps == []

    def test_detach_leaves_other_channels_attached(self):
        sim = EventSimulator()
        net = Network(sim)
        for name in ("a", "b", "c"):
            net.add_switch(DataplaneSwitch(name, num_ports=3))
        link_ab = net.connect("a", 1, "b", 1)
        link_ac = net.connect("a", 2, "c", 1)
        adversary = Eavesdropper()
        adversary.attach(link_ab)
        adversary.attach(link_ac)
        adversary.detach(link_ab)
        assert link_ab.taps == []
        assert len(link_ac.taps) == 1
        adversary.detach_all()
        assert link_ac.taps == []
