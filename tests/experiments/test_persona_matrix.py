"""The persona_matrix experiment: registration, determinism, invariants."""

import pytest

from repro.attacks.personas import PERSONA_KINDS
from repro.engine.registry import get_spec
from repro.experiments.persona_matrix import (
    SYSTEMS,
    WATCHED_SIGNALS,
    run_persona_trial,
)

_CELL = dict(attack_rate_hz=400.0, duration_s=1.0, load_hz=60.0, seed=7)


class TestSpecRegistration:
    def test_registered_with_full_grid(self):
        spec = get_spec("persona_matrix")
        assert set(spec.grid["persona"]) == set(PERSONA_KINDS)
        assert set(spec.grid["system"]) == set(SYSTEMS)
        assert len(PERSONA_KINDS) >= 4 and len(SYSTEMS) >= 3

    def test_short_keeps_the_whole_matrix(self):
        """--short shrinks the rate axis, never the persona×system cover."""
        plans = get_spec("persona_matrix").expand(short=True)
        cells = {(p.params["persona"], p.params["system"]) for p in plans}
        assert len(cells) == len(PERSONA_KINDS) * len(SYSTEMS)
        rates = {p.params["attack_rate_hz"] for p in plans}
        assert len(rates) == 2  # below and above the DoS alert threshold

    def test_fault_plan_hook_declares_one_persona(self):
        spec = get_spec("persona_matrix")
        plan = spec.fault_plan(
            {"persona": "dos-flooder", "attack_rate_hz": 100.0}, seed=3)
        plan.validate()
        assert len(plan.personas) == 1
        assert plan.personas[0].kind == "dos-flooder"
        assert plan.personas[0].seed == 3


class TestTrialInvariants:
    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError, match="system"):
            run_persona_trial("dos-flooder", "bgp", **_CELL)

    def test_cell_is_deterministic_and_safe(self):
        """Same cell twice: identical result, no forged write, detected."""
        first = run_persona_trial("switch-os-injector", "hula", **_CELL)
        second = run_persona_trial("switch-os-injector", "hula", **_CELL)
        assert first == second
        assert first["detected"] is True
        assert first["detection_signal"] in WATCHED_SIGNALS
        assert first["detection_latency_s"] >= 0.0
        assert first["forged_writes"] == 0
        assert first["ground_truth_samples"] > 0
        assert first["clean_write_ok"] is True
        assert first["workload_packets"] > 0

    def test_dos_threshold_curve_brackets_the_limiter(self):
        """§VIII rate limiter: engaged at 400 Hz, quiet at 40 Hz."""
        low = run_persona_trial("dos-flooder", "routescout",
                                **{**_CELL, "attack_rate_hz": 40.0})
        high = run_persona_trial("dos-flooder", "routescout", **_CELL)
        assert low["detected"] and high["detected"]
        assert not low["mitigation_engaged"]
        assert high["mitigation_engaged"]
        assert low["forged_writes"] == high["forged_writes"] == 0

    def test_probe_mitm_surface_asymmetry(self):
        """DP-DP MitM reaches HULA's probe path but not NetCache."""
        hula = run_persona_trial("probe-mitm", "hula", **_CELL)
        netcache = run_persona_trial("probe-mitm", "netcache", **_CELL)
        assert hula["detected"] is True
        assert hula["detection_signal"] == "digest_fail_dpdp"
        assert hula["persona_outcome"]["surface_reachable"] == 1.0
        assert netcache["detected"] is False
        assert netcache["persona_outcome"]["surface_reachable"] == 0.0
        assert netcache["forged_writes"] == 0
