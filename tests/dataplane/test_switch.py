"""DataplaneSwitch: processing, recirculation bounds, port validation."""

import pytest

from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import Drop, Emit
from repro.dataplane.switch import MAX_RECIRCULATIONS, DataplaneSwitch
from repro.dataplane.tables import MatchActionTable, MatchKind


def test_process_returns_final_actions():
    switch = DataplaneSwitch("s1", num_ports=4)
    switch.pipeline.add_stage("fwd", lambda ctx: ctx.emit(2))
    actions = switch.process(Packet(), ingress_port=1)
    assert len(actions) == 1
    assert isinstance(actions[0], Emit)
    assert actions[0].port == 2


def test_invalid_ingress_port_rejected():
    switch = DataplaneSwitch("s1", num_ports=2)
    with pytest.raises(ValueError):
        switch.process(Packet(), ingress_port=3)
    with pytest.raises(ValueError):
        switch.process(Packet(), ingress_port=-1)


def test_cpu_port_always_valid():
    switch = DataplaneSwitch("s1", num_ports=2)
    switch.pipeline.add_stage("noop", lambda ctx: None)
    assert switch.process(Packet(), DataplaneSwitch.CPU_PORT) == []


def test_recirculation_runs_extra_pass():
    switch = DataplaneSwitch("s1", num_ports=2)
    state = {"passes": 0}

    def stage(ctx):
        state["passes"] += 1
        if state["passes"] == 1:
            ctx.recirculate()
        else:
            ctx.emit(1)

    switch.pipeline.add_stage("loop", stage)
    actions = switch.process(Packet(), 1)
    assert state["passes"] == 2
    assert isinstance(actions[0], Emit)
    assert switch.pipeline_passes == 2


def test_runaway_recirculation_bounded():
    switch = DataplaneSwitch("s1", num_ports=2)
    switch.pipeline.add_stage("loop", lambda ctx: ctx.recirculate())
    with pytest.raises(RuntimeError):
        switch.process(Packet(), 1)
    assert MAX_RECIRCULATIONS >= 1


def test_drop_counted():
    switch = DataplaneSwitch("s1", num_ports=2)
    switch.pipeline.add_stage("drop", lambda ctx: ctx.drop("x"))
    actions = switch.process(Packet(), 1)
    assert isinstance(actions[0], Drop)
    assert switch.packets_dropped == 1


def test_tables_registry():
    switch = DataplaneSwitch("s1", num_ports=2)
    table = MatchActionTable("t", [("k", MatchKind.EXACT, 8)])
    switch.add_table(table)
    assert switch.table("t") is table
    with pytest.raises(ValueError):
        switch.add_table(MatchActionTable("t", [("k", MatchKind.EXACT, 8)]))
    with pytest.raises(KeyError):
        switch.table("nope")


def test_hash_algorithm_selection():
    bmv2 = DataplaneSwitch("a", hash_algorithm="halfsiphash")
    tofino = DataplaneSwitch("b", hash_algorithm="crc32")
    tag1 = bmv2.hash.compute_digest_bytes(1, b"x")
    tag2 = tofino.hash.compute_digest_bytes(1, b"x")
    assert tag1 != tag2  # different algorithms
    with pytest.raises(ValueError):
        DataplaneSwitch("c", hash_algorithm="md5")


def test_needs_at_least_one_port():
    with pytest.raises(ValueError):
        DataplaneSwitch("s1", num_ports=0)


def test_packet_counters():
    switch = DataplaneSwitch("s1", num_ports=2)
    switch.pipeline.add_stage("noop", lambda ctx: None)
    switch.process(Packet(), 1)
    switch.process(Packet(), 2)
    assert switch.packets_processed == 2
