"""Property tests: arbitrary header layouts pack/parse consistently."""

from hypothesis import given, settings, strategies as st

from repro.dataplane.headers import HeaderType


@st.composite
def header_layouts(draw):
    """A random byte-aligned header layout (1-8 fields)."""
    count = draw(st.integers(min_value=1, max_value=8))
    widths = [draw(st.integers(min_value=1, max_value=48))
              for _ in range(count)]
    total = sum(widths)
    if total % 8:
        widths[-1] += 8 - (total % 8)
    return HeaderType("h", [(f"f{i}", bits)
                            for i, bits in enumerate(widths)])


@st.composite
def header_instances(draw):
    header_type = draw(header_layouts())
    values = {
        fname: draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        for fname, bits in header_type.fields
    }
    return header_type.instantiate(**values)


@given(header_instances())
@settings(max_examples=150, deadline=None)
def test_serialize_parse_roundtrip(header):
    parsed = header.header_type.parse(header.serialize())
    assert parsed == header


@given(header_instances())
@settings(max_examples=100, deadline=None)
def test_serialized_width_matches_declaration(header):
    assert len(header.serialize()) == header.header_type.byte_width


@given(header_layouts())
@settings(max_examples=100, deadline=None)
def test_zero_header_is_all_zero_bytes(header_type):
    assert header_type.instantiate().serialize() == \
        bytes(header_type.byte_width)


@given(header_instances(), st.binary(max_size=16))
@settings(max_examples=100, deadline=None)
def test_parse_ignores_trailing_bytes(header, trailer):
    parsed = header.header_type.parse(header.serialize() + trailer)
    assert parsed == header
