"""Property tests: arbitrary header layouts pack/parse consistently."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataplane.headers import HeaderType


@st.composite
def header_layouts(draw):
    """A random byte-aligned header layout (1-8 fields)."""
    count = draw(st.integers(min_value=1, max_value=8))
    widths = [draw(st.integers(min_value=1, max_value=48))
              for _ in range(count)]
    total = sum(widths)
    if total % 8:
        widths[-1] += 8 - (total % 8)
    return HeaderType("h", [(f"f{i}", bits)
                            for i, bits in enumerate(widths)])


@st.composite
def header_instances(draw):
    header_type = draw(header_layouts())
    values = {
        fname: draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        for fname, bits in header_type.fields
    }
    return header_type.instantiate(**values)


@given(header_instances())
@settings(max_examples=150, deadline=None)
def test_serialize_parse_roundtrip(header):
    parsed = header.header_type.parse(header.serialize())
    assert parsed == header


@given(header_instances())
@settings(max_examples=100, deadline=None)
def test_serialized_width_matches_declaration(header):
    assert len(header.serialize()) == header.header_type.byte_width


@given(header_layouts())
@settings(max_examples=100, deadline=None)
def test_zero_header_is_all_zero_bytes(header_type):
    assert header_type.instantiate().serialize() == \
        bytes(header_type.byte_width)


@given(header_instances(), st.binary(max_size=16))
@settings(max_examples=100, deadline=None)
def test_parse_ignores_trailing_bytes(header, trailer):
    parsed = header.header_type.parse(header.serialize() + trailer)
    assert parsed == header


@given(header_instances(), st.data())
@settings(max_examples=100, deadline=None)
def test_truncated_buffer_rejected_cleanly(header, data):
    """Any strict prefix raises ValueError naming the shortfall."""
    wire = header.serialize()
    cut = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
    with pytest.raises(ValueError, match="bytes"):
        header.header_type.parse(wire[:cut])


@given(header_instances(), st.data())
@settings(max_examples=100, deadline=None)
def test_bit_flipped_buffer_parses_to_what_it_says(header, data):
    """Corruption never crashes the structural parse: the flipped buffer
    parses, every field stays within its declared width, and serializing
    reproduces the corrupted bytes exactly (no silent normalization)."""
    wire = bytearray(header.serialize())
    position = data.draw(st.integers(min_value=0,
                                     max_value=len(wire) * 8 - 1))
    wire[position // 8] ^= 1 << (position % 8)
    parsed = header.header_type.parse(bytes(wire))
    for fname, bits in header.header_type.fields:
        assert 0 <= parsed[fname] < (1 << bits)
    assert parsed.serialize() == bytes(wire)
    assert parsed != header  # one flipped bit always lands in some field
