"""Registers and the register file (p4info id mapping)."""

import pytest
from hypothesis import given, strategies as st

from repro.dataplane.registers import Register, RegisterFile


def test_read_write_roundtrip():
    register = Register("r", 32, 8)
    register.write(3, 0xABCD)
    assert register.read(3) == 0xABCD


def test_initial_zero():
    register = Register("r", 16, 4)
    assert register.snapshot() == [0, 0, 0, 0]


def test_bounds_checked():
    register = Register("r", 8, 2)
    with pytest.raises(IndexError):
        register.read(2)
    with pytest.raises(IndexError):
        register.write(-1, 0)


def test_width_enforced():
    register = Register("r", 8, 2)
    with pytest.raises(ValueError):
        register.write(0, 256)
    register.write(0, 255)


def test_read_modify_write_masks():
    register = Register("r", 8, 1)
    register.write(0, 255)
    assert register.read_modify_write(0, lambda v: v + 1) == 0


def test_clear():
    register = Register("r", 8, 3)
    for index in range(3):
        register.write(index, index + 1)
    register.clear()
    assert register.snapshot() == [0, 0, 0]


def test_access_counters():
    register = Register("r", 8, 1)
    register.write(0, 1)
    register.read(0)
    register.read_modify_write(0, lambda v: v)
    assert register.write_count == 2
    assert register.read_count == 2


def test_invalid_dimensions_rejected():
    with pytest.raises(ValueError):
        Register("r", 0, 1)
    with pytest.raises(ValueError):
        Register("r", 8, 0)


def test_total_bits():
    assert Register("r", 64, 65).total_bits == 64 * 65


@given(st.integers(min_value=1, max_value=64),
       st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_mask_property(width, value):
    register = Register("r", width, 1)
    masked = value & register.mask
    register.write(0, masked)
    assert register.read(0) == masked


class TestRegisterFile:
    def test_ids_assigned_sequentially(self):
        regs = RegisterFile()
        regs.define("a", 8, 1)
        regs.define("b", 8, 1)
        assert regs.id_of("a") == 1
        assert regs.id_of("b") == 2
        assert regs.name_of(2) == "b"

    def test_duplicate_name_rejected(self):
        regs = RegisterFile()
        regs.define("a", 8, 1)
        with pytest.raises(ValueError):
            regs.define("a", 8, 1)

    def test_unknown_lookups_raise(self):
        regs = RegisterFile()
        with pytest.raises(KeyError):
            regs.get("nope")
        with pytest.raises(KeyError):
            regs.id_of("nope")
        with pytest.raises(KeyError):
            regs.name_of(99)

    def test_id_map_is_copy(self):
        regs = RegisterFile()
        regs.define("a", 8, 1)
        mapping = regs.id_map()
        mapping[99] = "evil"
        with pytest.raises(KeyError):
            regs.name_of(99)

    def test_total_bits_sums(self):
        regs = RegisterFile()
        regs.define("a", 8, 4)
        regs.define("b", 32, 2)
        assert regs.total_bits() == 8 * 4 + 32 * 2
        assert len(regs) == 2
