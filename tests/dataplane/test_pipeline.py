"""Pipeline and context: stage ordering, verdicts, short-circuiting."""

import pytest

from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import (
    Drop,
    Emit,
    Pipeline,
    PipelineContext,
    Recirculate,
    ToController,
)


def run(pipeline, packet=None, port=1):
    ctx = PipelineContext(switch=None, packet=packet or Packet(),
                          ingress_port=port)
    return pipeline.run(ctx), ctx


def test_stages_run_in_order():
    trace = []
    pipeline = Pipeline()
    pipeline.add_stage("a", lambda ctx: trace.append("a"))
    pipeline.add_stage("b", lambda ctx: trace.append("b"))
    run(pipeline)
    assert trace == ["a", "b"]


def test_insert_stage_at_front():
    trace = []
    pipeline = Pipeline()
    pipeline.add_stage("b", lambda ctx: trace.append("b"))
    pipeline.insert_stage(0, "a", lambda ctx: trace.append("a"))
    run(pipeline)
    assert trace == ["a", "b"]
    assert pipeline.stage_names() == ["a", "b"]


def test_duplicate_stage_name_rejected():
    pipeline = Pipeline()
    pipeline.add_stage("a", lambda ctx: None)
    with pytest.raises(ValueError):
        pipeline.add_stage("a", lambda ctx: None)
    with pytest.raises(ValueError):
        pipeline.insert_stage(0, "a", lambda ctx: None)


def test_drop_short_circuits():
    trace = []
    pipeline = Pipeline()
    pipeline.add_stage("a", lambda ctx: ctx.drop("bad"))
    pipeline.add_stage("b", lambda ctx: trace.append("b"))
    actions, ctx = run(pipeline)
    assert trace == []
    assert len(actions) == 1
    assert isinstance(actions[0], Drop)
    assert actions[0].reason == "bad"


def test_stop_skips_remaining_without_drop():
    trace = []
    pipeline = Pipeline()
    pipeline.add_stage("a", lambda ctx: ctx.stop())
    pipeline.add_stage("b", lambda ctx: trace.append("b"))
    actions, _ = run(pipeline)
    assert trace == []
    assert actions == []


def test_emit_records_port_and_packet():
    pipeline = Pipeline()
    pipeline.add_stage("a", lambda ctx: ctx.emit(3))
    actions, ctx = run(pipeline)
    assert isinstance(actions[0], Emit)
    assert actions[0].port == 3
    assert actions[0].packet is ctx.packet


def test_emit_alternate_packet():
    other = Packet()
    pipeline = Pipeline()
    pipeline.add_stage("a", lambda ctx: ctx.emit(2, other))
    actions, _ = run(pipeline)
    assert actions[0].packet is other


def test_to_controller_and_recirculate():
    pipeline = Pipeline()
    pipeline.add_stage("a", lambda ctx: ctx.to_controller(reason="r"))
    pipeline.add_stage("b", lambda ctx: ctx.recirculate())
    actions, _ = run(pipeline)
    assert isinstance(actions[0], ToController)
    assert actions[0].reason == "r"
    assert isinstance(actions[1], Recirculate)


def test_stage_trace_recorded():
    pipeline = Pipeline()
    pipeline.add_stage("a", lambda ctx: None)
    pipeline.add_stage("b", lambda ctx: None)
    _, ctx = run(pipeline)
    assert ctx.stage_trace == ["a", "b"]


def test_multiple_emits_for_multicast():
    pipeline = Pipeline()

    def multicast(ctx):
        for port in (1, 2, 3):
            ctx.emit(port, ctx.packet.copy())

    pipeline.add_stage("mc", multicast)
    actions, _ = run(pipeline)
    assert [a.port for a in actions] == [1, 2, 3]
    ids = {a.packet.packet_id for a in actions}
    assert len(ids) == 3
