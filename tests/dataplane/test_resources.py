"""Resource model: per-construct pricing and the Table II reproduction."""

import pytest

from repro.core.program import (
    baseline_program_spec,
    p4auth_overlay_spec,
    p4auth_program_spec,
)
from repro.dataplane.resources import (
    HASH_UNITS,
    PHV_CONTAINERS,
    SRAM_BLOCKS,
    TCAM_BLOCKS,
    ProgramSpec,
    ResourceModel,
)


def test_empty_program_costs_nothing():
    report = ResourceModel().report(ProgramSpec("empty"))
    assert report.tcam_blocks == 0
    assert report.sram_blocks == 0
    assert report.hash_units == 0
    assert report.phv_containers == 0


def test_ternary_table_uses_tcam_and_sram_action_data():
    spec = ProgramSpec("p").add_table("t", key_bits=32, entries=512,
                                      uses_tcam=True, action_data_bits=64)
    assert spec.tcam_blocks() == 1
    assert spec.sram_blocks() == 1  # action data only


def test_wide_key_needs_more_tcam_slices():
    narrow = ProgramSpec("n").add_table("t", 44, 512, True)
    wide = ProgramSpec("w").add_table("t", 45, 512, True)
    assert wide.tcam_blocks() == 2 * narrow.tcam_blocks()


def test_exact_table_uses_sram_and_hash():
    spec = ProgramSpec("p").add_table("t", key_bits=48, entries=1024,
                                      uses_tcam=False)
    assert spec.tcam_blocks() == 0
    assert spec.sram_blocks() >= 1
    assert spec.hash_units() == 1


def test_register_minimum_one_block():
    spec = ProgramSpec("p").add_register("tiny", 8, 1)
    assert spec.sram_blocks() == 1


def test_headers_claim_containers():
    spec = ProgramSpec("p").add_headers("h", 33)
    assert spec.phv_containers() == 2


def test_extend_overlays():
    base = ProgramSpec("b").add_headers("h", 32)
    extra = ProgramSpec("e").add_headers("h2", 32).add_hash("x", 5)
    base.extend(extra)
    assert base.phv_containers() == 2
    assert base.hash_units() == 5


def test_overfull_program_rejected():
    spec = ProgramSpec("huge")
    spec.add_phv_containers(PHV_CONTAINERS + 1)
    with pytest.raises(RuntimeError):
        ResourceModel().report(spec)


class TestTableII:
    """The headline reproduction: Table II's utilization percentages."""

    def test_baseline_row(self):
        report = ResourceModel().report(baseline_program_spec())
        assert report.tcam_pct == 8.3
        assert report.sram_pct == 2.5
        assert report.hash_pct == 1.4
        assert report.phv_pct == 11.1  # paper: 11%

    def test_p4auth_row(self):
        report = ResourceModel().report(p4auth_program_spec())
        assert report.tcam_pct == 8.3   # P4Auth adds no TCAM
        assert report.sram_pct == 3.6
        assert report.hash_pct == 51.4
        assert report.phv_pct == 23.1

    def test_hash_units_are_the_dominant_cost(self):
        base = ResourceModel().report(baseline_program_spec())
        auth = ResourceModel().report(p4auth_program_spec())
        deltas = {
            "tcam": auth.tcam_pct - base.tcam_pct,
            "sram": auth.sram_pct - base.sram_pct,
            "hash": auth.hash_pct - base.hash_pct,
            "phv": auth.phv_pct - base.phv_pct,
        }
        assert max(deltas, key=deltas.get) == "hash"

    def test_overlay_registers_match_implementation(self):
        """The overlay's register list must mirror what P4AuthDataplane
        actually allocates (10 arrays)."""
        from repro.dataplane.switch import DataplaneSwitch
        from repro.core.auth_dataplane import P4AuthDataplane
        switch = DataplaneSwitch("s1", num_ports=64)
        P4AuthDataplane(switch, k_seed=1)
        implementation = set(switch.registers.names())
        overlay = p4auth_overlay_spec(num_ports=64)
        spec_names = {r.name for r in overlay._registers}
        assert spec_names == implementation

    def test_sram_scales_linearly_with_ports(self):
        """Paper: key-register SRAM is 64*(M+1) bits — linear in ports."""
        small = p4auth_overlay_spec(num_ports=64).sram_blocks()
        # 64 ports fit in one block; thousands of ports need more.
        huge = p4auth_overlay_spec(num_ports=10000).sram_blocks()
        assert huge > small
