"""``DataplaneSwitch.process_many``: strict conformance to ``process``.

Batch execution is an amortization of Python overhead, not a semantic
mode: for any packet sequence it must produce the same actions, the same
register mutations, the same drop attribution, the same hash-extern
invocation counts, and the same telemetry totals as calling ``process``
once per packet.  Two identically-programmed switches run the same
workload — one per-packet, one batched — and every observable is diffed.
"""

import random

import pytest

from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import Drop, Emit
from repro.dataplane.switch import DataplaneSwitch, MAX_RECIRCULATIONS
from repro.telemetry import Telemetry


def build_switch(name="s1", telemetry=None):
    """A pipeline exercising registers, the hash extern, drops, and one
    recirculation — every per-packet side effect the batch must preserve."""
    switch = DataplaneSwitch(name, num_ports=4, seed=7)
    switch.registers.define("hits", 64, 8)

    def stage(ctx):
        payload = ctx.packet.payload
        lead = payload[0] if payload else 0
        tag = ctx.switch.hash.compute_digest_bytes(0xA5, payload)
        ctx.switch.registers.get("hits").read_modify_write(
            lead % 8, lambda v: (v + 1 + (tag & 1)))
        if lead == 0xFE and "looped" not in ctx.packet.metadata:
            ctx.packet.metadata["looped"] = True
            ctx.recirculate()
            return
        if lead % 3 == 0:
            ctx.drop("mod3")
            return
        ctx.emit(1 + (tag % ctx.switch.num_ports))

    switch.pipeline.add_stage("work", stage)
    if telemetry is not None:
        switch.telemetry = telemetry
    return switch


def workload(count, seed=0xBA7C4):
    rng = random.Random(seed)
    packets = []
    for i in range(count):
        length = rng.randrange(0, 32)
        payload = bytes([0xFE]) + rng.randbytes(length) if i % 7 == 0 \
            else rng.randbytes(length)
        packets.append((Packet(payload=payload), 1 + (i % 4)))
    return packets


def project(actions):
    """Comparable view of an action list (packet ids intentionally not
    compared — each run builds its own packets)."""
    out = []
    for action in actions:
        kind = type(action).__name__
        port = getattr(action, "port", None)
        reason = getattr(action, "reason", None)
        out.append((kind, port, reason, action.packet.payload,
                    dict(action.packet.metadata)))
    return out


def clone_workload(batch):
    return [(packet.copy(), port) for packet, port in batch]


@pytest.mark.parametrize("count", [1, 2, 17, 100])
def test_process_many_matches_per_packet_loop(count):
    batch = workload(count)
    one = build_switch()
    many = build_switch()
    expected = [one.process(p, port) for p, port in clone_workload(batch)]
    got = many.process_many(clone_workload(batch))
    assert [project(a) for a in got] == [project(a) for a in expected]
    # Register state is bit-identical.
    assert many.registers.get("hits").snapshot() \
        == one.registers.get("hits").snapshot()
    # Counters and drop attribution are identical.
    assert many.packets_processed == one.packets_processed == count
    assert many.packets_dropped == one.packets_dropped
    assert many.pipeline_passes == one.pipeline_passes
    assert many.drop_reasons == one.drop_reasons
    # Every packet still pays its own hash-extern invocations.
    assert many.hash.invocations == one.hash.invocations


def test_process_many_telemetry_totals_match():
    batch = workload(60)
    tel_one, tel_many = Telemetry(enabled=True), Telemetry(enabled=True)
    one = build_switch(telemetry=tel_one)
    many = build_switch(telemetry=tel_many)
    for p, port in clone_workload(batch):
        one.process(p, port)
    many.process_many(clone_workload(batch))
    passes = "dataplane_pipeline_passes_total"
    assert tel_many.metrics.value(passes, switch="s1") \
        == tel_one.metrics.value(passes, switch="s1")
    drops = [(m.labels, m.value)
             for m in tel_one.metrics.with_name("dataplane_drop_total")]
    assert [(m.labels, m.value)
            for m in tel_many.metrics.with_name("dataplane_drop_total")] \
        == drops
    # The batch entry points are themselves observable.
    assert tel_many.metrics.value("dataplane_process_batches_total",
                                  switch="s1") == 1


def test_process_many_empty_batch():
    telemetry = Telemetry(enabled=True)
    switch = build_switch(telemetry=telemetry)
    assert switch.process_many([]) == []
    assert switch.packets_processed == 0
    # An empty batch adds no pipeline passes...
    assert telemetry.metrics.get("dataplane_pipeline_passes_total") is None \
        or telemetry.metrics.value("dataplane_pipeline_passes_total",
                                   switch="s1") == 0
    # ...but the batch call itself is still counted.
    assert telemetry.metrics.value("dataplane_process_batches_total",
                                   switch="s1") == 1


def test_process_many_invalid_port_raises_like_process():
    switch = build_switch()
    with pytest.raises(ValueError):
        switch.process_many([(Packet(payload=b"\x01"), 9)])


def test_process_many_runaway_recirculation_still_bounded():
    switch = DataplaneSwitch("s1", num_ports=2)
    switch.pipeline.add_stage("loop", lambda ctx: ctx.recirculate())
    with pytest.raises(RuntimeError):
        switch.process_many([(Packet(), 1)])
    assert MAX_RECIRCULATIONS >= 1


def test_process_many_mixed_verdict_ordering():
    """Results stay aligned with submission order even when verdicts
    interleave drops, emits, and recirculated packets."""
    switch = build_switch()
    batch = [(Packet(payload=bytes([value])), 1)
             for value in (0x00, 0x01, 0xFE, 0x03, 0x04)]
    results = switch.process_many(batch)
    assert len(results) == 5
    assert isinstance(results[0][0], Drop)          # 0x00 % 3 == 0
    assert isinstance(results[1][0], (Emit, Drop))  # hash-dependent port
    # 0xFE recirculates once, then 0xFE % 3 != 0 so it emits.
    assert isinstance(results[2][0], Emit)
    assert isinstance(results[3][0], Drop)          # 0x03 % 3 == 0
    assert switch.pipeline_passes == 6              # 5 packets + 1 recirc
