"""Match-action tables: exact/ternary/LPM semantics and configuration."""

import pytest

from repro.dataplane.tables import MatchActionTable, MatchKind, TableEntry


def make_table(kind, bits=32, max_entries=16):
    table = MatchActionTable("t", [("f", kind, bits)], max_entries)
    hits = []
    table.register_action("record", lambda tag=0: hits.append(tag))
    return table, hits


def test_exact_match():
    table, hits = make_table(MatchKind.EXACT)
    table.insert(TableEntry(key=(5,), action="record", params={"tag": 1}))
    table.lookup(5)
    table.lookup(6)
    assert hits == [1]
    assert table.hit_count == 1
    assert table.miss_count == 1


def test_default_action_on_miss():
    table, hits = make_table(MatchKind.EXACT)
    table.set_default("record", tag=99)
    table.lookup(1)
    assert hits == [99]
    assert table.miss_count == 1


def test_ternary_priority_wins():
    table, hits = make_table(MatchKind.TERNARY)
    table.insert(TableEntry(key=((0x10, 0xF0),), action="record",
                            params={"tag": 1}, priority=1))
    table.insert(TableEntry(key=((0x12, 0xFF),), action="record",
                            params={"tag": 2}, priority=10))
    table.lookup(0x12)
    assert hits == [2]


def test_ternary_mask_semantics():
    table, hits = make_table(MatchKind.TERNARY)
    table.insert(TableEntry(key=((0x10, 0xF0),), action="record",
                            params={"tag": 1}))
    table.lookup(0x1F)   # matches under mask 0xF0
    table.lookup(0x20)   # does not
    assert hits == [1]


def test_lpm_longest_prefix_wins():
    table, hits = make_table(MatchKind.LPM)
    table.insert(TableEntry(key=((0x0A000000, 8),), action="record",
                            params={"tag": 8}))
    table.insert(TableEntry(key=((0x0A0B0000, 16),), action="record",
                            params={"tag": 16}))
    table.lookup(0x0A0B0C0D)
    assert hits == [16]
    table.lookup(0x0AFF0000)
    assert hits == [16, 8]


def test_lpm_zero_length_matches_everything():
    table, hits = make_table(MatchKind.LPM)
    table.insert(TableEntry(key=((0, 0),), action="record", params={"tag": 0}))
    table.lookup(0xFFFFFFFF)
    assert hits == [0]


def test_capacity_enforced():
    table, _ = make_table(MatchKind.EXACT, max_entries=1)
    table.insert(TableEntry(key=(1,), action="record"))
    with pytest.raises(RuntimeError):
        table.insert(TableEntry(key=(2,), action="record"))


def test_unknown_action_rejected():
    table, _ = make_table(MatchKind.EXACT)
    with pytest.raises(KeyError):
        table.insert(TableEntry(key=(1,), action="nope"))
    with pytest.raises(KeyError):
        table.set_default("nope")


def test_key_arity_checked():
    table, _ = make_table(MatchKind.EXACT)
    with pytest.raises(ValueError):
        table.insert(TableEntry(key=(1, 2), action="record"))


def test_duplicate_action_name_rejected():
    table, _ = make_table(MatchKind.EXACT)
    with pytest.raises(ValueError):
        table.register_action("record", lambda: None)


def test_remove_where():
    table, _ = make_table(MatchKind.EXACT)
    table.insert(TableEntry(key=(1,), action="record"))
    table.insert(TableEntry(key=(2,), action="record"))
    removed = table.remove_where(lambda e: e.key == (1,))
    assert removed == 1
    assert len(table) == 1


def test_uses_tcam_flag():
    exact, _ = make_table(MatchKind.EXACT)
    ternary, _ = make_table(MatchKind.TERNARY)
    lpm, _ = make_table(MatchKind.LPM)
    assert not exact.uses_tcam
    assert ternary.uses_tcam
    assert lpm.uses_tcam


def test_multi_field_key():
    table = MatchActionTable(
        "multi", [("a", MatchKind.EXACT, 8), ("b", MatchKind.EXACT, 8)])
    hits = []
    table.register_action("record", lambda: hits.append(1))
    table.insert(TableEntry(key=(1, 2), action="record"))
    table.lookup(1, 2)
    table.lookup(1, 3)
    assert hits == [1]


def test_table_needs_match_fields():
    with pytest.raises(ValueError):
        MatchActionTable("empty", [])
