"""Bloom filter, count-min sketch, and IBLT over register arrays."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.dataplane.registers import RegisterFile
from repro.dataplane.sketches import BloomFilter, CountMinSketch, Iblt, _hash


def fresh_bloom(bits=512, hashes=3):
    return BloomFilter(RegisterFile(), "bf", bits=bits, num_hashes=hashes)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = fresh_bloom()
        items = [3, 1_000_003, 0xDEADBEEF, 7]
        for item in items:
            bloom.insert(item)
        assert all(item in bloom for item in items)

    def test_empty_contains_nothing(self):
        assert 123 not in fresh_bloom()

    def test_clear_resets(self):
        bloom = fresh_bloom()
        bloom.insert(1)
        bloom.clear()
        assert 1 not in bloom
        assert bloom.fill_ratio() == 0.0

    def test_fill_ratio_grows(self):
        bloom = fresh_bloom()
        before = bloom.fill_ratio()
        for item in range(50):
            bloom.insert(item)
        assert bloom.fill_ratio() > before

    def test_false_positive_rate_reasonable(self):
        bloom = fresh_bloom(bits=8192)
        for item in range(100):
            bloom.insert(item)
        false_positives = sum(1 for probe in range(10_000, 11_000)
                              if probe in bloom)
        # Theoretical FP rate at this load is ~0.0001; allow lots of slack.
        assert false_positives < 50

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            fresh_bloom(bits=0)
        with pytest.raises(ValueError):
            fresh_bloom(hashes=0)

    @given(st.sets(st.integers(min_value=0, max_value=(1 << 48) - 1),
                   max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_no_false_negatives_property(self, items):
        bloom = fresh_bloom(bits=2048)
        for item in items:
            bloom.insert(item)
        assert all(item in bloom for item in items)


class TestCountMinSketch:
    def test_estimate_never_underestimates(self):
        sketch = CountMinSketch(RegisterFile(), "cms", width=64, depth=3)
        truth = {1: 5, 2: 17, 3: 1}
        for item, count in truth.items():
            sketch.update(item, count)
        for item, count in truth.items():
            assert sketch.estimate(item) >= count

    def test_exact_when_sparse(self):
        sketch = CountMinSketch(RegisterFile(), "cms", width=1024, depth=3)
        sketch.update(42, 7)
        assert sketch.estimate(42) == 7

    def test_clear(self):
        sketch = CountMinSketch(RegisterFile(), "cms", width=64, depth=2)
        sketch.update(1, 9)
        sketch.clear()
        assert sketch.estimate(1) == 0

    def test_row_register_exposed_for_cdp_reads(self):
        sketch = CountMinSketch(RegisterFile(), "cms", width=64, depth=2)
        sketch.update(1, 3)
        row = sketch.row_register(0)
        assert sum(row.snapshot()) == 3

    @given(st.dictionaries(st.integers(min_value=0, max_value=1000),
                           st.integers(min_value=1, max_value=50),
                           max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_overestimate_property(self, truth):
        sketch = CountMinSketch(RegisterFile(), "cms", width=256, depth=3)
        for item, count in truth.items():
            sketch.update(item, count)
        for item, count in truth.items():
            assert sketch.estimate(item) >= count


class TestIblt:
    def test_roundtrip(self):
        iblt = Iblt(RegisterFile(), "i", cells=64)
        truth = {0x100 + i: 10 * (i + 1) for i in range(10)}
        for flow, value in truth.items():
            iblt.insert(flow, value)
        assert Iblt.decode(iblt.export()) == truth

    def test_empty_decodes_to_empty(self):
        iblt = Iblt(RegisterFile(), "i", cells=16)
        assert Iblt.decode(iblt.export()) == {}

    def test_corruption_detected_or_wrong(self):
        iblt = Iblt(RegisterFile(), "i", cells=64)
        iblt.insert(0x42, 5)
        cells = [list(c) for c in iblt.export()]
        # Flip a count in a nonzero cell.
        for cell in cells:
            if cell[0] == 1:
                cell[0] = 2
                break
        decoded = Iblt.decode([tuple(c) for c in cells])
        assert decoded != {0x42: 5}

    def test_overload_fails_gracefully(self):
        iblt = Iblt(RegisterFile(), "i", cells=8)
        for flow in range(50):
            iblt.insert(0x1000 + flow, 1)
        # Either decode fails (None) or misses flows; it must not crash.
        decoded = Iblt.decode(iblt.export())
        assert decoded is None or len(decoded) <= 50

    def test_clear(self):
        iblt = Iblt(RegisterFile(), "i", cells=16)
        iblt.insert(1, 1)
        iblt.clear()
        assert Iblt.decode(iblt.export()) == {}

    @given(st.dictionaries(
        st.integers(min_value=1, max_value=(1 << 32) - 1),
        st.integers(min_value=1, max_value=1000),
        min_size=0, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, truth):
        iblt = Iblt(RegisterFile(), "i", cells=128)
        # Two flows mapping to the *identical* cell set are undecodable by
        # construction (no pure cell ever forms) — FlowRadar pairs the
        # IBLT with a flow filter for that case.  Exclude those inputs.
        position_sets = {}
        for flow in truth:
            positions = tuple(sorted({_hash(flow, 0x200 + salt) % 128
                                      for salt in range(3)}))
            assume(positions not in position_sets.values())
            position_sets[flow] = positions
        for flow, value in truth.items():
            iblt.insert(flow, value)
        assert Iblt.decode(iblt.export()) == truth
