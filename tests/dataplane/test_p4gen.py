"""P4-16 generator: structural fidelity to the running configuration."""

import pytest

from repro.core.auth_dataplane import P4AuthDataplane
from repro.core.constants import P4AUTH_HEADER
from repro.dataplane.p4gen import generate_p4, loc_estimate
from repro.dataplane.switch import DataplaneSwitch


@pytest.fixture
def dataplane():
    switch = DataplaneSwitch("s1", num_ports=8)
    switch.registers.define("split_ratio", 64, 4)
    switch.registers.define("path_latency", 64, 2)
    dp = P4AuthDataplane(switch, k_seed=0x1).install()
    dp.map_register("split_ratio")
    dp.map_register("path_latency")
    return dp


def test_header_declaration_matches_wire_format(dataplane):
    source = generate_p4(dataplane)
    assert "header p4auth_t {" in source
    for fname, bits in P4AUTH_HEADER.fields:
        assert f"bit<{bits}> {fname};" in source


def test_all_ten_register_arrays_declared(dataplane):
    source = generate_p4(dataplane)
    registers = dataplane.switch.registers
    p4auth_regs = [n for n in registers.names() if n.startswith("p4auth_")]
    assert len(p4auth_regs) == 10
    for name in p4auth_regs:
        register = registers.get(name)
        assert (f"register<bit<{register.width_bits}>>"
                f"({register.size}) {name};") in source


def test_mapped_registers_get_actions_and_entries(dataplane):
    source = generate_p4(dataplane)
    for name in ("split_ratio", "path_latency"):
        assert f"action {name}_read()" in source
        assert f"action {name}_write()" in source
        assert f"-> {name}_read" in source
        assert f"-> {name}_write" in source


def test_parser_covers_every_message_type(dataplane):
    source = generate_p4(dataplane)
    for state in ("parse_reg_op", "parse_eak", "parse_adhkd",
                  "parse_keyctl", "parse_alert"):
        assert state in source


def test_verify_and_sign_controls_present(dataplane):
    source = generate_p4(dataplane)
    assert "control P4AuthVerify" in source
    assert "control P4AuthSign" in source
    assert "compute_digest" in source  # the paper's BMv2 extern


def test_loc_is_in_the_papers_ballpark(dataplane):
    """§VII: 'P4Auth data plane has 400 lines of code written in P4'.

    The generated skeleton should land in the low hundreds — same order
    as the paper's artifact."""
    source = generate_p4(dataplane)
    loc = loc_estimate(source)
    assert 100 <= loc <= 500, loc


def test_braces_balance(dataplane):
    source = generate_p4(dataplane)
    assert source.count("{") == source.count("}")


def test_loc_estimate_ignores_comments_and_blanks():
    source = "/* c */\n\n// line\nreal_line;\n/* multi\nline\ncomment */\n"
    assert loc_estimate(source) == 1
