"""Packets: header stack manipulation, sizing, copying."""

import pytest

from repro.dataplane.headers import HeaderType
from repro.dataplane.packet import Packet

ETH = HeaderType("eth", [("dst", 48), ("src", 48), ("etype", 16)])
V4 = HeaderType("v4", [("src", 32), ("dst", 32)])


def test_push_and_get():
    packet = Packet()
    packet.push("eth", ETH.instantiate(etype=0x800))
    assert packet.has("eth")
    assert packet.get("eth")["etype"] == 0x800


def test_duplicate_header_rejected():
    packet = Packet()
    packet.push("eth", ETH.instantiate())
    with pytest.raises(ValueError):
        packet.push("eth", ETH.instantiate())


def test_remove_header():
    packet = Packet()
    packet.push("eth", ETH.instantiate())
    removed = packet.remove("eth")
    assert removed.header_type.name == "eth"
    assert not packet.has("eth")
    with pytest.raises(KeyError):
        packet.remove("eth")


def test_get_missing_raises():
    with pytest.raises(KeyError):
        Packet().get("eth")


def test_size_counts_headers_and_payload():
    packet = Packet(payload=b"x" * 100)
    packet.push("eth", ETH.instantiate())
    packet.push("v4", V4.instantiate())
    assert packet.size_bytes == 14 + 8 + 100


def test_serialize_outer_to_inner():
    packet = Packet(payload=b"PAY")
    packet.push("eth", ETH.instantiate(etype=0x800))
    packet.push("v4", V4.instantiate(src=1, dst=2))
    wire = packet.serialize()
    assert wire[:14] == ETH.instantiate(etype=0x800).serialize()
    assert wire[14:22] == V4.instantiate(src=1, dst=2).serialize()
    assert wire[22:] == b"PAY"


def test_copy_deep_copies_headers_and_metadata():
    packet = Packet()
    packet.push("v4", V4.instantiate(src=1))
    packet.metadata["mark"] = True
    clone = packet.copy()
    clone.get("v4")["src"] = 9
    clone.metadata["mark"] = False
    assert packet.get("v4")["src"] == 1
    assert packet.metadata["mark"] is True


def test_copy_gets_fresh_packet_id():
    packet = Packet()
    assert packet.copy().packet_id != packet.packet_id


def test_header_names_in_order():
    packet = Packet()
    packet.push("eth", ETH.instantiate())
    packet.push("v4", V4.instantiate())
    assert packet.header_names() == ["eth", "v4"]
