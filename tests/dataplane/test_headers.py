"""Header types: field packing, parsing, validation."""

import pytest
from hypothesis import given, strategies as st

from repro.dataplane.headers import Header, HeaderType

DEMO = HeaderType("demo", [("a", 8), ("b", 16), ("c", 8)])


def test_bit_and_byte_width():
    assert DEMO.bit_width == 32
    assert DEMO.byte_width == 4


def test_instantiate_defaults_to_zero():
    header = DEMO.instantiate()
    assert header["a"] == 0 and header["b"] == 0 and header["c"] == 0


def test_serialize_big_endian_order():
    header = DEMO.instantiate(a=0x12, b=0x3456, c=0x78)
    assert header.serialize() == bytes([0x12, 0x34, 0x56, 0x78])


@given(st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=65535),
       st.integers(min_value=0, max_value=255))
def test_serialize_parse_roundtrip(a, b, c):
    header = DEMO.instantiate(a=a, b=b, c=c)
    parsed = DEMO.parse(header.serialize())
    assert parsed == header


def test_parse_ignores_trailing_bytes():
    header = DEMO.instantiate(a=1, b=2, c=3)
    parsed = DEMO.parse(header.serialize() + b"extra")
    assert parsed == header


def test_parse_rejects_short_input():
    with pytest.raises(ValueError):
        DEMO.parse(b"\x00\x01")


def test_field_value_must_fit():
    header = DEMO.instantiate()
    with pytest.raises(ValueError):
        header["a"] = 256
    with pytest.raises(ValueError):
        header["b"] = -1


def test_unknown_field_rejected():
    header = DEMO.instantiate()
    with pytest.raises(KeyError):
        header["nope"]
    with pytest.raises(KeyError):
        DEMO.field_width("nope")


def test_duplicate_fields_rejected():
    with pytest.raises(ValueError):
        HeaderType("bad", [("x", 8), ("x", 8)])


def test_unaligned_header_rejected():
    with pytest.raises(ValueError):
        HeaderType("bad", [("x", 7)])


def test_zero_width_field_rejected():
    with pytest.raises(ValueError):
        HeaderType("bad", [("x", 0), ("y", 8)])


def test_empty_header_rejected():
    with pytest.raises(ValueError):
        HeaderType("bad", [])


def test_field_words_exclusion():
    header = DEMO.instantiate(a=1, b=2, c=3)
    assert header.field_words() == [1, 2, 3]
    assert header.field_words(exclude=("b",)) == [1, 3]


def test_copy_is_independent():
    header = DEMO.instantiate(a=1)
    clone = header.copy()
    clone["a"] = 2
    assert header["a"] == 1
