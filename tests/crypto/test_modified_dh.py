"""Modified DH: the shared-secret property and parameter validation."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.modified_dh import DhParameters, dh_public, dh_shared

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
NONZERO64 = st.integers(min_value=1, max_value=(1 << 64) - 1)


@given(U64, U64)
def test_both_sides_derive_same_secret(r1, r2):
    params = DhParameters()
    pk1 = dh_public(params, r1)
    pk2 = dh_public(params, r2)
    assert dh_shared(params, r1, pk2) == dh_shared(params, r2, pk1)


@given(NONZERO64, NONZERO64, U64, U64)
def test_shared_secret_property_holds_for_any_group(prime, generator, r1, r2):
    params = DhParameters(prime=prime, generator=generator)
    assert (dh_shared(params, r1, dh_public(params, r2))
            == dh_shared(params, r2, dh_public(params, r1)))


@given(U64)
def test_public_key_is_64_bit(r):
    assert 0 <= dh_public(DhParameters(), r) < (1 << 64)


def test_public_key_hides_private_random():
    # PK = (G AND R) XOR (P AND R): bits of R outside G|P never appear.
    params = DhParameters(prime=0x0F, generator=0xF0)
    r = 0xFFFFFFFFFFFFFF00
    assert dh_public(params, r) == ((0xF0 & r) ^ (0x0F & r))


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        DhParameters(prime=0)
    with pytest.raises(ValueError):
        DhParameters(generator=1 << 64)


def test_invalid_private_random_rejected():
    params = DhParameters()
    with pytest.raises(ValueError):
        dh_public(params, 1 << 64)
    with pytest.raises(ValueError):
        dh_shared(params, -1, 0)
    with pytest.raises(ValueError):
        dh_shared(params, 0, 1 << 64)


@given(U64, U64)
def test_different_randoms_usually_different_publics(r1, r2):
    # AND/XOR algebra is lossy, but distinct randoms sharing no masked
    # bits must map to distinct public keys when they differ under G|P.
    params = DhParameters()
    mask = params.generator | params.prime
    if (r1 & mask) != (r2 & mask):
        pk1, pk2 = dh_public(params, r1), dh_public(params, r2)
        # Equality is possible only where G and P overlap; assert the
        # well-definedness, not injectivity.
        assert 0 <= pk1 < (1 << 64) and 0 <= pk2 < (1 << 64)
