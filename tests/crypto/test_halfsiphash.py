"""HalfSipHash: determinism, sensitivity, and PRF-quality properties."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.halfsiphash import HalfSipHash, halfsiphash

KEY = 0x0706050403020100


def test_deterministic():
    assert halfsiphash(KEY, b"hello") == halfsiphash(KEY, b"hello")


def test_output_is_32_bit():
    for length in range(0, 40):
        message = bytes(index % 256 for index in range(length))
        assert 0 <= halfsiphash(KEY, message) < (1 << 32)


def test_empty_message_supported():
    assert 0 <= halfsiphash(KEY, b"") < (1 << 32)


def test_key_sensitivity():
    assert halfsiphash(KEY, b"msg") != halfsiphash(KEY ^ 1, b"msg")


def test_message_sensitivity():
    assert halfsiphash(KEY, b"msg0") != halfsiphash(KEY, b"msg1")


def test_length_extension_changes_tag():
    # Appending even a zero byte changes the tag (length is mixed in).
    assert halfsiphash(KEY, b"abc") != halfsiphash(KEY, b"abc\x00")


def test_key_must_be_64_bit():
    with pytest.raises(ValueError):
        halfsiphash(1 << 64, b"x")
    with pytest.raises(ValueError):
        halfsiphash(-1, b"x")


def test_round_counts_matter():
    weak = HalfSipHash(compression_rounds=1, finalization_rounds=1)
    strong = HalfSipHash(compression_rounds=2, finalization_rounds=4)
    assert weak.digest(KEY, b"sample") != strong.digest(KEY, b"sample")


def test_invalid_round_counts_rejected():
    with pytest.raises(ValueError):
        HalfSipHash(compression_rounds=0)
    with pytest.raises(ValueError):
        HalfSipHash(finalization_rounds=0)


def test_digest_words_equals_manual_serialization():
    engine = HalfSipHash()
    words = [0x11223344, 0xAABBCCDD, 0x00000001]
    expected = engine.digest(
        KEY, b"".join(w.to_bytes(4, "little") for w in words))
    assert engine.digest_words(KEY, words) == expected


def test_digest_words_rejects_oversized_word():
    engine = HalfSipHash()
    with pytest.raises(ValueError):
        engine.digest_words(KEY, [1 << 32])


def test_digest_words_rejects_unaligned_width():
    engine = HalfSipHash()
    with pytest.raises(ValueError):
        engine.digest_words(KEY, [1], word_bits=12)


@given(st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.binary(max_size=64))
def test_tag_always_32_bit(key, message):
    assert 0 <= halfsiphash(key, message) < (1 << 32)


@given(st.binary(max_size=48), st.binary(max_size=48))
def test_distinct_messages_rarely_collide(m1, m2):
    # Not a strict guarantee, but any collision here would indicate a
    # broken implementation rather than a birthday fluke at this scale.
    if m1 != m2:
        t1, t2 = halfsiphash(KEY, m1), halfsiphash(KEY, m2)
        if t1 == t2:
            # Accept genuine 2^-32 flukes only when lengths differ enough
            # to rule out an implementation length-handling bug.
            assert len(m1) != len(m2) or m1[:4] != m2[:4]


@given(st.integers(min_value=0, max_value=63), st.binary(min_size=8, max_size=8))
def test_single_key_bit_flip_avalanche(bit, message):
    t1 = halfsiphash(KEY, message)
    t2 = halfsiphash(KEY ^ (1 << bit), message)
    assert t1 != t2


def test_key_schedule_matches_direct_digest():
    hasher = HalfSipHash()
    state = hasher.key_schedule(KEY)
    for message in (b"", b"x", b"hello world", bytes(range(64))):
        assert hasher.digest_from_state(state, message) \
            == hasher.digest(KEY, message)


def test_key_schedule_rejects_oversized_key():
    with pytest.raises(ValueError):
        HalfSipHash().key_schedule(1 << 64)


@given(st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.binary(max_size=64))
def test_schedule_reuse_property(key, message):
    hasher = HalfSipHash()
    state = hasher.key_schedule(key)
    # Reusing one schedule across calls never contaminates later digests.
    first = hasher.digest_from_state(state, message)
    second = hasher.digest_from_state(state, message)
    assert first == second == hasher.digest(key, message)
