"""Differential tests: repo digests vs. independent reference code.

The chaos battery's headline invariant — "a forged digest is always
rejected" — is only as strong as the digest implementations themselves,
so this module pins them against implementations that share *no* code
with ``repro.crypto``: a from-scratch HalfSipHash written directly from
the reference C (github.com/veorq/SipHash, ``halfsiphash.c``), stdlib
``zlib.crc32``, and a bit-serial (table-free) CRC-32.  1k random
(key, message) pairs each, from a fixed seed.
"""

import random
import zlib

from repro.crypto.crc import Crc32, crc32
from repro.crypto.halfsiphash import HalfSipHash, halfsiphash

PAIRS = 1000
MASK32 = 0xFFFFFFFF


# ---------------------------------------------------------------------------
# reference implementations (deliberately written differently: inline
# arithmetic, no shared helpers, bit-serial CRC instead of table-driven)
# ---------------------------------------------------------------------------

def _ref_halfsiphash(c: int, d: int, key: bytes, message: bytes) -> int:
    """HalfSipHash-c-d, transcribed from the reference C implementation."""
    assert len(key) == 8
    k0 = int.from_bytes(key[0:4], "little")
    k1 = int.from_bytes(key[4:8], "little")
    v0, v1, v2, v3 = k0, k1, 0x6C796765 ^ k0, 0x74656462 ^ k1

    def round_(v0, v1, v2, v3):
        v0 = (v0 + v1) & MASK32
        v1 = ((v1 << 5) | (v1 >> 27)) & MASK32
        v1 ^= v0
        v0 = ((v0 << 16) | (v0 >> 16)) & MASK32
        v2 = (v2 + v3) & MASK32
        v3 = ((v3 << 8) | (v3 >> 24)) & MASK32
        v3 ^= v2
        v0 = (v0 + v3) & MASK32
        v3 = ((v3 << 7) | (v3 >> 25)) & MASK32
        v3 ^= v0
        v2 = (v2 + v1) & MASK32
        v1 = ((v1 << 13) | (v1 >> 19)) & MASK32
        v1 ^= v2
        v2 = ((v2 << 16) | (v2 >> 16)) & MASK32
        return v0, v1, v2, v3

    b = (len(message) & 0xFF) << 24
    end = len(message) - (len(message) % 4)
    for i in range(0, end, 4):
        m = int.from_bytes(message[i:i + 4], "little")
        v3 ^= m
        for _ in range(c):
            v0, v1, v2, v3 = round_(v0, v1, v2, v3)
        v0 ^= m
    left = message[end:]
    for i, byte in enumerate(left):
        b |= byte << (8 * i)
    v3 ^= b
    for _ in range(c):
        v0, v1, v2, v3 = round_(v0, v1, v2, v3)
    v0 ^= b
    v2 ^= 0xFF
    for _ in range(d):
        v0, v1, v2, v3 = round_(v0, v1, v2, v3)
    return (v1 ^ v3) & MASK32


def _ref_crc32_bitserial(data: bytes) -> int:
    """IEEE CRC-32, one bit at a time — no lookup table anywhere."""
    crc = 0xFFFFFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            crc = (crc >> 1) ^ (0xEDB88320 if crc & 1 else 0)
    return crc ^ 0xFFFFFFFF


def _random_pairs(seed: int):
    rng = random.Random(seed)
    for _ in range(PAIRS):
        key = rng.getrandbits(64)
        message = rng.randbytes(rng.randrange(0, 64))
        yield key, message


# ---------------------------------------------------------------------------
# differential sweeps
# ---------------------------------------------------------------------------

def test_halfsiphash_matches_reference_over_1k_pairs():
    for key, message in _random_pairs(0x51B0A57):
        expected = _ref_halfsiphash(2, 4, key.to_bytes(8, "little"), message)
        assert halfsiphash(key, message) == expected, \
            f"divergence at key={key:#x} msg={message.hex()}"


def test_halfsiphash_13_matches_reference():
    """The lighter HalfSipHash-1-3 parameterization diverges from 2-4 but
    must still track the reference at its own (c, d)."""
    ours = HalfSipHash(compression_rounds=1, finalization_rounds=3)
    for key, message in _random_pairs(0x13):
        expected = _ref_halfsiphash(1, 3, key.to_bytes(8, "little"), message)
        assert ours.digest(key, message) == expected


def test_crc32_matches_zlib_over_1k_pairs():
    for _key, message in _random_pairs(0xC4C32):
        assert crc32(message) == zlib.crc32(message) & MASK32


def test_crc32_matches_bitserial_reference():
    for _key, message in _random_pairs(0xB17):
        assert crc32(message) == _ref_crc32_bitserial(message)


def test_keyed_crc_is_crc_of_key_prefixed_message():
    """compute_keyed must equal an independent CRC over key || message —
    the exact bytes the P4 program feeds the hash unit."""
    engine = Crc32()
    for key, message in _random_pairs(0x6E7):
        expected = zlib.crc32(key.to_bytes(8, "little") + message) & MASK32
        assert engine.compute_keyed(key, message) == expected


def test_halfsiphash_reference_vectors():
    """Spot-check the reference itself against published test vectors
    (veorq/SipHash ``vectors.h``, hsip32 with key 00..07)."""
    key = bytes(range(8))
    message = bytes(range(8))
    # First entries of the HalfSipHash-2-4 32-bit vector table.
    expected = [0x5B9F35A9, 0xB85A4727, 0x03A662FA, 0x04E7FE8A,
                0x89466E2A, 0x69B6FAC5, 0x23FC6358, 0xC563CF8B,
                0x8F84B8D0]
    for length in range(9):
        assert _ref_halfsiphash(2, 4, key, message[:length]) \
            == expected[length]
        assert halfsiphash(int.from_bytes(key, "little"),
                           message[:length]) == expected[length]
