"""Differential battery for the vectorized digest lanes.

The vector lane is only admissible if it is *bit-identical* to the
scalar lane — Eqn 4 tags are wire bytes, so a single divergent lane
would make signatures verify or fail depending on host batch size.
This module pins :mod:`repro.crypto.vectorized` three independent ways:

- against the repo's scalar classes (:class:`HalfSipHash`,
  :class:`Crc32`) — the lane-equivalence contract;
- against the from-scratch references in
  :mod:`tests.crypto.test_differential` (transcribed C HalfSipHash,
  bit-serial CRC) and stdlib ``zlib.crc32`` — no shared code at all;
- against the pinned known-answer corpus
  ``tests/crypto/vectors_halfsiphash.json`` — immune to a bug that
  lands in every live implementation at once.

Every sweep runs on **both backends**: numpy (skipped when genuinely
absent) and the pure-stdlib fallback (``force_stdlib=True``), so the
CI leg with ``REPRO_NO_NUMPY=1`` exercises the same assertions.
Batch sizes straddle the ``DigestEngine.VECTOR_THRESHOLD`` crossover
(1, 2, 31, 32, 33) and go to 4096; message lengths cover 0..257 bytes
— empty input, every tail residue mod 4, and the 256-boundary where
the ``len & 0xFF`` final-word byte wraps.
"""

import json
import random
import zlib
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import vectorized
from repro.crypto.crc import Crc32
from repro.crypto.halfsiphash import HalfSipHash
from tests.crypto.test_differential import (
    _ref_crc32_bitserial,
    _ref_halfsiphash,
)

MASK32 = 0xFFFFFFFF
#: Batch sizes straddling DigestEngine.VECTOR_THRESHOLD (32) plus the
#: bench-scale point.
BATCH_SIZES = (1, 2, 31, 32, 33, 4096)
#: Message lengths covering 0, every residue mod 4, and the 255/256/257
#: boundary where the length byte in the final word wraps.
EDGE_LENGTHS = (0, 1, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17, 31, 32, 33,
                63, 64, 65, 127, 128, 255, 256, 257)

VECTORS_PATH = Path(__file__).parent / "vectors_halfsiphash.json"

needs_numpy = pytest.mark.skipif(not vectorized.HAVE_NUMPY,
                                 reason="numpy unavailable")

BACKENDS = [
    pytest.param(True, id="stdlib"),
    pytest.param(False, id="numpy", marks=needs_numpy),
]


def _messages(rng: random.Random, count: int) -> list:
    return [rng.randbytes(rng.choice(EDGE_LENGTHS)) for _ in range(count)]


# ---------------------------------------------------------------------------
# pinned known-answer corpus
# ---------------------------------------------------------------------------

def _load_vectors():
    with VECTORS_PATH.open() as fh:
        return json.load(fh)["vectors"]


@pytest.mark.parametrize("force_stdlib", BACKENDS)
def test_kat_corpus_digest_many(force_stdlib):
    """Every pinned vector, replayed through the batch API per (c, d)."""
    by_params = {}
    for vec in _load_vectors():
        by_params.setdefault((vec["c"], vec["d"]), []).append(vec)
    assert sum(len(v) for v in by_params.values()) >= 100
    for (c, d), vecs in by_params.items():
        for vec in vecs:
            key = int.from_bytes(bytes.fromhex(vec["key"]), "little")
            tags = vectorized.digest_many(
                key, [bytes.fromhex(vec["msg"])],
                compression_rounds=c, finalization_rounds=d,
                force_stdlib=force_stdlib)
            assert tags == [vec["tag"]], \
                f"KAT mismatch c={c} d={d} key={vec['key']} msg={vec['msg']}"


@pytest.mark.parametrize("force_stdlib", BACKENDS)
def test_kat_corpus_as_one_batch(force_stdlib):
    """The same corpus as whole batches — exercises length-grouping."""
    by_params = {}
    for vec in _load_vectors():
        by_params.setdefault((vec["c"], vec["d"]), []).append(vec)
    for (c, d), vecs in by_params.items():
        key0 = vecs[0]["key"]
        same_key = [v for v in vecs if v["key"] == key0]
        key = int.from_bytes(bytes.fromhex(key0), "little")
        tags = vectorized.digest_many(
            key, [bytes.fromhex(v["msg"]) for v in same_key],
            compression_rounds=c, finalization_rounds=d,
            force_stdlib=force_stdlib)
        assert tags == [v["tag"] for v in same_key]


def test_kat_corpus_scalar_class_agrees():
    """The scalar classes themselves still match the pinned corpus."""
    for vec in _load_vectors():
        engine = HalfSipHash(compression_rounds=vec["c"],
                             finalization_rounds=vec["d"])
        key = int.from_bytes(bytes.fromhex(vec["key"]), "little")
        assert engine.digest(key, bytes.fromhex(vec["msg"])) == vec["tag"]


# ---------------------------------------------------------------------------
# vector lane vs scalar classes (the lane-equivalence contract)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("force_stdlib", BACKENDS)
@pytest.mark.parametrize("batch", BATCH_SIZES)
def test_digest_many_matches_scalar_class(batch, force_stdlib):
    rng = random.Random(0xD1F0 + batch)
    engine = HalfSipHash()
    key = rng.getrandbits(64)
    messages = _messages(rng, batch)
    tags = vectorized.digest_many(key, messages, force_stdlib=force_stdlib)
    assert tags == [engine.digest(key, m) for m in messages]


@pytest.mark.parametrize("force_stdlib", BACKENDS)
@pytest.mark.parametrize("batch", BATCH_SIZES)
def test_digest_many_from_state_matches_scalar_class(batch, force_stdlib):
    rng = random.Random(0x57A7E + batch)
    engine = HalfSipHash()
    key = rng.getrandbits(64)
    state = engine.key_schedule(key)
    messages = _messages(rng, batch)
    tags = vectorized.digest_many_from_state(state, messages,
                                             force_stdlib=force_stdlib)
    assert tags == [engine.digest_from_state(state, m) for m in messages]


@pytest.mark.parametrize("force_stdlib", BACKENDS)
@pytest.mark.parametrize("batch", BATCH_SIZES)
def test_crc32_many_keyed_matches_scalar_class(batch, force_stdlib):
    rng = random.Random(0xC4C + batch)
    engine = Crc32()
    key = rng.getrandbits(64)
    datas = _messages(rng, batch)
    tags = vectorized.crc32_many_keyed(key, datas, engine=engine,
                                       force_stdlib=force_stdlib)
    assert tags == [engine.compute_keyed(key, d) for d in datas]


@pytest.mark.parametrize("force_stdlib", BACKENDS)
@pytest.mark.parametrize("batch", BATCH_SIZES)
def test_crc32_many_matches_scalar_class(batch, force_stdlib):
    rng = random.Random(0x32 + batch)
    engine = Crc32()
    datas = _messages(rng, batch)
    tags = vectorized.crc32_many(datas, engine=engine,
                                 force_stdlib=force_stdlib)
    assert tags == [engine.compute(d) for d in datas]


@pytest.mark.parametrize("force_stdlib", BACKENDS)
def test_nondefault_rounds_match_scalar_class(force_stdlib):
    """HalfSipHash-1-3 (the lighter parameterization) must track too."""
    rng = random.Random(0x13)
    engine = HalfSipHash(compression_rounds=1, finalization_rounds=3)
    key = rng.getrandbits(64)
    messages = _messages(rng, 64)
    tags = vectorized.digest_many(key, messages,
                                  compression_rounds=1,
                                  finalization_rounds=3,
                                  force_stdlib=force_stdlib)
    assert tags == [engine.digest(key, m) for m in messages]


@pytest.mark.parametrize("force_stdlib", BACKENDS)
def test_empty_batch_is_empty(force_stdlib):
    assert vectorized.digest_many(1, [], force_stdlib=force_stdlib) == []
    assert vectorized.crc32_many([], force_stdlib=force_stdlib) == []
    assert vectorized.crc32_many_keyed(1, [],
                                       force_stdlib=force_stdlib) == []


@pytest.mark.parametrize("force_stdlib", BACKENDS)
def test_all_edge_lengths_in_one_batch(force_stdlib):
    """One batch containing every edge length — grouping must reassemble
    results in submission order, not length order."""
    rng = random.Random(0x1E56)
    engine = HalfSipHash()
    crc = Crc32()
    key = rng.getrandbits(64)
    messages = [rng.randbytes(length) for length in EDGE_LENGTHS]
    assert vectorized.digest_many(key, messages,
                                  force_stdlib=force_stdlib) \
        == [engine.digest(key, m) for m in messages]
    assert vectorized.crc32_many_keyed(key, messages, engine=crc,
                                       force_stdlib=force_stdlib) \
        == [crc.compute_keyed(key, m) for m in messages]


# ---------------------------------------------------------------------------
# vector lane vs the independent references (no shared code)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("force_stdlib", BACKENDS)
def test_digest_many_matches_independent_reference(force_stdlib):
    rng = random.Random(0x5EF)
    key = rng.getrandbits(64)
    messages = _messages(rng, 200)
    tags = vectorized.digest_many(key, messages, force_stdlib=force_stdlib)
    key_bytes = key.to_bytes(8, "little")
    assert tags == [_ref_halfsiphash(2, 4, key_bytes, m) for m in messages]


@pytest.mark.parametrize("force_stdlib", BACKENDS)
def test_crc32_many_matches_zlib_and_bitserial(force_stdlib):
    rng = random.Random(0x21B)
    datas = _messages(rng, 200)
    tags = vectorized.crc32_many(datas, force_stdlib=force_stdlib)
    assert tags == [zlib.crc32(d) & MASK32 for d in datas]
    assert tags == [_ref_crc32_bitserial(d) for d in datas]


@pytest.mark.parametrize("force_stdlib", BACKENDS)
def test_crc32_many_keyed_is_crc_of_key_prefixed_data(force_stdlib):
    """The keyed form must equal an independent CRC over key || data —
    the exact byte stream the P4 program feeds the hash unit."""
    rng = random.Random(0x6E7)
    key = rng.getrandbits(64)
    datas = _messages(rng, 200)
    tags = vectorized.crc32_many_keyed(key, datas,
                                       force_stdlib=force_stdlib)
    prefix = key.to_bytes(8, "little")
    assert tags == [zlib.crc32(prefix + d) & MASK32 for d in datas]


# ---------------------------------------------------------------------------
# hypothesis property sweeps
# ---------------------------------------------------------------------------

_keys = st.integers(min_value=0, max_value=(1 << 64) - 1)
_message_lists = st.lists(st.binary(min_size=0, max_size=257),
                          min_size=0, max_size=40)


@pytest.mark.parametrize("force_stdlib", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(key=_keys, messages=_message_lists)
def test_property_digest_many_bit_identical(force_stdlib, key, messages):
    engine = HalfSipHash()
    assert vectorized.digest_many(key, messages,
                                  force_stdlib=force_stdlib) \
        == [engine.digest(key, m) for m in messages]


@pytest.mark.parametrize("force_stdlib", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(key=_keys, messages=_message_lists)
def test_property_digest_many_matches_reference(force_stdlib, key,
                                                messages):
    key_bytes = key.to_bytes(8, "little")
    assert vectorized.digest_many(key, messages,
                                  force_stdlib=force_stdlib) \
        == [_ref_halfsiphash(2, 4, key_bytes, m) for m in messages]


@pytest.mark.parametrize("force_stdlib", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(key=_keys, datas=_message_lists)
def test_property_crc32_many_keyed_bit_identical(force_stdlib, key, datas):
    engine = Crc32()
    assert vectorized.crc32_many_keyed(key, datas, engine=engine,
                                       force_stdlib=force_stdlib) \
        == [engine.compute_keyed(key, d) for d in datas]


@pytest.mark.parametrize("force_stdlib", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(datas=_message_lists)
def test_property_crc32_many_matches_zlib(force_stdlib, datas):
    assert vectorized.crc32_many(datas, force_stdlib=force_stdlib) \
        == [zlib.crc32(d) & MASK32 for d in datas]


@settings(max_examples=40, deadline=None)
@given(key=_keys, messages=st.lists(st.binary(max_size=64),
                                    min_size=1, max_size=16))
def test_property_backends_agree(key, messages):
    """numpy and stdlib backends of the vector lane agree with each
    other (skip-free: degenerates to stdlib==stdlib without numpy)."""
    assert vectorized.digest_many(key, messages) \
        == vectorized.digest_many(key, messages, force_stdlib=True)
    assert vectorized.crc32_many_keyed(key, messages) \
        == vectorized.crc32_many_keyed(key, messages, force_stdlib=True)


# ---------------------------------------------------------------------------
# backend gating
# ---------------------------------------------------------------------------

def test_backend_reports_active_lane():
    assert vectorized.backend() in ("numpy", "stdlib")
    if vectorized.HAVE_NUMPY:
        assert vectorized.backend() == "numpy"
    else:
        assert vectorized.backend() == "stdlib"
