"""KDF: extract-and-expand behavior, pluggable PRFs, input validation."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.kdf import Kdf, crc32_prf, halfsiphash_prf, kdf

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


@given(U64, U64)
def test_output_is_64_bit(key_in, salt):
    assert 0 <= kdf(key_in, salt) < (1 << 64)


@given(U64, U64)
def test_deterministic(key_in, salt):
    assert kdf(key_in, salt) == kdf(key_in, salt)


def test_key_sensitivity():
    assert kdf(1, 99) != kdf(2, 99)


def test_salt_sensitivity():
    assert kdf(99, 1) != kdf(99, 2)


def test_prf_choice_changes_output():
    crc_kdf = Kdf(prf=crc32_prf)
    hsh_kdf = Kdf(prf=halfsiphash_prf)
    assert crc_kdf.derive(7, 8) != hsh_kdf.derive(7, 8)


def test_extra_rounds_change_output():
    assert Kdf(rounds=1).derive(7, 8) != Kdf(rounds=2).derive(7, 8)


def test_rounds_must_be_positive():
    with pytest.raises(ValueError):
        Kdf(rounds=0)


def test_rejects_oversized_inputs():
    with pytest.raises(ValueError):
        kdf(1 << 64, 0)
    with pytest.raises(ValueError):
        kdf(0, 1 << 64)


@given(U64)
def test_zero_salt_still_randomizes_across_keys(key_in):
    # Even with a degenerate salt the output must track the input key.
    if key_in != key_in ^ 0xFFFF:
        assert kdf(key_in, 0) != kdf(key_in ^ 0xFFFF, 0)


def test_output_distribution_rough_uniformity():
    # Over many sequential inputs, top-bit should be set ~half the time —
    # a smoke check on "close-to-random keys" (paper §VI-D).
    top_bits = sum((kdf(i, i * 31 + 7) >> 63) & 1 for i in range(512))
    assert 150 < top_bits < 362
