"""Stream cipher (the §XI encryption extension's cipher half)."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.stream import crypt_word, keystream, xor_crypt

KEY = 0x1122334455667788
U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


@given(U64, st.binary(max_size=128))
def test_involutive(nonce, data):
    assert xor_crypt(KEY, nonce, xor_crypt(KEY, nonce, data)) == data


@given(U64, st.binary(min_size=8, max_size=64))
def test_ciphertext_differs_from_plaintext(nonce, data):
    # For >= 8-byte inputs an identity keystream would be a 2^-64 fluke;
    # shorter inputs can legitimately hit single-byte coincidences.
    assert xor_crypt(KEY, nonce, data) != data


def test_nonce_sensitivity():
    data = b"secret register value"
    assert xor_crypt(KEY, 1, data) != xor_crypt(KEY, 2, data)


def test_key_sensitivity():
    data = b"secret register value"
    assert xor_crypt(KEY, 1, data) != xor_crypt(KEY ^ 1, 1, data)


def test_keystream_deterministic_and_extendable():
    short = keystream(KEY, 9, 8)
    long = keystream(KEY, 9, 16)
    assert long[:8] == short


def test_keystream_nonzero():
    assert any(keystream(KEY, 3, 32))


def test_nonce_reuse_leaks_xor():
    """Documented stream-cipher property: same (key, nonce) leaks the
    XOR of plaintexts — which is why P4Auth's nonces are sequence-unique."""
    a, b = b"AAAAAAAA", b"BBBBBBBB"
    ca = xor_crypt(KEY, 5, a)
    cb = xor_crypt(KEY, 5, b)
    leaked = bytes(x ^ y for x, y in zip(ca, cb))
    assert leaked == bytes(x ^ y for x, y in zip(a, b))


@given(U64, U64)
def test_crypt_word_involutive(nonce, word):
    assert crypt_word(KEY, nonce, crypt_word(KEY, nonce, word)) == word


def test_crypt_word_respects_width():
    out = crypt_word(KEY, 1, 0xFF, bits=8)
    assert 0 <= out < 256
    with pytest.raises(ValueError):
        crypt_word(KEY, 1, 256, bits=8)


def test_input_validation():
    with pytest.raises(ValueError):
        keystream(1 << 64, 0, 4)
    with pytest.raises(ValueError):
        keystream(0, 1 << 64, 4)
    with pytest.raises(ValueError):
        keystream(0, 0, -1)
