"""The restricted ALU helpers: masking, rotation, lane operations."""

from hypothesis import given, strategies as st

from repro.crypto import ops

U32 = st.integers(min_value=0, max_value=(1 << 32) - 1)
U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


@given(U32, U32)
def test_add32_wraps(a, b):
    assert ops.add32(a, b) == (a + b) % (1 << 32)


@given(U32)
def test_rotl_rotr_inverse(value):
    for amount in (0, 1, 5, 16, 31):
        assert ops.rotr32(ops.rotl32(value, amount), amount) == value


@given(U32)
def test_rotl_by_32_is_identity(value):
    assert ops.rotl32(value, 32) == value


@given(U32, st.integers(min_value=0, max_value=31))
def test_rotl_preserves_popcount(value, amount):
    assert bin(ops.rotl32(value, amount)).count("1") == bin(value).count("1")


@given(U64, U64)
def test_xor64_self_inverse(a, b):
    assert ops.xor64(ops.xor64(a, b), b) == a


@given(U64, U64)
def test_and64_idempotent(a, b):
    masked = ops.and64(a, b)
    assert ops.and64(masked, b) == masked


@given(U64)
def test_lane_roundtrip(value):
    assert ops.concat32(ops.hi32(value), ops.lo32(value)) == value


@given(U32, U32)
def test_concat_lanes(high, low):
    combined = ops.concat32(high, low)
    assert ops.hi32(combined) == high
    assert ops.lo32(combined) == low


@given(U64, st.integers(min_value=0, max_value=63))
def test_shr64(value, amount):
    assert ops.shr64(value, amount) == value >> amount
