"""XorShift PRNG: determinism, ranges, forking."""

import pytest

from repro.crypto.prng import XorShiftPrng


def test_deterministic_given_seed():
    a = [XorShiftPrng(42).next64() for _ in range(10)]
    b = [XorShiftPrng(42).next64() for _ in range(10)]
    assert a == b


def test_different_seeds_diverge():
    assert XorShiftPrng(1).next64() != XorShiftPrng(2).next64()


def test_zero_seed_is_remapped():
    # xorshift's all-zero fixed point must not freeze the generator.
    prng = XorShiftPrng(0)
    assert prng.next64() != 0
    assert prng.next64() != prng.next64()


def test_next32_range():
    prng = XorShiftPrng(7)
    for _ in range(100):
        assert 0 <= prng.next32() < (1 << 32)


def test_next_bits_ranges():
    prng = XorShiftPrng(7)
    for bits in (1, 8, 16, 31, 64):
        for _ in range(20):
            assert 0 <= prng.next_bits(bits) < (1 << bits)


def test_next_bits_validation():
    prng = XorShiftPrng(7)
    with pytest.raises(ValueError):
        prng.next_bits(0)
    with pytest.raises(ValueError):
        prng.next_bits(65)


def test_uniform_in_unit_interval():
    prng = XorShiftPrng(7)
    samples = [prng.uniform() for _ in range(1000)]
    assert all(0.0 <= s < 1.0 for s in samples)
    assert 0.4 < sum(samples) / len(samples) < 0.6


def test_fork_produces_independent_stream():
    parent = XorShiftPrng(42)
    child = parent.fork()
    assert parent.next64() != child.next64()


def test_no_short_cycles():
    prng = XorShiftPrng(3)
    seen = {prng.next64() for _ in range(10_000)}
    assert len(seen) == 10_000
