"""CRC32 engine: bit-exactness with zlib and keyed-digest behavior."""

import zlib

import pytest
from hypothesis import given, strategies as st

from repro.crypto.crc import Crc32, crc32


@given(st.binary(max_size=256))
def test_matches_zlib(data):
    assert crc32(data) == zlib.crc32(data)


def test_known_vector():
    # The classic "123456789" check value for CRC-32/IEEE.
    assert crc32(b"123456789") == 0xCBF43926


def test_empty_input():
    assert crc32(b"") == 0


def test_custom_polynomial_differs():
    castagnoli = Crc32(polynomial=0x82F63B78)
    assert castagnoli.compute(b"123456789") != crc32(b"123456789")
    # CRC-32C check value.
    assert castagnoli.compute(b"123456789") == 0xE3069283


def test_keyed_digest_depends_on_key():
    engine = Crc32()
    assert (engine.compute_keyed(1, b"data")
            != engine.compute_keyed(2, b"data"))


def test_keyed_digest_depends_on_data():
    engine = Crc32()
    assert (engine.compute_keyed(1, b"data")
            != engine.compute_keyed(1, b"datb"))


def test_keyed_rejects_oversized_key():
    engine = Crc32()
    with pytest.raises(ValueError):
        engine.compute_keyed(1 << 64, b"x")


def test_keyed_equals_prefixed_plain():
    engine = Crc32()
    key = 0x1122334455667788
    assert (engine.compute_keyed(key, b"abc")
            == engine.compute(key.to_bytes(8, "little") + b"abc"))


@given(st.binary(max_size=64), st.binary(min_size=1, max_size=8))
def test_append_changes_crc(data, suffix):
    # CRC of data differs from CRC of data+suffix unless suffix makes the
    # same remainder — astronomically unlikely at these sizes, and a
    # systematic equality would mean a broken table.
    if suffix.strip(b"\x00") or data == b"":
        assert crc32(data) != crc32(data + suffix) or suffix == b""
