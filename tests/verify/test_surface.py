"""SURF001 unit tests on synthetic IR: the wire-influence lattice.

Each program here is a minimal pipeline exercising one propagation rule
of :mod:`repro.verify.surface`: keyed digests guard headers, unkeyed
hashes propagate, registers carry influence, secret registers are
exempt, and index-only influence still flags.
"""

from repro.verify.ir import (
    Const,
    FieldRef,
    HashDigest,
    MetaRef,
    Program,
    RegRead,
    RegReadModifyWrite,
    RegWrite,
    RegisterDecl,
    SetMeta,
    StageDecl,
)
from repro.verify.surface import analyze_surface


def _program(ops, registers):
    return Program(name="synthetic",
                   stages=[StageDecl("s0", tuple(ops))],
                   registers=list(registers))


def _surf_subjects(findings):
    assert all(f.rule == "SURF001" for f in findings)
    return {f.subject for f in findings}


class TestWireInfluence:
    def test_raw_header_write_flags(self):
        program = _program(
            [RegWrite("state", Const(0), FieldRef("hdr", "util"))],
            [RegisterDecl("state", 32, 8)])
        assert _surf_subjects(analyze_surface(program)) == {"state"}

    def test_constant_write_is_clean(self):
        program = _program(
            [RegWrite("state", Const(0), Const(7))],
            [RegisterDecl("state", 32, 8)])
        assert analyze_surface(program) == []

    def test_influenced_index_alone_flags(self):
        program = _program(
            [RegWrite("state", FieldRef("hdr", "slot"), Const(7))],
            [RegisterDecl("state", 32, 8)])
        findings = analyze_surface(program)
        assert _surf_subjects(findings) == {"state"}
        assert "index" in findings[0].message

    def test_one_finding_per_register(self):
        program = _program(
            [RegWrite("state", Const(0), FieldRef("hdr", "a")),
             RegWrite("state", Const(1), FieldRef("hdr", "b"))],
            [RegisterDecl("state", 32, 8)])
        assert len(analyze_surface(program)) == 1


class TestKeyedDigestGuard:
    def test_keyed_digest_guards_header_downstream(self):
        program = _program(
            [HashDigest("ok", (FieldRef("hdr", "util"),), keyed=True),
             RegWrite("state", Const(0), FieldRef("hdr", "util"))],
            [RegisterDecl("state", 32, 8)])
        assert analyze_surface(program) == []

    def test_guard_does_not_apply_upstream(self):
        program = _program(
            [RegWrite("state", Const(0), FieldRef("hdr", "util")),
             HashDigest("ok", (FieldRef("hdr", "util"),), keyed=True)],
            [RegisterDecl("state", 32, 8)])
        assert _surf_subjects(analyze_surface(program)) == {"state"}

    def test_guard_covers_whole_header_not_other_headers(self):
        program = _program(
            [HashDigest("ok", (FieldRef("probe", "util"),), keyed=True),
             RegWrite("a", Const(0), FieldRef("probe", "hop")),
             RegWrite("b", Const(0), FieldRef("other", "x"))],
            [RegisterDecl("a", 32, 8), RegisterDecl("b", 32, 8)])
        assert _surf_subjects(analyze_surface(program)) == {"b"}

    def test_unkeyed_hash_propagates_influence(self):
        program = _program(
            [HashDigest("h", (FieldRef("hdr", "util"),), keyed=False),
             RegWrite("state", Const(0), MetaRef("h"))],
            [RegisterDecl("state", 32, 8)])
        assert _surf_subjects(analyze_surface(program)) == {"state"}

    def test_keyed_digest_output_is_clean(self):
        program = _program(
            [HashDigest("ok", (FieldRef("hdr", "util"),), keyed=True),
             RegWrite("state", Const(0), MetaRef("ok"))],
            [RegisterDecl("state", 32, 8)])
        assert analyze_surface(program) == []


class TestRegisterPropagation:
    def test_influence_flows_through_register(self):
        program = _program(
            [RegWrite("relay", Const(0), FieldRef("hdr", "util")),
             RegRead("relay", Const(0), "carried"),
             RegWrite("sink", Const(0), MetaRef("carried"))],
            [RegisterDecl("relay", 32, 8), RegisterDecl("sink", 32, 8)])
        assert _surf_subjects(analyze_surface(program)) == {"relay", "sink"}

    def test_clean_register_read_is_clean(self):
        program = _program(
            [RegWrite("relay", Const(0), Const(1)),
             RegRead("relay", Const(0), "carried"),
             RegWrite("sink", Const(0), MetaRef("carried"))],
            [RegisterDecl("relay", 32, 8), RegisterDecl("sink", 32, 8)])
        assert analyze_surface(program) == []

    def test_rmw_marks_and_propagates(self):
        program = _program(
            [RegReadModifyWrite("acc", Const(0), FieldRef("hdr", "v"),
                                "old"),
             RegWrite("sink", Const(0), MetaRef("old"))],
            [RegisterDecl("acc", 32, 8), RegisterDecl("sink", 32, 8)])
        assert _surf_subjects(analyze_surface(program)) == {"acc", "sink"}


class TestSecretExemption:
    def test_secret_register_never_flagged(self):
        program = _program(
            [RegWrite("keys", Const(0), FieldRef("hdr", "util")),
             SetMeta("m", FieldRef("hdr", "util")),
             RegWrite("keys", MetaRef("m"), Const(0))],
            [RegisterDecl("keys", 64, 4, secret=True)])
        assert analyze_surface(program) == []


class TestStrippedDigestPinpoint:
    def test_unkeying_p4auth_exposes_expected_seq(self):
        from repro.verify.mutants import mutant_stripped_digest
        subjects = _surf_subjects([
            f for f in analyze_surface(mutant_stripped_digest())
            if f.rule == "SURF001"])
        assert "p4auth_expected_seq" in subjects
