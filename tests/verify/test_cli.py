"""The ``repro verify`` CLI: exit codes, formats, registry coverage."""

import json

import pytest

import repro.verify.cli as cli
from repro.__main__ import main
from repro.verify.findings import make_finding
from repro.verify.registry import all_entries, get_entry, program_names

EXPECTED_PROGRAMS = {
    "l3fwd", "hula", "routescout", "blink", "silkroad", "netcache",
    "flowradar", "netwarden", "inaggr", "int", "p4auth",
}


class TestRegistry:
    def test_all_eleven_programs_registered(self):
        assert set(program_names()) == EXPECTED_PROGRAMS
        assert len(program_names()) == 11

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError):
            get_entry("bmv2")

    def test_every_entry_builds_a_program(self):
        for entry in all_entries():
            program = entry.program()
            assert program.name == entry.name
            assert program.stages, f"{entry.name} declares no stages"

    def test_p4auth_entry_carries_reference(self):
        entry = get_entry("p4auth")
        assert entry.reference_pct is not None
        reference = entry.reference_pct()
        assert set(reference) == {"tcam_blocks", "sram_blocks",
                                  "hash_units", "phv_containers"}


class TestVerifyAll:
    def test_every_registered_program_is_clean(self):
        for entry in all_entries():
            findings = cli.analyze_entry(entry)
            assert findings == [], (
                f"{entry.name}: " + "; ".join(f.render() for f in findings))

    def test_cli_all_exits_zero(self, capsys):
        assert main(["verify", "--all"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "11 program(s)" in out

    def test_cli_default_is_all(self, capsys):
        assert main(["verify"]) == 0
        assert "11 program(s)" in capsys.readouterr().out

    def test_cli_subset(self, capsys):
        assert main(["verify", "p4auth", "hula"]) == 0
        assert "2 program(s)" in capsys.readouterr().out

    def test_cli_json_format(self, capsys):
        assert main(["verify", "p4auth", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["findings"] == []


class TestExitCodes:
    def test_unknown_program_exits_2(self, capsys):
        assert main(["verify", "nosuch"]) == 2
        assert "unknown program" in capsys.readouterr().out

    def test_error_findings_exit_1(self, capsys, monkeypatch):
        monkeypatch.setattr(
            cli, "analyze_entry",
            lambda entry: [make_finding("TAINT001", entry.name, "leak")])
        assert cli.cmd_verify(["p4auth"]) == 1
        out = capsys.readouterr().out
        assert "TAINT001" in out
        assert "1 error(s)" in out

    def test_warning_findings_exit_0(self, capsys, monkeypatch):
        monkeypatch.setattr(
            cli, "analyze_entry",
            lambda entry: [make_finding("RES002", entry.name, "hot")])
        assert cli.cmd_verify(["p4auth"]) == 0
        assert "WARNING" in capsys.readouterr().out


class TestAuxModes:
    def test_list_prints_registry(self, capsys):
        assert main(["verify", "--list"]) == 0
        printed = capsys.readouterr().out.split()
        assert set(printed) == EXPECTED_PROGRAMS

    def test_selftest_passes(self, capsys):
        assert main(["verify", "--selftest"]) == 0
        out = capsys.readouterr().out
        assert "selftest: OK" in out
        assert "MISSED" not in out

    def test_selftest_json(self, capsys):
        assert main(["verify", "--selftest", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert len(doc["mutants"]) == 4
