"""The ``repro verify`` CLI: exit codes, formats, registry coverage."""

import json

import pytest

import repro.verify.cli as cli
from repro.__main__ import main
from repro.verify.findings import make_finding
from repro.verify.registry import all_entries, get_entry, program_names

EXPECTED_PROGRAMS = {
    "l3fwd", "hula", "routescout", "blink", "silkroad", "netcache",
    "flowradar", "netwarden", "inaggr", "int", "p4auth",
}

#: The persona-steerable surface SURF001 (WARNING) pins per program —
#: the register paths wire input reaches without a keyed digest.  Every
#: other finding class must stay absent.
EXPECTED_SURFACE = {
    "l3fwd": {"flow_stats"},
    "hula": {"hula_best_hop", "hula_last_update", "hula_min_util"},
    "routescout": {"rs_lat_cnt", "rs_lat_sum"},
    "blink": {"blink_active_nh", "blink_backup_nh", "blink_loss_streak"},
    "silkroad": set(),
    "netcache": {"nc_sketch_row0", "nc_sketch_row1"},
    "flowradar": set(),
    "netwarden": {"nw_ipd_count", "nw_ipd_sq_sum", "nw_ipd_sum",
                  "nw_last_arrival_us"},
    "inaggr": {"agg_bitmap", "agg_count", "agg_sum"},
    "int": set(),
    "p4auth": {"flow_stats"},
}


class TestRegistry:
    def test_all_eleven_programs_registered(self):
        assert set(program_names()) == EXPECTED_PROGRAMS
        assert len(program_names()) == 11

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError):
            get_entry("bmv2")

    def test_every_entry_builds_a_program(self):
        for entry in all_entries():
            program = entry.program()
            assert program.name == entry.name
            assert program.stages, f"{entry.name} declares no stages"

    def test_p4auth_entry_carries_reference(self):
        entry = get_entry("p4auth")
        assert entry.reference_pct is not None
        reference = entry.reference_pct()
        assert set(reference) == {"tcam_blocks", "sram_blocks",
                                  "hash_units", "phv_containers"}


class TestVerifyAll:
    def test_every_registered_program_is_error_free(self):
        for entry in all_entries():
            findings = cli.analyze_entry(entry)
            errors = [f for f in findings if f.severity.name == "ERROR"]
            assert errors == [], (
                f"{entry.name}: " + "; ".join(f.render() for f in errors))

    def test_surface_findings_pin_the_persona_surface(self):
        for entry in all_entries():
            findings = cli.analyze_entry(entry)
            surface = {f.subject for f in findings if f.rule == "SURF001"}
            assert surface == EXPECTED_SURFACE[entry.name], (
                f"{entry.name}: persona surface changed")
            others = [f for f in findings if f.rule != "SURF001"]
            assert others == [], (
                f"{entry.name}: " + "; ".join(f.render() for f in others))

    def test_cli_all_exits_zero(self, capsys):
        assert main(["verify", "--all"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out
        assert "11 program(s)" in out

    def test_cli_default_is_all(self, capsys):
        assert main(["verify"]) == 0
        assert "11 program(s)" in capsys.readouterr().out

    def test_cli_subset(self, capsys):
        assert main(["verify", "p4auth", "hula"]) == 0
        assert "2 program(s)" in capsys.readouterr().out

    def test_cli_json_format(self, capsys):
        assert main(["verify", "p4auth", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["errors"] == 0
        assert [f["rule"] for f in doc["findings"]] == ["SURF001"]
        assert doc["findings"][0]["subject"] == "flow_stats"


class TestExitCodes:
    def test_unknown_program_exits_2(self, capsys):
        assert main(["verify", "nosuch"]) == 2
        assert "unknown program" in capsys.readouterr().out

    def test_error_findings_exit_1(self, capsys, monkeypatch):
        monkeypatch.setattr(
            cli, "analyze_entry",
            lambda entry: [make_finding("TAINT001", entry.name, "leak")])
        assert cli.cmd_verify(["p4auth"]) == 1
        out = capsys.readouterr().out
        assert "TAINT001" in out
        assert "1 error(s)" in out

    def test_warning_findings_exit_0(self, capsys, monkeypatch):
        monkeypatch.setattr(
            cli, "analyze_entry",
            lambda entry: [make_finding("RES002", entry.name, "hot")])
        assert cli.cmd_verify(["p4auth"]) == 0
        assert "WARNING" in capsys.readouterr().out


class TestAuxModes:
    def test_list_prints_registry(self, capsys):
        assert main(["verify", "--list"]) == 0
        printed = capsys.readouterr().out.split()
        assert set(printed) == EXPECTED_PROGRAMS

    def test_selftest_passes(self, capsys):
        assert main(["verify", "--selftest"]) == 0
        out = capsys.readouterr().out
        assert "selftest: OK" in out
        assert "MISSED" not in out

    def test_selftest_json(self, capsys):
        assert main(["verify", "--selftest", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert len(doc["mutants"]) == 5
