"""Findings model: rule catalogue, severities, report rendering."""

import json

import pytest

from repro.verify.findings import (
    RULES,
    Finding,
    Report,
    Severity,
    make_finding,
)


class TestCatalogue:
    def test_every_rule_has_severity_and_description(self):
        for rule, (severity, description) in RULES.items():
            assert isinstance(severity, Severity)
            assert description

    def test_expected_rule_families_present(self):
        rules = set(RULES)
        assert {f"TAINT00{i}" for i in range(1, 6)} <= rules
        assert {"RES001", "RES002", "RES003"} <= rules
        assert {f"INV00{i}" for i in range(1, 6)} <= rules
        assert {"LIVE001", "LIVE002"} <= rules

    def test_make_finding_carries_catalogued_severity(self):
        assert make_finding("TAINT003", "p", "m").severity \
            is Severity.WARNING
        assert make_finding("TAINT001", "p", "m").severity is Severity.ERROR

    def test_make_finding_rejects_unknown_rule(self):
        with pytest.raises(KeyError):
            make_finding("NOPE001", "p", "m")


class TestFinding:
    def test_location_includes_stage_and_op(self):
        finding = make_finding("INV002", "prog", "m", stage="s1", op_index=3)
        assert finding.location() == "prog/s1/op3"
        assert make_finding("RES001", "prog", "m").location() == "prog"

    def test_render_mentions_rule_severity_and_subject(self):
        text = make_finding("LIVE002", "p4auth", "exposed",
                            subject="p4auth_kauth").render()
        assert "LIVE002" in text
        assert "ERROR" in text
        assert "p4auth_kauth" in text

    def test_as_dict_round_trips_through_json(self):
        finding = make_finding("TAINT001", "p", "msg", stage="s",
                               op_index=1, subject="x")
        doc = json.loads(json.dumps(finding.as_dict()))
        assert doc["rule"] == "TAINT001"
        assert doc["severity"] == "ERROR"
        assert doc["op_index"] == 1


class TestReport:
    def test_ok_iff_no_errors(self):
        report = Report()
        assert report.ok
        report.extend([make_finding("TAINT003", "p", "warning only")])
        assert report.ok  # warnings don't fail the build
        report.extend([make_finding("TAINT001", "p", "leak")])
        assert not report.ok
        assert len(report.errors()) == 1

    def test_by_rule_filters(self):
        report = Report([make_finding("INV001", "a", "m"),
                         make_finding("INV002", "a", "m"),
                         make_finding("INV001", "b", "m")])
        assert len(report.by_rule("INV001")) == 2

    def test_render_text_clean_and_sorted(self):
        assert Report().render_text() == "clean: no findings"
        report = Report([make_finding("RES002", "p", "warn"),
                         make_finding("TAINT001", "p", "err")])
        lines = report.render_text().splitlines()
        assert lines[0].startswith("ERROR")  # errors sort first
        assert lines[1].startswith("WARNING")

    def test_render_json_schema(self):
        report = Report([make_finding("TAINT001", "p", "leak")])
        doc = json.loads(report.render_json())
        assert doc["ok"] is False
        assert doc["errors"] == 1
        assert doc["findings"][0]["rule"] == "TAINT001"
