"""Verify IR: expressions, declarations, program walks."""

import pytest

from repro.verify.ir import (
    ApplyTable,
    BinOp,
    Const,
    EmitPacket,
    FieldRef,
    HashDigest,
    HeaderDecl,
    MetaRef,
    Program,
    RegRead,
    RegWrite,
    RegisterDecl,
    SetField,
    StageDecl,
    TableDecl,
    field_refs,
    meta_refs,
    op_input_exprs,
    walk_expr,
)


class TestExpressions:
    def test_binop_rejects_unknown_alu_op(self):
        with pytest.raises(ValueError):
            BinOp("mul", (Const(1), Const(2)))  # PISA ALUs can't multiply

    def test_walk_expr_preorder(self):
        expr = BinOp("add", (FieldRef("h", "f"),
                             BinOp("xor", (MetaRef("m"), Const(1)))))
        kinds = [type(e).__name__ for e in walk_expr(expr)]
        assert kinds == ["BinOp", "FieldRef", "BinOp", "MetaRef", "Const"]

    def test_ref_extractors(self):
        expr = BinOp("concat", (FieldRef("a", "x"), MetaRef("m"),
                                FieldRef("b", "y")))
        assert [(r.header, r.field) for r in field_refs(expr)] == \
            [("a", "x"), ("b", "y")]
        assert [r.name for r in meta_refs(expr)] == ["m"]


class TestDeclarations:
    def test_header_widths(self):
        header = HeaderDecl("h", (("a", 8), ("b", 24)))
        assert header.bit_width == 32
        assert header.field_bits("b") == 24
        assert header.field_bits("missing") is None

    def test_program_lookups(self):
        program = Program("p")
        program.registers = [RegisterDecl("r", 32, 4, secret=True)]
        program.tables = [TableDecl("t", key_bits=16, entries=8)]
        program.headers = [HeaderDecl("h", (("f", 8),))]
        assert program.register("r").secret
        assert program.table("t").entries == 8
        assert program.header("h").bit_width == 8
        assert program.register("nope") is None
        assert program.secret_registers() == ["r"]


class TestProgramWalk:
    def test_ops_flat_walk_keeps_stage_order(self):
        program = Program("p")
        op_a = RegRead("r", Const(0), "x")
        op_b = RegWrite("r", Const(0), MetaRef("x"))
        op_c = EmitPacket(("h",))
        program.stages = [StageDecl("s1", (op_a, op_b)),
                          StageDecl("s2", (op_c,))]
        assert program.ops() == [("s1", 0, op_a), ("s1", 1, op_b),
                                 ("s2", 0, op_c)]

    def test_op_input_exprs_cover_reads(self):
        key = FieldRef("h", "f")
        assert op_input_exprs(ApplyTable("t", (key,))) == (key,)
        read = RegRead("r", MetaRef("i"), "dst")
        assert op_input_exprs(read) == (MetaRef("i"),)
        write = RegWrite("r", Const(0), MetaRef("v"))
        assert op_input_exprs(write) == (Const(0), MetaRef("v"))
        digest = HashDigest("d", (key, MetaRef("k")))
        assert op_input_exprs(digest) == (key, MetaRef("k"))
        setf = SetField("h", "f", MetaRef("v"))
        assert op_input_exprs(setf) == (MetaRef("v"),)
