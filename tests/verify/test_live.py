"""Live cross-checker: declared IR vs installed switch objects."""

from dataclasses import replace

import pytest

from repro.systems.l3fwd import build_verify_switch, verify_program
from repro.verify.live import analyze_live


def rules(findings):
    return [f.rule for f in findings]


class TestAgreement:
    def test_l3fwd_declaration_matches_its_switch(self):
        assert analyze_live(verify_program(), build_verify_switch()) == []

    def test_p4auth_declaration_matches_reference_switch(self):
        from repro.core.auth_ir import build_reference_switch, \
            p4auth_program
        assert analyze_live(p4auth_program(),
                            build_reference_switch()) == []


class TestRegisterDivergence:
    def test_declared_register_missing_live_fires_live001(self):
        from repro.verify.ir import RegisterDecl
        program = verify_program()
        program.registers.append(RegisterDecl("phantom", 32, 4))
        findings = analyze_live(program, build_verify_switch())
        assert rules(findings) == ["LIVE001"]
        assert findings[0].subject == "phantom"

    def test_live_register_not_declared_fires_live001(self):
        program = verify_program()
        switch = build_verify_switch()
        switch.registers.define("stowaway", 8, 2)
        assert rules(analyze_live(program, switch)) == ["LIVE001"]

    def test_width_mismatch_fires_live001(self):
        program = verify_program()
        program.registers = [
            replace(r, width_bits=r.width_bits * 2)
            if r.name == "flow_stats" else r
            for r in program.registers
        ]
        findings = analyze_live(program, build_verify_switch())
        assert rules(findings) == ["LIVE001"]
        assert "flow_stats" in findings[0].message

    def test_secret_flag_disagreement_fires_live001(self):
        # flow_stats is not in core.secrets, so flagging it secret in the
        # IR must be rejected — secrecy is centralized, not ad hoc.
        program = verify_program()
        program.registers = [
            replace(r, secret=True) if r.name == "flow_stats" else r
            for r in program.registers
        ]
        findings = analyze_live(program, build_verify_switch())
        assert "LIVE001" in rules(findings)
        assert any("secret flag" in f.message for f in findings)


class TestTableDivergence:
    def test_key_bits_mismatch_fires_live001(self):
        program = verify_program()
        program.tables = [
            replace(t, key_bits=99) if t.name == "ipv4_lpm" else t
            for t in program.tables
        ]
        findings = analyze_live(program, build_verify_switch())
        assert rules(findings) == ["LIVE001"]
        assert "key_bits" in findings[0].message

    def test_entries_are_deliberately_not_compared(self):
        # max_entries is allocation policy, not Table II sizing; a
        # different count must NOT trip the live diff.
        program = verify_program()
        program.tables = [
            replace(t, entries=7) if t.name == "ipv4_lpm" else t
            for t in program.tables
        ]
        assert analyze_live(program, build_verify_switch()) == []

    def test_declared_table_missing_live_fires_live001(self):
        from repro.verify.ir import TableDecl
        program = verify_program()
        program.tables.append(TableDecl("ghost", key_bits=8, entries=4))
        assert rules(analyze_live(program, build_verify_switch())) == \
            ["LIVE001"]


class TestStageDivergence:
    def test_missing_stage_fires_live001_when_checked(self):
        from repro.verify.ir import StageDecl
        program = verify_program()
        program.stages.append(StageDecl("imaginary", ()))
        findings = analyze_live(program, build_verify_switch(),
                                check_stages=True)
        assert rules(findings) == ["LIVE001"]

    def test_check_stages_false_skips_stage_diff(self):
        from repro.verify.ir import StageDecl
        program = verify_program()
        program.stages.append(StageDecl("imaginary", ()))
        assert analyze_live(program, build_verify_switch(),
                            check_stages=False) == []

    def test_flowradar_has_no_live_stage_by_design(self):
        from repro.systems import flowradar
        program = flowradar.verify_program()
        switch = flowradar.build_verify_switch()
        assert analyze_live(program, switch, check_stages=False) == []


class TestMappingExposure:
    def test_smuggled_secret_mapping_fires_live002(self):
        from repro.core.auth_ir import p4auth_program
        from repro.verify.mutants import _smuggled_mapping_switch
        findings = analyze_live(p4auth_program(),
                                _smuggled_mapping_switch())
        assert rules(findings) == ["LIVE002"]
        assert findings[0].subject == "p4auth_kauth"

    def test_install_guard_still_refuses_direct_mapping(self):
        # The static rule backstops a live guard; both must hold.
        from repro.core.auth_dataplane import P4AuthDataplane
        from repro.dataplane.switch import DataplaneSwitch
        switch = DataplaneSwitch("guard", 2)
        auth = P4AuthDataplane(switch, k_seed=1).install()
        with pytest.raises(PermissionError):
            auth.map_register("p4auth_kauth")
