"""Pipeline invariants: defaults, stage hazards, validity, wire widths."""

from repro.core.wire import wire_header_layouts
from repro.verify.invariants import analyze_invariants
from repro.verify.ir import (
    ApplyTable,
    Const,
    FieldRef,
    HeaderDecl,
    Program,
    RegRead,
    RegReadModifyWrite,
    RegWrite,
    RegisterDecl,
    RequireValid,
    SetField,
    StageDecl,
    TableDecl,
)


def make_program(stages, tables=(), headers=(), registers=()):
    program = Program("inv")
    program.stages = list(stages)
    program.tables = list(tables)
    program.headers = list(headers)
    program.registers = list(registers)
    return program


def rules(program):
    return [f.rule for f in analyze_invariants(program)]


class TestDefaults:
    def test_missing_default_fires_inv001(self):
        program = make_program(
            [], tables=[TableDecl("t", key_bits=8, entries=4,
                                  has_default=False)])
        assert rules(program) == ["INV001"]

    def test_undeclared_apply_fires_inv001(self):
        program = make_program(
            [StageDecl("s", (ApplyTable("ghost", (Const(1),)),))])
        assert rules(program) == ["INV001"]

    def test_declared_table_with_default_is_clean(self):
        program = make_program(
            [StageDecl("s", (ApplyTable("t", (Const(1),)),))],
            tables=[TableDecl("t", key_bits=8, entries=4)])
        assert rules(program) == []


class TestStageHazards:
    def test_read_after_write_same_stage_fires_inv002(self):
        ops = (RegWrite("r", Const(0), Const(1)),
               RegRead("r", Const(0), "x"))
        program = make_program([StageDecl("s", ops)],
                               registers=[RegisterDecl("r", 32, 4)])
        assert rules(program) == ["INV002"]

    def test_rmw_is_atomic_and_exempt(self):
        ops = (RegReadModifyWrite("r", Const(0), Const(1), "x"),)
        program = make_program([StageDecl("s", ops)],
                               registers=[RegisterDecl("r", 32, 4)])
        assert rules(program) == []

    def test_plain_read_after_rmw_still_trips(self):
        ops = (RegReadModifyWrite("r", Const(0), Const(1), "x"),
               RegRead("r", Const(0), "y"))
        program = make_program([StageDecl("s", ops)],
                               registers=[RegisterDecl("r", 32, 4)])
        assert rules(program) == ["INV002"]

    def test_write_then_read_across_stages_is_clean(self):
        program = make_program(
            [StageDecl("s1", (RegWrite("r", Const(0), Const(1)),)),
             StageDecl("s2", (RegRead("r", Const(0), "x"),))],
            registers=[RegisterDecl("r", 32, 4)])
        assert rules(program) == []


class TestValidity:
    def test_field_access_without_guard_fires_inv003(self):
        program = make_program(
            [StageDecl("s", (SetField("h", "f", Const(1)),))],
            headers=[HeaderDecl("h", (("f", 8),))])
        assert rules(program) == ["INV003"]

    def test_guard_covers_later_stages(self):
        program = make_program(
            [StageDecl("s1", (RequireValid("h"),)),
             StageDecl("s2", (SetField("h", "f", Const(1)),))],
            headers=[HeaderDecl("h", (("f", 8),))])
        assert rules(program) == []

    def test_read_refs_need_guards_too(self):
        ops = (RegWrite("r", Const(0), FieldRef("h", "f")),)
        program = make_program([StageDecl("s", ops)],
                               headers=[HeaderDecl("h", (("f", 8),))],
                               registers=[RegisterDecl("r", 32, 4)])
        assert rules(program) == ["INV003"]


class TestWireAgreement:
    def test_matching_wire_layout_is_clean(self):
        layout = wire_header_layouts()["p4auth"]
        program = make_program(
            [], headers=[HeaderDecl("p4auth", tuple(layout.fields))])
        assert rules(program) == []

    def test_diverging_wire_layout_fires_inv004(self):
        program = make_program(
            [], headers=[HeaderDecl("p4auth", (("digest", 64),))])
        assert rules(program) == ["INV004"]

    def test_non_wire_headers_are_not_checked(self):
        program = make_program(
            [], headers=[HeaderDecl("my_probe", (("x", 8),))])
        assert rules(program) == []


class TestConstWidths:
    def test_oversized_field_constant_fires_inv005(self):
        program = make_program(
            [StageDecl("s", (RequireValid("h"),
                             SetField("h", "f", Const(0x1FF)),))],
            headers=[HeaderDecl("h", (("f", 8),))])
        assert rules(program) == ["INV005"]

    def test_oversized_register_constant_fires_inv005(self):
        ops = (RegWrite("r", Const(0), Const(1 << 40)),)
        program = make_program([StageDecl("s", ops)],
                               registers=[RegisterDecl("r", 32, 4)])
        assert rules(program) == ["INV005"]

    def test_fitting_constants_are_clean(self):
        program = make_program(
            [StageDecl("s", (RequireValid("h"),
                             SetField("h", "f", Const(0xFF)),
                             RegWrite("r", Const(0), Const(0xFFFFFFFF)),))],
            headers=[HeaderDecl("h", (("f", 8),))],
            registers=[RegisterDecl("r", 32, 4)])
        assert rules(program) == []
