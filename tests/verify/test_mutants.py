"""Mutant battery: every seeded violation must be caught, by the right
rule, and the unmutated program must stay clean."""

from repro.verify.mutants import (
    _static_rules,
    mutant_budget_bust,
    mutant_key_leak,
    mutant_missing_default,
    run_selftest,
    selftest_ok,
)


class TestIndividualMutants:
    def test_key_leak_caught_by_taint001(self):
        assert "TAINT001" in _static_rules(mutant_key_leak())

    def test_budget_bust_caught_by_res001(self):
        assert "RES001" in _static_rules(mutant_budget_bust())

    def test_missing_default_caught_by_inv001(self):
        assert "INV001" in _static_rules(mutant_missing_default())

    def test_mutants_do_not_cross_contaminate(self):
        # Each mutation is surgical: it must trip its own rule and no
        # other ERROR rule family.
        assert _static_rules(mutant_budget_bust()) == {"RES001"}
        assert _static_rules(mutant_missing_default()) == {"INV001"}
        assert _static_rules(mutant_key_leak()) == {"TAINT001"}


class TestBattery:
    def test_selftest_catches_every_mutant(self):
        results = run_selftest()
        assert selftest_ok(results)
        assert len(results) == 4
        by_name = {r.name: r for r in results}
        assert by_name["key_leak"].expected_rule == "TAINT001"
        assert by_name["budget_bust"].expected_rule == "RES001"
        assert by_name["missing_default"].expected_rule == "INV001"
        assert by_name["smuggled_mapping"].expected_rule == "LIVE002"
        for result in results:
            assert result.expected_rule in result.rules_fired

    def test_unmutated_p4auth_is_clean(self):
        from repro.core.auth_ir import p4auth_program
        assert _static_rules(p4auth_program()) == set()
