"""Mutant battery: every seeded violation must be caught, by the right
rule, and the unmutated program must stay warning-only clean."""

from repro.verify.mutants import (
    _static_rules,
    mutant_budget_bust,
    mutant_key_leak,
    mutant_missing_default,
    mutant_stripped_digest,
    run_selftest,
    selftest_ok,
)

#: The base p4auth program's only expected rule: the l3fwd flow counter
#: is (intentionally) wire-indexed persona surface, a WARNING.
BASELINE_RULES = {"SURF001"}


class TestIndividualMutants:
    def test_key_leak_caught_by_taint001(self):
        assert "TAINT001" in _static_rules(mutant_key_leak())

    def test_budget_bust_caught_by_res001(self):
        assert "RES001" in _static_rules(mutant_budget_bust())

    def test_missing_default_caught_by_inv001(self):
        assert "INV001" in _static_rules(mutant_missing_default())

    def test_stripped_digest_caught_by_surf001(self):
        assert "SURF001" in _static_rules(mutant_stripped_digest())

    def test_mutants_do_not_cross_contaminate(self):
        # Each mutation is surgical: it must trip its own rule and no
        # other ERROR rule family (the baseline SURF001 warning rides
        # along on every p4auth-derived mutant that keeps flow_stats).
        assert _static_rules(mutant_budget_bust()) == {"RES001"} | BASELINE_RULES
        assert _static_rules(mutant_missing_default()) == {"INV001"} | BASELINE_RULES
        assert _static_rules(mutant_key_leak()) == {"TAINT001"} | BASELINE_RULES


class TestBattery:
    def test_selftest_catches_every_mutant(self):
        results = run_selftest()
        assert selftest_ok(results)
        assert len(results) == 5
        by_name = {r.name: r for r in results}
        assert by_name["key_leak"].expected_rule == "TAINT001"
        assert by_name["budget_bust"].expected_rule == "RES001"
        assert by_name["missing_default"].expected_rule == "INV001"
        assert by_name["stripped_digest"].expected_rule == "SURF001"
        assert by_name["smuggled_mapping"].expected_rule == "LIVE002"
        for result in results:
            assert result.expected_rule in result.rules_fired

    def test_unmutated_p4auth_has_no_error_rules(self):
        from repro.core.auth_ir import p4auth_program
        assert _static_rules(p4auth_program()) == BASELINE_RULES
