"""Taint engine: lattice flows, the keyed-digest declassifier, sinks."""

from repro.verify.ir import (
    ApplyTable,
    BinOp,
    Const,
    EmitPacket,
    ExportTelemetry,
    FieldRef,
    HashDigest,
    KdfDerive,
    MetaRef,
    Program,
    RegRead,
    RegReadModifyWrite,
    RegWrite,
    RegisterDecl,
    SendToController,
    SetField,
    SetMeta,
    StageDecl,
)
from repro.verify.taint import Label, TaintState, analyze_taint


def make_program(*ops, secret_reg=True):
    """One-stage program with a key register and a public counter."""
    program = Program("t")
    program.registers = [
        RegisterDecl("keys", 64, 4, secret=secret_reg),
        RegisterDecl("counter", 32, 4, secret=False),
    ]
    program.stages = [StageDecl("s", tuple(ops))]
    return program


def rules(program):
    return [f.rule for f in analyze_taint(program)]


class TestLattice:
    def test_labels_ordered_for_join(self):
        assert Label.PUBLIC < Label.DIGEST_OK < Label.SECRET
        assert max(Label.PUBLIC, Label.SECRET) is Label.SECRET

    def test_eval_joins_through_alu_ops(self):
        program = make_program()
        state = TaintState(program)
        state.meta["k"] = Label.SECRET
        expr = BinOp("xor", (Const(5), MetaRef("k")))
        assert state.eval(expr) is Label.SECRET

    def test_unknown_names_default_public(self):
        state = TaintState(make_program())
        assert state.eval(MetaRef("never_set")) is Label.PUBLIC
        assert state.eval(FieldRef("h", "f")) is Label.PUBLIC


class TestSinks:
    def test_secret_field_in_emitted_header_fires_taint001(self):
        program = make_program(
            RegRead("keys", Const(0), "k"),
            SetField("h", "digest", MetaRef("k")),
            EmitPacket(("h",)),
        )
        assert rules(program) == ["TAINT001"]

    def test_secret_emit_expr_fires_taint001(self):
        program = make_program(
            RegRead("keys", Const(0), "k"),
            EmitPacket((), fields=(MetaRef("k"),)),
        )
        assert rules(program) == ["TAINT001"]

    def test_secret_write_to_public_register_fires_taint002(self):
        program = make_program(
            RegRead("keys", Const(0), "k"),
            RegWrite("counter", Const(0), MetaRef("k")),
        )
        assert rules(program) == ["TAINT002"]

    def test_secret_match_key_is_warning_taint003(self):
        program = make_program(
            RegRead("keys", Const(0), "k"),
            ApplyTable("t", (MetaRef("k"),)),
        )
        findings = analyze_taint(program)
        assert [f.rule for f in findings] == ["TAINT003"]
        assert findings[0].severity.name == "WARNING"

    def test_secret_telemetry_and_controller_sinks(self):
        program = make_program(
            RegRead("keys", Const(0), "k"),
            ExportTelemetry((MetaRef("k"),)),
            SendToController((MetaRef("k"),)),
        )
        assert rules(program) == ["TAINT004", "TAINT005"]


class TestDeclassification:
    def test_keyed_digest_is_the_declassifier(self):
        program = make_program(
            RegRead("keys", Const(0), "k"),
            HashDigest("d", (MetaRef("k"), FieldRef("h", "seq")),
                       keyed=True),
            SetField("h", "digest", MetaRef("d")),
            EmitPacket(("h",), fields=(MetaRef("d"),)),
        )
        assert rules(program) == []

    def test_unkeyed_hash_does_not_declassify(self):
        program = make_program(
            RegRead("keys", Const(0), "k"),
            HashDigest("d", (MetaRef("k"),), keyed=False),
            EmitPacket((), fields=(MetaRef("d"),)),
        )
        assert rules(program) == ["TAINT001"]

    def test_unkeyed_hash_of_public_stays_public(self):
        program = make_program(
            SetMeta("r2", Const(7)),
            HashDigest("pk", (MetaRef("r2"),), keyed=False),
            EmitPacket((), fields=(MetaRef("pk"),)),
        )
        assert rules(program) == []

    def test_kdf_output_is_fresh_secret(self):
        program = make_program(
            KdfDerive("master", (Const(1), Const(2))),
            RegWrite("counter", Const(0), MetaRef("master")),
        )
        assert rules(program) == ["TAINT002"]

    def test_kdf_into_secret_register_is_fine(self):
        program = make_program(
            KdfDerive("master", (Const(1),)),
            RegWrite("keys", Const(0), MetaRef("master")),
        )
        assert rules(program) == []


class TestRegisterLabels:
    def test_rmw_dst_joins_stored_and_written(self):
        program = make_program(
            RegReadModifyWrite("keys", Const(0), Const(1), "updated"),
            EmitPacket((), fields=(MetaRef("updated"),)),
        )
        assert rules(program) == ["TAINT001"]

    def test_public_register_flow_is_clean(self):
        program = make_program(
            RegReadModifyWrite("counter", Const(0), Const(1), "n"),
            EmitPacket((), fields=(MetaRef("n"),)),
        )
        assert rules(program) == []
