"""Resource linter: budgets, watermark, and Table II agreement."""

from repro.dataplane.resources import TCAM_BLOCKS
from repro.verify.ir import HashDecl, HeaderDecl, Program, RegisterDecl, \
    TableDecl
from repro.verify.resources_lint import (
    CAPACITIES,
    REFERENCE_TOLERANCE_PCT,
    analyze_resources,
    spec_from_program,
    static_usage,
    static_utilization_pct,
)


def small_program():
    program = Program("small")
    program.tables = [TableDecl("t", key_bits=32, entries=1024,
                                match_kind="exact")]
    program.registers = [RegisterDecl("r", 32, 1024)]
    program.hashes = [HashDecl("h", 2)]
    program.headers = [HeaderDecl("eth", (("dst", 48), ("src", 48)))]
    return program


class TestPricing:
    def test_spec_lowering_prices_like_the_dynamic_model(self):
        spec = spec_from_program(small_program())
        usage = static_usage(small_program())
        assert usage["tcam_blocks"] == spec.tcam_blocks() == 0
        assert usage["sram_blocks"] == spec.sram_blocks()
        assert usage["hash_units"] == spec.hash_units()
        assert usage["phv_containers"] == spec.phv_containers() == 3

    def test_lpm_and_ternary_price_tcam(self):
        program = small_program()
        program.tables.append(TableDecl("route", key_bits=32, entries=512,
                                        match_kind="lpm"))
        assert static_usage(program)["tcam_blocks"] > 0

    def test_utilization_pct_keys_match_capacities(self):
        pct = static_utilization_pct(small_program())
        assert set(pct) == set(CAPACITIES)
        assert all(0.0 <= v <= 100.0 for v in pct.values())


class TestBudgetRules:
    def test_small_program_is_clean(self):
        assert analyze_resources(small_program()) == []

    def test_over_capacity_fires_res001(self):
        program = small_program()
        program.tables.append(TableDecl(
            "huge", key_bits=512, entries=1_000_000,
            match_kind="ternary"))
        findings = analyze_resources(program)
        assert any(f.rule == "RES001" and f.subject == "tcam_blocks"
                   for f in findings)

    def test_watermark_fires_res002_not_res001(self):
        program = small_program()
        # 44-bit ternary key: 1 TCAM block per 512 entries; target ~87%.
        entries = 512 * int(TCAM_BLOCKS * 0.87)
        program.tables.append(TableDecl(
            "wide", key_bits=44, entries=entries, match_kind="ternary"))
        rules = [f.rule for f in analyze_resources(program)
                 if f.subject == "tcam_blocks"]
        assert rules == ["RES002"]


class TestReferenceDiff:
    def test_agreeing_reference_is_clean(self):
        program = small_program()
        reference = static_utilization_pct(program)
        assert analyze_resources(program, reference_pct=reference) == []

    def test_divergence_beyond_tolerance_fires_res003(self):
        program = small_program()
        reference = static_utilization_pct(program)
        reference["sram_blocks"] += REFERENCE_TOLERANCE_PCT * 3
        findings = analyze_resources(program, reference_pct=reference)
        assert [f.rule for f in findings] == ["RES003"]
        assert findings[0].subject == "sram_blocks"

    def test_divergence_within_tolerance_is_clean(self):
        program = small_program()
        reference = static_utilization_pct(program)
        reference["sram_blocks"] += REFERENCE_TOLERANCE_PCT * 0.5
        assert analyze_resources(program, reference_pct=reference) == []


class TestTable2Agreement:
    def test_static_p4auth_totals_match_dynamic_reference(self):
        """The acceptance bar: IR-derived utilization equals the dynamic
        Table II numbers within the documented 0.5 pct-pt tolerance."""
        from repro.core.auth_ir import p4auth_program, \
            reference_utilization_pct
        static = static_utilization_pct(p4auth_program())
        reference = reference_utilization_pct()
        assert set(reference) <= set(static)
        for resource, expected in reference.items():
            assert abs(static[resource] - expected) <= \
                REFERENCE_TOLERANCE_PCT, resource

    def test_p4auth_reference_diff_clean_end_to_end(self):
        from repro.core.auth_ir import p4auth_program, \
            reference_utilization_pct
        assert analyze_resources(
            p4auth_program(),
            reference_pct=reference_utilization_pct()) == []
