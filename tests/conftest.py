"""Shared fixtures: small provisioned deployments used across suites."""

from __future__ import annotations

import pytest

from repro.core.auth_dataplane import P4AuthConfig, P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.simulator import EventSimulator


class Deployment:
    """One controller + N switches, fully keyed and ready."""

    def __init__(self, num_switches=1, num_ports=4, connect_pairs=(),
                 protected_headers=(), bootstrap=True, registers=()):
        self.sim = EventSimulator()
        self.net = Network(self.sim)
        self.dataplanes = {}
        for index in range(1, num_switches + 1):
            name = f"s{index}"
            switch = DataplaneSwitch(name, num_ports=num_ports,
                                     seed=1000 + index)
            self.net.add_switch(switch)
            for reg_name, width, size in registers:
                switch.registers.define(f"{reg_name}", width, size)
            dataplane = P4AuthDataplane(
                switch, k_seed=0xBEE0 + index,
                config=P4AuthConfig(
                    protected_headers=set(protected_headers)),
            ).install()
            for reg_name, _w, _s in registers:
                dataplane.map_register(reg_name)
            self.dataplanes[name] = dataplane
        for (name_a, port_a, name_b, port_b) in connect_pairs:
            self.net.connect(name_a, port_a, name_b, port_b)
        self.controller = P4AuthController(self.net)
        for dataplane in self.dataplanes.values():
            self.controller.provision(dataplane)
        if bootstrap:
            finished = []
            self.controller.kmp.bootstrap_all(
                on_done=lambda: finished.append(self.sim.now))
            self.sim.run(until=5.0)
            assert finished, "key bootstrap did not complete"

    def switch(self, name: str) -> DataplaneSwitch:
        return self.net.switch(name)

    def run(self, for_s: float) -> None:
        self.sim.run(until=self.sim.now + for_s)


@pytest.fixture
def single_switch():
    """One switch with a demo register, keys established."""
    return Deployment(num_switches=1, registers=[("demo", 64, 16)])


@pytest.fixture
def switch_pair():
    """Two switches joined on port 1, all keys established."""
    return Deployment(num_switches=2,
                      connect_pairs=[("s1", 1, "s2", 1)],
                      registers=[("demo", 64, 16)])
