"""INT telemetry: record accumulation, collection, and the secINT attack."""

import pytest

from repro.dataplane.pipeline import Drop, Emit
from repro.dataplane.switch import DataplaneSwitch
from repro.experiments.int_manipulation import run_int_manipulation
from repro.systems.int_telemetry import (
    IntCollector,
    IntConfig,
    IntTelemetryDataplane,
    make_int_probe,
    parse_records,
)


def make_hop(switch_id=1, routes=None, latency=25):
    switch = DataplaneSwitch(f"s{switch_id}", num_ports=4)
    config = IntConfig(
        switch_id=switch_id,
        routes=routes if routes is not None else {1: 2},
        latency_us=lambda now, flow: latency,
        queue_depth=lambda now, flow: 3,
    )
    return switch, IntTelemetryDataplane(switch, config).install()


class TestIntHop:
    def test_appends_record_and_forwards(self):
        switch, hop = make_hop()
        probe = make_int_probe(7)
        actions = switch.process(probe, 1)
        emits = [a for a in actions if isinstance(a, Emit)]
        assert emits and emits[0].port == 2
        records = parse_records(emits[0].packet)
        assert len(records) == 1
        assert records[0].switch_id == 1
        assert records[0].latency_us == 25
        assert emits[0].packet.get("int_probe")["hop_count"] == 1

    def test_sink_delivers_to_collector_port(self):
        switch, hop = make_hop(routes={1: None})
        actions = switch.process(make_int_probe(7), 1)
        emits = [a for a in actions if isinstance(a, Emit)]
        assert emits[0].port == hop.config.collector_port
        assert hop.probes_delivered == 1

    def test_hop_limit_enforced(self):
        switch, hop = make_hop()
        probe = make_int_probe(7, max_hops=1)
        probe.get("int_probe")["hop_count"] = 1
        actions = switch.process(probe, 1)
        assert any(isinstance(a, Drop) for a in actions)

    def test_records_accumulate_across_hops(self):
        switch1, _ = make_hop(switch_id=1, latency=10)
        switch2, _ = make_hop(switch_id=2, latency=30)
        probe = make_int_probe(7)
        out1 = [a for a in switch1.process(probe, 1)
                if isinstance(a, Emit)][0].packet
        out2 = [a for a in switch2.process(out1, 1)
                if isinstance(a, Emit)][0].packet
        records = parse_records(out2)
        assert [(r.switch_id, r.latency_us) for r in records] == \
            [(1, 10), (2, 30)]


class TestCollector:
    def test_analytics(self):
        switch1, _ = make_hop(switch_id=1, latency=10)
        switch2, _ = make_hop(switch_id=2, latency=90, routes={1: None})
        probe = make_int_probe(7)
        out1 = [a for a in switch1.process(probe, 1)
                if isinstance(a, Emit)][0].packet
        out2 = [a for a in switch2.process(out1, 1)
                if isinstance(a, Emit)][0].packet
        collector = IntCollector()
        collector.ingest(out2, 0.0)
        assert collector.max_hop_latency_us() == 90
        assert collector.path_of_last_probe() == [1, 2]
        assert collector.mean_path_latency_us() == 100.0


class TestSecIntScenario:
    @pytest.fixture(scope="class")
    def results(self):
        return {mode: run_int_manipulation(mode, num_probes=20)
                for mode in ("baseline", "attack", "p4auth")}

    def test_baseline_sees_congestion(self, results):
        assert results["baseline"].congestion_visible
        assert results["baseline"].probes_collected == 20

    def test_attack_hides_congestion_silently(self, results):
        attack = results["attack"]
        assert not attack.congestion_visible
        assert not attack.detected
        assert attack.probes_collected == 20  # nothing looks wrong

    def test_p4auth_detects_suppression(self, results):
        p4auth = results["p4auth"]
        assert p4auth.detected
        assert p4auth.alerts > 0
        # Only tampered probes are lost; clean ones arrive truthful.
        assert 0 < p4auth.probes_collected < p4auth.probes_sent
        assert p4auth.reported_max_hop_latency_us < 100
