"""HULA data plane: probe semantics, utilization estimator, forwarding."""

import pytest

from repro.dataplane.pipeline import Emit
from repro.dataplane.switch import DataplaneSwitch
from repro.systems.hula import (
    HulaConfig,
    HulaDataplane,
    chain_hula_configs,
    fig3_hula_configs,
    make_data_packet,
    make_probe,
)


def make_hula(probe_routes=None, **kwargs):
    switch = DataplaneSwitch("s1", num_ports=4)
    config = HulaConfig(probe_routes=probe_routes or {},
                        **kwargs)
    return switch, HulaDataplane(switch, config).install()


def emits(actions):
    return [a for a in actions if isinstance(a, Emit)]


class TestProbeProcessing:
    def test_probe_updates_best_hop(self):
        switch, hula = make_hula()
        switch.process(make_probe(dst_tor=5, probe_id=1, path_util=30), 2)
        assert hula.best_hop.read(5) == 2
        assert hula.min_util.read(5) == 30

    def test_lower_util_wins(self):
        switch, hula = make_hula()
        switch.process(make_probe(5, 1, path_util=30), 2, now=0.0)
        switch.process(make_probe(5, 2, path_util=10), 3, now=0.001)
        assert hula.best_hop.read(5) == 3

    def test_higher_util_from_other_port_loses(self):
        switch, hula = make_hula()
        switch.process(make_probe(5, 1, path_util=10), 2, now=0.0)
        switch.process(make_probe(5, 2, path_util=30), 3, now=0.001)
        assert hula.best_hop.read(5) == 2

    def test_current_best_hop_refreshes_even_if_worse(self):
        """HULA's refresh rule: probes from the current best hop always
        update min_util (otherwise stale low values pin the path)."""
        switch, hula = make_hula()
        switch.process(make_probe(5, 1, path_util=10), 2, now=0.0)
        switch.process(make_probe(5, 2, path_util=60), 2, now=0.001)
        assert hula.min_util.read(5) == 60

    def test_aged_entry_replaced_regardless_of_util(self):
        switch, hula = make_hula(aging_s=0.05)
        switch.process(make_probe(5, 1, path_util=10), 2, now=0.0)
        switch.process(make_probe(5, 2, path_util=90), 3, now=0.2)
        assert hula.best_hop.read(5) == 3

    def test_probe_forwarded_along_tree(self):
        switch, hula = make_hula(probe_routes={1: [2, 3]})
        actions = switch.process(make_probe(5, 1, path_util=20), 1)
        out_ports = sorted(e.port for e in emits(actions))
        assert out_ports == [2, 3]
        # Clones are distinct packets.
        assert len({e.packet.packet_id for e in emits(actions)}) == 2

    def test_probe_terminates_without_route(self):
        switch, hula = make_hula(probe_routes={2: []})
        actions = switch.process(make_probe(5, 1), 2)
        assert emits(actions) == []

    def test_forwarded_probe_stamps_egress_link_util(self):
        switch, hula = make_hula(probe_routes={1: [2]},
                                 capacity_bps=1e6, util_tau_s=0.1)
        # Load the data-direction of port 2 (received data on port 2).
        for index in range(5):
            switch.process(make_data_packet(9, index), 2, now=0.01 * index)
        # dst 9 has no route; configure delivery so data doesn't drop.
        actions = switch.process(make_probe(5, 1, path_util=0), 1, now=0.05)
        # Probes out of port 2 carry its rx-based utilization.
        probe_out = emits(actions)[0].packet
        assert probe_out.get("hula_probe")["path_util"] > 0


class TestDataForwarding:
    def test_data_follows_best_hop(self):
        switch, hula = make_hula()
        switch.process(make_probe(5, 1, path_util=10), 3, now=0.0)
        actions = switch.process(make_data_packet(5, flow_id=7), 1, now=0.01)
        assert emits(actions)[0].port == 3
        assert hula.data_tx_per_port[3] == 1

    def test_edge_delivery_overrides(self):
        switch, hula = make_hula()
        hula.config.edge_delivery[5] = 1
        actions = switch.process(make_data_packet(5, 1), 2)
        assert emits(actions)[0].port == 1

    def test_stale_entry_falls_back_to_uplinks(self):
        switch, hula = make_hula(aging_s=0.05)
        hula.config.uplink_ports = [2, 3]
        switch.process(make_probe(5, 1, path_util=10), 4, now=0.0)
        actions = switch.process(make_data_packet(5, 1), 1, now=1.0)
        assert emits(actions)[0].port in (2, 3)

    def test_fallback_round_robins(self):
        switch, hula = make_hula()
        hula.config.uplink_ports = [2, 3]
        ports = []
        for index in range(4):
            actions = switch.process(make_data_packet(5, index), 1)
            ports.append(emits(actions)[0].port)
        assert ports == [2, 3, 2, 3]

    def test_no_route_no_fallback_drops(self):
        switch, hula = make_hula()
        actions = switch.process(make_data_packet(5, 1), 1)
        assert emits(actions) == []
        assert hula.data_dropped == 1


class TestUtilEstimator:
    def test_decays_to_zero(self):
        switch, hula = make_hula(util_tau_s=0.05, capacity_bps=1e6)
        hula._account_rx(2, 10_000, 0.0)
        assert hula.port_util(2, 0.0) > 0
        assert hula.port_util(2, 1.0) == 0

    def test_steady_rate_tracks_capacity_fraction(self):
        switch, hula = make_hula(util_tau_s=0.05, capacity_bps=8e6)
        # 1000 bytes every 1 ms = 8 Mbps = 100% of 8 Mbps.
        for index in range(200):
            hula._account_rx(2, 1000, index * 0.001)
        util = hula.port_util(2, 0.2)
        assert 80 <= util <= 100

    def test_capped_at_100(self):
        switch, hula = make_hula(util_tau_s=0.05, capacity_bps=1000.0)
        hula._account_rx(2, 10_000_000, 0.0)
        assert hula.port_util(2, 0.0) == 100


class TestConfigs:
    def test_fig3_configs_cover_all_switches(self):
        configs = fig3_hula_configs()
        assert set(configs) == {"s1", "s2", "s3", "s4", "s5"}
        assert configs["s5"].probe_routes == {1: [2, 3, 4]}
        assert configs["s1"].probe_routes == {2: [], 3: [], 4: []}

    def test_chain_configs(self):
        configs = chain_hula_configs(3)
        assert set(configs) == {"s1", "s2", "s3"}
        assert all(c.probe_routes == {1: [2]} for c in configs.values())


def test_packet_builders():
    probe = make_probe(5, 7, path_util=42)
    assert probe.get("hula_probe")["dst_tor"] == 5
    assert probe.get("hula_probe")["path_util"] == 42
    data = make_data_packet(5, 9, size_bytes=1000)
    assert data.size_bytes == 1000
