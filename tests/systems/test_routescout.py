"""RouteScout: split hashing, latency aggregation, controller loop."""

import pytest

from repro.dataplane.pipeline import Emit
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.simulator import EventSimulator
from repro.runtime.plain import PlainController, PlainRegOpDataplane
from repro.systems.routescout import (
    PathModel,
    RouteScoutConfig,
    RouteScoutController,
    RouteScoutDataplane,
    make_rs_packet,
)


def make_rs(**kwargs):
    switch = DataplaneSwitch("edge", num_ports=3)
    return switch, RouteScoutDataplane(
        switch, RouteScoutConfig(**kwargs) if kwargs else None).install()


class TestDataplane:
    def test_split_zero_sends_all_to_path1(self):
        switch, rs = make_rs()
        rs.split.write(0, 0)
        for flow in range(50):
            switch.process(make_rs_packet(1, flow), 1)
        assert rs.tx_per_path[0] == 0
        assert rs.tx_per_path[1] == 50

    def test_split_hundred_sends_all_to_path0(self):
        switch, rs = make_rs()
        rs.split.write(0, 100)
        for flow in range(50):
            switch.process(make_rs_packet(1, flow), 1)
        assert rs.tx_per_path[0] == 50

    def test_split_is_flow_consistent(self):
        """The same flow always hashes to the same path (no reordering)."""
        switch, rs = make_rs()
        rs.split.write(0, 50)
        first = {}
        for _ in range(3):
            for flow in range(20):
                actions = switch.process(make_rs_packet(1, flow), 1)
                port = [a for a in actions if isinstance(a, Emit)][0].port
                assert first.setdefault(flow, port) == port

    def test_split_roughly_proportional(self):
        switch, rs = make_rs()
        rs.split.write(0, 70)
        for flow in range(500):
            switch.process(make_rs_packet(1, flow), 1)
        share0 = rs.tx_per_path[0] / 500
        assert 0.6 < share0 < 0.8

    def test_latency_aggregation(self):
        switch, rs = make_rs()
        rs.split.write(0, 100)
        for flow in range(10):
            switch.process(make_rs_packet(1, flow), 1)
        assert rs.lat_cnt.read(0) == 10
        # Idle path: base latency samples only.
        assert rs.lat_sum.read(0) >= 10 * rs.config.path_models[0].base_us

    def test_congestion_raises_latency_samples(self):
        switch, rs = make_rs(capacity_bps=1e6, util_window_s=0.01)
        rs.split.write(0, 100)
        for index in range(100):
            switch.process(make_rs_packet(1, index), 1, now=index * 0.0005)
        avg = rs.lat_sum.read(0) / rs.lat_cnt.read(0)
        assert avg > rs.config.path_models[0].base_us

    def test_exactly_two_paths_enforced(self):
        with pytest.raises(ValueError):
            RouteScoutConfig(path_ports=[2, 3, 4])


class TestPathModel:
    def test_latency_grows_with_utilization(self):
        model = PathModel(base_us=400, sensitivity_us_per_pct=8.0)
        assert model.latency_us(0) == 400
        assert model.latency_us(50) == 800


class TestController:
    def build(self):
        sim = EventSimulator()
        net = Network(sim)
        switch = DataplaneSwitch("edge", num_ports=3)
        net.add_switch(switch)
        rs = RouteScoutDataplane(switch).install()
        plain = PlainRegOpDataplane(switch).install()
        plain.map_all_registers()
        client = PlainController(net)
        client.provision(switch)
        return sim, net, switch, rs, client

    def test_epoch_shifts_split_toward_faster_path(self):
        sim, net, switch, rs, client = self.build()
        controller = RouteScoutController(client, sim, "edge", epoch_s=0.5)
        controller.start()
        node = net.nodes["edge"]
        for index in range(400):
            sim.schedule_at(index * 0.01, node.receive,
                            make_rs_packet(1, index), 1)
        sim.run(until=4.0)
        controller.stop()
        # Path 0 has lower base latency; the split should favor it.
        assert controller.current_split > 55
        assert rs.split.read(0) == controller.current_split

    def test_idle_epoch_skipped(self):
        sim, net, switch, rs, client = self.build()
        controller = RouteScoutController(client, sim, "edge", epoch_s=0.5)
        controller.start()
        sim.run(until=2.0)
        controller.stop()
        assert controller.epochs_skipped == controller.epochs_run
        assert controller.current_split == 50  # unchanged

    def test_aggregates_cleared_each_epoch(self):
        sim, net, switch, rs, client = self.build()
        controller = RouteScoutController(client, sim, "edge", epoch_s=0.5)
        controller.start()
        node = net.nodes["edge"]
        for index in range(100):
            sim.schedule_at(index * 0.002, node.receive,
                            make_rs_packet(1, index), 1)
        sim.run(until=1.5)
        controller.stop()
        # After a completed epoch the sums were reset by the controller.
        assert rs.lat_cnt.read(0) < 100

    def test_split_clamped(self):
        sim, net, switch, rs, client = self.build()
        controller = RouteScoutController(client, sim, "edge", epoch_s=0.5,
                                          smoothing=1.0, min_split=10,
                                          max_split=90)
        # Force absurd inputs by writing aggregates directly.
        controller._finish_epoch({"sum0": 1, "cnt0": 1,
                                  "sum1": 10_000_000, "cnt1": 1})
        assert controller.current_split == 90
