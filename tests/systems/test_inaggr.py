"""In-network aggregation: switch-side semantics and the Attack 2 demo."""

import pytest

from repro.dataplane.pipeline import Emit
from repro.dataplane.switch import DataplaneSwitch
from repro.experiments.attack2_aggregation import run_aggregation
from repro.systems.inaggr import (
    AggregationConfig,
    AggregationDataplane,
    make_contribution,
)


def make_agg(num_workers=3):
    switch = DataplaneSwitch("agg", num_ports=num_workers + 1)
    aggregation = AggregationDataplane(
        switch, AggregationConfig(num_workers=num_workers)).install()
    return switch, aggregation


def emits(actions):
    return [a for a in actions if isinstance(a, Emit)]


class TestAggregationDataplane:
    def test_aggregate_emitted_when_complete(self):
        switch, aggregation = make_agg(num_workers=3)
        for worker in range(2):
            actions = switch.process(
                make_contribution(1, 0, worker, 10 * (worker + 1)),
                2 + worker)
            assert emits(actions) == []
        actions = switch.process(make_contribution(1, 0, 2, 30), 4)
        results = emits(actions)
        assert len(results) == 1
        assert results[0].port == 1
        assert results[0].packet.get("agg_result")["value"] == 60

    def test_state_resets_after_emit(self):
        switch, aggregation = make_agg(num_workers=2)
        switch.process(make_contribution(1, 0, 0, 1), 2)
        switch.process(make_contribution(1, 0, 1, 2), 3)
        assert aggregation.agg_count.read(0) == 0
        assert aggregation.agg_sum.read(0) == 0

    def test_duplicate_contribution_ignored(self):
        switch, aggregation = make_agg(num_workers=2)
        switch.process(make_contribution(1, 0, 0, 5), 2)
        switch.process(make_contribution(1, 0, 0, 5), 2)  # retransmit
        assert aggregation.agg_count.read(0) == 1
        assert aggregation.agg_sum.read(0) == 5

    def test_chunks_independent(self):
        switch, aggregation = make_agg(num_workers=2)
        switch.process(make_contribution(1, 0, 0, 5), 2)
        switch.process(make_contribution(1, 1, 0, 7), 2)
        assert aggregation.agg_sum.read(0) == 5
        assert aggregation.agg_sum.read(1) == 7

    def test_missing_workers(self):
        switch, aggregation = make_agg(num_workers=3)
        switch.process(make_contribution(1, 0, 1, 5), 3)
        assert aggregation.missing_workers(0) == [0, 2]

    def test_reset_chunk(self):
        switch, aggregation = make_agg(num_workers=3)
        switch.process(make_contribution(1, 0, 1, 5), 3)
        aggregation.reset_chunk(0)
        assert aggregation.missing_workers(0) == [0, 1, 2]
        assert aggregation.agg_sum.read(0) == 0


class TestAttack2Scenario:
    @pytest.fixture(scope="class")
    def results(self):
        return {mode: run_aggregation(mode, chunks=15)
                for mode in ("baseline", "attack", "p4auth")}

    def test_baseline_all_correct_one_round(self, results):
        baseline = results["baseline"]
        assert baseline.correct_chunks == baseline.chunks
        assert baseline.jct_rounds == 1.0

    def test_attack_corrupts_silently(self, results):
        attack = results["attack"]
        assert attack.correct_chunks < attack.chunks
        assert attack.jct_rounds == 1.0  # nothing noticed anything
        assert attack.alerts == 0

    def test_p4auth_correct_with_bounded_jct(self, results):
        p4auth = results["p4auth"]
        assert p4auth.correct_chunks == p4auth.chunks
        assert p4auth.failed_chunks == 0
        assert 1.0 < p4auth.jct_rounds < 4.0
        assert p4auth.alerts > 0
        assert p4auth.dropped_at_switch > 0
