"""Baseline L3 forwarder: routing, TTL, stats."""

from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import Drop, Emit
from repro.dataplane.switch import DataplaneSwitch
from repro.systems.l3fwd import IPV4_HEADER, L3ForwardingDataplane


def make_l3():
    switch = DataplaneSwitch("s1", num_ports=4)
    l3 = L3ForwardingDataplane(switch).install()
    return switch, l3


def packet(dst, ttl=64, flow_id=1):
    p = Packet()
    p.push("ipv4", IPV4_HEADER.instantiate(src=1, dst=dst, ttl=ttl,
                                           proto=6, flow_id=flow_id))
    return p


def test_lpm_route_forwards():
    switch, l3 = make_l3()
    l3.add_route(0x0A000000, 8, egress_port=2)
    actions = switch.process(packet(0x0A0B0C0D), 1)
    assert isinstance(actions[0], Emit)
    assert actions[0].port == 2


def test_longest_prefix_wins():
    switch, l3 = make_l3()
    l3.add_route(0x0A000000, 8, egress_port=2)
    l3.add_route(0x0A0B0000, 16, egress_port=3)
    actions = switch.process(packet(0x0A0B0C0D), 1)
    assert actions[0].port == 3


def test_no_route_drops():
    switch, l3 = make_l3()
    actions = switch.process(packet(0xC0A80001), 1)
    assert isinstance(actions[0], Drop)


def test_ttl_decremented_and_expired_dropped():
    switch, l3 = make_l3()
    l3.add_route(0, 0, egress_port=2)
    p = packet(1, ttl=5)
    switch.process(p, 1)
    assert p.get("ipv4")["ttl"] == 4
    actions = switch.process(packet(1, ttl=0), 1)
    assert isinstance(actions[0], Drop)


def test_stats_register_counts_flows():
    switch, l3 = make_l3()
    l3.add_route(0, 0, egress_port=2)
    for _ in range(3):
        switch.process(packet(1, flow_id=7), 1)
    assert l3.stats.read(7) == 3


def test_non_ip_traffic_ignored():
    switch, l3 = make_l3()
    actions = switch.process(Packet(), 1)
    assert actions == []
