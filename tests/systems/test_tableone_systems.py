"""Table I mini-systems: unit behavior of each data-plane model."""

import pytest

from repro.dataplane.packet import Packet
from repro.dataplane.switch import DataplaneSwitch
from repro.systems.blink import BLINK_DATA_HEADER, BlinkDataplane
from repro.systems.netcache import NC_QUERY_HEADER, NetCacheDataplane, zipf_key
from repro.systems.netwarden import NW_PKT_HEADER, NetWardenDataplane
from repro.systems.silkroad import (
    NEW_DIP,
    OLD_DIP,
    SILK_CONN_HEADER,
    SilkRoadDataplane,
)
from repro.crypto.prng import XorShiftPrng


class TestBlinkDataplane:
    def make(self):
        switch = DataplaneSwitch("s1", num_ports=4)
        blink = BlinkDataplane(switch).install()
        blink.set_prefix(0, active=2, backup=3)
        return switch, blink

    def packet(self, prefix=0, seq=0):
        p = Packet()
        p.push("blink_data", BLINK_DATA_HEADER.instantiate(
            prefix_id=prefix, seq=seq))
        return p

    def test_forwards_via_active(self):
        switch, blink = self.make()
        switch.process(self.packet(), 1)
        assert blink.delivered == 1

    def test_in_dp_failover(self):
        switch, blink = self.make()
        blink.dead_ports.add(2)
        from repro.systems.blink import FAILOVER_THRESHOLD
        for seq in range(FAILOVER_THRESHOLD):
            switch.process(self.packet(seq=seq), 1)
        assert blink.failovers == 1
        assert blink.active_nh.read(0) == 3
        switch.process(self.packet(), 1)
        assert blink.delivered == 1

    def test_loss_streak_resets_on_success(self):
        switch, blink = self.make()
        blink.dead_ports.add(2)
        switch.process(self.packet(), 1)
        blink.dead_ports.clear()
        switch.process(self.packet(), 1)
        assert blink.loss_streak.read(0) == 0


class TestSilkRoadDataplane:
    def make(self):
        switch = DataplaneSwitch("s1", num_ports=2)
        return switch, SilkRoadDataplane(switch).install()

    def packet(self, flow, syn=1):
        p = Packet()
        p.push("silk_conn", SILK_CONN_HEADER.instantiate(flow_id=flow,
                                                         syn=syn))
        return p

    def test_new_flow_gets_current_pool(self):
        switch, silk = self.make()
        switch.process(self.packet(1), 1)
        assert silk.connections[1] == OLD_DIP
        silk.begin_migration()
        switch.process(self.packet(2), 1)
        assert silk.connections[2] == NEW_DIP

    def test_transit_flow_pinned_to_old_pool(self):
        switch, silk = self.make()
        silk.begin_migration()
        silk.note_pending(5)
        switch.process(self.packet(5, syn=0), 1)
        assert 5 not in silk.connections  # not committed yet
        assert silk.selections[5] == OLD_DIP

    def test_early_clear_breaks_pending_flows(self):
        switch, silk = self.make()
        silk.begin_migration()
        silk.note_pending(5)
        switch.process(self.packet(5, syn=0), 1)  # old DIP
        silk.clear_trigger.write(0, 1)            # forged early clear
        switch.process(self.packet(5, syn=0), 1)  # now new DIP: broken
        assert 5 in silk.broken_flows


class TestNetCacheDataplane:
    def make(self):
        switch = DataplaneSwitch("s1", num_ports=2)
        return switch, NetCacheDataplane(switch).install()

    def query(self, key):
        p = Packet()
        p.push("nc_query", NC_QUERY_HEADER.instantiate(key=key))
        return p

    def test_hit_vs_miss_latency(self):
        switch, cache = self.make()
        cache.cache_keys.write(0, 7)
        switch.process(self.query(7), 1)
        switch.process(self.query(8), 1)
        assert cache.hits == 1
        assert cache.misses == 1
        from repro.systems.netcache import HIT_LATENCY_S, MISS_LATENCY_S
        assert cache.latency_total_s == HIT_LATENCY_S + MISS_LATENCY_S

    def test_misses_feed_the_sketch(self):
        switch, cache = self.make()
        for _ in range(5):
            switch.process(self.query(9), 1)
        assert cache.stats_sketch.estimate(9) >= 5

    def test_zipf_keys_skewed(self):
        prng = XorShiftPrng(3)
        keys = [zipf_key(prng) for _ in range(2000)]
        share_of_zero = keys.count(0) / len(keys)
        assert share_of_zero > 0.3  # key 0 is hot


class TestNetWardenDataplane:
    def make(self):
        switch = DataplaneSwitch("s1", num_ports=2)
        return switch, NetWardenDataplane(switch).install()

    def packet(self, conn, seq):
        p = Packet()
        p.push("nw_pkt", NW_PKT_HEADER.instantiate(conn_id=conn, seq=seq))
        return p

    def test_regular_ipds_have_low_variance(self):
        switch, nw = self.make()
        for seq in range(20):
            switch.process(self.packet(0, seq), 1, now=seq * 0.001)
        assert nw.variance(0) < 10

    def test_jittered_ipds_have_high_variance(self):
        switch, nw = self.make()
        prng = XorShiftPrng(4)
        now = 0.0
        for seq in range(20):
            now += 0.001 * (0.5 + prng.uniform())
            switch.process(self.packet(1, seq), 1, now=now)
        assert nw.variance(1) > 400

    def test_blocked_connections_dropped(self):
        switch, nw = self.make()
        nw.blocked.write(2, 1)
        switch.process(self.packet(2, 0), 1)
        assert nw.dropped_blocked == 1
