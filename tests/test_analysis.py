"""Analysis helpers: statistics and table formatting."""

import math

import pytest

from repro.analysis import format_table, mean, normalized_shares, percentile


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_is_nan(self):
        assert math.isnan(mean([]))


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_extremes(self):
        data = list(range(1, 101))
        assert percentile(data, 100) == 100
        assert percentile(data, 1) == 1

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([1], -1)

    def test_unsorted_input(self):
        assert percentile([5, 1, 3, 2, 4], 50) == 3


class TestNormalizedShares:
    def test_fractions_sum_to_one(self):
        shares = normalized_shares({"a": 1, "b": 3})
        assert shares == {"a": 0.25, "b": 0.75}

    def test_all_zero_returns_empty(self):
        assert normalized_shares({"a": 0, "b": 0}) == {}


class TestFormatTable:
    def test_columns_aligned(self):
        table = format_table(["name", "value"],
                             [["x", 1], ["longer", 22]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        # All data rows have the same width.
        assert len(lines[3]) == len(lines[4])

    def test_no_title(self):
        table = format_table(["a"], [["1"]])
        assert table.splitlines()[0].startswith("a")

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table and "b" in table
