"""Markdown report builder (the RESULTS.md generator's skeleton)."""

from repro.analysis.report import MarkdownReport


def test_title_and_sections():
    report = MarkdownReport("Title")
    report.section("A", "body text")
    report.section("B")
    rendered = report.render()
    assert rendered.startswith("# Title\n")
    assert "\n## A\n" in rendered and "body text" in rendered
    assert "\n## B\n" in rendered


def test_tables_render_as_markdown():
    report = MarkdownReport("T")
    report.table(["x", "y"], [[1, 2], ["a", "b"]])
    rendered = report.render()
    assert "| x | y |" in rendered
    assert "|---|---|" in rendered
    assert "| 1 | 2 |" in rendered
    assert "| a | b |" in rendered


def test_paragraph():
    report = MarkdownReport("T")
    report.paragraph("some prose")
    assert "some prose" in report.render()


def test_save_roundtrip(tmp_path):
    report = MarkdownReport("T")
    report.section("S", "content")
    path = tmp_path / "out.md"
    report.save(str(path))
    assert path.read_text() == report.render()
