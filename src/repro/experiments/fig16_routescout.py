"""Fig 16: P4Auth prevents traffic imbalance in RouteScout.

Three runs over the same synthetic CAIDA-like trace:

1. ``baseline`` — no adversary (DP-Reg-RW stack): the controller splits
   traffic by measured per-path latency (~64% on the lower-latency path).
2. ``attack`` — a compromised-OS adversary inflates path-1's latency in
   read responses from ``attack_start_s`` on: the controller shifts ~70%
   of traffic onto path 2.
3. ``p4auth`` — same adversary against the authenticated stack: tampered
   responses fail verification, the controller retains the pre-attack
   split, and alerts are raised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.attacks.control_plane import RegisterResponseTamperer
from repro.engine.registry import register
from repro.engine.spec import ExperimentSpec, TrialContext
from repro.core.auth_dataplane import P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.simulator import EventSimulator
from repro.net.trace import TraceGenerator
from repro.runtime.plain import PlainController, PlainRegOpDataplane
from repro.systems.routescout import (
    RouteScoutController,
    RouteScoutDataplane,
    make_rs_packet,
)

MODES = ("baseline", "attack", "p4auth")

#: How much the adversary inflates the reported path-1 latency aggregate.
TAMPER_FACTOR = 6


@dataclass
class RouteScoutResult:
    mode: str
    #: Traffic shares measured over the attack window
    #: [attack_start_s, duration_s] — the steady state Fig 16 plots.
    share_path1: float
    share_path2: float
    #: Shares over the whole run, including the pre-attack phase.
    overall_share_path1: float = 0.0
    overall_share_path2: float = 0.0
    split_history: List[int] = field(default_factory=list)
    epochs_skipped: int = 0
    tamper_events: int = 0
    alerts: int = 0
    packets_forwarded: int = 0


def run_routescout(mode: str, duration_s: float = 60.0, seed: int = 42,
                   flow_rate_hz: float = 40.0,
                   attack_start_s: float = 10.0,
                   max_packets_per_flow: int = 60,
                   packet_spacing_s: float = 0.002) -> RouteScoutResult:
    """Run one Fig 16 scenario and report the per-path traffic shares."""
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}")
    sim = EventSimulator()
    net = Network(sim)
    switch = DataplaneSwitch("edge", num_ports=3, seed=seed)
    net.add_switch(switch)
    routescout = RouteScoutDataplane(switch).install()

    # Control stack: authenticated or plain, per mode.
    if mode == "p4auth":
        dataplane = P4AuthDataplane(switch, k_seed=0x5EC11E7).install()
        dataplane.map_all_registers()
        client = P4AuthController(net)
        client.provision(dataplane)
        client.kmp.local_key_init("edge")
        sim.run(until=0.05)
    else:
        dataplane = None
        plain_dp = PlainRegOpDataplane(switch).install()
        plain_dp.map_all_registers()
        client = PlainController(net)
        client.provision(switch)

    controller = RouteScoutController(client, sim, "edge", epoch_s=1.0)
    controller.start()

    # All experiment times are relative to "base": key initialization (in
    # p4auth mode) has already consumed some simulated time.
    base = sim.now

    # The adversary arrives mid-experiment (the paper's "retains the
    # original ratio" needs an established pre-attack ratio).
    if mode in ("attack", "p4auth"):
        lat_sum_id = switch.registers.id_of("rs_lat_sum")
        adversary = RegisterResponseTamperer(
            targets=[(lat_sum_id, 0)],
            transform=lambda value: value * TAMPER_FACTOR,
        )
        channel = net.control_channels["edge"]
        sim.schedule(attack_start_s, adversary.attach, channel)

    # Snapshot the per-path counters when the attack begins, so shares
    # can be reported for the attack window (the steady state Fig 16
    # plots) as well as overall.
    snapshot = {}
    sim.schedule(attack_start_s,
                 lambda: snapshot.update(routescout.tx_per_path))

    # Synthetic CAIDA-like traffic: heavy-tailed flows, Poisson arrivals.
    generator = TraceGenerator(seed=seed, arrival_rate_hz=flow_rate_hz)
    node = net.nodes["edge"]
    for flow in generator.flows(duration_s):
        packets = min(flow.packet_count(), max_packets_per_flow)
        for index in range(packets):
            at = flow.start_time + index * packet_spacing_s
            if at >= duration_s:
                break
            sim.schedule_at(base + at, node.receive,
                            make_rs_packet(flow.dst_ip, flow.flow_id), 1)

    sim.run(until=base + duration_s)
    controller.stop()

    total = sum(routescout.tx_per_path.values()) or 1
    window = {
        path: routescout.tx_per_path[path] - snapshot.get(path, 0)
        for path in (0, 1)
    }
    window_total = sum(window.values()) or 1
    result = RouteScoutResult(
        mode=mode,
        share_path1=window[0] / window_total,
        share_path2=window[1] / window_total,
        overall_share_path1=routescout.tx_per_path[0] / total,
        overall_share_path2=routescout.tx_per_path[1] / total,
        split_history=list(controller.split_history),
        epochs_skipped=controller.epochs_skipped,
        packets_forwarded=routescout.forwarded,
    )
    if mode == "p4auth":
        result.tamper_events = len(client.tamper_events)
        result.alerts = len(client.alerts)
    return result


def run_all(duration_s: float = 60.0, seed: int = 42) -> Dict[str, RouteScoutResult]:
    return {mode: run_routescout(mode, duration_s, seed) for mode in MODES}


def _trial(ctx: TrialContext) -> RouteScoutResult:
    p = ctx.params
    return run_routescout(
        p["mode"], duration_s=p["duration_s"], seed=p["seed"],
        flow_rate_hz=p["flow_rate_hz"], attack_start_s=p["attack_start_s"],
        max_packets_per_flow=p["max_packets_per_flow"],
        packet_spacing_s=p["packet_spacing_s"])


SPEC = register(ExperimentSpec(
    name="fig16",
    title="RouteScout traffic distribution",
    source="Fig 16",
    trial=_trial,
    grid={"mode": list(MODES)},
    defaults={"duration_s": 60.0, "seed": 42, "flow_rate_hz": 40.0,
              "attack_start_s": 10.0, "max_packets_per_flow": 60,
              "packet_spacing_s": 0.002},
    short={"duration_s": 8.0, "attack_start_s": 2.0},
    seed_param="seed",
    tags=("figure", "defense"),
))
