"""Table II: hardware resource overhead of the P4Auth program.

Compiles the declarative :class:`~repro.dataplane.resources.ProgramSpec`
inventories for the baseline L3 program and the P4Auth-augmented one
through the Tofino-calibrated :class:`~repro.dataplane.resources.ResourceModel`
and reports the utilization percentages the paper tabulates.  This used
to live inline in ``__main__``/``analysis.report``; as a module it is a
first-class experiment like every other table.
"""

from __future__ import annotations

from typing import Dict

from repro.core.program import baseline_program_spec, p4auth_program_spec
from repro.dataplane.resources import ResourceModel, ResourceReport
from repro.engine.registry import register
from repro.engine.spec import ExperimentSpec, TrialContext

PROGRAMS = ("baseline", "p4auth")

#: Display names matching the paper's Table II rows.
PROGRAM_LABELS = {"baseline": "Baseline", "p4auth": "With P4Auth"}


def run_table2(program: str) -> ResourceReport:
    """Compile one program variant and report its resource usage."""
    if program not in PROGRAMS:
        raise ValueError(f"program must be one of {PROGRAMS}")
    spec = (baseline_program_spec() if program == "baseline"
            else p4auth_program_spec())
    return ResourceModel().report(spec)


def run_all() -> Dict[str, ResourceReport]:
    return {program: run_table2(program) for program in PROGRAMS}


def _trial(ctx: TrialContext) -> ResourceReport:
    return run_table2(ctx.params["program"])


SPEC = register(ExperimentSpec(
    name="table2",
    title="Hardware resource overhead",
    source="Table II",
    trial=_trial,
    grid={"program": list(PROGRAMS)},
    tags=("table", "resources"),
))
