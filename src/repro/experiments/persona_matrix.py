"""Persona × system × load matrix: every attacker against every system.

ROADMAP item 5: sweep the first-class attacker personas
(:mod:`repro.attacks.personas`) against each protected in-network
control system under heavy-tailed trace load, and report two operating
curves per (persona, system):

- **detection latency** — virtual seconds from persona arm to the first
  defense signal (C-DP/DP-DP digest failure, replay rejection, tampered
  response, alert) observed by the polled detector;
- **DoS threshold** — whether the §VIII alert rate limiter engaged
  (``alerts_suppressed``/``dos_suspected``) at the persona's injection
  rate, tracing out the rate at which mitigation kicks in.

Every trial builds the same two-switch world: ``s1`` runs the system
under test plus P4Auth, ``s2`` is an authenticated neighbor so the
s1-s2 link carries port-key-signed DP-DP traffic (HULA probes).  A
seeded heavy-tailed :class:`~repro.net.trace.TraceGenerator` drives the
data plane; the controller's C-DP loop issues batched authenticated
reads/writes of a dedicated ``persona_reg`` via the windowed
:class:`~repro.runtime.batch.BatchController`; KMP rolls keys over
mid-run (the rollover-racer's trigger).  Ground truth reuses the chaos
suite's register-sampling invariant: **zero forged writes must land**
under every persona.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.attacks.personas import (
    PERSONA_KINDS,
    GroundTruthSampler,
    PersonaSpec,
    PersonaWorld,
    build_persona,
)
from repro.core.auth_dataplane import P4AuthConfig, P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.crypto.prng import XorShiftPrng
from repro.dataplane.packet import Packet
from repro.dataplane.switch import DataplaneSwitch
from repro.engine.registry import register
from repro.engine.spec import ExperimentSpec, TrialContext
from repro.faults.plan import FaultPlan
from repro.net.network import Network
from repro.net.simulator import EventSimulator
from repro.net.trace import TraceGenerator
from repro.runtime.batch import BatchController
from repro.systems.blink import BLINK_DATA_HEADER, BlinkDataplane
from repro.systems.hula import (
    HulaConfig,
    HulaDataplane,
    make_data_packet,
    make_probe,
)
from repro.systems.netcache import (
    NC_QUERY_HEADER,
    NetCacheDataplane,
    zipf_key,
)
from repro.systems.routescout import RouteScoutDataplane, make_rs_packet

SYSTEMS = ("hula", "routescout", "netcache", "blink")

#: Detection signals, polled in this (deterministic) precedence order.
WATCHED_SIGNALS = (
    "digest_fail_cdp",
    "digest_fail_dpdp",
    "replays_detected",
    "tampered_responses",
    "unsolicited_nacks",
    "alerts_received",
)

#: Destination ToR the HULA world delivers to at s1.
_HULA_TOR = 5
#: Detector poll period (bounds detection-latency resolution).
_POLL_S = 0.01
#: Post-run grace window: clean write + residual detection.
_GRACE_S = 0.3


def _fault_plan(params: Dict[str, Any], seed: int) -> FaultPlan:
    """One persona per trial, declared as plan data next to the faults."""
    return FaultPlan(seed=seed, personas=[PersonaSpec(
        kind=params["persona"], rate_hz=float(params["attack_rate_hz"]),
        seed=seed)])


def run_persona_trial(persona_kind: str, system: str,
                      attack_rate_hz: float = 200.0,
                      duration_s: float = 3.0, load_hz: float = 120.0,
                      seed: int = 7,
                      spec: PersonaSpec = None) -> Dict[str, Any]:
    """One matrix cell: arm one persona against one system under load."""
    if system not in SYSTEMS:
        raise ValueError(f"system must be one of {SYSTEMS}")
    if spec is None:
        spec = PersonaSpec(kind=persona_kind, rate_hz=attack_rate_hz,
                           seed=seed)
    sim = EventSimulator()
    net = Network(sim)
    s1 = DataplaneSwitch("s1", num_ports=4, seed=seed)
    s2 = DataplaneSwitch("s2", num_ports=4, seed=seed + 1)
    net.add_switch(s1)
    net.add_switch(s2)
    net.connect("s1", 1, "s2", 1)

    # System under test on s1 (s2 relays HULA probes so they cross the
    # port-key-signed link — the DP-DP MitM's only real surface here).
    if system == "hula":
        HulaDataplane(s1, HulaConfig(
            probe_routes={1: []}, edge_delivery={_HULA_TOR: 2},
            uplink_ports=[1], max_tors=8)).install()
        HulaDataplane(s2, HulaConfig(probe_routes={2: [1]},
                                     max_tors=8)).install()
    elif system == "routescout":
        RouteScoutDataplane(s1).install()
    elif system == "netcache":
        NetCacheDataplane(s1).install()
    else:
        blink = BlinkDataplane(s1, num_prefixes=8).install()
        blink.set_prefix(0, active=2, backup=3)

    # The C-DP loop's target register, defined before provisioning so the
    # controller's p4info covers it.
    s1.registers.define("persona_reg", 64, 8)

    protected = {"hula_probe"} if system == "hula" else set()
    dp1 = P4AuthDataplane(s1, k_seed=0xAD0001 + seed % 997,
                          config=P4AuthConfig(
                              protected_headers=set(protected))).install()
    dp1.map_all_registers()
    dp2 = P4AuthDataplane(s2, k_seed=0xAD1001 + seed % 997,
                          config=P4AuthConfig(
                              protected_headers=set(protected))).install()
    controller = P4AuthController(net, request_timeout_s=0.05)
    controller.provision(dp1)
    controller.provision(dp2)
    controller.kmp.bootstrap_all()
    sim.run(until=0.3)
    base = sim.now
    attack_start_s = duration_s * 0.25

    # --- C-DP loop: batched authenticated reads/writes of persona_reg --
    batch = BatchController(controller, max_in_flight=8)
    issued = [0x1000 + k for k in range(32)]
    allowed = {0} | set(issued)

    def cdp_tick(k: int = 0) -> None:
        if sim.now >= base + duration_s:
            return
        ops: List[tuple] = []
        for j in range(4):
            slot = (k * 4 + j) % 8
            ops.append(("write", "s1", "persona_reg", slot,
                        issued[(k * 4 + j) % 32], None))
        ops.append(("read", "s1", "persona_reg", k % 8, 0, None))
        batch.submit_many(ops)
        sim.schedule(0.05, cdp_tick, k + 1)

    sim.schedule(0.05, cdp_tick)

    # --- data-plane workload: seeded heavy-tailed trace ----------------
    node1 = net.nodes["s1"]
    node2 = net.nodes["s2"]
    prng = XorShiftPrng(seed or 1)
    generator = TraceGenerator(seed=seed, arrival_rate_hz=load_hz)
    injected = 0
    for flow in generator.flows(duration_s):
        packets = min(flow.packet_count(), 20)
        for index in range(packets):
            at = flow.start_time + index * 0.002
            if at >= duration_s:
                break
            if system == "hula":
                packet = make_data_packet(_HULA_TOR, flow.flow_id,
                                          seq=index)
            elif system == "routescout":
                packet = make_rs_packet(flow.dst_ip, flow.flow_id)
            elif system == "netcache":
                packet = Packet()
                packet.push("nc_query", NC_QUERY_HEADER.instantiate(
                    key=zipf_key(prng)))
            else:
                packet = Packet()
                packet.push("blink_data", BLINK_DATA_HEADER.instantiate(
                    prefix_id=0, seq=injected & 0xFFFFFFFF))
            sim.schedule_at(base + at, node1.receive, packet, 3)
            injected += 1

    if system == "hula":
        def send_probe(probe_id: int = 0) -> None:
            if sim.now >= base + duration_s:
                return
            node2.receive(make_probe(_HULA_TOR, probe_id), 2)
            sim.schedule(0.005, send_probe, probe_id + 1)
        sim.schedule(0.0, send_probe)

    # KMP churn: periodic rollover (the rollover-racer's trigger).
    controller.kmp.schedule_rollover(max(0.4, duration_s / 3))

    # --- ground truth: forged writes must never land -------------------
    sampler = GroundTruthSampler(sim, s1, "persona_reg", allowed)
    sim.schedule(0.05, sampler.start, base + duration_s + _GRACE_S)

    # --- the persona ---------------------------------------------------
    world = PersonaWorld(
        sim=sim, net=net, controller=controller, switch_name="s1",
        dataplane=dp1, target_register="persona_reg",
        control_channel=net.control_channels["s1"],
        duration_s=duration_s - attack_start_s,
        dp_link=net.link_between("s1", "s2"),
        probe_header="hula_probe" if system == "hula" else None,
        probe_field="path_util")
    persona = build_persona(spec)
    sim.schedule_at(base + attack_start_s, persona.arm, world)

    # --- detector: poll defense counters against an armed-at snapshot --
    def counters() -> Dict[str, int]:
        return {
            "digest_fail_cdp": (dp1.stats.digest_fail_cdp
                                + dp2.stats.digest_fail_cdp),
            "digest_fail_dpdp": (dp1.stats.digest_fail_dpdp
                                 + dp2.stats.digest_fail_dpdp),
            "replays_detected": (dp1.stats.replays_detected
                                 + dp2.stats.replays_detected),
            "tampered_responses": controller.stats.tampered_responses,
            "unsolicited_nacks": controller.stats.unsolicited_nacks,
            "alerts_received": controller.stats.alerts_received,
        }

    snapshot: Dict[str, int] = {}
    detect: Dict[str, Any] = {"latency_s": None, "signal": None}

    def poll() -> None:
        if detect["signal"] is not None:
            return
        now_counters = counters()
        for name in WATCHED_SIGNALS:
            if now_counters[name] > snapshot[name]:
                detect["latency_s"] = sim.now - (base + attack_start_s)
                detect["signal"] = name
                return
        if sim.now < base + duration_s + _GRACE_S:
            sim.schedule(_POLL_S, poll)

    def arm_detector() -> None:
        snapshot.update(counters())
        sim.schedule(_POLL_S, poll)

    sim.schedule_at(base + attack_start_s, arm_detector)

    sim.run(until=base + duration_s, max_events=2_000_000)
    persona.disarm()

    # Post-attack: a clean authenticated write must still succeed.
    clean: List[bool] = []
    controller.write_register("s1", "persona_reg", 0, 0x600D,
                              callback=lambda ok, _v: clean.append(ok))
    allowed.add(0x600D)
    sim.run(until=base + duration_s + _GRACE_S, max_events=500_000)

    outcome = persona.outcome()
    forged = sampler.forged()
    alerts_suppressed = dp1.stats.alerts_suppressed
    mitigated = bool(alerts_suppressed > 0 or controller.stats.dos_suspected)
    return {
        "persona": spec.kind,
        "system": system,
        "attack_rate_hz": spec.rate_hz,
        "detected": detect["signal"] is not None,
        "detection_latency_s": detect["latency_s"],
        "detection_signal": detect["signal"],
        "forged_writes": len(forged),
        "ground_truth_samples": len(sampler.samples),
        "alerts_raised": dp1.stats.alerts_raised,
        "alerts_suppressed": alerts_suppressed,
        "dos_suspected": bool(controller.stats.dos_suspected),
        "mitigation_engaged": mitigated,
        "clean_write_ok": bool(clean and clean[0]),
        "workload_packets": injected,
        "persona_outcome": outcome.as_dict(),
    }


def _trial(ctx: TrialContext) -> Dict[str, Any]:
    p = ctx.params
    plan = ctx.fault_plan or _fault_plan(p, ctx.seed)
    plan.validate()
    return run_persona_trial(
        p["persona"], p["system"],
        attack_rate_hz=p["attack_rate_hz"], duration_s=p["duration_s"],
        load_hz=p["load_hz"], seed=p["seed"], spec=plan.personas[0])


SPEC = register(ExperimentSpec(
    name="persona_matrix",
    title="Attacker personas vs protected systems: operating curves",
    source="§II-A/§VIII matrix",
    trial=_trial,
    grid={"persona": list(PERSONA_KINDS),
          "system": list(SYSTEMS),
          "attack_rate_hz": [50.0, 200.0, 800.0]},
    defaults={"duration_s": 3.0, "load_hz": 120.0, "seed": 7},
    short={"attack_rate_hz": [40.0, 400.0], "duration_s": 1.2,
           "load_hz": 60.0},
    seed_param="seed",
    fault_plan=_fault_plan,
    tags=("matrix", "attack", "defense"),
))
