"""FCT inflation under the HULA attack (§II-A: "inflating flow
completion times").

This is Fig 3 with its utilization numbers taken literally: background
cross-traffic loads the three paths at 50% (via S4), 30% (via S3) and
20% (via S2) of the 100 Mb/s link capacity.  Foreground traffic from H1
to H5 adds ~40%.  Links model FIFO output queues, so overload shows up
as real queueing delay:

- ``baseline``: HULA's probes steer the foreground onto the two lightly
  loaded paths (S2/S3) — delivery latency stays near the propagation
  floor.
- ``attack``: the MitM advertises the S4 path as nearly idle; the
  foreground piles onto the 50%-loaded link (→ ~90% total, bursty) and
  queueing delay inflates per-packet latency severalfold.
- ``p4auth``: tampered probes are dropped; traffic stays on the healthy
  paths and latency matches the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis import mean, percentile
from repro.attacks.link import ProbeFieldTamperer
from repro.engine.registry import register
from repro.engine.spec import ExperimentSpec, TrialContext
from repro.core.auth_dataplane import P4AuthConfig, P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.net.topology import hula_fig3_topology
from repro.systems.hula import (
    HulaDataplane,
    fig3_hula_configs,
    make_data_packet,
    make_probe,
)

MODES = ("baseline", "attack", "p4auth")

LINK_BANDWIDTH_BPS = 100e6
PACKET_BYTES = 1408
#: Background load per mid switch, as in Fig 3: S2 20%, S3 30%, S4 50%.
BACKGROUND_LOAD = {"s2": 0.20, "s3": 0.30, "s4": 0.50}
#: Foreground: bursts of 8 packets, ~55% of link capacity on average.
#: Together with the 50% background on the S4 path this makes the
#: attacked link overloaded (105%), while the honest paths (70-85%)
#: remain stable — the "congest the path" outcome of Fig 2/Fig 3.
FG_BURST = 8
FG_BURST_PERIOD_S = FG_BURST * PACKET_BYTES * 8 / (0.55 * LINK_BANDWIDTH_BPS)


@dataclass
class FctResult:
    mode: str
    mean_latency_s: float
    p95_latency_s: float
    delivered: int
    share_via_s4: float
    alerts: int
    samples: List[float] = field(default_factory=list, repr=False)


def run_fct(mode: str, duration_s: float = 3.0,
            probe_period_s: float = 0.005,
            warmup_s: float = 0.5) -> FctResult:
    """Measure foreground delivery latency under one Fig 3 scenario."""
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}")
    net, extras = hula_fig3_topology()
    sim = extras["sim"]
    for link in net.links:
        link.bandwidth_bps = LINK_BANDWIDTH_BPS
    # The contended resources are the three fabric paths; host access
    # links are provisioned fat (the server port aggregates all paths).
    net.link_between("h1", "s1").bandwidth_bps = 1e9
    net.link_between("s5", "h5").bandwidth_bps = 1e9
    hulas = {name: HulaDataplane(net.switch(name), config).install()
             for name, config in fig3_hula_configs().items()}

    controller = None
    if mode == "p4auth":
        dataplanes = {}
        for index, name in enumerate(sorted(hulas)):
            dataplanes[name] = P4AuthDataplane(
                net.switch(name), k_seed=0xFC7 + index,
                config=P4AuthConfig(protected_headers={"hula_probe"}),
            ).install()
        controller = P4AuthController(net)
        for dataplane in dataplanes.values():
            controller.provision(dataplane)
        controller.kmp.bootstrap_all()
        sim.run(until=0.1)

    if mode in ("attack", "p4auth"):
        adversary = ProbeFieldTamperer("hula_probe", "path_util", 2,
                                       direction_filter="b->a")
        adversary.attach(net.link_between("s1", "s4"))

    h1, h5 = extras["h1"], extras["h5"]
    base = sim.now
    end = base + duration_s

    # Probes from H5, as in Fig 17.
    def probes(round_index: int = 0) -> None:
        if sim.now >= end:
            return
        h5.send(make_probe(5, round_index))
        sim.schedule(probe_period_s, probes, round_index + 1)

    # Background cross-traffic injected at each mid switch (arriving on
    # its S1-facing port, heading to S5) at the Fig 3 load levels.
    def background(name: str, load: float, seq: int = 0) -> None:
        if sim.now >= end:
            return
        node = net.nodes[name]
        packet = make_data_packet(5, flow_id=0xB6000 + seq,
                                  size_bytes=PACKET_BYTES)
        packet.metadata["background"] = True
        node.receive(packet, 1)
        period = PACKET_BYTES * 8 / (load * LINK_BANDWIDTH_BPS)
        sim.schedule(period, background, name, load, seq + 1)

    # Foreground bursts from H1 with send-time stamping.
    send_times: Dict[int, float] = {}

    def foreground(seq: int = 0) -> None:
        if sim.now >= end:
            return
        for offset in range(FG_BURST):
            packet = make_data_packet(5, flow_id=seq + offset,
                                      seq=(seq + offset) & 0xFFFF,
                                      size_bytes=PACKET_BYTES)
            send_times[packet.packet_id] = sim.now
            h1.send(packet)
        sim.schedule(FG_BURST_PERIOD_S, foreground, seq + FG_BURST)

    samples: List[float] = []

    def on_delivery(packet, now: float) -> None:
        sent = send_times.pop(packet.packet_id, None)
        if sent is not None and now - base >= warmup_s:
            samples.append(now - sent)

    h5.on_packet = on_delivery

    sim.schedule(0.0, probes)
    for name, load in BACKGROUND_LOAD.items():
        sim.schedule(0.01, background, name, load)
    sim.schedule(0.05, foreground)

    s1 = hulas["s1"]
    snapshot: Dict[int, int] = {}
    sim.schedule(warmup_s, lambda: snapshot.update(s1.data_tx_per_port))
    sim.run(until=end + 0.5)

    counts = {port: s1.data_tx_per_port.get(port, 0) - snapshot.get(port, 0)
              for port in (2, 3, 4)}
    total = sum(counts.values()) or 1
    return FctResult(
        mode=mode,
        mean_latency_s=mean(samples),
        p95_latency_s=percentile(samples, 95),
        delivered=len(samples),
        share_via_s4=counts[4] / total,
        alerts=len(controller.alerts) if controller else 0,
        samples=samples,
    )


def run_all(duration_s: float = 3.0) -> Dict[str, FctResult]:
    return {mode: run_fct(mode, duration_s) for mode in MODES}


def _trial(ctx: TrialContext) -> dict:
    p = ctx.params
    result = run_fct(p["mode"], duration_s=p["duration_s"],
                     probe_period_s=p["probe_period_s"],
                     warmup_s=p["warmup_s"])
    # The per-packet sample list is huge and fully determined by the
    # summary stats' inputs; keep artifacts lean.
    return {
        "mode": result.mode,
        "mean_latency_s": result.mean_latency_s,
        "p95_latency_s": result.p95_latency_s,
        "delivered": result.delivered,
        "share_via_s4": result.share_via_s4,
        "alerts": result.alerts,
    }


SPEC = register(ExperimentSpec(
    name="fct",
    title="FCT inflation under the HULA attack",
    source="§II-A (Fig 3 with queueing)",
    trial=_trial,
    grid={"mode": list(MODES)},
    defaults={"duration_s": 3.0, "probe_period_s": 0.005,
              "warmup_s": 0.5},
    short={"duration_s": 1.5},
    tags=("attack", "latency"),
))
