"""Fig 21: P4Auth's per-hop overhead on in-network control messages.

HULA probes traverse a linear chain of 2..10 switches; P4Auth verifies
each probe on ingress and re-signs it on egress at every keyed hop.  The
paper measures probe traversal time (host to host) with and without
P4Auth: overhead grows near-linearly with hop count — +0.95% at 2 hops,
+5.9% at 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.auth_dataplane import P4AuthConfig, P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.engine.registry import register
from repro.engine.spec import ExperimentSpec, TrialContext
from repro.net.topology import linear_chain
from repro.systems.hula import HulaDataplane, chain_hula_configs, make_probe

#: ToR id used for chain probes (any value works; nothing routes on it).
CHAIN_TOR = 9


@dataclass
class MultihopResult:
    num_switches: int
    with_p4auth: bool
    traversal_times_s: List[float] = field(default_factory=list)

    @property
    def mean_traversal_s(self) -> float:
        return sum(self.traversal_times_s) / len(self.traversal_times_s)


def run_multihop(num_switches: int, with_p4auth: bool,
                 num_probes: int = 50,
                 spacing_s: float = 0.005) -> MultihopResult:
    """Send probes down an ``num_switches``-hop chain; time each traversal."""
    if num_switches < 2:
        raise ValueError("the chain experiment needs at least 2 switches")
    net, extras = linear_chain(num_switches)
    sim = extras["sim"]
    for name, config in chain_hula_configs(num_switches).items():
        HulaDataplane(net.switch(name), config).install()

    if with_p4auth:
        dataplanes = []
        for index, name in enumerate(extras["switches"]):
            dataplanes.append(P4AuthDataplane(
                net.switch(name), k_seed=0xC0DE00 + index,
                config=P4AuthConfig(protected_headers={"hula_probe"}),
            ).install())
        controller = P4AuthController(net)
        for dataplane in dataplanes:
            controller.provision(dataplane)
        controller.kmp.bootstrap_all()
        sim.run(until=1.0)

    src, dst = extras["src"], extras["dst"]
    send_times: Dict[int, float] = {}
    result = MultihopResult(num_switches, with_p4auth)

    def on_arrival(packet, now: float) -> None:
        if not packet.has("hula_probe"):
            return
        probe_id = packet.get("hula_probe")["probe_id"]
        if probe_id in send_times:
            result.traversal_times_s.append(now - send_times[probe_id])

    dst.on_packet = on_arrival

    start = sim.now
    for index in range(num_probes):
        at = start + index * spacing_s

        def send(probe_id: int = index, when: float = at) -> None:
            send_times[probe_id] = when
            src.send(make_probe(CHAIN_TOR, probe_id))

        sim.schedule_at(at, send)
    sim.run(until=start + num_probes * spacing_s + 1.0)
    if not result.traversal_times_s:
        raise RuntimeError("no probes arrived — chain misconfigured")
    return result


def overhead_curve(hop_counts=range(2, 11),
                   num_probes: int = 50) -> List[dict]:
    """The Fig 21 series: per-hop traversal times and P4Auth overhead %."""
    rows = []
    for hops in hop_counts:
        base = run_multihop(hops, with_p4auth=False, num_probes=num_probes)
        auth = run_multihop(hops, with_p4auth=True, num_probes=num_probes)
        overhead = (auth.mean_traversal_s / base.mean_traversal_s - 1.0) * 100
        rows.append({
            "hops": hops,
            "base_us": base.mean_traversal_s * 1e6,
            "p4auth_us": auth.mean_traversal_s * 1e6,
            "overhead_pct": overhead,
        })
    return rows


def curve_from_trials(results) -> List[dict]:
    """Assemble the Fig 21 series from per-(hops, with_p4auth) trial
    dicts (the engine's canonical form of :func:`overhead_curve`)."""
    by_key = {(r["num_switches"], r["with_p4auth"]): r for r in results}
    rows = []
    for hops in sorted({k for k, _ in by_key}):
        base = by_key[(hops, False)]
        auth = by_key[(hops, True)]
        overhead = (auth["mean_traversal_s"] / base["mean_traversal_s"]
                    - 1.0) * 100
        rows.append({
            "hops": hops,
            "base_us": base["mean_traversal_s"] * 1e6,
            "p4auth_us": auth["mean_traversal_s"] * 1e6,
            "overhead_pct": overhead,
        })
    return rows


def _trial(ctx: TrialContext) -> dict:
    p = ctx.params
    result = run_multihop(p["hops"], p["with_p4auth"],
                          num_probes=p["num_probes"],
                          spacing_s=p["spacing_s"])
    return {
        "num_switches": result.num_switches,
        "with_p4auth": result.with_p4auth,
        "mean_traversal_s": result.mean_traversal_s,
        "traversal_times_s": result.traversal_times_s,
    }


SPEC = register(ExperimentSpec(
    name="fig21",
    title="Probe traversal overhead vs hop count",
    source="Fig 21",
    trial=_trial,
    grid={"hops": list(range(2, 11)), "with_p4auth": [False, True]},
    defaults={"num_probes": 50, "spacing_s": 0.005},
    short={"hops": [2, 4], "num_probes": 10},
    tags=("figure", "overhead"),
))
