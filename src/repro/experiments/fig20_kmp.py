"""Fig 20: key management protocol round-trip times.

Measures the four KMP operations on a two-switch deployment, repeating
each for statistical stability.  Paper shapes asserted by the benchmark:
key initialization takes 1-2 ms, updates are faster than initializations,
port-key init is the slowest (its ADHKD legs are redirected through the
controller, which verifies digests in both directions), and port-key
update beats local-key update despite exchanging more messages (DP-DP
hops are much faster than C-DP hops).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.auth_dataplane import P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.dataplane.switch import DataplaneSwitch
from repro.engine.registry import register
from repro.engine.spec import ExperimentSpec, TrialContext
from repro.net.network import Network
from repro.net.simulator import EventSimulator

OPS = ("local_init", "local_update", "port_init", "port_update")


@dataclass
class KmpRttResult:
    #: op -> list of RTT seconds.
    rtts: Dict[str, List[float]] = field(default_factory=dict)
    #: op -> (messages, bytes) per single operation (Table III columns).
    footprint: Dict[str, tuple] = field(default_factory=dict)

    def mean_ms(self, op: str) -> float:
        samples = self.rtts[op]
        return sum(samples) / len(samples) * 1e3


def run_kmp_rtt(repeats: int = 20, seed: int = 3,
                telemetry=None) -> KmpRttResult:
    """Collect RTT samples for all four KMP operations.

    A shared ``telemetry`` instance aggregates ``kmp_rtt_seconds`` and
    ``kmp.exchange`` trace events across every deployment in the sweep.
    """
    result = KmpRttResult()

    # local_init needs a fresh switch each time (K_local must be unset),
    # so it gets its own deployments.
    samples: List[float] = []
    for run in range(repeats):
        sim = EventSimulator(telemetry=telemetry)
        net = Network(sim)
        switch = DataplaneSwitch("s1", num_ports=2, seed=seed + run)
        net.add_switch(switch)
        dataplane = P4AuthDataplane(switch, k_seed=0x11 + run).install()
        controller = P4AuthController(net)
        controller.provision(dataplane)
        controller.kmp.local_key_init("s1")
        sim.run(until=0.1)
        samples.extend(controller.kmp.stats.rtts("local_init"))
    result.rtts["local_init"] = samples

    # The other three run on one two-switch deployment.
    sim = EventSimulator(telemetry=telemetry)
    net = Network(sim)
    dataplanes = []
    for index, name in enumerate(("s1", "s2")):
        switch = DataplaneSwitch(name, num_ports=2, seed=seed * 7 + index)
        net.add_switch(switch)
        dataplanes.append(P4AuthDataplane(switch, k_seed=0x21 + index).install())
    net.connect("s1", 1, "s2", 1)
    controller = P4AuthController(net)
    for dataplane in dataplanes:
        controller.provision(dataplane)
    controller.kmp.bootstrap_all()
    sim.run(until=0.5)

    for _ in range(repeats):
        controller.kmp.local_key_update("s1")
        sim.run(until=sim.now + 0.05)
        controller.kmp.port_key_update("s1", 1)
        sim.run(until=sim.now + 0.05)
        controller.kmp.port_key_init("s1", 1)
        sim.run(until=sim.now + 0.05)

    stats = controller.kmp.stats
    result.rtts["local_update"] = stats.rtts("local_update")
    result.rtts["port_update"] = stats.rtts("port_update")
    # Drop the bootstrap's port_init sample? Keep it — same cost shape.
    result.rtts["port_init"] = stats.rtts("port_init")

    for op in OPS:
        if op == "local_init":
            result.footprint[op] = (4, 104)
        else:
            result.footprint[op] = (stats.message_count(op),
                                    stats.byte_count(op))
    return result


def _trial(ctx: TrialContext) -> dict:
    p = ctx.params
    result = run_kmp_rtt(repeats=p["repeats"], seed=p["seed"],
                         telemetry=ctx.telemetry)
    return {
        "rtts": result.rtts,
        "footprint": result.footprint,
        "mean_ms": {op: result.mean_ms(op) for op in OPS},
    }


SPEC = register(ExperimentSpec(
    name="fig20",
    title="Key management protocol RTT",
    source="Fig 20",
    trial=_trial,
    defaults={"repeats": 20, "seed": 3},
    short={"repeats": 3},
    seed_param="seed",
    supports_telemetry=True,
    tags=("figure", "kmp"),
))
