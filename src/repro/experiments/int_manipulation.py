"""INT manipulation experiment (the secINT scenario the paper cites).

A 4-switch INT chain where hop 2 is congested (200 µs hop latency, deep
queue).  A MitM on the link after hop 2 rewrites the accumulated records
to report a healthy path.  Modes:

- ``baseline``: the collector sees the congestion.
- ``attack``: the collector sees a healthy path — telemetry blind spot.
- ``p4auth``: the INT probe is DP-DP protected; the switch after the
  MitM drops the rewritten probe and alerts.  The collector receives
  fewer probes, but every one it does receive is truthful.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict

from repro.attacks.base import Adversary
from repro.core.auth_dataplane import P4AuthConfig, P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.engine.registry import register
from repro.engine.spec import ExperimentSpec, TrialContext
from repro.net.topology import linear_chain
from repro.systems.int_telemetry import (
    RECORD_BYTES,
    RECORD_FORMAT,
    IntCollector,
    IntConfig,
    IntTelemetryDataplane,
    make_int_probe,
)

MODES = ("baseline", "attack", "p4auth")

CONGESTED_HOP = 2
CONGESTED_LATENCY_US = 200
HEALTHY_LATENCY_US = 20


class RecordRewriter(Adversary):
    """Rewrites congested INT records to look healthy (hides hotspots)."""

    def __init__(self, direction_filter=None):
        super().__init__("int-rewriter", direction_filter)

    def process(self, packet, direction):
        if not packet.has("int_probe"):
            return packet
        payload = bytearray(packet.payload)
        touched = False
        for offset in range(0, len(payload) - len(payload) % RECORD_BYTES,
                            RECORD_BYTES):
            switch_id, latency, _queue, port = struct.unpack_from(
                RECORD_FORMAT, payload, offset)
            if latency > 100:
                struct.pack_into(RECORD_FORMAT, payload, offset,
                                 switch_id, HEALTHY_LATENCY_US, 2, port)
                touched = True
        if touched:
            packet.payload = bytes(payload)
            self.stats.modified += 1
        return packet


@dataclass
class IntResult:
    mode: str
    probes_sent: int
    probes_collected: int
    reported_max_hop_latency_us: int
    true_max_hop_latency_us: int
    congestion_visible: bool
    alerts: int
    tampered: int
    #: Did the operator learn anything is wrong (alerts or verified
    #: congestion reports)?
    detected: bool = False


def run_int_manipulation(mode: str, num_switches: int = 4,
                         num_probes: int = 40,
                         spacing_s: float = 0.005) -> IntResult:
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}")
    net, extras = linear_chain(num_switches)
    sim = extras["sim"]

    # Hop 2 is congested for even flow ids (bursty congestion), healthy
    # otherwise; every other hop is always healthy.
    def hop_latency(index):
        def fn(_now, flow_id):
            if index == CONGESTED_HOP and flow_id % 2 == 0:
                return CONGESTED_LATENCY_US
            return HEALTHY_LATENCY_US
        return fn

    for index, name in enumerate(extras["switches"], start=1):
        config = IntConfig(
            switch_id=index,
            routes={1: 2 if index < num_switches else None},
            collector_port=2,
            latency_us=hop_latency(index),
            queue_depth=lambda now, flow: 4,
        )
        IntTelemetryDataplane(net.switch(name), config).install()

    controller = None
    if mode == "p4auth":
        dataplanes = []
        for index, name in enumerate(extras["switches"]):
            dataplanes.append(P4AuthDataplane(
                net.switch(name), k_seed=0x127 + index,
                config=P4AuthConfig(protected_headers={"int_probe"}),
            ).install())
        controller = P4AuthController(net)
        for dataplane in dataplanes:
            controller.provision(dataplane)
        controller.kmp.bootstrap_all()
        sim.run(until=1.0)

    adversary = None
    if mode in ("attack", "p4auth"):
        # The MitM sits just downstream of the congested hop.
        link = net.link_between(f"s{CONGESTED_HOP}",
                                f"s{CONGESTED_HOP + 1}")
        adversary = RecordRewriter()
        adversary.attach(link)

    collector = IntCollector()
    extras["dst"].on_packet = collector.ingest

    start = sim.now
    for index in range(num_probes):
        sim.schedule_at(start + index * spacing_s,
                        extras["src"].send, make_int_probe(index))
    sim.run(until=start + num_probes * spacing_s + 1.0)

    reported = collector.max_hop_latency_us()
    alerts = len(controller.alerts) if controller else 0
    visible = reported >= CONGESTED_LATENCY_US
    return IntResult(
        mode=mode,
        probes_sent=num_probes,
        probes_collected=len(collector.probes),
        reported_max_hop_latency_us=reported,
        true_max_hop_latency_us=CONGESTED_LATENCY_US,
        congestion_visible=visible,
        alerts=alerts,
        tampered=adversary.stats.modified if adversary else 0,
        detected=visible or alerts > 0,
    )


def run_all(num_probes: int = 40) -> Dict[str, IntResult]:
    return {mode: run_int_manipulation(mode, num_probes=num_probes)
            for mode in MODES}


def _trial(ctx: TrialContext) -> IntResult:
    p = ctx.params
    return run_int_manipulation(
        p["mode"], num_switches=p["num_switches"],
        num_probes=p["num_probes"], spacing_s=p["spacing_s"])


SPEC = register(ExperimentSpec(
    name="int",
    title="INT record manipulation (secINT scenario)",
    source="§I/§X (secINT)",
    trial=_trial,
    grid={"mode": list(MODES)},
    defaults={"num_switches": 4, "num_probes": 40, "spacing_s": 0.005},
    short={"num_probes": 10},
    tags=("attack", "telemetry"),
))
