"""Table III: P4Auth scalability with simultaneous key operations.

Two complementary reproductions:

1. **Live count** — build an actual m-switch, n-link network (a random
   4-regular graph gives m=25, n=50 exactly), bootstrap every key, roll
   every key once, and count the controller's real message/byte load.
2. **Analytic formulas** — 4m+5n / 2m+3n messages and 104m+138n /
   60m+78n bytes, evaluated at the paper's (m=25, n=50) point.

Known paper inconsistency (documented in DESIGN.md): Table III states 125
messages for key update at m=25, n=50, but its own formula 2m+3n gives
200.  The byte figure (5.4 KB) does follow from 60m+78n; our live count
confirms 200 messages and 5.4 KB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.auth_dataplane import P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.dataplane.switch import DataplaneSwitch
from repro.engine.registry import register
from repro.engine.spec import ExperimentSpec, TrialContext
from repro.net.topology import random_regular_fabric


@dataclass
class ScalabilityResult:
    m_switches: int
    n_links: int
    init_messages: int
    init_bytes: int
    update_messages: int
    update_bytes: int
    formula_init_messages: int
    formula_init_bytes: int
    formula_update_messages: int
    formula_update_bytes: int
    #: Wall(simulated)-clock the parallel bootstrap actually took, vs the
    #: serial lower bound (sum of individual operation RTTs).  Quantifies
    #: §XI's "150 ms ... improves significantly when done in parallel".
    parallel_init_time_s: float = 0.0
    serial_init_time_s: float = 0.0


def formulas(m: int, n: int) -> Dict[str, int]:
    """The paper's Table III scaling formulas."""
    return {
        "init_messages": 4 * m + 5 * n,
        "init_bytes": 104 * m + 138 * n,
        "update_messages": 2 * m + 3 * n,
        "update_bytes": 60 * m + 78 * n,
    }


def build_regular_network(m: int = 25, degree: int = 4,
                          seed: int = 1) -> tuple:
    """An m-switch P4Auth deployment on the shared random-regular fabric
    (m=25, d=4 gives exactly the paper's n=50 links)."""

    def factory(name: str, num_ports: int) -> DataplaneSwitch:
        node = int(name[2:])  # fabric names switches "sw<i>"
        return DataplaneSwitch(name, num_ports=num_ports, seed=seed + node)

    net, extras = random_regular_fabric(m, degree, seed, factory=factory)
    sim, graph = extras["sim"], extras["graph"]
    controller = P4AuthController(net)
    for name in extras["switches"]:
        node = int(name[2:])
        dataplane = P4AuthDataplane(net.switch(name),
                                    k_seed=0x1000 + node).install()
        controller.provision(dataplane)
    return sim, net, controller, graph


def run_table3(m: int = 25, degree: int = 4, seed: int = 1) -> ScalabilityResult:
    """Bootstrap and roll every key on a live m-switch network; count."""
    sim, net, controller, graph = build_regular_network(m, degree, seed)
    n = graph.number_of_edges()
    kmp = controller.kmp

    bootstrap_started = sim.now
    done = []
    kmp.bootstrap_all(on_done=lambda: done.append(sim.now))
    sim.run(until=30.0)
    if not done:
        raise RuntimeError("bootstrap did not complete")
    parallel_init_time = done[0] - bootstrap_started
    init_records = list(kmp.stats.records)
    init_messages = sum(r.messages for r in init_records)
    init_bytes = sum(r.bytes for r in init_records)

    # One full rollover: update every local key and every port key.
    before = len(kmp.stats.records)
    for switch in sorted(controller.dataplanes):
        kmp.local_key_update(switch)
    for sw_a, port_a, _sw_b, _port_b in kmp.switch_links():
        kmp.port_key_update(sw_a, port_a)
    sim.run(until=sim.now + 30.0)
    update_records = kmp.stats.records[before:]
    update_messages = sum(r.messages for r in update_records)
    update_bytes = sum(r.bytes for r in update_records)

    expected = formulas(m, n)
    return ScalabilityResult(
        m_switches=m,
        n_links=n,
        init_messages=init_messages,
        init_bytes=init_bytes,
        update_messages=update_messages,
        update_bytes=update_bytes,
        formula_init_messages=expected["init_messages"],
        formula_init_bytes=expected["init_bytes"],
        formula_update_messages=expected["update_messages"],
        formula_update_bytes=expected["update_bytes"],
        parallel_init_time_s=parallel_init_time,
        serial_init_time_s=sum(r.rtt_s for r in init_records),
    )


@dataclass
class MultiDomainResult:
    """The §XI multi-controller analysis (e.g., 8 ONOS instances)."""

    total_switches: int
    total_links: int
    domains: int
    per_domain: ScalabilityResult

    @property
    def per_controller_init_messages(self) -> int:
        return self.per_domain.init_messages

    @property
    def fleet_init_messages(self) -> int:
        return self.per_domain.init_messages * self.domains


def run_multidomain(total_switches: int = 200, domains: int = 8,
                    degree: int = 4, seed: int = 1) -> MultiDomainResult:
    """§XI: a physically distributed controller splits the network into
    per-controller domains; each domain's load is one Table III run.

    The paper's example (205 switches, 414 links, 8 ONOS controllers ->
    ~25 switches / ~50 links per controller) rounds to exactly the
    m=25/degree-4 domain we can build live.
    """
    per_domain_switches = total_switches // domains
    domain = run_table3(m=per_domain_switches, degree=degree, seed=seed)
    return MultiDomainResult(
        total_switches=total_switches,
        total_links=domain.n_links * domains,
        domains=domains,
        per_domain=domain,
    )


def run_table3_regional(m: int, regions: int, degree: int = 4,
                        seed: int = 1) -> Dict[str, object]:
    """Table III counts on a region-sharded fleet (the ROADMAP-3 shape).

    Each region is its own controller + KMP subtree under a
    :class:`~repro.core.kmp.HierarchicalKMP`; boundary links cross
    administrative domains and carry no port keys, so the paper's
    formulas apply per region with that region's (m, n).  The result
    carries a ``regions_detail`` axis (one Table III row per region)
    plus fleet totals.
    """
    # Local import: the flat regions=1 path must not drag in the whole
    # fleet/batch machinery.
    from repro.experiments.fleet_scale import build_fleet_deployment

    world, extras, hier, controllers = build_fleet_deployment(
        m, regions, degree=degree, seed=seed)
    bootstrap = hier.bootstrap_fleet(deadline_s=30.0)
    if not bootstrap["converged"] or bootstrap["failed"]:
        raise RuntimeError(f"regional bootstrap failed: {bootstrap}")
    init_counts = {region.id: len(controllers[region.id].kmp.stats.records)
                   for region in world.regions}
    rollover = hier.rollover_fleet(deadline_s=30.0)
    if not rollover["converged"] or rollover["failed"]:
        raise RuntimeError(f"regional rollover failed: {rollover}")
    if rollover["boundary_violations"]:
        raise RuntimeError(
            f"two-version invariant violated: {hier.boundary_violations}")

    detail = []
    for region in world.regions:
        kmp = controllers[region.id].kmp
        init_records = kmp.stats.records[:init_counts[region.id]]
        update_records = kmp.stats.records[init_counts[region.id]:]
        n = extras["graphs"][region.id].number_of_edges()
        expected = formulas(len(region.switches), n)
        detail.append({
            "region": region.id,
            "m_switches": len(region.switches),
            "n_links": n,
            "init_messages": sum(r.messages for r in init_records),
            "init_bytes": sum(r.bytes for r in init_records),
            "update_messages": sum(r.messages for r in update_records),
            "update_bytes": sum(r.bytes for r in update_records),
            "formula_init_messages": expected["init_messages"],
            "formula_update_messages": expected["update_messages"],
        })
    totals = {
        key: sum(row[key] for row in detail)
        for key in ("m_switches", "n_links", "init_messages", "init_bytes",
                    "update_messages", "update_bytes",
                    "formula_init_messages", "formula_update_messages")
    }
    return {
        "m_switches": m,
        "regions": regions,
        "boundary_links": len(world.boundary_links),
        "regions_detail": detail,
        "totals": totals,
        "bootstrap_convergence_s": bootstrap["duration_s"],
        "rollover_convergence_s": rollover["duration_s"],
        "boundary_violations": rollover["boundary_violations"],
    }


def _trial(ctx: TrialContext):
    p = ctx.params
    if p.get("regions", 1) > 1:
        return run_table3_regional(m=p["m"], regions=p["regions"],
                                   degree=p["degree"], seed=p["seed"])
    return run_table3(m=p["m"], degree=p["degree"], seed=p["seed"])


SPEC = register(ExperimentSpec(
    name="table3",
    title="KMP scalability on a live network",
    source="Table III",
    trial=_trial,
    defaults={"m": 25, "degree": 4, "seed": 1, "regions": 1},
    short={"m": 9},
    seed_param="seed",
    spec_version=2,
    tags=("table", "kmp", "scalability"),
))
