"""Table III: P4Auth scalability with simultaneous key operations.

Two complementary reproductions:

1. **Live count** — build an actual m-switch, n-link network (a random
   4-regular graph gives m=25, n=50 exactly), bootstrap every key, roll
   every key once, and count the controller's real message/byte load.
2. **Analytic formulas** — 4m+5n / 2m+3n messages and 104m+138n /
   60m+78n bytes, evaluated at the paper's (m=25, n=50) point.

Known paper inconsistency (documented in DESIGN.md): Table III states 125
messages for key update at m=25, n=50, but its own formula 2m+3n gives
200.  The byte figure (5.4 KB) does follow from 60m+78n; our live count
confirms 200 messages and 5.4 KB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.auth_dataplane import P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.dataplane.switch import DataplaneSwitch
from repro.engine.registry import register
from repro.engine.spec import ExperimentSpec, TrialContext
from repro.net.topology import random_regular_fabric


@dataclass
class ScalabilityResult:
    m_switches: int
    n_links: int
    init_messages: int
    init_bytes: int
    update_messages: int
    update_bytes: int
    formula_init_messages: int
    formula_init_bytes: int
    formula_update_messages: int
    formula_update_bytes: int
    #: Wall(simulated)-clock the parallel bootstrap actually took, vs the
    #: serial lower bound (sum of individual operation RTTs).  Quantifies
    #: §XI's "150 ms ... improves significantly when done in parallel".
    parallel_init_time_s: float = 0.0
    serial_init_time_s: float = 0.0


def formulas(m: int, n: int) -> Dict[str, int]:
    """The paper's Table III scaling formulas."""
    return {
        "init_messages": 4 * m + 5 * n,
        "init_bytes": 104 * m + 138 * n,
        "update_messages": 2 * m + 3 * n,
        "update_bytes": 60 * m + 78 * n,
    }


def build_regular_network(m: int = 25, degree: int = 4,
                          seed: int = 1) -> tuple:
    """An m-switch P4Auth deployment on the shared random-regular fabric
    (m=25, d=4 gives exactly the paper's n=50 links)."""

    def factory(name: str, num_ports: int) -> DataplaneSwitch:
        node = int(name[2:])  # fabric names switches "sw<i>"
        return DataplaneSwitch(name, num_ports=num_ports, seed=seed + node)

    net, extras = random_regular_fabric(m, degree, seed, factory=factory)
    sim, graph = extras["sim"], extras["graph"]
    controller = P4AuthController(net)
    for name in extras["switches"]:
        node = int(name[2:])
        dataplane = P4AuthDataplane(net.switch(name),
                                    k_seed=0x1000 + node).install()
        controller.provision(dataplane)
    return sim, net, controller, graph


def run_table3(m: int = 25, degree: int = 4, seed: int = 1) -> ScalabilityResult:
    """Bootstrap and roll every key on a live m-switch network; count."""
    sim, net, controller, graph = build_regular_network(m, degree, seed)
    n = graph.number_of_edges()
    kmp = controller.kmp

    bootstrap_started = sim.now
    done = []
    kmp.bootstrap_all(on_done=lambda: done.append(sim.now))
    sim.run(until=30.0)
    if not done:
        raise RuntimeError("bootstrap did not complete")
    parallel_init_time = done[0] - bootstrap_started
    init_records = list(kmp.stats.records)
    init_messages = sum(r.messages for r in init_records)
    init_bytes = sum(r.bytes for r in init_records)

    # One full rollover: update every local key and every port key.
    before = len(kmp.stats.records)
    for switch in sorted(controller.dataplanes):
        kmp.local_key_update(switch)
    for sw_a, port_a, _sw_b, _port_b in kmp.switch_links():
        kmp.port_key_update(sw_a, port_a)
    sim.run(until=sim.now + 30.0)
    update_records = kmp.stats.records[before:]
    update_messages = sum(r.messages for r in update_records)
    update_bytes = sum(r.bytes for r in update_records)

    expected = formulas(m, n)
    return ScalabilityResult(
        m_switches=m,
        n_links=n,
        init_messages=init_messages,
        init_bytes=init_bytes,
        update_messages=update_messages,
        update_bytes=update_bytes,
        formula_init_messages=expected["init_messages"],
        formula_init_bytes=expected["init_bytes"],
        formula_update_messages=expected["update_messages"],
        formula_update_bytes=expected["update_bytes"],
        parallel_init_time_s=parallel_init_time,
        serial_init_time_s=sum(r.rtt_s for r in init_records),
    )


@dataclass
class MultiDomainResult:
    """The §XI multi-controller analysis (e.g., 8 ONOS instances)."""

    total_switches: int
    total_links: int
    domains: int
    per_domain: ScalabilityResult

    @property
    def per_controller_init_messages(self) -> int:
        return self.per_domain.init_messages

    @property
    def fleet_init_messages(self) -> int:
        return self.per_domain.init_messages * self.domains


def run_multidomain(total_switches: int = 200, domains: int = 8,
                    degree: int = 4, seed: int = 1) -> MultiDomainResult:
    """§XI: a physically distributed controller splits the network into
    per-controller domains; each domain's load is one Table III run.

    The paper's example (205 switches, 414 links, 8 ONOS controllers ->
    ~25 switches / ~50 links per controller) rounds to exactly the
    m=25/degree-4 domain we can build live.
    """
    per_domain_switches = total_switches // domains
    domain = run_table3(m=per_domain_switches, degree=degree, seed=seed)
    return MultiDomainResult(
        total_switches=total_switches,
        total_links=domain.n_links * domains,
        domains=domains,
        per_domain=domain,
    )


def _trial(ctx: TrialContext) -> ScalabilityResult:
    p = ctx.params
    return run_table3(m=p["m"], degree=p["degree"], seed=p["seed"])


SPEC = register(ExperimentSpec(
    name="table3",
    title="KMP scalability on a live network",
    source="Table III",
    trial=_trial,
    defaults={"m": 25, "degree": 4, "seed": 1},
    short={"m": 9},
    seed_param="seed",
    tags=("table", "kmp", "scalability"),
))
