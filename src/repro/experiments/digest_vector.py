"""Digest-lane microbenchmark: vectorized vs scalar tag throughput.

PR 5's batched issue path made host-CPU crypto the C-DP bottleneck, so
this experiment tracks the raw digest rate of both software lanes for
both target flavors (HalfSipHash-2-4 on BMv2, keyed CRC32 on Tofino) on
C-DP-sized material.  It is the perf-trajectory anchor for ROADMAP
item 2: ``benchmarks/bench_digest_vector.py`` runs it and gates on a
>=5x vector-over-scalar floor at batch >= 1024, and CI publishes the
``BENCH_digest_vector.json`` artifact from the experiment-smoke matrix.

Timing is wall-clock (the whole point is host-CPU speed), so throughput
fields vary run to run — but every trial also reports a deterministic
``checksum`` XOR-fold of its tags, which must agree between the scalar
and vector trials of one (algorithm, batch, msg_len, seed) point.  The
artifact therefore carries its own bit-identity cross-check alongside
the timing numbers.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List

from repro.crypto import vectorized
from repro.crypto.crc import Crc32
from repro.crypto.halfsiphash import HalfSipHash
from repro.engine.registry import register
from repro.engine.spec import ExperimentSpec, TrialContext

#: Realistic C-DP digest-material size: six 8-byte p4auth header words
#: plus the serialized reg_op payload.
DEFAULT_MSG_LEN = 64

ALGORITHMS = ("halfsiphash", "crc32")
LANES = ("scalar", "vector")


def _checksum(tags: List[int]) -> int:
    folded = 0
    for tag in tags:
        folded ^= tag
    return folded


def _build_lane(algorithm: str, lane: str, key: int,
                messages: List[bytes]) -> Callable[[], List[int]]:
    """The measured callable: one full batch of tags per invocation.

    The scalar lane gets its best honest shape — a precomputed key
    schedule (the PR 5 fast path) and a hoisted bound method — so the
    reported speedup is vector-lane value, not strawman overhead.
    """
    if algorithm == "halfsiphash":
        hasher = HalfSipHash()
        state = hasher.key_schedule(key)
        if lane == "scalar":
            digest = hasher.digest_from_state
            return lambda: [digest(state, m) for m in messages]
        return lambda: vectorized.digest_many_from_state(state, messages)
    crc = Crc32()
    if lane == "scalar":
        compute_keyed = crc.compute_keyed
        return lambda: [compute_keyed(key, m) for m in messages]
    return lambda: vectorized.crc32_many_keyed(key, messages, engine=crc)


def _trial(ctx: TrialContext) -> Dict[str, object]:
    p = ctx.params
    if p["algorithm"] not in ALGORITHMS:
        raise ValueError(f"algorithm must be one of {ALGORITHMS}")
    if p["lane"] not in LANES:
        raise ValueError(f"lane must be one of {LANES}")
    rng = random.Random(ctx.seed)
    messages = [rng.randbytes(p["msg_len"]) for _ in range(p["batch"])]
    key = rng.getrandbits(64)
    run_batch = _build_lane(p["algorithm"], p["lane"], key, messages)

    tags = run_batch()  # warmup (numpy first-call setup, cache warming)
    best_s = float("inf")
    for _ in range(p["repeats"]):
        started = time.perf_counter()
        tags = run_batch()
        best_s = min(best_s, time.perf_counter() - started)

    return {
        "algorithm": p["algorithm"],
        "lane": p["lane"],
        "backend": (vectorized.backend() if p["lane"] == "vector"
                    else "scalar"),
        "batch": p["batch"],
        "msg_len": p["msg_len"],
        "wall_s": best_s,
        "tags_per_s": (p["batch"] / best_s) if best_s > 0 else 0.0,
        # Deterministic: must match across lanes for one parameter point.
        "checksum": _checksum(tags),
    }


SPEC = register(ExperimentSpec(
    name="digest_vector",
    title="Vectorized vs scalar digest-lane throughput",
    source="ROADMAP 2",
    trial=_trial,
    grid={"algorithm": list(ALGORITHMS), "lane": list(LANES)},
    defaults={"batch": 4096, "msg_len": DEFAULT_MSG_LEN, "repeats": 3,
              "seed": 1},
    short={"batch": 256, "repeats": 1},
    seed_param="seed",
    tags=("crypto", "performance", "batching"),
))
