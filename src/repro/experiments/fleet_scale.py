"""Fleet scale: 10k-switch fabrics with hierarchical KMP (ROADMAP 3).

Table III stops at m=400 because the whole fabric is one event heap and
one flat KMP.  This experiment is the "production fleet" headline: the
fleet is split into regions (:func:`repro.net.topology.regional_fabric`),
each with its own simulator, network, controller, and
:class:`~repro.core.kmp.RegionalKeyAuthority`, measured two ways —

**Phase A — region-parallel measurement.**  Every region is an
independent world (same graph seed as its slice of the lockstep fabric)
and runs the full production lifecycle: key bootstrap, a fleet rollover,
and a batched C-DP write workload with ground-truth verification (final
register state must equal the last controller-issued value — the
zero-forged-writes check — and controller/DP sequence counters must
agree).  Regions are sharded across OS workers by
:func:`repro.engine.runner.run_region_tasks`, so the *deterministic*
per-region results are byte-identical at any worker count while the wall
clock drops near-linearly — this is the >= 3x bootstrap-speedup
acceptance number.

**Phase B — lockstep boundary consistency.**  The same fleet is built as
one :class:`~repro.net.region.RegionalWorld` with live boundary links,
a :class:`~repro.core.kmp.HierarchicalKMP` bootstraps all regions and
runs one coordinated rollover while (a) boundary probes cross the
inter-region mailbox and (b) authenticated writes land *during* the
rollover window (the two-version key slots must keep them verifiable).
The trial raises — rather than report a good-looking number — if the
cross-region two-version invariant is violated, any forged-write
indicator trips, or sequence counters diverge across a boundary.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.core.auth_dataplane import P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.core.kmp import HierarchicalKMP, RegionalKeyAuthority
from repro.dataplane.packet import Packet
from repro.dataplane.switch import DataplaneSwitch
from repro.engine.registry import register
from repro.engine.runner import run_region_tasks
from repro.engine.spec import ExperimentSpec, TrialContext
from repro.net.region import RegionalWorld
from repro.net.topology import (
    random_regular_fabric,
    region_seed,
    region_sizes,
    regional_fabric,
)
from repro.runtime.batch import BatchController

#: Virtual-time budget for one region-wide bootstrap (parallel
#: handshakes: a few C-DP RTTs regardless of m).
BOOTSTRAP_DEADLINE_S = 30.0
ROLLOVER_DEADLINE_S = 30.0
WORKLOAD_DEADLINE_S = 600.0
#: Probe packets pushed across each boundary link per direction.
BOUNDARY_PROBES = 4


def _switch_index(name: str) -> int:
    """Node index from ``sw<i>`` or ``r<k>sw<i>``."""
    return int(name.rsplit("sw", 1)[1])


def _make_factory(seed: int):
    def factory(name: str, num_ports: int) -> DataplaneSwitch:
        node = _switch_index(name)
        switch = DataplaneSwitch(name, num_ports=num_ports,
                                 seed=seed + node)
        switch.registers.define("target", 64, 16)
        return switch

    return factory


def _provision_p4auth(net, switches: List[str], seed: int,
                      region_index: int, m_for_threshold: int,
                      max_in_flight: int) -> P4AuthController:
    """One region controller with every switch provisioned (keys pending)."""
    controller = P4AuthController(
        net,
        outstanding_threshold=max(1000,
                                  2 * m_for_threshold * max_in_flight))
    for name in switches:
        node = _switch_index(name)
        dataplane = P4AuthDataplane(
            net.switch(name),
            k_seed=0x1000 + (region_index << 20) + node).install()
        dataplane.map_register("target")
        controller.provision(dataplane)
    return controller


def build_fleet_deployment(m: int, regions: int, degree: int = 4,
                           seed: int = 1, max_in_flight: int = 8,
                           boundary_links_per_pair: int = 2,
                           ) -> Tuple[RegionalWorld, Dict[str, object],
                                      HierarchicalKMP,
                                      Dict[str, P4AuthController]]:
    """The lockstep multi-region P4Auth fleet (Phase B / chaos tests)."""
    world, extras = regional_fabric(
        m, regions=regions, degree=degree, seed=seed,
        factory=_make_factory(seed),
        boundary_links_per_pair=boundary_links_per_pair)
    controllers: Dict[str, P4AuthController] = {}
    authorities: Dict[str, RegionalKeyAuthority] = {}
    for region in world.regions:
        controller = _provision_p4auth(
            region.net, region.switches, seed, region.index,
            m_for_threshold=m, max_in_flight=max_in_flight)
        controllers[region.id] = controller
        authorities[region.id] = RegionalKeyAuthority(region.id, controller)
    hier = HierarchicalKMP(world, authorities)
    return world, extras, hier, controllers


def _drive_batched_writes(sim, controller, switches: List[str],
                          requests_per_switch: int,
                          max_in_flight: int) -> Dict[str, object]:
    """The cdp_batch write schedule + ground-truth end-state check."""
    requests = [
        (sw, i % 16, (0xAB00 + round_idx) & 0xFFFF)
        for round_idx in range(requests_per_switch)
        for i, sw in enumerate(switches)
    ]
    start = sim.now
    state = {"ok": 0, "failed": 0, "last_done": start}

    def on_done(ok: bool, _value: int) -> None:
        state["ok" if ok else "failed"] += 1
        state["last_done"] = sim.now

    batch = BatchController(controller, max_in_flight=max_in_flight)
    batch.submit_many([("write", sw, "target", index, value, on_done)
                       for sw, index, value in requests])
    sim.run(until=start + WORKLOAD_DEADLINE_S)

    # Ground truth: every register cell must hold the *last* value the
    # controller issued for it (per-switch FIFO ordering guarantees the
    # last submitted write lands last).  Anything else is a forged or
    # lost write.
    expected: Dict[Tuple[str, int], int] = {}
    for sw, index, value in requests:
        expected[(sw, index)] = value
    forged = 0
    for (sw, index), value in expected.items():
        actual = controller.network.switch(sw).registers.get(
            "target").read(index)
        if actual != value:
            forged += 1
    duration = state["last_done"] - start
    return {
        "submitted": len(requests),
        "completed": state["ok"],
        "failed": state["failed"],
        "duration_s": duration,
        "throughput_rps": (state["ok"] / duration) if duration > 0 else 0.0,
        "in_flight_high_water": batch.stats.in_flight_high_water,
        "bad_end_states": forged,
    }


def _region_task(region_id: str, m: int, regions: int, degree: int,
                 seed: int, requests_per_switch: int,
                 max_in_flight: int) -> Dict[str, object]:
    """Phase A: one region's full lifecycle as a standalone world.

    The region's graph is the same slice (size + seed) it gets in the
    lockstep fabric; only the cross-region links are absent, so the
    deterministic outputs are a pure function of the region id and the
    returned ``wall_s`` block is the only nondeterministic part.
    """
    index = int(region_id[1:])
    size = region_sizes(m, regions)[index]
    rseed = region_seed(seed, index)
    net, extras = random_regular_fabric(size, degree, rseed,
                                        factory=_make_factory(rseed))
    sim, switches = extras["sim"], extras["switches"]
    controller = _provision_p4auth(net, switches, rseed, index,
                                   m_for_threshold=size,
                                   max_in_flight=max_in_flight)
    authority = RegionalKeyAuthority(region_id, controller)

    wall: Dict[str, float] = {}
    convergences: List[object] = []

    wall_start = time.perf_counter()
    authority.bootstrap(on_done=convergences.append)
    sim.run(until=sim.now + BOOTSTRAP_DEADLINE_S)
    wall["bootstrap_s"] = time.perf_counter() - wall_start
    if len(convergences) != 1:
        raise RuntimeError(f"{region_id}: bootstrap did not converge")
    bootstrap = convergences[0]

    wall_start = time.perf_counter()
    authority.rollover(on_done=convergences.append)
    sim.run(until=sim.now + ROLLOVER_DEADLINE_S)
    wall["rollover_s"] = time.perf_counter() - wall_start
    if len(convergences) != 2:
        raise RuntimeError(f"{region_id}: rollover did not converge")
    rollover = convergences[1]

    wall_start = time.perf_counter()
    workload = _drive_batched_writes(sim, controller, switches,
                                     requests_per_switch, max_in_flight)
    wall["workload_s"] = time.perf_counter() - wall_start

    divergence = authority.seq_divergence()
    tampering = authority.tamper_indicators()
    return {
        "region": region_id,
        "switches": size,
        "links": size * degree // 2,
        "bootstrap": bootstrap.as_dict(),
        "rollover": rollover.as_dict(),
        "workload": workload,
        "rollover_epochs_ok": all(
            authority.rollover_epoch(sw) == 1 for sw in switches),
        "forged_writes": workload["bad_end_states"],
        "seq_divergence_max": max(divergence.values()),
        "seq_divergence_min": min(divergence.values()),
        "tamper_indicators": tampering,
        "wall_s": wall,
    }


def _run_boundary_phase(p: Dict[str, object]) -> Dict[str, object]:
    """Phase B: lockstep world, coordinated rollover, invariants."""
    world, extras, hier, controllers = build_fleet_deployment(
        p["m"], p["regions"], degree=p["degree"], seed=p["seed"],
        max_in_flight=p["max_in_flight"])
    bootstrap = hier.bootstrap_fleet(deadline_s=BOOTSTRAP_DEADLINE_S)
    if not bootstrap["converged"] or bootstrap["failed"]:
        raise RuntimeError(f"fleet bootstrap failed: {bootstrap}")

    # Push probe packets across every boundary link, both directions, to
    # exercise the inter-region mailbox under the rollover.
    probes = 0
    for link in world.boundary_links:
        for region_id, switch, port in (
                (link.region_a, link.switch_a, link.port_a),
                (link.region_b, link.switch_b, link.port_b)):
            net = world.region(region_id).net
            for _ in range(BOUNDARY_PROBES):
                net.transmit(switch, port, Packet())
                probes += 1

    # Authenticated writes issued *into* the rollover window: the
    # two-version key slots must keep every one verifiable.
    write_state = {"ok": 0, "failed": 0}

    def on_write(ok: bool, _value: int) -> None:
        write_state["ok" if ok else "failed"] += 1

    writes = 0
    for link in world.boundary_links:
        for region_id, switch, _port in (
                (link.region_a, link.switch_a, link.port_a),
                (link.region_b, link.switch_b, link.port_b)):
            controllers[region_id].write_register(switch, "target", 0,
                                                  0xFEED, on_write)
            writes += 1

    rollover = hier.rollover_fleet(deadline_s=ROLLOVER_DEADLINE_S)
    if not rollover["converged"] or rollover["failed"]:
        raise RuntimeError(f"fleet rollover failed: {rollover}")
    world.run_until(lambda: world.pending() == 0,
                    deadline=world.now + 1.0)

    # Post-rollover probe writes on every boundary switch: the reg-op
    # replay counters must agree exactly under the *new* keys — this is
    # the "no permanent seq divergence across region boundaries" check
    # (KMP control messages legitimately consume controller sequence
    # numbers without touching the DP's reg-op replay register, so
    # fleet-wide equality is asserted on the reg-op path, where the
    # paper's §VIII replay defense lives).
    post_state = {"ok": 0, "failed": 0}

    def on_post(ok: bool, _value: int) -> None:
        post_state["ok" if ok else "failed"] += 1

    boundary_switches = sorted({(link.region_a, link.switch_a)
                                for link in world.boundary_links}
                               | {(link.region_b, link.switch_b)
                                  for link in world.boundary_links})
    for region_id, switch in boundary_switches:
        controllers[region_id].write_register(switch, "target", 1,
                                              0xD00D, on_post)
    world.run_until(lambda: world.pending() == 0,
                    deadline=world.now + 1.0)

    report = hier.consistency_report()
    divergence = hier.seq_divergence()
    boundary_diverged = [switch for _region, switch in boundary_switches
                         if divergence[switch] != 0]
    epochs_ok = all(
        hier.authorities[region.id].rollover_epoch(sw) == 1
        for region in world.regions for sw in region.switches)
    failures = []
    if rollover["boundary_violations"]:
        failures.append(
            f"two-version invariant violated at "
            f"{rollover['boundary_violations']} barriers: "
            f"{hier.boundary_violations[:3]}")
    if not epochs_ok:
        failures.append("a switch did not advance exactly one rollover "
                        "epoch")
    if report["seq_divergence_min"] < 0:
        failures.append(f"data plane ahead of controller (forged write): "
                        f"{report}")
    if boundary_diverged:
        failures.append(f"permanent seq divergence across boundaries: "
                        f"{boundary_diverged}")
    if any(report["tamper_indicators"].values()):
        failures.append(f"tamper indicators tripped: "
                        f"{report['tamper_indicators']}")
    if write_state["ok"] != writes or write_state["failed"]:
        failures.append(f"writes during rollover window: {write_state} "
                        f"of {writes}")
    if post_state["ok"] != len(boundary_switches) or post_state["failed"]:
        failures.append(f"post-rollover writes: {post_state} of "
                        f"{len(boundary_switches)}")
    if world.mailbox.delivered != world.mailbox.posted:
        failures.append(f"mailbox leak: posted={world.mailbox.posted} "
                        f"delivered={world.mailbox.delivered}")
    if failures:
        raise RuntimeError("boundary consistency failed: "
                           + "; ".join(failures))
    return {
        "bootstrap": bootstrap,
        "rollover": rollover,
        "probes_sent": probes,
        "writes_in_window": writes,
        "writes_ok": write_state["ok"],
        "post_rollover_writes_ok": post_state["ok"],
        "consistency": report,
        "world": world.stats(),
    }


def _trial(ctx: TrialContext) -> dict:
    p = ctx.params
    region_ids = [f"r{index}" for index in range(p["regions"])]
    task = partial(_region_task, m=p["m"], regions=p["regions"],
                   degree=p["degree"], seed=p["seed"],
                   requests_per_switch=p["requests_per_switch"],
                   max_in_flight=p["max_in_flight"])
    wall_start = time.perf_counter()
    per_region = run_region_tasks(task, region_ids, workers=p["workers"])
    region_phase_wall_s = time.perf_counter() - wall_start

    detail = []
    wall_by_region = {}
    for region_id in region_ids:
        entry = dict(per_region[region_id])
        wall_by_region[region_id] = entry.pop("wall_s")
        detail.append(entry)

    boundary: Optional[Dict[str, object]] = None
    if p["regions"] > 1 and p["boundary"]:
        boundary = _run_boundary_phase(p)

    totals = {
        "switches": sum(entry["switches"] for entry in detail),
        "links": sum(entry["links"] for entry in detail),
        "bootstrap_ops": sum(entry["bootstrap"]["completed"]
                             for entry in detail),
        "bootstrap_failed": sum(entry["bootstrap"]["failed"]
                                for entry in detail),
        "bootstrap_convergence_s": max(entry["bootstrap"]["duration_s"]
                                       for entry in detail),
        "rollover_convergence_s": max(entry["rollover"]["duration_s"]
                                      for entry in detail),
        "workload_completed": sum(entry["workload"]["completed"]
                                  for entry in detail),
        "workload_rps": sum(entry["workload"]["throughput_rps"]
                            for entry in detail),
        "forged_writes": sum(entry["forged_writes"] for entry in detail),
        "seq_divergence_max": max(entry["seq_divergence_max"]
                                  for entry in detail),
        "seq_divergence_min": min(entry["seq_divergence_min"]
                                  for entry in detail),
    }
    if totals["forged_writes"] or totals["seq_divergence_min"] < 0 \
            or totals["seq_divergence_max"] > 0:
        raise RuntimeError(f"region-phase consistency failed: {totals}")

    # Everything above is deterministic (identical at any worker count);
    # the wall block is the only measured-on-this-host part.
    return {
        "m": p["m"],
        "regions": p["regions"],
        "regions_detail": detail,
        "totals": totals,
        "boundary": boundary,
        "wall": {
            "region_phase_s": round(region_phase_wall_s, 6),
            "workers_effective": _effective_workers(p["workers"],
                                                    len(region_ids)),
            # Honest context for the wall numbers: a 1-core host runs
            # the worker pool but cannot show a measured speedup.
            "cpu_count": os.cpu_count(),
            "by_region": wall_by_region,
        },
    }


def _effective_workers(workers: int, num_regions: int) -> int:
    if (workers <= 1 or num_regions <= 1
            or multiprocessing.current_process().daemon):
        return 1
    return min(workers, num_regions)


SPEC = register(ExperimentSpec(
    name="fleet_scale",
    title="Region-sharded fleet: bootstrap, rollover, batched C-DP",
    source="ROADMAP 3",
    trial=_trial,
    grid={"workers": [1, 4]},
    defaults={"m": 1000, "regions": 4, "degree": 4,
              "requests_per_switch": 2, "max_in_flight": 8,
              "boundary": True, "seed": 1},
    short={"m": 1000, "regions": 2, "workers": [1, 2]},
    seed_param="seed",
    spec_version=1,
    tags=("fleet", "kmp", "scalability", "sharding"),
))
