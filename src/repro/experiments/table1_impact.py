"""Table I: attack impact across five in-network system classes.

Runs every mini-model (Blink, SilkRoad, NetCache, FlowRadar, NetWarden)
in all three modes and assembles the Table I matrix: each row shows the
system's headline metric without an adversary, under attack, and under
attack with P4Auth — plus whether the state was silently poisoned and
whether the tamper was detected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.engine.registry import register
from repro.engine.spec import ExperimentSpec, TrialContext
from repro.systems import blink, flowradar, netcache, netwarden, silkroad
from repro.systems.tableone import MODES, TableIScenarioResult

SYSTEMS = {
    "blink": blink.run_scenario,
    "silkroad": silkroad.run_scenario,
    "netcache": netcache.run_scenario,
    "flowradar": flowradar.run_scenario,
    "netwarden": netwarden.run_scenario,
}


@dataclass
class TableIResult:
    #: system -> mode -> scenario result.
    matrix: Dict[str, Dict[str, TableIScenarioResult]] = field(
        default_factory=dict)

    def rows(self) -> List[List[object]]:
        out = []
        for system, by_mode in self.matrix.items():
            baseline = by_mode["baseline"]
            attack = by_mode["attack"]
            p4auth = by_mode["p4auth"]
            out.append([
                system,
                baseline.impact_metric,
                f"{baseline.impact_value:.3f}",
                f"{attack.impact_value:.3f}",
                f"{p4auth.impact_value:.3f}",
                "yes" if attack.state_poisoned else "no",
                "yes" if p4auth.detected else "no",
            ])
        return out


def run_table1(systems: Dict = None) -> TableIResult:
    """Run every Table I scenario in every mode."""
    result = TableIResult()
    for name, scenario in (systems or SYSTEMS).items():
        result.matrix[name] = {mode: scenario(mode) for mode in MODES}
    return result


def _trial(ctx: TrialContext) -> TableIScenarioResult:
    return SYSTEMS[ctx.params["system"]](ctx.params["mode"])


SPEC = register(ExperimentSpec(
    name="table1",
    title="Attack impact across system classes",
    source="Table I",
    trial=_trial,
    grid={"system": sorted(SYSTEMS), "mode": list(MODES)},
    tags=("table", "impact"),
))
