"""Controller crash + warm restart under the repro.store journal.

The recovery story, end to end: a batched P4Auth deployment journals
its durable state (``repro.store``), the controller process is
SIGKILLed mid-burst at a chosen journal record type
(:class:`~repro.faults.controller.ControllerKillSwitch`), and a fresh
controller warm-restarts from snapshot + journal tail.  The trial then
proves recovery **re-authenticated rather than bypassed** the paper's
defenses:

- *zero forged writes* — no switch's ``expected_seq`` ever ran ahead of
  the controller's view (negative divergence would mean an unsigned
  write advanced the data plane);
- *zero self-inflicted replay/DoS flags* — the skip-ahead sequence rule
  means the restarted controller's first messages are accepted, with no
  replay alerts, digest failures, or DoS heuristics tripped by its own
  recovery;
- *sequence agreement* — after a post-recovery burst touches every
  switch and quiesces, controller and data-plane counters agree
  exactly (divergence 0 everywhere).

Two specs: ``controller_crash_recovery`` (the chaos trial above,
sweeping fleet size and kill point; wall-clock ``recovery_s`` is the
BENCH number) and ``store_journal_overhead`` (paired same-deployment
bursts with the recorder detached vs attached, host wall-clock — the
journal adds no *virtual* time, so only a wall measurement can price
it).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from typing import Dict, List, Optional

from repro.core.controller import P4AuthController
from repro.engine.registry import register
from repro.engine.spec import ExperimentSpec, TrialContext
from repro.experiments.cdp_batch import (
    build_batch_deployment,
    run_batch_workload,
)
from repro.faults.controller import ControllerKillSwitch
from repro.runtime.batch import BatchController
from repro.store import open_store, warm_restart
from repro.store.journal import RECORD_TYPES
from repro.store.recorder import StateRecorder

#: Virtual seconds the dead controller's in-flight packets get to land
#: before the replacement process comes up.  A real restart takes
#: orders of magnitude longer than a packet RTT; modeling that gap is
#: what keeps late phase-1 traffic from racing the reconciliation reads.
RESTART_GAP_S = 0.05
#: Virtual-time ceiling for each workload phase.
PHASE_DEADLINE_S = 600.0

#: Kill points the crash trial understands: any journal record type,
#: or "time" (a virtual-time trigger mid-burst).
KILL_POINTS = RECORD_TYPES + ("time",)


def _seq_divergence(controller) -> Dict[str, int]:
    """controller next-seq minus data-plane expected, per switch."""
    divergence: Dict[str, int] = {}
    for name, dataplane in controller.dataplanes.items():
        expected = dataplane.switch.registers.get(
            "p4auth_expected_seq").read(0)
        divergence[name] = controller._seq[name] - expected
    return divergence


def _defense_counters(dataplanes) -> Dict[str, int]:
    totals = {"replays_detected": 0, "digest_fail_cdp": 0,
              "digest_fail_dpdp": 0, "alerts_raised": 0}
    for dataplane in dataplanes:
        stats = dataplane.stats
        totals["replays_detected"] += stats.replays_detected
        totals["digest_fail_cdp"] += stats.digest_fail_cdp
        totals["digest_fail_dpdp"] += stats.digest_fail_dpdp
        totals["alerts_raised"] += stats.alerts_raised
    return totals


def _submit_rounds(sim, batch, switches: List[str], rounds: int,
                   counts: Dict[str, int]) -> None:
    """Round-robin write workload through the batch facade."""
    def on_done(ok: bool, _value: int) -> None:
        counts["ok" if ok else "failed"] += 1

    batch.submit_many([
        ("write", sw, "target", i % 16, (0xAB00 + r) & 0xFFFF, on_done)
        for r in range(rounds)
        for i, sw in enumerate(switches)
    ])


def run_crash_trial(params: Dict[str, object],
                    telemetry=None) -> Dict[str, object]:
    """One kill→recover cycle; returns the invariants and timings.

    Importable directly (the crash-point matrix test drives it per
    record type) as well as through the registered spec.
    """
    m = int(params["m"])
    kill_on = str(params["kill_on"])
    if kill_on not in KILL_POINTS:
        raise ValueError(f"kill_on must be one of {KILL_POINTS}")
    fsync = str(params.get("fsync", "batch"))
    max_in_flight = int(params.get("max_in_flight", 8))
    rounds = int(params.get("requests_per_switch", 4))
    rollover = bool(params.get("rollover", kill_on in
                               ("key_rollover", "epoch_advance")))
    state_dir = params.get("state_dir")
    own_state_dir = state_dir is None
    if own_state_dir:
        state_dir = tempfile.mkdtemp(prefix="repro-store-")
    try:
        return _crash_trial(params, str(state_dir), m, kill_on, fsync,
                            max_in_flight, rounds, rollover, telemetry)
    finally:
        if own_state_dir:
            shutil.rmtree(state_dir, ignore_errors=True)


def _crash_trial(params, state_dir: str, m: int, kill_on: str, fsync: str,
                 max_in_flight: int, rounds: int, rollover: bool,
                 telemetry) -> Dict[str, object]:
    sim, net, controller, switches = build_batch_deployment(
        "P4Auth", m=m, degree=int(params.get("degree", 4)),
        seed=int(params.get("seed", 1)), telemetry=telemetry,
        max_in_flight=max_in_flight)
    metrics = telemetry.metrics if telemetry is not None \
        and telemetry.enabled else None

    # Arm the durability layer on the bootstrapped controller.  A small
    # sequence stride makes horizon crossings (seq_advance records)
    # frequent enough that a "seq_advance" kill lands mid-burst.
    journal, snapshots, _records = open_store(state_dir, fsync=fsync,
                                              metrics=metrics)
    batch = BatchController(controller, max_in_flight=max_in_flight)
    recorder = StateRecorder(
        journal, snapshots,
        seq_stride=int(params.get("seq_stride", 2)),
        snapshot_every=params.get("snapshot_every"))
    authority = None
    if rollover:
        from repro.core.kmp import RegionalKeyAuthority
        authority = RegionalKeyAuthority("r0", controller)

    kill = ControllerKillSwitch(net, recorder)
    # key_install and shard_map records only occur while attach()
    # journals the bootstrapped state, so those kill points arm before
    # attach (crash during durability bring-up); the rest arm after, so
    # the kill lands mid-workload.
    if kill_on in ("key_install", "shard_map"):
        kill.arm_on_record(kill_on,
                           occurrence=int(params.get("occurrence", 1)))
    recorder.attach(controller, batch=batch, authority=authority,
                    shard_id="shard-0")
    if kill_on == "time":
        kill.arm_at(float(params.get("kill_delay_s", 0.002)))
    elif kill_on not in ("key_install", "shard_map"):
        kill.arm_on_record(kill_on,
                           occurrence=int(params.get("occurrence", 1)))

    # ---- phase 1: burst until the kill fires -------------------------
    phase1 = {"ok": 0, "failed": 0}
    if kill.kills == 0:
        _submit_rounds(sim, batch, switches, rounds, phase1)
        if authority is not None and kill.kills == 0:
            authority.rollover()
        sim.run(until=sim.now + PHASE_DEADLINE_S)
    if kill.kills == 0:
        # The workload drained before the trigger matched (e.g. a
        # record type this workload never emits): kill now, mid-idle.
        kill.kill()
    # The restart gap: in-flight phase-1 packets land and drop.
    sim.run(until=sim.now + RESTART_GAP_S)
    lost_in_flight = batch.in_flight() + batch.queued()
    defenses_before = _defense_counters(controller.dataplanes.values())

    # ---- recovery ----------------------------------------------------
    dataplanes = list(controller.dataplanes.values())
    wall_start = time.perf_counter()
    controller2 = P4AuthController(
        net, outstanding_threshold=max(1000, 2 * m * max_in_flight))
    for dataplane in dataplanes:
        controller2.provision(dataplane)
    batch2 = BatchController(controller2, max_in_flight=max_in_flight)
    recorder2, report = warm_restart(
        state_dir, controller2, batch=batch2, shard_id="shard-0",
        fsync=fsync, seq_stride=int(params.get("seq_stride", 2)),
        metrics=metrics)
    recovery_s = time.perf_counter() - wall_start
    # Reconciliation reads complete in virtual time.
    sim.run(until=sim.now + RESTART_GAP_S)

    # Switches whose key material did not survive (crash during
    # durability bring-up) fall back to a fresh KMP bootstrap — the
    # cold path warm restart exists to avoid, but always available.
    rebootstrapped = [sw for sw in switches
                      if not controller2.keys.has_local_key(sw)]
    if rebootstrapped:
        done: List[object] = []
        for sw in rebootstrapped:
            controller2.kmp.local_key_init(sw, on_done=done.append)
        sim.run(until=sim.now + 10.0)
        if len(done) != len(rebootstrapped):
            raise RuntimeError(
                f"re-bootstrap incomplete: {len(done)}/"
                f"{len(rebootstrapped)}")

    # ---- phase 2: prove the fleet is fully usable --------------------
    phase2 = {"ok": 0, "failed": 0}
    _submit_rounds(sim, batch2, switches, rounds, phase2)
    sim.run(until=sim.now + PHASE_DEADLINE_S)

    divergence = _seq_divergence(controller2)
    defenses_after = _defense_counters(dataplanes)
    defense_trips = {key: defenses_after[key] - defenses_before[key]
                     for key in defenses_after}
    result = {
        "m": m,
        "kill_on": kill_on,
        "fsync": fsync,
        "killed_at_record": (kill.kill_record.type
                             if kill.kill_record is not None else None),
        "phase1_completed": phase1["ok"],
        "lost_in_flight": lost_in_flight,
        "recovery_s": recovery_s,
        "snapshot_used": report.snapshot_used,
        "replayed_records": report.replayed_records,
        "torn_records": report.torn_records,
        "switches_restored": report.switches_restored,
        "windows_open_at_crash": len(report.windows),
        "windows_reconciled": report.windows_reconciled,
        "rebootstrapped": len(rebootstrapped),
        "phase2_completed": phase2["ok"],
        "phase2_failed": phase2["failed"],
        "forged_writes": sum(1 for v in divergence.values() if v < 0),
        "seq_divergence_max": max(divergence.values(), default=0),
        "seq_divergence_min": min(divergence.values(), default=0),
        "replay_trips": defense_trips["replays_detected"],
        "digest_fail_trips": (defense_trips["digest_fail_cdp"]
                              + defense_trips["digest_fail_dpdp"]),
        "alert_trips": defense_trips["alerts_raised"],
        "dos_suspected": controller2.stats.dos_suspected,
        "unsolicited_nacks": controller2.stats.unsolicited_nacks,
    }
    recorder2.detach()
    # The acceptance invariants live in the trial so a regression fails
    # loudly in any harness (bench, smoke CI, pytest) rather than
    # shipping a green artifact with a broken recovery.
    if result["forged_writes"]:
        raise RuntimeError(f"forged writes detected: {divergence}")
    if result["replay_trips"] or result["alert_trips"] \
            or result["digest_fail_trips"]:
        raise RuntimeError(
            f"recovery tripped data-plane defenses: {defense_trips}")
    if result["dos_suspected"]:
        raise RuntimeError("recovery tripped the DoS heuristic")
    if result["seq_divergence_max"] != 0 or result["seq_divergence_min"] != 0:
        raise RuntimeError(
            f"permanent seq divergence after recovery: {divergence}")
    if result["phase2_completed"] != m * rounds:
        raise RuntimeError(
            f"post-recovery workload incomplete: {phase2['ok']}/{m * rounds}")
    return result


def run_overhead_trial(params: Dict[str, object],
                       telemetry=None) -> Dict[str, object]:
    """Journal-off vs journal-on wall clock over the same deployment.

    The two arms run interleaved bursts over one fleet (identical
    virtual behaviour — the journal consumes no virtual time) and the
    per-arm minimum over ``rounds`` repetitions is compared, which
    cancels host noise the way the paired design in bench_cdp_batch
    does.
    """
    m = int(params["m"])
    fsync = str(params.get("fsync", "batch"))
    max_in_flight = int(params.get("max_in_flight", 8))
    per_switch = int(params.get("requests_per_switch", 8))
    repeats = int(params.get("repeats", 3))
    sim, _net, controller, switches = build_batch_deployment(
        "P4Auth", m=m, degree=int(params.get("degree", 4)),
        seed=int(params.get("seed", 1)), telemetry=telemetry,
        max_in_flight=max_in_flight)
    state_dir = tempfile.mkdtemp(prefix="repro-store-")
    try:
        journal, snapshots, _ = open_store(state_dir, fsync=fsync)
        recorder = StateRecorder(journal, snapshots)

        def burst() -> float:
            started = time.perf_counter()
            result = run_batch_workload(
                sim, controller, switches, mode="batched",
                requests_per_switch=per_switch,
                max_in_flight=max_in_flight)
            wall = time.perf_counter() - started
            if result["completed"] != result["submitted"]:
                raise RuntimeError("overhead burst did not drain")
            return wall

        burst()  # warm-up: JIT-less, but caches/allocators settle
        off_walls: List[float] = []
        on_walls: List[float] = []
        for _ in range(repeats):
            off_walls.append(burst())
            recorder.attach(controller)
            on_walls.append(burst())
            recorder.detach()
        journal.close()
        off = min(off_walls)
        on = min(on_walls)
        return {
            "m": m,
            "fsync": fsync,
            "requests": m * per_switch,
            "wall_off_s": off,
            "wall_on_s": on,
            "overhead_pct": ((on - off) / off * 100.0) if off > 0 else 0.0,
            "journal_records": journal.next_lsn,
        }
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)


def _crash_ctx_trial(ctx: TrialContext) -> dict:
    return run_crash_trial(dict(ctx.params), telemetry=ctx.telemetry)


def _overhead_ctx_trial(ctx: TrialContext) -> dict:
    return run_overhead_trial(dict(ctx.params), telemetry=ctx.telemetry)


SPEC = register(ExperimentSpec(
    name="controller_crash_recovery",
    title="Controller crash + warm restart from the write-ahead journal",
    source="ROADMAP 4",
    trial=_crash_ctx_trial,
    grid={"kill_on": ["seq_advance", "batch_open", "key_rollover"],
          "m": [25, 100]},
    defaults={"degree": 4, "requests_per_switch": 4, "max_in_flight": 8,
              "fsync": "batch", "occurrence": 1, "kill_delay_s": 0.002,
              "snapshot_every": None, "seed": 1},
    short={"kill_on": ["seq_advance"], "m": [9]},
    seed_param="seed",
    supports_telemetry=True,
    tags=("chaos", "store", "recovery"),
))

OVERHEAD_SPEC = register(ExperimentSpec(
    name="store_journal_overhead",
    title="Steady-state journal overhead vs no-journal baseline",
    source="ROADMAP 4",
    trial=_overhead_ctx_trial,
    grid={"fsync": ["batch", "always"]},
    defaults={"m": 25, "degree": 4, "requests_per_switch": 8,
              "max_in_flight": 8, "repeats": 3, "seed": 1},
    short={"fsync": ["batch"], "m": 9, "repeats": 2},
    seed_param="seed",
    supports_telemetry=True,
    tags=("store", "perf"),
))
