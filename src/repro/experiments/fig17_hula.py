"""Fig 17: P4Auth prevents congestion of the compromised path in HULA.

The Fig 3 topology: S1 reaches S5 via S2, S3, and S4.  Probes flow
S5 -> {S2,S3,S4} -> S1; data flows S1 -> best hop -> S5.

1. ``baseline`` — HULA's utilization feedback spreads traffic roughly
   equally across the three paths.
2. ``attack`` — a MitM on the S1-S4 link rewrites ``path_util`` in
   probes to a tiny value: S1 believes the S4 path is idle and reroutes
   >70% of traffic through the compromised link.
3. ``p4auth`` — probes carry per-link digests; S1 detects the tampering,
   drops the probes, alerts the controller, and traffic stays off the
   compromised link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.attacks.link import ProbeFieldTamperer
from repro.engine.registry import register
from repro.engine.spec import ExperimentSpec, TrialContext
from repro.core.auth_dataplane import P4AuthConfig, P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.net.topology import hula_fig3_topology
from repro.systems.hula import (
    HulaDataplane,
    fig3_hula_configs,
    make_data_packet,
    make_probe,
)

MODES = ("baseline", "attack", "p4auth")

#: ToR id of the destination (S5) in the Fig 3 scenario.
DST_TOR = 5


@dataclass
class HulaResult:
    mode: str
    #: Traffic share of each S1 uplink: {"s2": f, "s3": f, "s4": f}.
    shares: Dict[str, float] = field(default_factory=dict)
    data_sent: int = 0
    data_delivered: int = 0
    probes_tampered: int = 0
    probes_dropped_at_s1: int = 0
    alerts: int = 0


def run_hula(mode: str, duration_s: float = 5.0, seed: int = 7,
             probe_period_s: float = 0.005, data_period_s: float = 0.0002,
             warmup_s: float = 0.5, telemetry=None) -> HulaResult:
    """Run one Fig 17 scenario; shares measured after ``warmup_s``."""
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}")
    net, extras = hula_fig3_topology(telemetry=telemetry)
    sim = extras["sim"]
    configs = fig3_hula_configs()
    hulas: Dict[str, HulaDataplane] = {}
    for name, config in configs.items():
        hulas[name] = HulaDataplane(net.switch(name), config).install()

    controller = None
    if mode == "p4auth":
        # P4Auth wraps each switch's pipeline (verify first, sign last).
        dataplanes = {}
        for index, name in enumerate(sorted(configs)):
            dataplane = P4AuthDataplane(
                net.switch(name), k_seed=0xAB00 + index,
                config=P4AuthConfig(protected_headers={"hula_probe"}),
            ).install()
            dataplanes[name] = dataplane
        controller = P4AuthController(net)
        for dataplane in dataplanes.values():
            controller.provision(dataplane)
        controller.kmp.bootstrap_all()
        sim.run(until=0.1)

    if mode in ("attack", "p4auth"):
        link = net.link_between("s1", "s4")
        # Probes travel S4 -> S1.  hula_fig3_topology connects
        # ("s1", 4) <-> ("s4", 1), so that flow is direction "b->a".
        adversary = ProbeFieldTamperer("hula_probe", "path_util", 2,
                                       direction_filter="b->a")
        adversary.attach(link)
    else:
        adversary = None

    h1, h5 = extras["h1"], extras["h5"]

    def send_probe(probe_id: int = 0) -> None:
        if sim.now >= duration_s:
            return
        h5.send(make_probe(DST_TOR, probe_id))
        sim.schedule(probe_period_s, send_probe, probe_id + 1)

    def send_data(seq: int = 0) -> None:
        if sim.now >= duration_s:
            return
        h1.send(make_data_packet(DST_TOR, flow_id=seq, seq=seq & 0xFFFF))
        sim.schedule(data_period_s, send_data, seq + 1)

    sim.schedule(0.0, send_probe)
    sim.schedule(0.05, send_data)

    # Snapshot S1's per-port counters at the end of warmup, then measure.
    s1 = hulas["s1"]
    snapshot: Dict[int, int] = {}

    def take_snapshot() -> None:
        snapshot.update({port: count
                         for port, count in s1.data_tx_per_port.items()})

    sim.schedule(warmup_s, take_snapshot)
    sim.run(until=duration_s)

    port_to_path = {port: name for name, port in extras["paths"].items()}
    counts = {
        name: s1.data_tx_per_port.get(port, 0) - snapshot.get(port, 0)
        for port, name in port_to_path.items()
    }
    total = sum(counts.values()) or 1
    result = HulaResult(
        mode=mode,
        shares={name: count / total for name, count in counts.items()},
        data_sent=h1.sent_count,
        data_delivered=len(h5.received),
        probes_tampered=adversary.stats.modified if adversary else 0,
        probes_dropped_at_s1=(
            net.nodes["s1"].switch.packets_dropped if mode == "p4auth" else 0
        ),
        alerts=len(controller.alerts) if controller is not None else 0,
    )
    return result


def run_all(duration_s: float = 5.0) -> Dict[str, HulaResult]:
    return {mode: run_hula(mode, duration_s) for mode in MODES}


def _trial(ctx: TrialContext) -> HulaResult:
    p = ctx.params
    return run_hula(
        p["mode"], duration_s=p["duration_s"], seed=p["seed"],
        probe_period_s=p["probe_period_s"],
        data_period_s=p["data_period_s"], warmup_s=p["warmup_s"],
        telemetry=ctx.telemetry)


SPEC = register(ExperimentSpec(
    name="fig17",
    title="HULA traffic distribution",
    source="Fig 17",
    trial=_trial,
    grid={"mode": list(MODES)},
    defaults={"duration_s": 5.0, "seed": 7, "probe_period_s": 0.005,
              "data_period_s": 0.0002, "warmup_s": 0.5},
    short={"duration_s": 1.5},
    seed_param="seed",
    supports_telemetry=True,
    tags=("figure", "defense"),
))
