"""Sharded controller-service load: req/s by shard count (ROADMAP item 1).

``cdp_batch_throughput`` showed windowed pipelining beats the paper's
one-request-at-a-time shape inside *one* controller.  This experiment
measures the next layer: the :mod:`repro.service` daemon sharding a
fleet across N controller workers, each with its own deployment and its
own share of the §IV outstanding-request DoS budget
(``issue_window``).  Concurrent authenticated clients drive mixed
read/write batches through the real dispatch surface (token auth,
routing, backpressure included), and fleet throughput is completed
requests over the *busiest shard's* busy virtual time — the honest
scaling number: if sharding didn't help, the busiest shard would be
doing all the work.

Every trial self-checks the security invariants that concurrency could
plausibly break (P4Auth stacks):

- zero C-DP digest failures and zero replay rejections — interleaved
  clients never present out-of-order sequence numbers (the per-switch
  FIFO guarantee);
- no tamper events — nothing a defense flagged as forged;
- every register slot ends at a value some client actually wrote —
  no forged or corrupted write landed;
- controller and data-plane sequence state agree on every switch —
  no divergence that would poison the next request.

A violated invariant raises; it never degrades into a worse number.
"""

from __future__ import annotations

import asyncio
import math
from typing import Dict, List, Set, Tuple

from repro.engine.registry import register
from repro.engine.spec import ExperimentSpec, TrialContext
from repro.runtime.comparison import STACKS

#: Per-op retry budget when a shard answers 503 (backpressure is a
#: contract: callers back off and retry, they don't lose the op).
MAX_RETRIES = 8

REG_NAME = "target"
REG_SIZE = 16


def _plan_rounds(client: int, rounds: int, batch_size: int,
                 switches: List[str], read_fraction: float,
                 ) -> List[List[Dict[str, object]]]:
    """A client's deterministic op schedule: round-robin over the fleet,
    reads interleaved at ``read_fraction``, values encoding their origin
    so the end-state check can attribute every register slot."""
    plans: List[List[Dict[str, object]]] = []
    counter = 0
    for round_idx in range(rounds):
        ops: List[Dict[str, object]] = []
        for k in range(batch_size):
            # Stagger clients so one round touches many shards at once.
            switch = switches[(client * 7 + counter) % len(switches)]
            index = counter % REG_SIZE
            is_read = (counter % 100) < int(read_fraction * 100)
            if is_read:
                ops.append({"kind": "read", "switch": switch,
                            "register": REG_NAME, "index": index})
            else:
                value = ((client & 0xFF) << 24) | ((round_idx & 0xFF) << 16) \
                    | (counter & 0xFFFF)
                ops.append({"kind": "write", "switch": switch,
                            "register": REG_NAME, "index": index,
                            "value": value})
            counter += 1
        plans.append(ops)
    return plans


async def _client_task(client_api, plans, written: Dict[Tuple[str, int],
                                                        Set[int]],
                       tally: Dict[str, int]) -> None:
    from repro.service.client import ServiceError

    for ops in plans:
        pending = ops
        attempt = 0
        while pending:
            try:
                outcome = await client_api.batch(pending)
            except ServiceError as exc:
                if exc.status != 503 or attempt >= MAX_RETRIES:
                    raise
                tally["retries"] += len(pending)
                attempt += 1
                await asyncio.sleep(0)
                continue
            retry: List[Dict[str, object]] = []
            for op, result in zip(pending, outcome["results"]):
                if result.get("rejected"):
                    retry.append(op)
                    continue
                tally["ok" if result["ok"] else "failed"] += 1
                if result["ok"] and op["kind"] == "write":
                    written.setdefault(
                        (op["switch"], op["index"]), set()).add(op["value"])
            if retry:
                if attempt >= MAX_RETRIES:
                    raise RuntimeError(
                        f"{len(retry)} ops still rejected after "
                        f"{MAX_RETRIES} retries")
                tally["retries"] += len(retry)
                attempt += 1
                await asyncio.sleep(0)
            pending = retry


def _check_invariants(service, written: Dict[Tuple[str, int], Set[int]]
                      ) -> None:
    """Raise if any security invariant was violated during the run."""
    for worker in service.workers.values():
        if worker.stack_name != "P4Auth":
            continue
        if worker.stack.tamper_events:
            raise RuntimeError(
                f"tamper events under honest load: "
                f"{worker.stack.tamper_events}")
        for name in worker.switches:
            dataplane = worker.dataplanes[name]
            if dataplane.stats.digest_fail_cdp:
                raise RuntimeError(
                    f"{name}: {dataplane.stats.digest_fail_cdp} C-DP "
                    f"digest failures under honest load")
            if dataplane.stats.replays_detected:
                raise RuntimeError(
                    f"{name}: {dataplane.stats.replays_detected} replay "
                    f"rejections — per-switch FIFO ordering broke")
            ctrl_seq = worker.stack._seq.get(name, 0)
            dp_seq = dataplane._expected_seq.read(0)
            if ctrl_seq != dp_seq:
                raise RuntimeError(
                    f"{name}: seq divergence controller={ctrl_seq} "
                    f"dataplane={dp_seq}")
    for (switch, index), values in written.items():
        final = service.worker_for(switch).net.switch(switch) \
            .registers.get(REG_NAME).read(index)
        if final not in values:
            raise RuntimeError(
                f"{switch}[{index}] ended at {final:#x}, which no "
                f"client wrote (forged or corrupted write)")


async def _drive(p: Dict[str, object]) -> Dict[str, object]:
    from repro.service.client import ServiceClient
    from repro.service.daemon import ControllerService, FleetConfig

    service = ControllerService(FleetConfig(
        stack=p["stack"], m=p["m"], shards=p["shards"],
        registers=((REG_NAME, 64, REG_SIZE),),
        max_in_flight=p["max_in_flight"],
        issue_window=p["issue_window"],
        queue_depth=p["queue_depth"],
        seed=p["seed"]))
    await service.start()
    switches = service.config.switch_names
    written: Dict[Tuple[str, int], Set[int]] = {}
    tally = {"ok": 0, "failed": 0, "retries": 0}
    clients = [ServiceClient(service) for _ in range(p["clients"])]
    await asyncio.gather(*(
        _client_task(api,
                     _plan_rounds(c, p["rounds"], p["batch_size"],
                                  switches, p["read_fraction"]),
                     written, tally)
        for c, api in enumerate(clients)))
    await service.stop()
    if not service.idle:
        raise RuntimeError("service did not drain cleanly")

    _check_invariants(service, written)

    shards = []
    samples: List[float] = []
    for shard_id in service.config.shard_ids:
        worker = service.workers[shard_id]
        shards.append({
            "shard": shard_id,
            "switches": len(worker.switches),
            "completed": worker.stats.completed,
            "busy_virtual_s": worker.stats.busy_s,
        })
        samples.extend(worker.stats.latency_samples)
    completed = sum(s["completed"] for s in shards)
    busy_max = max((s["busy_virtual_s"] for s in shards), default=0.0)
    ordered = sorted(samples)

    def pct(v: float) -> float:
        if not ordered:
            return math.nan
        return ordered[min(len(ordered) - 1,
                           max(0, int(v / 100.0 * len(ordered))))]

    return {
        "stack": p["stack"], "m": p["m"], "shards": p["shards"],
        "clients": p["clients"],
        "submitted": p["clients"] * p["rounds"] * p["batch_size"],
        "completed": completed,
        "failed": tally["failed"],
        "retries_503": tally["retries"],
        "busy_s_max": busy_max,
        "fleet_rps": (completed / busy_max) if busy_max > 0 else 0.0,
        "p50_s": pct(50),
        "p99_s": pct(99),
        "per_shard": shards,
    }


def _trial(ctx: TrialContext) -> dict:
    params = dict(ctx.params)
    # The grid can ask for more shards than a short fleet has switches.
    params["shards"] = min(params["shards"], params["m"])
    return asyncio.run(_drive(params))


SPEC = register(ExperimentSpec(
    name="cdp_service_load",
    title="Controller service req/s by shard count",
    source="service",
    trial=_trial,
    grid={"shards": [1, 2, 4]},
    defaults={"stack": "P4Auth", "m": 25, "clients": 8, "rounds": 6,
              "batch_size": 16, "read_fraction": 0.25, "issue_window": 32,
              "max_in_flight": 8, "queue_depth": 4096, "seed": 1},
    short={"m": 9, "clients": 3, "rounds": 2, "batch_size": 4,
           "shards": [1, 2]},
    seed_param="seed",
    tags=("service", "scalability", "runtime"),
))
