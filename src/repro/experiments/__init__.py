"""Experiment drivers: one module per paper table/figure.

Each driver builds the full scenario (topology, victim system, P4Auth,
adversary), runs the simulation, and returns a structured result.  Every
module also registers an :class:`~repro.engine.spec.ExperimentSpec` with
the engine registry, so the same measurement is reachable three ways:
the legacy ``run_*`` function, ``repro.engine.run_experiment(name)``,
and ``python -m repro run <name>``.  The ``benchmarks/`` suite calls
the specs and prints paper-style tables; integration tests assert their
shapes.
"""

from repro.experiments.fig16_routescout import RouteScoutResult, run_routescout
from repro.experiments.fig17_hula import HulaResult, run_hula
from repro.experiments.fig20_kmp import KmpRttResult, run_kmp_rtt
from repro.experiments.fig21_multihop import MultihopResult, run_multihop
from repro.experiments.table2_resources import run_table2
from repro.experiments.table3_scalability import ScalabilityResult, run_table3
from repro.experiments.attack2_aggregation import (
    run_aggregation,
    run_all as run_aggregation_all,
)

__all__ = [
    "RouteScoutResult",
    "run_routescout",
    "HulaResult",
    "run_hula",
    "KmpRttResult",
    "run_kmp_rtt",
    "MultihopResult",
    "run_multihop",
    "run_table2",
    "ScalabilityResult",
    "run_table3",
    "run_aggregation",
    "run_aggregation_all",
]
