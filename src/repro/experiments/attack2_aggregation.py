"""Attack 2 on in-network aggregation (§II-A): silent result corruption.

Topology: W worker ToR switches feed an aggregation switch; the parameter
server (PS) hangs off the aggregation switch.  An on-link MitM between
worker 0's ToR and the aggregation switch perturbs that worker's
contributions with probability 1/2.

- ``baseline``: every chunk aggregates correctly in one round.
- ``attack``: the switch sums corrupted contributions without noticing;
  the PS (which, like real in-network aggregation, trusts the fabric)
  accepts wrong aggregates **silently** — the worst outcome.
- ``p4auth``: contributions are DP-DP authenticated; tampered ones are
  dropped at the aggregation switch (alerting the controller), the chunk
  stalls, the PS times out, the controller reads the aggregation bitmap
  over the authenticated C-DP channel to identify the missing worker, and
  only that contribution is re-sent.  JCT inflates by the retry rounds,
  but every accepted aggregate is correct.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.attacks.link import ProbeFieldTamperer
from repro.core.auth_dataplane import P4AuthConfig, P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.crypto.prng import XorShiftPrng
from repro.engine.registry import register
from repro.engine.spec import ExperimentSpec, TrialContext
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.net.simulator import EventSimulator
from repro.systems.inaggr import (
    AggregationConfig,
    AggregationDataplane,
    AggregationJobResult,
    make_contribution,
)

MODES = ("baseline", "attack", "p4auth")

ROUND_TIMEOUT_S = 0.005
CHUNK_SPACING_S = 0.02


def run_aggregation(mode: str, chunks: int = 30, num_workers: int = 4,
                    max_retries: int = 6, seed: int = 13,
                    tamper_probability: float = 0.5) -> AggregationJobResult:
    """Run one aggregation job and report correctness + JCT rounds."""
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}")
    sim = EventSimulator()
    net = Network(sim)

    agg_switch = DataplaneSwitch("agg", num_ports=num_workers + 1)
    net.add_switch(agg_switch)
    aggregation = AggregationDataplane(
        agg_switch, AggregationConfig(num_workers=num_workers)).install()

    worker_switches = []
    for worker in range(num_workers):
        name = f"w{worker}"
        switch = DataplaneSwitch(name, num_ports=2)
        switch.pipeline.add_stage(
            "uplink", lambda ctx: ctx.emit(1)
            if ctx.packet.has("agg_update") else None)
        net.add_switch(switch)
        worker_switches.append(switch)
        net.connect(name, 1, "agg", 2 + worker)
    ps_host = net.add_host("ps")
    net.connect("agg", 1, "ps", 1)

    controller: Optional[P4AuthController] = None
    dataplanes: Dict[str, P4AuthDataplane] = {}
    if mode == "p4auth":
        for index, name in enumerate(["agg"] + [s.name for s in
                                                worker_switches]):
            dataplanes[name] = P4AuthDataplane(
                net.switch(name), k_seed=0xA660 + index,
                config=P4AuthConfig(protected_headers={"agg_update"}),
            ).install()
        dataplanes["agg"].map_register("agg_bitmap")
        controller = P4AuthController(net)
        for dataplane in dataplanes.values():
            controller.provision(dataplane)
        controller.kmp.bootstrap_all()
        sim.run(until=1.0)

    adversary = None
    if mode in ("attack", "p4auth"):
        prng = XorShiftPrng(seed)

        def perturb(value: int) -> int:
            if prng.uniform() < tamper_probability:
                return (value + 1000) & 0xFFFFFFFF
            return value

        adversary = ProbeFieldTamperer("agg_update", "value", perturb)
        adversary.attach(net.link_between("w0", "agg"))

    # ------------------------------------------------------------------
    # the job: PS-side orchestration
    # ------------------------------------------------------------------
    expected = {chunk: sum(100 * w + chunk for w in range(num_workers))
                for chunk in range(chunks)}
    received: Dict[int, int] = {}
    rounds_used = {chunk: 0 for chunk in range(chunks)}
    failed: Set[int] = set()
    job = {"job_id": 1}

    def send_contributions(chunk: int, workers: List[int]) -> None:
        rounds_used[chunk] += 1
        for offset, worker in enumerate(workers):
            packet = make_contribution(job["job_id"], chunk, worker,
                                       100 * worker + chunk)
            node = net.nodes[f"w{worker}"]
            sim.schedule(offset * 1e-5, node.receive, packet, 2)
        sim.schedule(ROUND_TIMEOUT_S, check_chunk, chunk)

    def check_chunk(chunk: int) -> None:
        if chunk in received or chunk in failed:
            return
        if rounds_used[chunk] > max_retries:
            failed.add(chunk)
            return
        if mode == "p4auth":
            # Authenticated read of the aggregation bitmap identifies the
            # missing contribution; only that worker re-sends.
            def on_bitmap(ok: bool, bitmap: int) -> None:
                if chunk in received or chunk in failed:
                    return
                missing = [w for w in range(num_workers)
                           if not bitmap & (1 << w)]
                send_contributions(chunk, missing or
                                   list(range(num_workers)))
            controller.read_register("agg", "agg_bitmap", chunk, on_bitmap)
        else:
            # Unprotected PS can only repeat the whole chunk.
            aggregation.reset_chunk(chunk)
            send_contributions(chunk, list(range(num_workers)))

    def on_ps_packet(packet, _now: float) -> None:
        if not packet.has("agg_result"):
            return
        result = packet.get("agg_result")
        received.setdefault(result["chunk_id"], result["value"])

    ps_host.on_packet = on_ps_packet

    start = sim.now
    for chunk in range(chunks):
        sim.schedule(chunk * CHUNK_SPACING_S, send_contributions, chunk,
                     list(range(num_workers)))
    sim.run(until=start + chunks * CHUNK_SPACING_S
            + (max_retries + 2) * ROUND_TIMEOUT_S + 1.0)

    correct = sum(1 for chunk, value in received.items()
                  if value == expected[chunk])
    total_rounds = sum(rounds_used.values())
    dropped = (dataplanes["agg"].stats.digest_fail_dpdp
               if mode == "p4auth" else 0)
    return AggregationJobResult(
        mode=mode,
        chunks=chunks,
        correct_chunks=correct,
        rounds_used=total_rounds,
        jct_rounds=total_rounds / chunks,
        tampered=adversary.stats.modified if adversary else 0,
        dropped_at_switch=dropped,
        alerts=len(controller.alerts) if controller else 0,
        failed_chunks=len(failed),
        notes=f"received={len(received)}/{chunks}",
    )


def run_all(chunks: int = 30) -> Dict[str, AggregationJobResult]:
    return {mode: run_aggregation(mode, chunks=chunks) for mode in MODES}


def _trial(ctx: TrialContext) -> AggregationJobResult:
    p = ctx.params
    return run_aggregation(
        p["mode"], chunks=p["chunks"], num_workers=p["num_workers"],
        max_retries=p["max_retries"], seed=p["seed"],
        tamper_probability=p["tamper_probability"])


SPEC = register(ExperimentSpec(
    name="aggregation",
    title="Attack 2 on in-network aggregation",
    source="Attack 2 (§II-A)",
    trial=_trial,
    grid={"mode": list(MODES)},
    defaults={"chunks": 30, "num_workers": 4, "max_retries": 6,
              "seed": 13, "tamper_probability": 0.5},
    short={"chunks": 8},
    seed_param="seed",
    tags=("attack", "aggregation"),
))
