"""Batched C-DP throughput at production scale (the §XI argument).

Figs 18/19 measure one request at a time: the controller waits a full
round trip before composing the next message, so throughput is pinned to
1/RCT regardless of how many switches exist.  §XI argues a production
deployment amortizes this by working in parallel.  This experiment makes
that argument concrete: the Table III random 4-regular fabric is scaled
to m ∈ {25, 100, 400} switches and the same register workload is driven
two ways over the *same* stack —

- ``mode="sequential"`` — the paper's shape: one request in flight
  globally, next issued on completion (the per-request baseline);
- ``mode="batched"`` — through :class:`repro.runtime.batch.BatchController`,
  a window of requests in flight per switch and all switches concurrent;
- ``mode="vectorized"`` — the batched schedule with the controller's
  digest lane pinned to :mod:`repro.crypto.vectorized`, so whole issue
  bursts are signed in one ``sign_many`` call.

All modes emit byte-identical per-message traffic (same stack, same
compose path, same Eqn 4 digests — the vector lane is bit-identical by
the differential battery); only scheduling and host-CPU signing differ,
so the throughput ratios isolate the pipelining and crypto wins.

The ``cdp_batch_lossy`` variant is the chaos companion: a seeded
Bernoulli drop tap on every control channel while the batched window is
full, checking that bounded retries give every request a terminal
outcome (no window slot leaks, conservation holds).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.core.auth_dataplane import P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.crypto.prng import XorShiftPrng
from repro.dataplane.switch import DataplaneSwitch
from repro.engine.registry import register
from repro.engine.spec import ExperimentSpec, TrialContext
from repro.net.topology import random_regular_fabric
from repro.runtime.batch import BatchController
from repro.runtime.comparison import STACKS
from repro.runtime.p4runtime import P4RuntimeStack
from repro.runtime.plain import PlainController, PlainRegOpDataplane

#: Virtual-time ceiling for one workload run; generous on purpose — the
#: sequential m=400 point is thousands of serialized RTTs.
RUN_DEADLINE_S = 600.0
#: Bootstrap window for the parallel local-key handshakes.
BOOTSTRAP_DEADLINE_S = 10.0


def build_batch_deployment(stack_name: str, m: int = 25, degree: int = 4,
                           seed: int = 1, telemetry=None,
                           request_timeout_s: Optional[float] = None,
                           loss_rate: float = 0.0,
                           max_in_flight: int = 8,
                           digest_lane: str = "auto") -> Tuple:
    """One stack deployed on the m-switch random-regular fabric.

    Returns ``(sim, net, stack, switch_names)`` with every switch
    carrying a 16-slot 64-bit ``target`` register, keys established
    (P4Auth), and — when ``loss_rate`` > 0 — a seeded Bernoulli drop tap
    on every control channel.  The tap is installed *after* key
    bootstrap so setup is loss-free and deterministic; loss applies only
    to the measured workload.
    """
    if stack_name not in STACKS:
        raise ValueError(f"stack must be one of {STACKS}")

    def factory(name: str, num_ports: int) -> DataplaneSwitch:
        node = int(name[2:])
        switch = DataplaneSwitch(name, num_ports=num_ports, seed=seed + node)
        switch.registers.define("target", 64, 16)
        return switch

    net, extras = random_regular_fabric(m, degree, seed, factory=factory,
                                        telemetry=telemetry)
    sim, switches = extras["sim"], extras["switches"]

    if stack_name == "P4Runtime":
        stack = P4RuntimeStack(net, request_timeout_s=request_timeout_s)
        for name in switches:
            stack.provision(net.switch(name))
    elif stack_name == "DP-Reg-RW":
        stack = PlainController(net, request_timeout_s=request_timeout_s)
        for name in switches:
            PlainRegOpDataplane(net.switch(name)).install() \
                .map_register("target")
            stack.provision(net.switch(name))
    else:
        # The outstanding-requests DoS heuristic budgets for ONE switch's
        # worth of pipelining; a batched fleet legitimately holds up to
        # m * window requests open, so the threshold must scale with it.
        stack = P4AuthController(
            net, request_timeout_s=request_timeout_s,
            outstanding_threshold=max(1000, 2 * m * max_in_flight),
            digest_lane=digest_lane)
        done: List[object] = []
        for name in switches:
            node = int(name[2:])
            dataplane = P4AuthDataplane(net.switch(name),
                                        k_seed=0x1000 + node).install()
            dataplane.map_register("target")
            stack.provision(dataplane)
        for name in switches:
            stack.kmp.local_key_init(name, on_done=done.append)
        sim.run(until=sim.now + BOOTSTRAP_DEADLINE_S)
        if len(done) != m:
            raise RuntimeError(
                f"key bootstrap incomplete: {len(done)}/{m} switches")

    if loss_rate > 0.0:
        prng = XorShiftPrng(seed ^ 0xBADC0FFE)

        def lossy(packet, _direction):
            return None if prng.uniform() < loss_rate else packet

        for name in switches:
            net.control_channels[name].add_tap(lossy)

    return sim, net, stack, switches


def run_batch_workload(sim, stack, switches: List[str], mode: str = "batched",
                       kind: str = "write", requests_per_switch: int = 8,
                       max_in_flight: int = 8,
                       reg_name: str = "target") -> Dict[str, object]:
    """Drive the same request list sequentially or batched; measure.

    The request list interleaves switches round-robin so the batched
    windows fill evenly.  Throughput is completed requests over the span
    from first issue to last terminal outcome (virtual time).

    ``mode="vectorized"`` schedules exactly like ``"batched"`` (the
    deployment's forced digest lane is what differs); both submit
    through :meth:`BatchController.submit_many` so whole windows issue
    as single signed bursts.
    """
    if mode not in ("sequential", "batched", "vectorized"):
        raise ValueError(
            "mode must be 'sequential', 'batched', or 'vectorized'")
    requests = [
        (sw, i % 16, (0xAB00 + round_idx) & 0xFFFF)
        for round_idx in range(requests_per_switch)
        for i, sw in enumerate(switches)
    ]
    start = sim.now
    state = {"ok": 0, "failed": 0, "last_done": start}
    rcts: List[float] = []

    if mode in ("batched", "vectorized"):
        batch = BatchController(stack, max_in_flight=max_in_flight)

        def on_done(ok: bool, _value: int) -> None:
            state["ok" if ok else "failed"] += 1
            state["last_done"] = sim.now

        batch.submit_many([
            (kind if kind == "read" else "write", sw, reg_name, index,
             value, on_done)
            for sw, index, value in requests])
        sim.run(until=start + RUN_DEADLINE_S)
        rcts = [s.rct_s for s in batch.stats.samples if s.ok]
        extra = {
            "in_flight_high_water": batch.stats.in_flight_high_water,
            "leaked_in_flight": batch.in_flight(),
            "still_queued": batch.queued(),
        }
    else:
        pending = deque(requests)
        sent = {"at": start}

        def issue() -> None:
            if not pending:
                return
            sw, index, value = pending.popleft()
            sent["at"] = sim.now
            if kind == "read":
                stack.read_register(sw, reg_name, index, on_done)
            else:
                stack.write_register(sw, reg_name, index, value, on_done)

        def on_done(ok: bool, _value: int) -> None:
            state["ok" if ok else "failed"] += 1
            state["last_done"] = sim.now
            if ok:
                rcts.append(sim.now - sent["at"])
            issue()

        issue()
        sim.run(until=start + RUN_DEADLINE_S)
        extra = {"in_flight_high_water": 1, "leaked_in_flight": 0,
                 "still_queued": len(pending)}

    duration = state["last_done"] - start
    completed = state["ok"]
    ordered = sorted(rcts)

    def pct(p: float) -> float:
        if not ordered:
            return math.nan
        return ordered[min(len(ordered) - 1,
                           max(0, int(p / 100.0 * len(ordered))))]

    result = {
        "mode": mode,
        "kind": kind,
        "submitted": len(requests),
        "completed": completed,
        "failed": state["failed"],
        "duration_s": duration,
        "throughput_rps": (completed / duration) if duration > 0 else 0.0,
        "mean_rct_s": (sum(ordered) / len(ordered)) if ordered else math.nan,
        "p50_rct_s": pct(50),
        "p95_rct_s": pct(95),
        "p99_rct_s": pct(99),
    }
    result.update(extra)
    return result


def _trial(ctx: TrialContext) -> dict:
    p = ctx.params
    timeout = p["request_timeout_s"] if p["loss_rate"] else None
    # ``vectorized`` is ``batched`` with the digest lane pinned to the
    # vector implementations; the result payload carries no lane fields,
    # so the lane-equivalence battery can assert payload identity.
    lane = "vector" if p["mode"] == "vectorized" else p.get("digest_lane",
                                                           "auto")
    sim, _net, stack, switches = build_batch_deployment(
        p["stack"], m=p["m"], degree=p["degree"], seed=p["seed"],
        telemetry=ctx.telemetry, request_timeout_s=timeout,
        loss_rate=p["loss_rate"], max_in_flight=p["max_in_flight"],
        digest_lane=lane)
    result = run_batch_workload(
        sim, stack, switches, mode=p["mode"], kind=p["kind"],
        requests_per_switch=p["requests_per_switch"],
        max_in_flight=p["max_in_flight"])
    result.update(stack=p["stack"], m=p["m"], loss_rate=p["loss_rate"])
    # Conservation: with bounded retries every request reaches a terminal
    # outcome — a shortfall means a leaked window slot or lost callback.
    if p["loss_rate"] and timeout is not None:
        accounted = result["completed"] + result["failed"]
        if accounted != result["submitted"]:
            raise RuntimeError(
                f"conservation violated: {accounted} terminal outcomes "
                f"for {result['submitted']} requests")
    return result


SPEC = register(ExperimentSpec(
    name="cdp_batch_throughput",
    title="Batched vs sequential C-DP register throughput",
    source="§XI",
    trial=_trial,
    grid={"stack": list(STACKS),
          "mode": ["sequential", "batched", "vectorized"]},
    defaults={"m": 25, "degree": 4, "requests_per_switch": 8,
              "max_in_flight": 8, "kind": "write", "loss_rate": 0.0,
              "request_timeout_s": 0.05, "seed": 1,
              "digest_lane": "auto"},
    short={"m": 9, "requests_per_switch": 2},
    seed_param="seed",
    spec_version=2,
    supports_telemetry=True,
    tags=("runtime", "batching", "scalability"),
))

LOSSY_SPEC = register(ExperimentSpec(
    name="cdp_batch_lossy",
    title="Batched C-DP path over a lossy control channel",
    source="chaos",
    trial=_trial,
    grid={"loss_rate": [0.0, 0.02, 0.05]},
    defaults={"stack": "P4Auth", "mode": "batched", "m": 9, "degree": 4,
              "requests_per_switch": 4, "max_in_flight": 4, "kind": "write",
              "request_timeout_s": 0.05, "seed": 1},
    short={"loss_rate": [0.0, 0.05]},
    seed_param="seed",
    supports_telemetry=True,
    tags=("chaos", "batching", "runtime"),
))
