"""``repro verify`` — run the static analyzers over registered programs.

Usage (via ``python -m repro verify``)::

    repro verify                 # analyze every registered program
    repro verify --all           # same, explicitly
    repro verify p4auth hula     # analyze a subset
    repro verify --list          # list registered program names
    repro verify --selftest      # run the mutant battery
    repro verify --format json   # machine-readable findings

Exit codes: 0 — clean (warnings allowed); 1 — at least one
ERROR-severity finding (or a failed self-test); 2 — unknown program
name or bad usage.
"""

from __future__ import annotations

import argparse
import json
from typing import List

from repro.verify.findings import Finding, Report
from repro.verify.registry import VerifyEntry, get_entry, program_names


def analyze_entry(entry: VerifyEntry) -> List[Finding]:
    """Run every applicable analyzer over one registry entry."""
    from repro.verify.invariants import analyze_invariants
    from repro.verify.live import analyze_live
    from repro.verify.resources_lint import analyze_resources
    from repro.verify.surface import analyze_surface
    from repro.verify.taint import analyze_taint

    program = entry.program()
    reference = entry.reference_pct() if entry.reference_pct else None
    findings: List[Finding] = []
    findings.extend(analyze_taint(program))
    findings.extend(analyze_resources(program, reference_pct=reference))
    findings.extend(analyze_invariants(program))
    findings.extend(analyze_surface(program))
    if entry.build_switch is not None:
        switch = entry.build_switch()
        findings.extend(analyze_live(program, switch,
                                     check_stages=entry.check_stages))
    return findings


def _run_selftest(fmt: str) -> int:
    from repro.verify.mutants import run_selftest, selftest_ok

    results = run_selftest()
    if fmt == "json":
        print(json.dumps({
            "ok": selftest_ok(results),
            "mutants": [
                {"name": r.name, "expected_rule": r.expected_rule,
                 "caught": r.caught, "rules_fired": sorted(r.rules_fired)}
                for r in results
            ],
        }, indent=2))
    else:
        for r in results:
            status = "caught" if r.caught else "MISSED"
            print(f"[{status}] {r.name}: expected {r.expected_rule}, "
                  f"fired {sorted(r.rules_fired)}")
        verdict = "OK" if selftest_ok(results) else "FAILED"
        print(f"selftest: {verdict} ({len(results)} mutants)")
    return 0 if selftest_ok(results) else 1


def cmd_verify(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro verify",
        description="statically analyze data-plane programs",
    )
    parser.add_argument("programs", nargs="*",
                        help="program names (default: all)")
    parser.add_argument("--all", action="store_true",
                        help="analyze every registered program")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--list", action="store_true",
                        help="list registered programs and exit")
    parser.add_argument("--selftest", action="store_true",
                        help="run the mutant battery and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in program_names():
            print(name)
        return 0
    if args.selftest:
        return _run_selftest(args.format)

    names = args.programs if (args.programs and not args.all) \
        else program_names()
    report = Report()
    for name in names:
        try:
            entry = get_entry(name)
        except KeyError as exc:
            print(f"error: {exc.args[0]}")
            return 2
        report.extend(analyze_entry(entry))

    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
        print(f"verified {len(names)} program(s): "
              f"{len(report.errors())} error(s), "
              f"{len(report.findings)} finding(s) total")
    return 0 if report.ok else 1


__all__ = ["analyze_entry", "cmd_verify"]
