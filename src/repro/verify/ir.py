"""Declarative IR for static analysis of data-plane programs.

The PISA simulator executes pipeline stages as opaque Python callables,
which is great for behavioural fidelity and useless for static
reasoning.  This module defines a small, PISA-shaped intermediate
representation that each program under :mod:`repro.systems` (and the
P4Auth overlay in :mod:`repro.core.auth_ir`) declares alongside its
executable form.  The IR is *data*: expressions over header fields,
metadata, and constants; per-stage operation lists; and declarations of
the tables, registers, hash externs, and headers a program owns.

Analyzers never execute anything — they walk these objects.  The live
cross-checker (:mod:`repro.verify.live`) closes the loop by diffing the
declared IR against the objects an installed switch actually holds, so
the declaration cannot silently rot.

Expressions
-----------

``Const(value, bits)`` · ``FieldRef(header, field)`` · ``MetaRef(name)``
· ``BinOp(op, args)`` where ``op`` is one of the constrained ALU ops a
PISA stage offers (``add sub xor and or shl shr min max concat``).

Operations (in stage order)
---------------------------

``RequireValid(header)``            — validity guard; dominates later field access
``SetMeta(dst, expr)``              — metadata assignment
``SetField(header, field, expr)``   — header field assignment
``RegRead(register, index, dst)``   — register array read into metadata
``RegWrite(register, index, expr)`` — register array write
``RegReadModifyWrite(register, index, expr, dst)``
                                    — atomic stateful ALU op (single-cycle;
                                      NOT a read-after-write hazard)
``ApplyTable(table, keys)``         — match-action table application
``HashDigest(dst, inputs, keyed)``  — hash/HMAC extern; *the* declassifier
``KdfDerive(dst, inputs)``          — KDF extern; output is SECRET
``EmitPacket(headers, fields)``     — packet leaves on the wire
``SendToController(fields)``        — mirror / punt to CPU port
``ExportTelemetry(fields)``         — telemetry/INT export sink
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------

ALU_OPS = frozenset(
    {"add", "sub", "xor", "and", "or", "shl", "shr", "min", "max", "concat"}
)


@dataclass(frozen=True)
class Const:
    value: int
    bits: int = 32


@dataclass(frozen=True)
class FieldRef:
    header: str
    field: str


@dataclass(frozen=True)
class MetaRef:
    name: str


@dataclass(frozen=True)
class BinOp:
    op: str
    args: Tuple["Expr", ...]

    def __post_init__(self) -> None:
        if self.op not in ALU_OPS:
            raise ValueError(f"unknown ALU op {self.op!r}")


Expr = Union[Const, FieldRef, MetaRef, BinOp]


def walk_expr(expr: Expr) -> List[Expr]:
    """Pre-order traversal of an expression tree."""
    out: List[Expr] = [expr]
    if isinstance(expr, BinOp):
        for arg in expr.args:
            out.extend(walk_expr(arg))
    return out


def field_refs(expr: Expr) -> List[FieldRef]:
    return [e for e in walk_expr(expr) if isinstance(e, FieldRef)]


def meta_refs(expr: Expr) -> List[MetaRef]:
    return [e for e in walk_expr(expr) if isinstance(e, MetaRef)]


# --------------------------------------------------------------------------
# operations
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RequireValid:
    header: str


@dataclass(frozen=True)
class SetMeta:
    dst: str
    expr: Expr


@dataclass(frozen=True)
class SetField:
    header: str
    field: str
    expr: Expr


@dataclass(frozen=True)
class RegRead:
    register: str
    index: Expr
    dst: str


@dataclass(frozen=True)
class RegWrite:
    register: str
    index: Expr
    expr: Expr


@dataclass(frozen=True)
class RegReadModifyWrite:
    """Atomic stateful-ALU update: dst <- f(old, expr) in one cycle."""

    register: str
    index: Expr
    expr: Expr
    dst: str


@dataclass(frozen=True)
class ApplyTable:
    table: str
    keys: Tuple[Expr, ...]


@dataclass(frozen=True)
class HashDigest:
    """Hash/HMAC extern invocation.

    ``keyed=True`` means the digest is keyed (HMAC-style) and acts as the
    lattice declassifier: SECRET inputs yield a DIGEST_OK output.  An
    unkeyed hash does NOT declassify — its output keeps the join of its
    input labels.
    """

    dst: str
    inputs: Tuple[Expr, ...]
    keyed: bool = True
    extern: str = "digest"


@dataclass(frozen=True)
class KdfDerive:
    """KDF extern; the derived value is fresh key material (SECRET)."""

    dst: str
    inputs: Tuple[Expr, ...]
    extern: str = "kdf"


@dataclass(frozen=True)
class EmitPacket:
    headers: Tuple[str, ...]
    fields: Tuple[Expr, ...] = ()


@dataclass(frozen=True)
class SendToController:
    fields: Tuple[Expr, ...] = ()


@dataclass(frozen=True)
class ExportTelemetry:
    fields: Tuple[Expr, ...] = ()


Op = Union[
    RequireValid,
    SetMeta,
    SetField,
    RegRead,
    RegWrite,
    RegReadModifyWrite,
    ApplyTable,
    HashDigest,
    KdfDerive,
    EmitPacket,
    SendToController,
    ExportTelemetry,
]


# --------------------------------------------------------------------------
# declarations
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RegisterDecl:
    name: str
    width_bits: int
    size: int
    secret: bool = False


@dataclass(frozen=True)
class TableDecl:
    name: str
    key_bits: int
    entries: int
    match_kind: str = "exact"  # exact | ternary | lpm
    action_bits: int = 32
    has_default: bool = True


@dataclass(frozen=True)
class HeaderDecl:
    """Header declaration; ``fields`` is the ordered (name, bits) layout."""

    name: str
    fields: Tuple[Tuple[str, int], ...]

    @property
    def bit_width(self) -> int:
        return sum(bits for _, bits in self.fields)

    def field_bits(self, name: str) -> Optional[int]:
        for fname, bits in self.fields:
            if fname == name:
                return bits
        return None


@dataclass(frozen=True)
class HashDecl:
    name: str
    units: int = 1


@dataclass(frozen=True)
class StageDecl:
    name: str
    ops: Tuple[Op, ...]


@dataclass
class Program:
    """A complete declared program: decls + ordered stages."""

    name: str
    stages: List[StageDecl] = field(default_factory=list)
    registers: List[RegisterDecl] = field(default_factory=list)
    tables: List[TableDecl] = field(default_factory=list)
    headers: List[HeaderDecl] = field(default_factory=list)
    hashes: List[HashDecl] = field(default_factory=list)
    phv_container_bits: int = 0

    # -- convenience lookups -------------------------------------------------

    def register(self, name: str) -> Optional[RegisterDecl]:
        return next((r for r in self.registers if r.name == name), None)

    def table(self, name: str) -> Optional[TableDecl]:
        return next((t for t in self.tables if t.name == name), None)

    def header(self, name: str) -> Optional[HeaderDecl]:
        return next((h for h in self.headers if h.name == name), None)

    def secret_registers(self) -> List[str]:
        return [r.name for r in self.registers if r.secret]

    def ops(self) -> List[Tuple[str, int, Op]]:
        """Flat (stage, op_index, op) walk in pipeline order."""
        out: List[Tuple[str, int, Op]] = []
        for stage in self.stages:
            for idx, op in enumerate(stage.ops):
                out.append((stage.name, idx, op))
        return out


def op_input_exprs(op: Op) -> Sequence[Expr]:
    """All expressions an op *reads* (for taint propagation)."""
    if isinstance(op, SetMeta):
        return (op.expr,)
    if isinstance(op, SetField):
        return (op.expr,)
    if isinstance(op, RegRead):
        return (op.index,)
    if isinstance(op, RegWrite):
        return (op.index, op.expr)
    if isinstance(op, RegReadModifyWrite):
        return (op.index, op.expr)
    if isinstance(op, ApplyTable):
        return op.keys
    if isinstance(op, (HashDigest, KdfDerive)):
        return op.inputs
    if isinstance(op, (EmitPacket, SendToController, ExportTelemetry)):
        return op.fields
    return ()


__all__ = [
    "ALU_OPS",
    "ApplyTable",
    "BinOp",
    "Const",
    "EmitPacket",
    "ExportTelemetry",
    "Expr",
    "FieldRef",
    "HashDecl",
    "HashDigest",
    "HeaderDecl",
    "KdfDerive",
    "MetaRef",
    "Op",
    "Program",
    "RegRead",
    "RegReadModifyWrite",
    "RegWrite",
    "RegisterDecl",
    "RequireValid",
    "SendToController",
    "SetField",
    "SetMeta",
    "StageDecl",
    "TableDecl",
    "field_refs",
    "meta_refs",
    "op_input_exprs",
    "walk_expr",
]
