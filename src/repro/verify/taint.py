"""Information-flow taint engine over the verify IR.

Lattice: ``PUBLIC < DIGEST_OK < SECRET``.  Sources are register arrays
flagged ``secret`` in the program declaration (seeded from
:mod:`repro.core.secrets` for P4Auth) and the outputs of ``KdfDerive``
ops.  Labels join (max) through every constrained ALU op; the *only*
declassification point is a keyed ``HashDigest`` extern, whose output is
``DIGEST_OK`` regardless of input labels — modelling the P4Auth rule
that key material may influence the wire only through the HMAC digest
(paper Eqn 4).  Unkeyed hashes do not declassify.

Sinks and rules:

* ``EmitPacket``       — any SECRET field/expr  → TAINT001 (ERROR)
* ``RegWrite``/``RegReadModifyWrite`` into a non-secret register with a
  SECRET value                                  → TAINT002 (ERROR)
* ``ApplyTable`` key carrying SECRET            → TAINT003 (WARNING)
* ``ExportTelemetry`` carrying SECRET           → TAINT004 (ERROR)
* ``SendToController`` carrying SECRET          → TAINT005 (ERROR)

The analysis is a single forward pass per stage sequence (the PISA
pipeline is feed-forward, so one pass reaches the fixpoint): metadata
and header-field labels live in an environment threaded through the ops
in declaration order.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Tuple

from repro.verify.findings import Finding, make_finding
from repro.verify.ir import (
    ApplyTable,
    BinOp,
    Const,
    EmitPacket,
    ExportTelemetry,
    Expr,
    FieldRef,
    HashDigest,
    KdfDerive,
    MetaRef,
    Program,
    RegRead,
    RegReadModifyWrite,
    RegWrite,
    SendToController,
    SetField,
    SetMeta,
)


class Label(enum.IntEnum):
    """Taint lattice; join is ``max``."""

    PUBLIC = 0
    DIGEST_OK = 1
    SECRET = 2


class TaintState:
    """Label environment: metadata vars, header fields, register arrays."""

    def __init__(self, program: Program) -> None:
        self.meta: Dict[str, Label] = {}
        self.fields: Dict[Tuple[str, str], Label] = {}
        # Register labels are per-array (index-insensitive): a secret
        # array is secret in every cell.
        self.registers: Dict[str, Label] = {
            r.name: (Label.SECRET if r.secret else Label.PUBLIC)
            for r in program.registers
        }

    def eval(self, expr: Expr) -> Label:
        if isinstance(expr, Const):
            return Label.PUBLIC
        if isinstance(expr, FieldRef):
            return self.fields.get((expr.header, expr.field), Label.PUBLIC)
        if isinstance(expr, MetaRef):
            return self.meta.get(expr.name, Label.PUBLIC)
        if isinstance(expr, BinOp):
            label = Label.PUBLIC
            for arg in expr.args:
                label = max(label, self.eval(arg))
            return label
        raise TypeError(f"unknown expr {expr!r}")


def _describe(label: Label) -> str:
    return label.name


def analyze_taint(program: Program) -> List[Finding]:
    """Run the forward taint pass and return all flow violations."""
    findings: List[Finding] = []
    state = TaintState(program)

    for stage_name, op_index, op in program.ops():
        def report(rule: str, message: str, subject: str = "") -> None:
            findings.append(make_finding(
                rule, program.name, message,
                stage=stage_name, op_index=op_index,
                subject=subject or None))

        if isinstance(op, SetMeta):
            state.meta[op.dst] = state.eval(op.expr)
        elif isinstance(op, SetField):
            state.fields[(op.header, op.field)] = state.eval(op.expr)
        elif isinstance(op, RegRead):
            state.meta[op.dst] = state.registers.get(op.register,
                                                     Label.PUBLIC)
        elif isinstance(op, (RegWrite, RegReadModifyWrite)):
            written = state.eval(op.expr)
            stored = state.registers.get(op.register, Label.PUBLIC)
            if written is Label.SECRET and stored is not Label.SECRET:
                report("TAINT002",
                       f"SECRET value written to non-secret register "
                       f"{op.register!r}", subject=op.register)
            if isinstance(op, RegReadModifyWrite):
                # dst carries the updated cell: join of the stored label
                # and the update expression.
                state.meta[op.dst] = max(stored, written)
        elif isinstance(op, ApplyTable):
            for key in op.keys:
                if state.eval(key) is Label.SECRET:
                    report("TAINT003",
                           f"SECRET value used as match key of table "
                           f"{op.table!r}", subject=op.table)
        elif isinstance(op, HashDigest):
            joined = Label.PUBLIC
            for inp in op.inputs:
                joined = max(joined, state.eval(inp))
            if op.keyed:
                # The declassification boundary: a keyed digest of any
                # inputs (secret or not) is safe to emit.
                state.meta[op.dst] = Label.DIGEST_OK
            else:
                state.meta[op.dst] = joined
        elif isinstance(op, KdfDerive):
            state.meta[op.dst] = Label.SECRET
        elif isinstance(op, EmitPacket):
            for expr in op.fields:
                label = state.eval(expr)
                if label is Label.SECRET:
                    report("TAINT001",
                           f"{_describe(label)} value reaches emitted "
                           f"packet field {expr!r}")
            for header in op.headers:
                for (hname, fname), label in state.fields.items():
                    if hname == header and label is Label.SECRET:
                        report("TAINT001",
                               f"emitted header {header!r} field "
                               f"{fname!r} carries SECRET data",
                               subject=header)
        elif isinstance(op, SendToController):
            for expr in op.fields:
                if state.eval(expr) is Label.SECRET:
                    report("TAINT005",
                           f"SECRET value reaches ToController payload "
                           f"{expr!r}")
        elif isinstance(op, ExportTelemetry):
            for expr in op.fields:
                if state.eval(expr) is Label.SECRET:
                    report("TAINT004",
                           f"SECRET value reaches telemetry export "
                           f"{expr!r}")
        # RequireValid: no taint effect.

    return findings


__all__ = ["Label", "TaintState", "analyze_taint"]
