"""Pipeline invariant checker over the verify IR.

Rules (all ERROR severity):

* **INV001** — every declared table has a default action, and every
  ``ApplyTable`` op references a declared table.  A PISA table with no
  default silently no-ops on miss, which has bitten real programs
  (unexpected forwarding of unauthenticated traffic).
* **INV002** — no register read-after-write within a single stage.  A
  PISA stage touches each register array through one stateful ALU; a
  plain ``RegRead`` after a ``RegWrite`` in the same stage would observe
  the *old* value in hardware even though a Python model happily returns
  the new one.  ``RegReadModifyWrite`` is the atomic single-cycle form
  and is exempt (it both reads and writes in one ALU pass), but a later
  plain read of the same array in the same stage still trips the rule.
* **INV003** — header field access (read or write) requires an earlier
  ``RequireValid`` on that header.  ``RequireValid`` models both the
  parser's validity bit and ``setValid()`` on a header the program
  constructs; validity is feed-forward, so a guard in stage *n* covers
  stages *> n* too.
* **INV004** — any declared header whose name collides with a P4Auth
  wire header must byte-for-byte match the codec layout in
  :func:`repro.core.wire.wire_header_layouts`.
* **INV005** — a constant assigned to a header field must fit the
  field's declared width (and a register-written constant must fit the
  register's cell width).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.wire import wire_header_layouts
from repro.verify.findings import Finding, make_finding
from repro.verify.ir import (
    ApplyTable,
    Const,
    Expr,
    Program,
    RegRead,
    RegReadModifyWrite,
    RegWrite,
    RequireValid,
    SetField,
    field_refs,
    op_input_exprs,
)


def _const_bits_needed(value: int) -> int:
    return max(1, value.bit_length())


def analyze_invariants(program: Program) -> List[Finding]:
    findings: List[Finding] = []
    declared_tables = {t.name: t for t in program.tables}
    declared_headers = {h.name: h for h in program.headers}
    declared_registers = {r.name: r for r in program.registers}

    # ---- INV001: defaults + dangling table references --------------------
    for table in program.tables:
        if not table.has_default:
            findings.append(make_finding(
                "INV001", program.name,
                f"table {table.name!r} has no default action",
                subject=table.name))

    # ---- INV004: wire layout agreement -----------------------------------
    wire_layouts = wire_header_layouts()
    for header in program.headers:
        layout = wire_layouts.get(header.name)
        if layout is None:
            continue
        declared = tuple(header.fields)
        canonical = tuple(layout.fields)
        if declared != canonical:
            findings.append(make_finding(
                "INV004", program.name,
                f"header {header.name!r} declares layout {declared} but "
                f"core.wire defines {canonical}",
                subject=header.name))

    # ---- per-stage walks --------------------------------------------------
    validated: Set[str] = set()  # validity is feed-forward across stages
    for stage in program.stages:
        written_this_stage: Set[str] = set()
        for op_index, op in enumerate(stage.ops):
            def report(rule: str, message: str,
                       subject: Optional[str] = None,
                       _stage: str = stage.name,
                       _idx: int = op_index) -> None:
                findings.append(make_finding(
                    rule, program.name, message,
                    stage=_stage, op_index=_idx, subject=subject))

            if isinstance(op, RequireValid):
                validated.add(op.header)
                continue

            # INV003: every field the op touches needs a validity guard.
            touched: List[Tuple[str, str]] = [
                (ref.header, ref.field)
                for expr in op_input_exprs(op)
                for ref in field_refs(expr)
            ]
            if isinstance(op, SetField):
                touched.append((op.header, op.field))
            for hname, fname in touched:
                if hname not in validated:
                    report("INV003",
                           f"field {hname}.{fname} accessed without a "
                           f"validity guard", subject=hname)

            if isinstance(op, ApplyTable):
                if op.table not in declared_tables:
                    report("INV001",
                           f"op applies undeclared table {op.table!r}",
                           subject=op.table)

            # INV002: plain read after any write to the array this stage.
            if isinstance(op, RegRead):
                if op.register in written_this_stage:
                    report("INV002",
                           f"register {op.register!r} read after write "
                           f"within stage {stage.name!r}",
                           subject=op.register)
            if isinstance(op, (RegWrite, RegReadModifyWrite)):
                written_this_stage.add(op.register)

            # INV005: constants must fit their destination width.
            if isinstance(op, SetField):
                decl = declared_headers.get(op.header)
                width = decl.field_bits(op.field) if decl else None
                if width is not None and isinstance(op.expr, Const):
                    if _const_bits_needed(op.expr.value) > width:
                        report("INV005",
                               f"constant {op.expr.value} does not fit "
                               f"{op.header}.{op.field} ({width}b)",
                               subject=op.header)
            if isinstance(op, (RegWrite, RegReadModifyWrite)):
                reg = declared_registers.get(op.register)
                if reg is not None and isinstance(op.expr, Const):
                    if _const_bits_needed(op.expr.value) > reg.width_bits:
                        report("INV005",
                               f"constant {op.expr.value} does not fit "
                               f"register {op.register!r} "
                               f"({reg.width_bits}b cells)",
                               subject=op.register)

    return findings


__all__ = ["analyze_invariants"]
