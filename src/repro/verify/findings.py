"""Findings model for the static-analysis subsystem.

Every analyzer (taint engine, resource linter, invariant checker, live
cross-checker) reports :class:`Finding` records: a stable rule id, a
severity, the program and (where applicable) the stage/op location, and
a human-readable message.  The CLI renders findings as text or JSON and
exits nonzero iff any ERROR-severity finding is present.

Rule catalogue
--------------

========  ========  ====================================================
rule      severity  meaning
========  ========  ====================================================
TAINT001  ERROR     secret-derived value reaches an emitted header field
TAINT002  ERROR     secret written to a non-secret (C-DP-readable) register
TAINT003  WARNING   secret used as a table match key
TAINT004  ERROR     secret-derived value reaches a telemetry export
TAINT005  ERROR     secret-derived value reaches a ToController payload
RES001    ERROR     static resource usage exceeds a hardware budget
RES002    WARNING   static resource usage above the watermark (85%)
RES003    ERROR     static totals diverge from the Table II reference
INV001    ERROR     table has no default action
INV002    ERROR     register read after write within one stage
INV003    ERROR     header field accessed without a validity guard
INV004    ERROR     wire-format width inconsistent with core.wire
INV005    ERROR     constant does not fit the written field width
LIVE001   ERROR     declared IR diverges from the live switch objects
LIVE002   ERROR     secret register reachable via the mapping table
SURF001   WARNING   register write wire-influenced without a keyed digest
========  ========  ====================================================
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Severity(enum.IntEnum):
    """Ordered so ``max()`` over findings yields the worst one."""

    INFO = 0
    WARNING = 1
    ERROR = 2


#: rule id -> (default severity, one-line description).
RULES: Dict[str, tuple] = {
    "TAINT001": (Severity.ERROR,
                 "secret-derived value reaches an emitted header field"),
    "TAINT002": (Severity.ERROR,
                 "secret written to a non-secret (C-DP-readable) register"),
    "TAINT003": (Severity.WARNING, "secret used as a table match key"),
    "TAINT004": (Severity.ERROR,
                 "secret-derived value reaches a telemetry export"),
    "TAINT005": (Severity.ERROR,
                 "secret-derived value reaches a ToController payload"),
    "RES001": (Severity.ERROR,
               "static resource usage exceeds a hardware budget"),
    "RES002": (Severity.WARNING,
               "static resource usage above the watermark"),
    "RES003": (Severity.ERROR,
               "static totals diverge from the Table II reference"),
    "INV001": (Severity.ERROR, "table has no default action"),
    "INV002": (Severity.ERROR,
               "register read after write within one stage"),
    "INV003": (Severity.ERROR,
               "header field accessed without a validity guard"),
    "INV004": (Severity.ERROR,
               "wire-format width inconsistent with core.wire"),
    "INV005": (Severity.ERROR,
               "constant does not fit the written field width"),
    "LIVE001": (Severity.ERROR,
                "declared IR diverges from the live switch objects"),
    "LIVE002": (Severity.ERROR,
                "secret register reachable via the mapping table"),
    "SURF001": (Severity.WARNING,
                "register write wire-influenced without a keyed digest"),
}


@dataclass(frozen=True)
class Finding:
    """One analyzer verdict, pinned to a rule and a program location."""

    rule: str
    program: str
    message: str
    severity: Severity = Severity.ERROR
    stage: Optional[str] = None
    op_index: Optional[int] = None
    subject: Optional[str] = None  # register / table / header name

    def location(self) -> str:
        parts = [self.program]
        if self.stage is not None:
            parts.append(self.stage)
        if self.op_index is not None:
            parts.append(f"op{self.op_index}")
        return "/".join(parts)

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.name,
            "program": self.program,
            "stage": self.stage,
            "op_index": self.op_index,
            "subject": self.subject,
            "message": self.message,
        }

    def render(self) -> str:
        subject = f" [{self.subject}]" if self.subject else ""
        return (f"{self.severity.name:7s} {self.rule} "
                f"{self.location()}{subject}: {self.message}")


def make_finding(rule: str, program: str, message: str,
                 stage: Optional[str] = None,
                 op_index: Optional[int] = None,
                 subject: Optional[str] = None) -> Finding:
    """A finding carrying the rule's catalogued default severity."""
    if rule not in RULES:
        raise KeyError(f"unknown rule id {rule!r}")
    severity, _ = RULES[rule]
    return Finding(rule=rule, program=program, message=message,
                   severity=severity, stage=stage, op_index=op_index,
                   subject=subject)


@dataclass
class Report:
    """All findings for one or more programs, plus render helpers."""

    findings: List[Finding] = field(default_factory=list)

    def extend(self, more: List[Finding]) -> "Report":
        self.findings.extend(more)
        return self

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def by_rule(self, rule: str) -> List[Finding]:
        return [f for f in self.findings if f.rule == rule]

    @property
    def ok(self) -> bool:
        """True iff no ERROR-severity finding is present."""
        return not self.errors()

    def render_text(self) -> str:
        if not self.findings:
            return "clean: no findings"
        ordered = sorted(self.findings,
                         key=lambda f: (-int(f.severity), f.program,
                                        f.rule, f.stage or ""))
        return "\n".join(f.render() for f in ordered)

    def render_json(self) -> str:
        return json.dumps(
            {"ok": self.ok,
             "errors": len(self.errors()),
             "findings": [f.as_dict() for f in self.findings]},
            indent=2, sort_keys=True)
