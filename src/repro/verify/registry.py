"""Registry of verifiable data-plane programs.

Every program that the ``repro verify`` CLI can analyze is listed here:
the ten in-network systems from :mod:`repro.systems` plus the P4Auth
overlay pipeline itself (:mod:`repro.core.auth_ir`).  Each entry binds

* a *program factory* returning the declarative verify IR,
* optionally a *switch factory* building the live executable twin for
  the LIVE-rule cross-checks,
* whether the IR's stage names must appear in the live pipeline
  (FlowRadar records host-side and installs no pipeline stage), and
* optionally the reference utilization percentages (Table II point)
  that the resource linter's RES003 drift check compares against.

Modules are imported lazily at lookup time so that importing
``repro.verify`` never drags in every system implementation.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.verify.ir import Program


@dataclass(frozen=True)
class VerifyEntry:
    """One verifiable program: factories plus per-program check policy."""

    name: str
    program_factory: Callable[[], Program]
    build_switch: Optional[Callable[[], object]] = None
    check_stages: bool = True
    reference_pct: Optional[Callable[[], Dict[str, float]]] = field(
        default=None)

    def program(self) -> Program:
        return self.program_factory()


#: name -> (module, has live switch twin, stage-order check applies)
_SYSTEM_MODULES = {
    "l3fwd": ("repro.systems.l3fwd", True, True),
    "hula": ("repro.systems.hula", True, True),
    "routescout": ("repro.systems.routescout", True, True),
    "blink": ("repro.systems.blink", True, True),
    "silkroad": ("repro.systems.silkroad", True, True),
    "netcache": ("repro.systems.netcache", True, True),
    # FlowRadar records host-side (``record()``); no pipeline stage to
    # cross-check, so the live diff skips stage ordering for it.
    "flowradar": ("repro.systems.flowradar", True, False),
    "netwarden": ("repro.systems.netwarden", True, True),
    "inaggr": ("repro.systems.inaggr", True, True),
    "int": ("repro.systems.int_telemetry", True, True),
}


def _system_entry(name: str) -> VerifyEntry:
    module_name, has_switch, check_stages = _SYSTEM_MODULES[name]
    module = importlib.import_module(module_name)
    return VerifyEntry(
        name=name,
        program_factory=module.verify_program,
        build_switch=module.build_verify_switch if has_switch else None,
        check_stages=check_stages,
    )


def _p4auth_entry() -> VerifyEntry:
    auth_ir = importlib.import_module("repro.core.auth_ir")
    return VerifyEntry(
        name="p4auth",
        program_factory=auth_ir.p4auth_program,
        build_switch=auth_ir.build_reference_switch,
        check_stages=True,
        reference_pct=auth_ir.reference_utilization_pct,
    )


def program_names() -> List[str]:
    """All registered program names, systems first, p4auth last."""
    return list(_SYSTEM_MODULES) + ["p4auth"]


def get_entry(name: str) -> VerifyEntry:
    """Look up one registry entry; raises KeyError for unknown names."""
    if name == "p4auth":
        return _p4auth_entry()
    if name in _SYSTEM_MODULES:
        return _system_entry(name)
    raise KeyError(
        f"unknown program {name!r}; known: {', '.join(program_names())}")


def all_entries() -> List[VerifyEntry]:
    return [get_entry(name) for name in program_names()]


__all__ = ["VerifyEntry", "program_names", "get_entry", "all_entries"]
