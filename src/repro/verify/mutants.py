"""Mutant self-test battery: seeded violations the analyzers must catch.

A static analyzer that never fires is indistinguishable from one that is
broken.  This module takes the *real* P4Auth program declaration and
applies one deliberate violation at a time — a key-to-header leak, a
budget-busting table, a missing default action, an un-keyed verification
digest, and a smuggled secret mapping-table entry — then asserts that
the corresponding analyzer
reports the expected rule id.  ``repro verify --selftest`` runs the
battery and fails if any mutant slips through.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Set

from repro.verify.ir import (
    EmitPacket,
    FieldRef,
    HashDigest,
    MetaRef,
    Program,
    RegRead,
    RegReadModifyWrite,
    RequireValid,
    SetField,
    StageDecl,
    TableDecl,
)
from repro.verify.findings import Finding


def _p4auth_program() -> Program:
    from repro.core.auth_ir import p4auth_program

    return p4auth_program()


# --------------------------------------------------------------------------
# mutations
# --------------------------------------------------------------------------


def mutant_key_leak() -> Program:
    """Emit the raw authentication key in a header field (TAINT001).

    Models the classic bug P4Auth's design rules out: copying key
    material into the digest field instead of running it through the
    keyed digest extern.
    """
    program = _p4auth_program()
    program.name = "p4auth+key_leak"
    program.stages.append(StageDecl("mut_leak", (
        RequireValid("p4auth"),
        RegRead("p4auth_keys_v0", MetaRef("ig_port"), "stolen_key"),
        SetField("p4auth", "digest", MetaRef("stolen_key")),
        EmitPacket(("p4auth",), fields=(FieldRef("p4auth", "digest"),)),
    )))
    return program


def mutant_budget_bust() -> Program:
    """Declare a table far beyond the TCAM budget (RES001)."""
    program = _p4auth_program()
    program.name = "p4auth+budget_bust"
    program.tables.append(TableDecl(
        "mut_huge_acl", key_bits=512, entries=1_000_000,
        match_kind="ternary", action_bits=64))
    return program


def mutant_missing_default() -> Program:
    """Strip the forwarding table's default action (INV001)."""
    program = _p4auth_program()
    program.name = "p4auth+missing_default"
    program.tables = [
        replace(t, has_default=False) if t.name == "ipv4_lpm" else t
        for t in program.tables
    ]
    return program


def mutant_stripped_digest() -> Program:
    """Un-key the C-DP verification digest (SURF001).

    With ``digest_rx`` no longer keyed, the p4auth header is unguarded
    and the expected-sequence register becomes writable straight from
    the wire — the persona-surface rule must flag it.  The l3fwd flow
    counter (p4auth's one *intentional* SURF001 finding) is stripped
    first, so the rule fires on this mutant iff the lost guard itself is
    detected.
    """
    program = _p4auth_program()
    program.name = "p4auth+stripped_digest"
    program.stages = [
        StageDecl(stage.name, tuple(
            replace(op, keyed=False)
            if isinstance(op, HashDigest) and op.keyed else op
            for op in stage.ops
            if not (isinstance(op, RegReadModifyWrite)
                    and op.register == "flow_stats")))
        for stage in program.stages
    ]
    return program


def _smuggled_mapping_switch():
    """Build the live twin, then map a secret register behind the guard.

    ``map_register`` refuses ``p4auth_*`` names, so this installs the
    mapping-table entry directly — exactly the back door LIVE002 exists
    to catch.
    """
    from repro.core.auth_ir import build_reference_switch
    from repro.dataplane.tables import TableEntry

    switch = build_reference_switch()
    reg_id = switch.registers.id_of("p4auth_kauth")
    mapping = switch.tables["reg_id_to_name_mapping"]
    mapping.register_action("mut_kauth_read", lambda: None)
    mapping.insert(TableEntry(key=(reg_id, 1), action="mut_kauth_read"))
    return switch


# --------------------------------------------------------------------------
# battery
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class MutantResult:
    name: str
    expected_rule: str
    caught: bool
    rules_fired: Set[str]


def _static_rules(program: Program) -> Set[str]:
    from repro.verify.invariants import analyze_invariants
    from repro.verify.resources_lint import analyze_resources
    from repro.verify.surface import analyze_surface
    from repro.verify.taint import analyze_taint

    findings: List[Finding] = []
    findings.extend(analyze_taint(program))
    findings.extend(analyze_resources(program))
    findings.extend(analyze_invariants(program))
    findings.extend(analyze_surface(program))
    return {f.rule for f in findings}


def _live_rules() -> Set[str]:
    from repro.core.auth_ir import p4auth_program
    from repro.verify.live import analyze_live

    switch = _smuggled_mapping_switch()
    return {f.rule for f in analyze_live(p4auth_program(), switch)}


_STATIC_MUTANTS: List = [
    ("key_leak", "TAINT001", mutant_key_leak),
    ("budget_bust", "RES001", mutant_budget_bust),
    ("missing_default", "INV001", mutant_missing_default),
    ("stripped_digest", "SURF001", mutant_stripped_digest),
]


def run_selftest() -> List[MutantResult]:
    """Run every mutant; each result records whether it was caught."""
    results: List[MutantResult] = []
    for name, rule, factory in _STATIC_MUTANTS:
        fired = _static_rules(factory())
        results.append(MutantResult(name, rule, rule in fired, fired))
    live_fired = _live_rules()
    results.append(MutantResult(
        "smuggled_mapping", "LIVE002", "LIVE002" in live_fired, live_fired))
    return results


def selftest_ok(results: List[MutantResult]) -> bool:
    return all(r.caught for r in results)


__all__ = [
    "MutantResult",
    "mutant_budget_bust",
    "mutant_key_leak",
    "mutant_missing_default",
    "mutant_stripped_digest",
    "run_selftest",
    "selftest_ok",
]
