"""Declared-vs-installed cross-checks (rules LIVE001 / LIVE002).

Static analysis is only as good as the declaration it analyzes.  This
module diffs a program's verify IR against the objects an actually
constructed :class:`~repro.dataplane.switch.DataplaneSwitch` holds —
via the ``describe()``/``introspect()`` hooks — so the declaration
cannot silently drift from the executable program:

* **LIVE001** — register missing/extra or layout mismatch (width, size);
  table missing/extra or shape mismatch (key bits, match kind, default
  action); declared stages absent or out of order in the live pipeline;
  secret annotations (:mod:`repro.core.secrets`) disagreeing with the
  IR's ``secret`` flags.

  Table *capacity* is deliberately not compared: ``max_entries`` is an
  allocation policy of the live object, while the IR's ``entries``
  models the Table II sizing point.

* **LIVE002** — a P4Auth-internal or secret register reachable through
  the live ``reg_id_to_name_mapping`` table.  The install-time guard
  (:meth:`~repro.core.auth_dataplane.P4AuthDataplane.map_register`)
  refuses such mappings; this check catches entries smuggled in behind
  its back (which is exactly what the mutant battery does).
"""

from __future__ import annotations

from typing import List

from repro.core.secrets import is_internal_register, is_secret_register
from repro.verify.findings import Finding, make_finding
from repro.verify.ir import Program

MAPPING_TABLE = "reg_id_to_name_mapping"


def _check_registers(program: Program, live_registers: dict,
                     findings: List[Finding]) -> None:
    declared = {r.name: r for r in program.registers}
    for name, decl in declared.items():
        layout = live_registers.get(name)
        if layout is None:
            findings.append(make_finding(
                "LIVE001", program.name,
                f"declared register {name!r} not present on the live "
                f"switch", subject=name))
            continue
        if (layout["width_bits"] != decl.width_bits
                or layout["size"] != decl.size):
            findings.append(make_finding(
                "LIVE001", program.name,
                f"register {name!r} declared {decl.width_bits}b x "
                f"{decl.size} but installed as {layout['width_bits']}b x "
                f"{layout['size']}", subject=name))
    for name in live_registers:
        if name not in declared:
            findings.append(make_finding(
                "LIVE001", program.name,
                f"live register {name!r} is not declared in the verify "
                f"IR", subject=name))
    # Secret-source annotations must agree with core.secrets.
    for name, decl in declared.items():
        if is_secret_register(name) != decl.secret:
            findings.append(make_finding(
                "LIVE001", program.name,
                f"register {name!r}: IR secret flag {decl.secret} "
                f"disagrees with core.secrets", subject=name))


def _check_tables(program: Program, live_tables: dict,
                  findings: List[Finding]) -> None:
    declared = {t.name: t for t in program.tables}
    for name, decl in declared.items():
        info = live_tables.get(name)
        if info is None:
            findings.append(make_finding(
                "LIVE001", program.name,
                f"declared table {name!r} not present on the live switch",
                subject=name))
            continue
        mismatches = []
        if info["key_bits"] != decl.key_bits:
            mismatches.append(
                f"key_bits {decl.key_bits} vs {info['key_bits']}")
        if info["match_kind"] != decl.match_kind:
            mismatches.append(
                f"match_kind {decl.match_kind} vs {info['match_kind']}")
        if info["has_default"] != decl.has_default:
            mismatches.append(
                f"has_default {decl.has_default} vs {info['has_default']}")
        if mismatches:
            findings.append(make_finding(
                "LIVE001", program.name,
                f"table {name!r} diverges from the live switch: "
                + "; ".join(mismatches), subject=name))
    for name in live_tables:
        if name not in declared:
            findings.append(make_finding(
                "LIVE001", program.name,
                f"live table {name!r} is not declared in the verify IR",
                subject=name))


def _check_stages(program: Program, live_stages: List[str],
                  findings: List[Finding]) -> None:
    """Declared stages must appear in the live pipeline, in order."""
    cursor = 0
    for stage in program.stages:
        try:
            cursor = live_stages.index(stage.name, cursor) + 1
        except ValueError:
            findings.append(make_finding(
                "LIVE001", program.name,
                f"declared stage {stage.name!r} missing from (or out of "
                f"order in) the live pipeline {live_stages}",
                subject=stage.name))


def _check_mapping_exposure(program: Program, switch,
                            findings: List[Finding]) -> None:
    table = switch.tables.get(MAPPING_TABLE)
    if table is None:
        return
    id_map = switch.registers.id_map()
    secret_names = set(program.secret_registers())
    for entry in table.entries():
        reg_id = entry.key[0]
        name = id_map.get(reg_id)
        if name is None:
            continue
        if is_internal_register(name) or name in secret_names:
            findings.append(make_finding(
                "LIVE002", program.name,
                f"mapping table exposes internal/secret register "
                f"{name!r} (regId {reg_id}) to C-DP operations",
                subject=name))


def analyze_live(program: Program, switch,
                 check_stages: bool = True) -> List[Finding]:
    """Diff the declared IR against a live switch's installed objects."""
    findings: List[Finding] = []
    view = switch.introspect()
    _check_registers(program, view["registers"], findings)
    _check_tables(program, view["tables"], findings)
    if check_stages:
        _check_stages(program, view["stages"], findings)
    _check_mapping_exposure(program, switch, findings)
    return findings


__all__ = ["MAPPING_TABLE", "analyze_live"]
