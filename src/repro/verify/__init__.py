"""repro.verify — static analysis for the data-plane programs.

Three analyzer families over the declarative IR in
:mod:`repro.verify.ir`:

* :mod:`repro.verify.taint` — key-material information flow (TAINT*),
* :mod:`repro.verify.resources_lint` — Tofino budget linting (RES*),
* :mod:`repro.verify.invariants` — PISA pipeline invariants (INV*),

plus :mod:`repro.verify.live`, which diffs each declaration against the
installed switch objects (LIVE*), and :mod:`repro.verify.mutants`, the
seeded-violation self-test.  ``python -m repro verify`` is the CLI.

Only the findings model and IR are re-exported here; analyzers are
imported lazily by the CLI so that ``import repro.verify`` stays cheap
and free of cycles with :mod:`repro.systems`.
"""

from repro.verify.findings import Finding, Report, Severity, make_finding
from repro.verify.ir import Program

__all__ = ["Finding", "Program", "Report", "Severity", "make_finding"]
