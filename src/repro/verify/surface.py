"""Persona-reachable surface analysis (SURF001).

The persona matrix (``repro.experiments.persona_matrix``) measures which
state each attacker persona can reach *dynamically*; this pass answers
the same question statically: **which register paths can wire input
influence without crossing a keyed digest?**  Any such path is state an
in-path or switch-OS persona can steer by crafting packets — exactly the
pre-P4Auth attack surface of HULA probes (Fig 3), RouteScout latency
aggregates (Fig 2), NetCache sketches, and Blink next-hop registers.

The analysis is a single forward pass (the pipeline is feed-forward),
mirroring :mod:`repro.verify.taint` but tracking *wire influence*
instead of secrecy:

- every header field starts **wire-influenced** (an attacker crafts the
  packet);
- a **keyed** ``HashDigest`` whose inputs cover fields of header ``H``
  guards ``H`` from that point on — downstream reads of its fields are
  authenticated (P4Auth's Eqn 4 check);  an unkeyed hash merely
  propagates influence;
- influence flows through ``SetMeta``/``SetField``/``BinOp`` joins, and
  through registers (a write with influenced data marks the array,
  reads propagate it);
- a ``RegWrite``/``RegReadModifyWrite`` into a non-secret register whose
  **value or index** is wire-influenced raises ``SURF001`` (WARNING) —
  one finding per register, first occurrence wins.

Secret registers are exempt: they are key-store state the data plane
itself manages, not persona-steerable control state (their protection is
the taint pass's job).  SURF001 is a WARNING, not an ERROR: systems
*legitimately* keep wire-driven state (that is what an in-network
control system is); the finding enumerates the surface the persona
matrix must cover and P4Auth's C-DP/DP-DP checks must front-stop.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.verify.findings import Finding, make_finding
from repro.verify.ir import (
    BinOp,
    Const,
    Expr,
    FieldRef,
    HashDigest,
    KdfDerive,
    MetaRef,
    Program,
    RegRead,
    RegReadModifyWrite,
    RegWrite,
    SetField,
    SetMeta,
    field_refs,
)


class SurfaceState:
    """Wire-influence environment threaded through the ops."""

    def __init__(self, program: Program) -> None:
        self.meta: Dict[str, bool] = {}
        #: Per-field overrides; unset header fields default to influenced.
        self.fields: Dict[Tuple[str, str], bool] = {}
        #: Headers covered by a keyed digest so far.
        self.guarded: Set[str] = set()
        #: Register arrays whose content wire input has influenced.
        self.registers: Dict[str, bool] = {
            r.name: False for r in program.registers}
        self.secret: Set[str] = {r.name for r in program.registers
                                 if r.secret}

    def eval(self, expr: Expr) -> bool:
        if isinstance(expr, Const):
            return False
        if isinstance(expr, FieldRef):
            if expr.header in self.guarded:
                return False
            return self.fields.get((expr.header, expr.field), True)
        if isinstance(expr, MetaRef):
            return self.meta.get(expr.name, False)
        if isinstance(expr, BinOp):
            return any(self.eval(arg) for arg in expr.args)
        raise TypeError(f"unknown expr {expr!r}")


def analyze_surface(program: Program) -> List[Finding]:
    """Flag registers reachable from the wire without a keyed digest."""
    findings: List[Finding] = []
    state = SurfaceState(program)
    flagged: Set[str] = set()

    for stage_name, op_index, op in program.ops():
        if isinstance(op, SetMeta):
            state.meta[op.dst] = state.eval(op.expr)
        elif isinstance(op, SetField):
            state.fields[(op.header, op.field)] = state.eval(op.expr)
        elif isinstance(op, RegRead):
            state.meta[op.dst] = state.registers.get(op.register, False)
        elif isinstance(op, HashDigest):
            if op.keyed:
                # The authentication boundary: every header this digest
                # covers is verified downstream of it.
                state.guarded.update(ref.header for inp in op.inputs
                                     for ref in field_refs(inp))
                state.meta[op.dst] = False
            else:
                state.meta[op.dst] = any(state.eval(inp)
                                         for inp in op.inputs)
        elif isinstance(op, KdfDerive):
            state.meta[op.dst] = False
        elif isinstance(op, (RegWrite, RegReadModifyWrite)):
            if op.register in state.secret:
                continue
            via = [label for label, expr in
                   (("value", op.expr), ("index", op.index))
                   if state.eval(expr)]
            if via and op.register not in flagged:
                flagged.add(op.register)
                findings.append(make_finding(
                    "SURF001", program.name,
                    f"register {op.register!r} {'/'.join(via)} is "
                    f"wire-influenced with no keyed digest on the path "
                    f"(persona-steerable surface)",
                    stage=stage_name, op_index=op_index,
                    subject=op.register))
            if state.eval(op.expr):
                state.registers[op.register] = True
            if isinstance(op, RegReadModifyWrite):
                state.meta[op.dst] = (state.registers.get(op.register, False)
                                      or state.eval(op.expr))
        # RequireValid / ApplyTable / Emit / export ops: no surface effect.

    return findings


__all__ = ["SurfaceState", "analyze_surface"]
