"""Static resource linter: price a declared program against the pipe.

The linter converts the verify IR (:class:`~repro.verify.ir.Program`)
into the *same* :class:`~repro.dataplane.resources.ProgramSpec` cost
model the dynamic Table II reproduction uses — one pricing formula, two
consumers — then checks three things:

* **RES001** (ERROR): a resource exceeds its hardware capacity.  This is
  the static twin of the ``RuntimeError`` that
  :meth:`~repro.dataplane.resources.ResourceModel.report` raises.
* **RES002** (WARNING): usage above the 85% watermark — legal but one
  table-size bump away from not fitting.
* **RES003** (ERROR): the static totals diverge from a supplied
  reference report (e.g. the dynamic Table II numbers) by more than the
  tolerance, meaning the declared IR has drifted from the executable
  program.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.dataplane.resources import (
    HASH_UNITS,
    PHV_CONTAINERS,
    SRAM_BLOCKS,
    TCAM_BLOCKS,
    ProgramSpec,
)
from repro.verify.findings import Finding, make_finding
from repro.verify.ir import Program

#: Fraction of a capacity above which RES002 fires.
WATERMARK = 0.85

#: Default RES003 tolerance, in percentage points of utilization.
REFERENCE_TOLERANCE_PCT = 0.5

CAPACITIES: Dict[str, int] = {
    "tcam_blocks": TCAM_BLOCKS,
    "sram_blocks": SRAM_BLOCKS,
    "hash_units": HASH_UNITS,
    "phv_containers": PHV_CONTAINERS,
}


def spec_from_program(program: Program) -> ProgramSpec:
    """Lower the verify IR to the shared ProgramSpec cost model."""
    spec = ProgramSpec(program.name)
    for table in program.tables:
        spec.add_table(table.name, key_bits=table.key_bits,
                       entries=table.entries,
                       uses_tcam=table.match_kind in ("ternary", "lpm"),
                       action_data_bits=table.action_bits)
    for reg in program.registers:
        spec.add_register(reg.name, reg.width_bits, reg.size)
    for hsh in program.hashes:
        spec.add_hash(hsh.name, hsh.units)
    for header in program.headers:
        spec.add_headers(header.name, header.bit_width)
    if program.phv_container_bits:
        spec.add_phv_containers(
            math.ceil(program.phv_container_bits / 32))
    return spec


def static_usage(program: Program) -> Dict[str, int]:
    """Raw block/unit counts recomputed from the declaration alone."""
    spec = spec_from_program(program)
    return {
        "tcam_blocks": spec.tcam_blocks(),
        "sram_blocks": spec.sram_blocks(),
        "hash_units": spec.hash_units(),
        "phv_containers": spec.phv_containers(),
    }


def static_utilization_pct(program: Program) -> Dict[str, float]:
    """Utilization percentages keyed like the Table II rows."""
    usage = static_usage(program)
    return {
        resource: round(100.0 * used / CAPACITIES[resource], 1)
        for resource, used in usage.items()
    }


def analyze_resources(
    program: Program,
    reference_pct: Optional[Dict[str, float]] = None,
    tolerance_pct: float = REFERENCE_TOLERANCE_PCT,
) -> List[Finding]:
    """Budget + watermark checks, plus optional reference diffing.

    ``reference_pct`` maps resource keys (``tcam_blocks`` etc.) to the
    expected utilization percentages; pass the dynamic Table II numbers
    to prove the static IR and the executable spec agree.
    """
    findings: List[Finding] = []
    usage = static_usage(program)

    for resource, used in usage.items():
        capacity = CAPACITIES[resource]
        if used > capacity:
            findings.append(make_finding(
                "RES001", program.name,
                f"{resource} usage {used} exceeds capacity {capacity}",
                subject=resource))
        elif used > capacity * WATERMARK:
            findings.append(make_finding(
                "RES002", program.name,
                f"{resource} usage {used}/{capacity} above "
                f"{int(WATERMARK * 100)}% watermark",
                subject=resource))

    if reference_pct is not None:
        actual_pct = static_utilization_pct(program)
        for resource, expected in reference_pct.items():
            if resource not in actual_pct:
                continue
            got = actual_pct[resource]
            if abs(got - expected) > tolerance_pct:
                findings.append(make_finding(
                    "RES003", program.name,
                    f"static {resource} utilization {got}% diverges "
                    f"from reference {expected}% "
                    f"(tolerance {tolerance_pct} pct-pts)",
                    subject=resource))

    return findings


__all__ = [
    "CAPACITIES",
    "REFERENCE_TOLERANCE_PCT",
    "WATERMARK",
    "analyze_resources",
    "spec_from_program",
    "static_usage",
    "static_utilization_pct",
]
