"""Digest brute-force adversary (paper §VIII, "Digest size").

An attacker wanting to inject a crafted message without the key must
guess the 32-bit digest.  Every wrong guess triggers an alert at the
receiving data plane, revealing the attempt; the expected number of
trials (2^31) makes the attack both slow and loud.  This adversary mounts
a bounded version of that attack so tests and benches can measure the
detection rate.
"""

from __future__ import annotations

from typing import Optional

from repro.core.constants import P4AUTH
from repro.core.messages import build_reg_write_request
from repro.crypto.prng import XorShiftPrng
from repro.dataplane.switch import DataplaneSwitch


class DigestBruteForcer:
    """Sends one crafted write request under many guessed digests."""

    def __init__(self, network, switch_name: str, reg_id: int, index: int,
                 value: int, seed: int = 0x5EED):
        self.network = network
        self.switch_name = switch_name
        self.reg_id = reg_id
        self.index = index
        self.value = value
        self._prng = XorShiftPrng(seed)
        self.attempts = 0

    def attempt(self, guesses: int, seq_num: int = 1,
                spacing_s: float = 1e-4) -> None:
        """Schedule ``guesses`` forged messages, one digest guess each."""
        node = self.network.nodes[self.switch_name]
        for trial in range(guesses):
            forged = build_reg_write_request(self.reg_id, self.index,
                                             self.value, seq_num)
            forged.get(P4AUTH)["digest"] = self._prng.next_bits(32)
            self.network.sim.schedule(
                trial * spacing_s, node.receive, forged,
                DataplaneSwitch.CPU_PORT,
            )
            self.attempts += 1

    @staticmethod
    def expected_trials() -> int:
        """Expected guesses to forge a 32-bit digest (2^31)."""
        return 1 << 31
