"""Adversaries at the compromised switch control plane (C-DP threat).

These model the paper's Attack 1 (§II-A): a malicious library between the
gRPC server agent and the SDK/driver alters the arguments of register
read/write calls — equivalently, the PacketOut/PacketIn messages crossing
the switch OS.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.constants import REG_OP, RegOpType
from repro.dataplane.packet import Packet
from repro.dataplane.switch import DataplaneSwitch
from repro.attacks.base import Adversary

ValueTransform = Callable[[int], int]


def _msg_type_of(packet: Packet) -> Optional[int]:
    """Register-op message type, whether plain (ctl) or P4Auth framed."""
    if packet.has("ctl"):
        return packet.get("ctl")["msgType"]
    if packet.has("p4auth"):
        return packet.get("p4auth")["msgType"]
    return None


class RegisterResponseTamperer(Adversary):
    """Rewrites the value in register *read responses* (DP -> C).

    The RouteScout attack of Fig 2/Fig 16: inflate the latency the
    controller sees for one path so it shifts traffic to the other.
    ``targets`` is a list of (reg_id, index) pairs to hit; ``transform``
    maps the true value to the forged one.
    """

    def __init__(self, targets: List[Tuple[int, int]],
                 transform: ValueTransform):
        super().__init__("response-tamperer", direction_filter="dp->c")
        self.targets = set(targets)
        self.transform = transform

    def process(self, packet: Packet, direction: str) -> Optional[Packet]:
        if not packet.has(REG_OP):
            return packet
        if _msg_type_of(packet) != RegOpType.ACK:
            return packet
        payload = packet.get(REG_OP)
        if (payload["regId"], payload["index"]) in self.targets:
            payload["value"] = self.transform(payload["value"]) & ((1 << 64) - 1)
            self.stats.modified += 1
        return packet


class RegisterRequestTamperer(Adversary):
    """Rewrites the value (or index) in *write requests* (C -> DP).

    The Blink/SilkRoad-style attack: the controller issues a legitimate
    state update and the switch OS substitutes its own.
    """

    def __init__(self, reg_id: int,
                 transform: ValueTransform,
                 index_transform: Optional[Callable[[int], int]] = None):
        super().__init__("request-tamperer", direction_filter="c->dp")
        self.reg_id = reg_id
        self.transform = transform
        self.index_transform = index_transform

    def process(self, packet: Packet, direction: str) -> Optional[Packet]:
        if not packet.has(REG_OP):
            return packet
        if _msg_type_of(packet) != RegOpType.WRITE_REQ:
            return packet
        payload = packet.get(REG_OP)
        if payload["regId"] != self.reg_id:
            return packet
        payload["value"] = self.transform(payload["value"]) & ((1 << 64) - 1)
        if self.index_transform is not None:
            payload["index"] = self.index_transform(payload["index"])
        self.stats.modified += 1
        return packet


class ReplayAttacker(Adversary):
    """Records matching messages in flight, to re-inject them later (§VIII).

    Against P4Auth the replayed message carries a *valid* digest (the
    attacker replays it bit-for-bit), so only the sequence-number defense
    catches it.
    """

    def __init__(self, predicate: Callable[[Packet], bool],
                 direction_filter: str = "c->dp"):
        super().__init__("replayer", direction_filter)
        self.predicate = predicate
        self.recordings: List[Packet] = []

    def process(self, packet: Packet, direction: str) -> Optional[Packet]:
        if self.predicate(packet):
            self.recordings.append(packet.copy())
            self.stats.recorded += 1
        return packet

    def replay(self, network, switch_name: str,
               count: Optional[int] = None) -> int:
        """Re-inject recorded messages into the switch's CPU port.

        The attacker sits below the controller, so injection bypasses the
        controller but still traverses the data plane's checks.
        """
        node = network.nodes[switch_name]
        replayed = 0
        for packet in self.recordings[: count if count is not None else None]:
            network.sim.schedule(0.0, node.receive, packet.copy(),
                                 DataplaneSwitch.CPU_PORT)
            self.stats.injected += 1
            replayed += 1
        return replayed


class DosFlooder:
    """Floods forged register requests at a data plane (§VIII DoS).

    Each forged request carries a random digest; the data plane answers
    every one with a nAck/alert unless its alert rate limit engages —
    which is precisely the mitigation the paper prescribes and the DoS
    benchmark measures.
    """

    def __init__(self, network, switch_name: str, reg_id: int,
                 rate_hz: float = 1000.0, seed: int = 0xBADC0DE):
        from repro.core.messages import build_reg_write_request
        from repro.crypto.prng import XorShiftPrng
        self._build = build_reg_write_request
        self.network = network
        self.switch_name = switch_name
        self.reg_id = reg_id
        self.rate_hz = rate_hz
        self._prng = XorShiftPrng(seed)
        self.sent = 0
        self._active = False
        self._deadline = 0.0
        # Timer-loop generation: every (re)start bumps it, and a pending
        # ``_fire`` from an older generation dies on arrival, so there is
        # never more than one live timer chain no matter how start/stop
        # interleave.
        self._generation = 0

    def start(self, duration_s: float) -> None:
        """Begin (or extend) the flood.

        Calling ``start`` while already active only extends the deadline;
        it never chains a second timer loop (which would double the
        effective rate and corrupt ``sent``).
        """
        deadline = self.network.sim.now + duration_s
        if self._active:
            self._deadline = max(self._deadline, deadline)
            return
        self._active = True
        self._deadline = deadline
        self._generation += 1
        self._fire(self._generation)

    def stop(self) -> None:
        self._active = False

    def _fire(self, generation: Optional[int] = None) -> None:
        sim = self.network.sim
        if generation is None:
            generation = self._generation
        if (generation != self._generation or not self._active
                or sim.now >= self._deadline):
            return
        forged = self._build(self.reg_id, index=0,
                             value=self._prng.next_bits(32),
                             seq_num=self._prng.next_bits(31))
        forged.get("p4auth")["digest"] = self._prng.next_bits(32)
        node = self.network.nodes[self.switch_name]
        sim.schedule(0.0, node.receive, forged, DataplaneSwitch.CPU_PORT)
        self.sent += 1
        sim.schedule(1.0 / self.rate_hz, self._fire, generation)
