"""On-link MitM adversaries (DP-DP threat, Attack 2 of §II-A)."""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.dataplane.packet import Packet
from repro.attacks.base import Adversary

FieldValue = Union[int, Callable[[int], int]]


class ProbeFieldTamperer(Adversary):
    """Rewrites a field of an in-network feedback message in flight.

    The HULA attack of Fig 3/Fig 17: on the S1-S4 link, rewrite
    ``path_util`` in probes heading to S1 so the path via S4 always looks
    least utilized.
    """

    def __init__(self, header: str, field: str, value: FieldValue,
                 direction_filter: Optional[str] = None):
        super().__init__("probe-tamperer", direction_filter)
        self.header = header
        self.field = field
        self.value = value

    def process(self, packet: Packet, direction: str) -> Optional[Packet]:
        if not packet.has(self.header):
            return packet
        target = packet.get(self.header)
        if callable(self.value):
            target[self.field] = self.value(target[self.field])
        else:
            target[self.field] = self.value
        self.stats.modified += 1
        return packet


class KeyExchangeTamperer(Adversary):
    """Alters key-exchange messages (the R3 attack on key management).

    Flipping bits in the public key or salt of an EAK/ADHKD message
    desynchronizes the derived keys — unless the message is
    authenticated, in which case the receiver detects the tamper and the
    exchange simply never completes with a corrupted key.  Works on both
    control channels (local-key exchanges) and links (direct port-key
    updates).
    """

    def __init__(self, flip_mask: int = 0x1,
                 direction_filter: Optional[str] = None,
                 tamper_salt: bool = False):
        super().__init__("keyexchange-tamperer", direction_filter)
        self.flip_mask = flip_mask
        self.tamper_salt = tamper_salt

    def process(self, packet: Packet, direction: str) -> Optional[Packet]:
        modified = False
        if packet.has("adhkd"):
            payload = packet.get("adhkd")
            if self.tamper_salt:
                payload["salt"] = payload["salt"] ^ self.flip_mask
            else:
                payload["pk"] = payload["pk"] ^ self.flip_mask
            modified = True
        elif packet.has("eak"):
            packet.get("eak")["salt"] = packet.get("eak")["salt"] ^ self.flip_mask
            modified = True
        if modified:
            self.stats.modified += 1
        return packet
