"""First-class attacker personas: composable, seeded, declarative.

The attacks battery models each of the paper's point adversaries (§II-A,
§VIII) as a hand-wired object inside one experiment.  This module lifts
them into *personas*: frozen :class:`PersonaSpec` components — pure data,
declared alongside :class:`~repro.faults.plan.FaultPlan` — that a runner
turns into live adversaries with a uniform lifecycle::

    persona = build_persona(PersonaSpec(kind="dos-flooder", rate_hz=400))
    persona.arm(world)       # install taps / timers against a live world
    ...
    persona.disarm()         # withdraw cleanly
    persona.outcome()        # AdversaryStats-based outcome record

Every persona is seeded (same spec + same world seed → byte-identical
injected traffic) and reports a :class:`PersonaOutcome` built on the
shared :class:`~repro.attacks.base.AdversaryStats` shape, so a persona ×
system × load sweep (the ``persona_matrix`` experiment) can compare
reach, detection, and DoS behaviour across the whole matrix.

The six personas and the paper surface each exercises:

========================  ====================================================
kind                      threat modeled
========================  ====================================================
``switch-os-injector``    compromised switch OS (C-DP, Attack 1): tampers
                          register write requests *and* read responses
``probe-mitm``            in-path MitM on DP-DP feedback probes (Attack 2);
                          personas arm it everywhere, but only systems with
                          in-network feedback expose any reachable surface
``replay-flooder``        records validly-signed C-DP writes and re-injects
                          them at rate (§VIII sequence-number defense)
``rollover-racer``        replays a recorded write the instant a new local
                          key installs, racing the key-rollover window
``digest-bruteforcer``    forges one write under many guessed digests
                          (§VIII "Digest size")
``dos-flooder``           floods forged requests to trip the alert rate
                          limiter (§VIII DoS mitigation)
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Type

from repro.attacks.base import Adversary, AdversaryStats
from repro.attacks.bruteforce import DigestBruteForcer
from repro.attacks.control_plane import (
    DosFlooder,
    RegisterRequestTamperer,
    RegisterResponseTamperer,
    ReplayAttacker,
)
from repro.attacks.link import ProbeFieldTamperer
from repro.core.constants import REG_OP, RegOpType
from repro.dataplane.switch import DataplaneSwitch

#: Every persona kind :func:`build_persona` knows how to instantiate.
PERSONA_KINDS = (
    "switch-os-injector",
    "probe-mitm",
    "replay-flooder",
    "rollover-racer",
    "digest-bruteforcer",
    "dos-flooder",
)


@dataclass(frozen=True)
class PersonaSpec:
    """One attacker persona as pure data (frozen, JSONable).

    Declarative on purpose: a spec carries parameters, never callables,
    so it can ride inside a :class:`~repro.faults.plan.FaultPlan`, a
    sweep grid, or a cache key.  ``seed`` feeds every random decision the
    persona makes; identical specs against identical worlds inject
    byte-identical traffic.
    """

    kind: str
    #: Injection/tamper rate where the persona is rate-driven
    #: (replay-flooder, digest-bruteforcer, dos-flooder).
    rate_hz: float = 200.0
    #: PRNG seed for forged values/digests.
    seed: int = 0xAD5EED
    #: Value transform for the C-DP injector: ``v -> v ^ xor_mask``.
    xor_mask: int = 0xDEAD
    #: Forged field value for the DP-DP probe tamperer.
    probe_value: int = 2

    def validate(self) -> None:
        if self.kind not in PERSONA_KINDS:
            raise ValueError(f"unknown persona kind {self.kind!r} "
                             f"(expected one of {PERSONA_KINDS})")
        if self.rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        if self.seed < 0:
            raise ValueError("seed must be >= 0")

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "rate_hz": self.rate_hz,
                "seed": self.seed, "xor_mask": self.xor_mask,
                "probe_value": self.probe_value}


@dataclass
class PersonaWorld:
    """Everything a persona may touch when armed.

    The runner (experiment, chaos scenario, test) builds one of these
    around a live deployment; personas only ever reach the world through
    it, which keeps arm/disarm symmetric and auditable.
    """

    sim: object
    net: object
    controller: object
    switch_name: str
    dataplane: object
    #: The C-DP-mapped register the control loop writes (attack target).
    target_register: str
    control_channel: object
    #: How long the persona should stay active once armed (bounds the
    #: schedules of the timer-driven personas).
    duration_s: float = 1.0
    #: The DP-DP link carrying in-network feedback, if the world has one.
    dp_link: Optional[object] = None
    #: Feedback header/field the DP-DP MitM rewrites, if any.
    probe_header: Optional[str] = None
    probe_field: Optional[str] = None

    def target_reg_id(self) -> int:
        return self.net.switch(self.switch_name).registers.id_of(
            self.target_register)


@dataclass
class PersonaOutcome:
    """Shared outcome record: the persona's reach, in AdversaryStats form."""

    kind: str
    armed_at_s: float
    disarmed_at_s: float
    stats: AdversaryStats = field(default_factory=AdversaryStats)
    #: Persona-specific extras (attempts, replays, etc.).
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "armed_at_s": self.armed_at_s,
            "disarmed_at_s": self.disarmed_at_s,
            "seen": self.stats.seen,
            "modified": self.stats.modified,
            "dropped": self.stats.dropped,
            "injected": self.stats.injected,
            "recorded": self.stats.recorded,
            **self.extra,
        }


class Persona:
    """Base persona: uniform ``arm(world)/disarm()`` lifecycle."""

    def __init__(self, spec: PersonaSpec):
        spec.validate()
        self.spec = spec
        self.world: Optional[PersonaWorld] = None
        self.armed_at_s = -1.0
        self.disarmed_at_s = -1.0
        self._armed = False

    # -- lifecycle ---------------------------------------------------------

    def arm(self, world: PersonaWorld) -> "Persona":
        if self._armed:
            raise RuntimeError(f"{self.spec.kind} persona is already armed")
        self.world = world
        self.armed_at_s = world.sim.now
        self._armed = True
        self._arm(world)
        return self

    def disarm(self) -> None:
        if not self._armed:
            return
        self._armed = False
        self.disarmed_at_s = self.world.sim.now
        self._disarm(self.world)

    @property
    def armed(self) -> bool:
        return self._armed

    def outcome(self) -> PersonaOutcome:
        now = self.world.sim.now if self.world is not None else -1.0
        return PersonaOutcome(
            kind=self.spec.kind,
            armed_at_s=self.armed_at_s,
            disarmed_at_s=(self.disarmed_at_s if self.disarmed_at_s >= 0
                           else now),
            stats=self._stats(),
            extra=self._extra(),
        )

    # -- subclass hooks ----------------------------------------------------

    def _arm(self, world: PersonaWorld) -> None:
        raise NotImplementedError

    def _disarm(self, world: PersonaWorld) -> None:
        raise NotImplementedError

    def _stats(self) -> AdversaryStats:
        return AdversaryStats()

    def _extra(self) -> Dict[str, float]:
        return {}


def _is_reg_write(packet) -> bool:
    """True for register write requests, plain or P4Auth framed."""
    if not packet.has(REG_OP):
        return False
    for framing in ("p4auth", "ctl"):
        if packet.has(framing):
            return packet.get(framing)["msgType"] == RegOpType.WRITE_REQ
    return False


def _merge_stats(adversaries: List[Adversary]) -> AdversaryStats:
    total = AdversaryStats()
    for adversary in adversaries:
        total.seen += adversary.stats.seen
        total.modified += adversary.stats.modified
        total.dropped += adversary.stats.dropped
        total.injected += adversary.stats.injected
        total.recorded += adversary.stats.recorded
    return total


class SwitchOsInjector(Persona):
    """Compromised switch OS (C-DP): tampers requests and responses.

    Wraps :class:`RegisterRequestTamperer` (write requests, ``v ^ mask``)
    and :class:`RegisterResponseTamperer` (read responses of the target
    register) on the world's control channel — the §II-A malicious
    preloaded library, as one composable unit.
    """

    kind = "switch-os-injector"

    def __init__(self, spec: PersonaSpec):
        super().__init__(spec)
        self._adversaries: List[Adversary] = []

    def _arm(self, world: PersonaWorld) -> None:
        reg_id = world.target_reg_id()
        mask = self.spec.xor_mask
        request = RegisterRequestTamperer(reg_id,
                                          transform=lambda v: v ^ mask)
        indices = range(world.net.switch(world.switch_name)
                        .registers.get(world.target_register).size)
        response = RegisterResponseTamperer(
            targets=[(reg_id, index) for index in indices],
            transform=lambda v: v ^ mask)
        self._adversaries = [request, response]
        for adversary in self._adversaries:
            adversary.attach(world.control_channel)

    def _disarm(self, world: PersonaWorld) -> None:
        for adversary in self._adversaries:
            adversary.detach_all()

    def _stats(self) -> AdversaryStats:
        return _merge_stats(self._adversaries)


class ProbeMitm(Persona):
    """In-path MitM on DP-DP feedback probes (Attack 2).

    Arms a :class:`ProbeFieldTamperer` on the world's DP-DP link.  On a
    world with no feedback link or probe header the persona arms as a
    no-op — that asymmetry (zero reachable surface) is itself a measured
    result of the matrix, not an error.
    """

    kind = "probe-mitm"

    def __init__(self, spec: PersonaSpec):
        super().__init__(spec)
        self._tamperer: Optional[ProbeFieldTamperer] = None

    def _arm(self, world: PersonaWorld) -> None:
        if world.dp_link is None or world.probe_header is None:
            return
        self._tamperer = ProbeFieldTamperer(
            world.probe_header, world.probe_field or "path_util",
            self.spec.probe_value)
        self._tamperer.attach(world.dp_link)

    def _disarm(self, world: PersonaWorld) -> None:
        if self._tamperer is not None:
            self._tamperer.detach_all()

    def _stats(self) -> AdversaryStats:
        if self._tamperer is None:
            return AdversaryStats()
        return self._tamperer.stats

    def _extra(self) -> Dict[str, float]:
        return {"surface_reachable": 1.0 if self._tamperer else 0.0}


class ReplayFlooder(Persona):
    """Records validly-signed writes and re-injects them at rate (§VIII).

    Replays carry a bit-for-bit valid digest, so only the
    sequence-number defense catches them.  Re-injection is a seeded
    timer loop: round-robin over the recordings at ``rate_hz``.
    """

    kind = "replay-flooder"

    def __init__(self, spec: PersonaSpec):
        super().__init__(spec)
        self._recorder: Optional[ReplayAttacker] = None
        self._cursor = 0
        self._generation = 0

    def _arm(self, world: PersonaWorld) -> None:
        self._recorder = ReplayAttacker(_is_reg_write)
        self._recorder.attach(world.control_channel)
        self._generation += 1
        # Give the recorder a moment to capture live traffic, then flood.
        world.sim.schedule(min(0.05, world.duration_s / 4),
                           self._tick, self._generation)

    def _disarm(self, world: PersonaWorld) -> None:
        self._generation += 1
        if self._recorder is not None:
            self._recorder.detach_all()

    def _tick(self, generation: int) -> None:
        world = self.world
        if (generation != self._generation or not self._armed
                or world.sim.now >= self.armed_at_s + world.duration_s):
            return
        recordings = self._recorder.recordings
        if recordings:
            packet = recordings[self._cursor % len(recordings)]
            self._cursor += 1
            node = world.net.nodes[world.switch_name]
            world.sim.schedule(0.0, node.receive, packet.copy(),
                               DataplaneSwitch.CPU_PORT)
            self._recorder.stats.injected += 1
        world.sim.schedule(1.0 / self.spec.rate_hz, self._tick, generation)

    def _stats(self) -> AdversaryStats:
        if self._recorder is None:
            return AdversaryStats()
        return self._recorder.stats


class RolloverRacer(Persona):
    """Replays a recorded write the instant a new local key installs.

    Hooks the data plane's ``on_local_key_installed`` notification and
    fires a replay burst inside the rollover window — the narrow race
    where a stale-keyed or stale-sequence message is most plausible.
    """

    kind = "rollover-racer"

    #: Replays fired per observed key installation.
    BURST = 4

    def __init__(self, spec: PersonaSpec):
        super().__init__(spec)
        self._recorder: Optional[ReplayAttacker] = None
        self._hook: Optional[Callable] = None
        self.rollovers_raced = 0

    def _arm(self, world: PersonaWorld) -> None:
        self._recorder = ReplayAttacker(lambda p: p.has(REG_OP))
        self._recorder.attach(world.control_channel)

        def on_key_installed(_version: int, _now: float) -> None:
            if not self._armed:
                return
            self.rollovers_raced += 1
            recordings = self._recorder.recordings
            node = world.net.nodes[world.switch_name]
            for packet in recordings[-self.BURST:]:
                world.sim.schedule(0.0, node.receive, packet.copy(),
                                   DataplaneSwitch.CPU_PORT)
                self._recorder.stats.injected += 1

        self._hook = on_key_installed
        world.dataplane.on_local_key_installed.append(self._hook)

    def _disarm(self, world: PersonaWorld) -> None:
        if self._recorder is not None:
            self._recorder.detach_all()
        if self._hook in world.dataplane.on_local_key_installed:
            world.dataplane.on_local_key_installed.remove(self._hook)

    def _stats(self) -> AdversaryStats:
        if self._recorder is None:
            return AdversaryStats()
        return self._recorder.stats

    def _extra(self) -> Dict[str, float]:
        return {"rollovers_raced": float(self.rollovers_raced)}


class DigestBruteForcerPersona(Persona):
    """Forges one write under many guessed digests (§VIII).

    Schedules ``rate_hz * duration_s`` guesses, evenly spaced, at arm
    time.  Every wrong guess is a digest failure at the data plane —
    slow, loud, and exactly the detection-rate experiment the paper
    describes.
    """

    kind = "digest-bruteforcer"

    def __init__(self, spec: PersonaSpec):
        super().__init__(spec)
        self._forcer: Optional[DigestBruteForcer] = None

    def _arm(self, world: PersonaWorld) -> None:
        self._forcer = DigestBruteForcer(
            world.net, world.switch_name, world.target_reg_id(), index=0,
            value=self.spec.xor_mask, seed=self.spec.seed)
        guesses = max(1, int(self.spec.rate_hz * world.duration_s))
        self._forcer.attempt(guesses, seq_num=1,
                             spacing_s=1.0 / self.spec.rate_hz)

    def _disarm(self, world: PersonaWorld) -> None:
        pass  # all guesses were scheduled inside the armed window

    def _stats(self) -> AdversaryStats:
        stats = AdversaryStats()
        if self._forcer is not None:
            stats.injected = self._forcer.attempts
        return stats

    def _extra(self) -> Dict[str, float]:
        return {"attempts": float(self._forcer.attempts
                                  if self._forcer else 0)}


class DosFlooderPersona(Persona):
    """Floods forged requests to trip the alert rate limiter (§VIII)."""

    kind = "dos-flooder"

    def __init__(self, spec: PersonaSpec):
        super().__init__(spec)
        self._flooder: Optional[DosFlooder] = None

    def _arm(self, world: PersonaWorld) -> None:
        self._flooder = DosFlooder(
            world.net, world.switch_name, world.target_reg_id(),
            rate_hz=self.spec.rate_hz, seed=self.spec.seed)
        self._flooder.start(world.duration_s)

    def _disarm(self, world: PersonaWorld) -> None:
        if self._flooder is not None:
            self._flooder.stop()

    def _stats(self) -> AdversaryStats:
        stats = AdversaryStats()
        if self._flooder is not None:
            stats.injected = self._flooder.sent
        return stats


_PERSONA_CLASSES: Dict[str, Type[Persona]] = {
    cls.kind: cls
    for cls in (SwitchOsInjector, ProbeMitm, ReplayFlooder, RolloverRacer,
                DigestBruteForcerPersona, DosFlooderPersona)
}

assert set(_PERSONA_CLASSES) == set(PERSONA_KINDS)


def build_persona(spec: PersonaSpec) -> Persona:
    """Instantiate the runtime persona for a spec."""
    spec.validate()
    return _PERSONA_CLASSES[spec.kind](spec)


# ---------------------------------------------------------------------------
# shared ground truth + wire capture
# ---------------------------------------------------------------------------


class GroundTruthSampler:
    """Samples a target register straight out of the simulated ASIC.

    The chaos suite's zero-forged-writes invariant, factored out for
    reuse across the persona matrix: a forged write shows up in these
    samples even if every counter lied.  ``allowed`` is held by
    reference, so callers may extend it (e.g. a post-chaos clean write)
    after sampling starts.
    """

    def __init__(self, sim, switch, reg_name: str, allowed: Set[int],
                 index: int = 0, period_s: float = 0.05):
        self.sim = sim
        self.allowed = allowed
        self.index = index
        self.period_s = period_s
        self.samples: List[int] = []
        self._register = switch.registers.get(reg_name)
        self._until_s = 0.0

    def start(self, until_s: float) -> None:
        """Begin periodic sampling, running until virtual ``until_s``."""
        self._until_s = until_s
        self._sample()

    def _sample(self) -> None:
        self.samples.append(self._register.read(self.index))
        if self.sim.now < self._until_s:
            self.sim.schedule(self.period_s, self._sample)

    def forged(self) -> List[int]:
        """Every sampled value outside the allowed set."""
        return [value for value in self.samples
                if value not in self.allowed]


class WireRecorder:
    """Records the serialized bytes of packets arriving at one switch.

    Wraps the switch node's ``receive`` so injected traffic — which
    enters via the CPU port and never crosses a tappable channel — is
    captured too.  Two runs with identical seeds must produce identical
    ``frames`` lists (the persona byte-determinism contract).
    """

    def __init__(self, net, switch_name: str, cpu_only: bool = True):
        self._node = net.nodes[switch_name]
        self._original = self._node.receive
        self.cpu_only = cpu_only
        self.frames: List[bytes] = []

        def recording(packet, ingress_port: int) -> None:
            if not self.cpu_only or ingress_port == DataplaneSwitch.CPU_PORT:
                self.frames.append(packet.serialize())
            self._original(packet, ingress_port)

        self._node.receive = recording

    def restore(self) -> None:
        self._node.receive = self._original


__all__ = [
    "PERSONA_KINDS",
    "GroundTruthSampler",
    "Persona",
    "PersonaOutcome",
    "PersonaSpec",
    "PersonaWorld",
    "WireRecorder",
    "build_persona",
]
