"""Adversary base machinery: tap lifecycle and bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.dataplane.packet import Packet


@dataclass
class AdversaryStats:
    seen: int = 0
    modified: int = 0
    dropped: int = 0
    injected: int = 0
    recorded: int = 0


class Adversary:
    """Base class: attach to a link or control channel as a tap.

    Subclasses implement :meth:`process`, returning the (possibly
    modified) packet or None to drop it.  ``direction_filter`` restricts
    the adversary to one flow direction (``"a->b"``/``"b->a"`` on links,
    ``"c->dp"``/``"dp->c"`` on control channels); None taps both.
    """

    def __init__(self, name: str = "adversary",
                 direction_filter: Optional[str] = None):
        self.name = name
        self.direction_filter = direction_filter
        self.stats = AdversaryStats()
        self._attached: List[object] = []

    def attach(self, channel) -> "Adversary":
        """Install this adversary's tap on a Link or ControlChannel.

        Idempotent per channel: attaching to the same channel twice
        installs exactly one tap, so stats are never double-counted and
        :meth:`detach_all` always leaves the channel clean.
        """
        if any(existing is channel for existing in self._attached):
            return self
        channel.add_tap(self._tap)
        self._attached.append(channel)
        return self

    def detach(self, channel) -> None:
        """Remove this adversary's tap from one channel (no-op if absent)."""
        for existing in list(self._attached):
            if existing is channel:
                channel.remove_tap(self._tap)
                self._attached.remove(existing)
                return

    def detach_all(self) -> None:
        for channel in self._attached:
            channel.remove_tap(self._tap)
        self._attached = []

    def _tap(self, packet: Packet, direction: str) -> Optional[Packet]:
        if (self.direction_filter is not None
                and direction != self.direction_filter):
            return packet
        self.stats.seen += 1
        return self.process(packet, direction)

    def process(self, packet: Packet, direction: str) -> Optional[Packet]:
        raise NotImplementedError


class Eavesdropper(Adversary):
    """Records copies of everything matching a predicate (passive MitM).

    Used by the key-secrecy analysis: the eavesdropper sees every key
    exchange message (public keys and salts) yet cannot derive the master
    secret — the tests feed its recordings to naive derivation attempts
    and assert they all fail.
    """

    def __init__(self, predicate: Optional[Callable[[Packet], bool]] = None,
                 direction_filter: Optional[str] = None):
        super().__init__("eavesdropper", direction_filter)
        self.predicate = predicate or (lambda _packet: True)
        self.recordings: List[Packet] = []

    def process(self, packet: Packet, direction: str) -> Optional[Packet]:
        if self.predicate(packet):
            self.recordings.append(packet.copy())
            self.stats.recorded += 1
        return packet


class MessageDropper(Adversary):
    """Drops every matching packet (availability attack)."""

    def __init__(self, predicate: Optional[Callable[[Packet], bool]] = None,
                 direction_filter: Optional[str] = None):
        super().__init__("dropper", direction_filter)
        self.predicate = predicate or (lambda _packet: True)

    def process(self, packet: Packet, direction: str) -> Optional[Packet]:
        if self.predicate(packet):
            self.stats.dropped += 1
            return None
        return packet
