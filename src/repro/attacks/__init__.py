"""MitM adversaries from the paper's threat model (§II-A).

Two attachment points mirror Fig 1:

- **compromised switch OS** — taps on a switch's
  :class:`~repro.net.links.ControlChannel`, modeling the LD_PRELOAD-style
  malicious library mangling SDK/driver call arguments between the gRPC
  agent and the ASIC;
- **on-link MitM** — taps on a :class:`~repro.net.links.Link`, modeling a
  neighbor switch whose table rules divert feedback messages through the
  attacker's host.

Every adversary here *modifies, drops, records, or injects*; none of them
hold any P4Auth key, so against P4Auth their best move is guessing a
32-bit digest (see :class:`DigestBruteForcer`).
"""

from repro.attacks.base import Adversary, Eavesdropper, MessageDropper
from repro.attacks.control_plane import (
    RegisterResponseTamperer,
    RegisterRequestTamperer,
    ReplayAttacker,
    DosFlooder,
)
from repro.attacks.link import ProbeFieldTamperer, KeyExchangeTamperer
from repro.attacks.bruteforce import DigestBruteForcer
from repro.attacks.personas import (
    PERSONA_KINDS,
    GroundTruthSampler,
    Persona,
    PersonaOutcome,
    PersonaSpec,
    PersonaWorld,
    WireRecorder,
    build_persona,
)

__all__ = [
    "PERSONA_KINDS",
    "GroundTruthSampler",
    "Persona",
    "PersonaOutcome",
    "PersonaSpec",
    "PersonaWorld",
    "WireRecorder",
    "build_persona",
    "Adversary",
    "Eavesdropper",
    "MessageDropper",
    "RegisterResponseTamperer",
    "RegisterRequestTamperer",
    "ReplayAttacker",
    "DosFlooder",
    "ProbeFieldTamperer",
    "KeyExchangeTamperer",
    "DigestBruteForcer",
]
