"""Sequential request driver for the Fig 18/19 measurements.

The paper crafts control messages and sends them *sequentially* for 30
seconds, reporting request completion time and completed requests per
second.  :func:`run_sequential` does the same against any stack exposing
``read_register``/``write_register`` with completion callbacks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from repro.net.simulator import EventSimulator


@dataclass
class RunStats:
    """Results of one sequential run."""

    kind: str
    duration_s: float
    rcts_s: List[float] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return len(self.rcts_s)

    @property
    def throughput_rps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    @property
    def mean_rct_s(self) -> float:
        if not self.rcts_s:
            return math.nan
        return sum(self.rcts_s) / len(self.rcts_s)

    def percentile_rct_s(self, pct: float) -> float:
        if not self.rcts_s:
            return math.nan
        ordered = sorted(self.rcts_s)
        rank = min(len(ordered) - 1, max(0, int(pct / 100.0 * len(ordered))))
        return ordered[rank]


def run_sequential(sim: EventSimulator, stack, kind: str, switch: str,
                   reg_name: str, duration_s: float = 30.0,
                   index: int = 0, value: int = 0xABCD) -> RunStats:
    """Issue back-to-back requests of one kind for ``duration_s``.

    ``stack`` is any object with ``read_register(switch, reg, index, cb)``
    and ``write_register(switch, reg, index, value, cb)``.  The next
    request is issued the moment the previous one completes, exactly like
    the paper's PTF loop.
    """
    if kind not in ("read", "write"):
        raise ValueError("kind must be 'read' or 'write'")
    stats = RunStats(kind, duration_s)
    start = sim.now
    deadline = start + duration_s
    state = {"sent_at": 0.0}

    def issue() -> None:
        if sim.now >= deadline:
            return
        state["sent_at"] = sim.now
        if kind == "read":
            stack.read_register(switch, reg_name, index, on_complete)
        else:
            stack.write_register(switch, reg_name, index, value, on_complete)

    def on_complete(_ok: bool, _value: int) -> None:
        stats.rcts_s.append(sim.now - state["sent_at"])
        issue()

    issue()
    with sim.telemetry.span("runtime.run_sequential"):
        sim.run(until=deadline)
    # Trim duration to what actually elapsed (sim may stop early if idle).
    stats.duration_s = min(duration_s, sim.now - start) or duration_s
    return stats
