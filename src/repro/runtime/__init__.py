"""The three register read/write stacks compared in Figs 18 and 19.

- :class:`P4RuntimeStack` — register access through the gRPC + P4Runtime
  server + driver path (no PacketOut).  Models the paper's "P4Runtime"
  variant.
- :class:`PlainRegOpDataplane` / :class:`PlainController` — register
  access via PacketOut/PacketIn messages processed in the data plane,
  with **no authentication**: the paper's "DP-Reg-RW" variant (and the
  vulnerable client the RouteScout attack rides on).
- The P4Auth variant is :class:`repro.core.P4AuthController` +
  :class:`repro.core.P4AuthDataplane` — DP-Reg-RW plus digests.

:mod:`repro.runtime.harness` drives any of them with the paper's
sequential request workload and reports RCT and throughput.
"""

from repro.runtime.plain import (
    CTL_HEADER,
    PlainRegOpDataplane,
    PlainController,
)
from repro.runtime.p4runtime import P4RuntimeStack
from repro.runtime.harness import RunStats, run_sequential
from repro.runtime.comparison import STACKS, build_stack, measure

__all__ = [
    "CTL_HEADER",
    "PlainRegOpDataplane",
    "PlainController",
    "P4RuntimeStack",
    "RunStats",
    "run_sequential",
    "STACKS",
    "build_stack",
    "measure",
]
