"""DP-Reg-RW: unauthenticated register access over PacketOut/PacketIn.

The paper's middle variant — register read/write requests are crafted as
PacketOut messages and processed in the data plane (like P4Auth), but
carry no digest.  It is both the fair performance baseline for Figs 18/19
and the attack surface for the C-DP adversary demos: a control-channel
tap can rewrite these messages and nobody notices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.constants import REG_OP, REG_OP_HEADER, RegOpType
from repro.dataplane.headers import HeaderType
from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import PipelineContext
from repro.dataplane.switch import DataplaneSwitch
from repro.dataplane.tables import MatchActionTable, MatchKind, TableEntry
from repro.net.network import Network
from repro.telemetry import RCT_BUCKETS

#: Unauthenticated control header: message type + sequence number only.
CTL_HEADER = HeaderType("ctl", [
    ("msgType", 8),
    ("seqNum", 32),
])

ResponseCallback = Callable[[bool, int], None]


def build_plain_request(msg_type: RegOpType, reg_id: int, index: int,
                        value: int, seq_num: int) -> Packet:
    packet = Packet()
    packet.push("ctl", CTL_HEADER.instantiate(msgType=int(msg_type),
                                              seqNum=seq_num))
    packet.push(REG_OP, REG_OP_HEADER.instantiate(regId=reg_id, index=index,
                                                  value=value))
    return packet


class PlainRegOpDataplane:
    """Data-plane handler for unauthenticated register operations."""

    def __init__(self, switch: DataplaneSwitch):
        self.switch = switch
        self.mapping_table = MatchActionTable(
            "plain_reg_id_to_name",
            [("regId", MatchKind.EXACT, 32), ("opType", MatchKind.EXACT, 8)],
            max_entries=4096,
        )
        switch.add_table(self.mapping_table)
        self._op_index = 0
        self._op_value = 0
        self._op_result = 0
        self._op_ok = False
        self.regops_served = 0

    def install(self) -> "PlainRegOpDataplane":
        self.switch.pipeline.insert_stage(0, "plain_regop", self._stage)
        return self

    def map_register(self, name: str) -> int:
        register = self.switch.registers.get(name)
        reg_id = self.switch.registers.id_of(name)

        def do_read() -> None:
            self._op_ok = True
            self._op_result = register.read(self._op_index)

        def do_write() -> None:
            self._op_ok = True
            register.write(self._op_index, self._op_value)
            self._op_result = self._op_value

        self.mapping_table.register_action(f"{name}_read", do_read)
        self.mapping_table.register_action(f"{name}_write", do_write)
        self.mapping_table.insert(TableEntry(
            key=(reg_id, int(RegOpType.READ_REQ)), action=f"{name}_read"))
        self.mapping_table.insert(TableEntry(
            key=(reg_id, int(RegOpType.WRITE_REQ)), action=f"{name}_write"))
        return reg_id

    def map_all_registers(self) -> Dict[str, int]:
        return {
            name: self.map_register(name)
            for name in self.switch.registers.names()
            if not name.startswith("p4auth_")
        }

    def _stage(self, ctx: PipelineContext) -> None:
        packet = ctx.packet
        if (ctx.ingress_port != DataplaneSwitch.CPU_PORT
                or not packet.has("ctl") or not packet.has(REG_OP)):
            return
        ctl = packet.get("ctl")
        payload = packet.get(REG_OP)
        self._op_index = payload["index"]
        self._op_value = payload["value"]
        self._op_ok = False
        self._op_result = 0
        self.mapping_table.lookup(payload["regId"], ctl["msgType"])
        msg_type = RegOpType.ACK if self._op_ok else RegOpType.NACK
        if self._op_ok:
            self.regops_served += 1
        response = build_plain_request(
            msg_type, payload["regId"], payload["index"],
            self._op_result, ctl["seqNum"],
        )
        ctx.to_controller(response, reason="plain reg-op response")
        ctx.stop()


@dataclass
class _PlainPending:
    kind: str
    sent_at: float
    callback: Optional[ResponseCallback]
    reg_name: str = ""
    index: int = 0
    value: int = 0
    attempt: int = 1
    timeout_handle: Optional[object] = None


class PlainController:
    """Controller for the DP-Reg-RW stack (no authentication).

    API-compatible with :class:`repro.core.P4AuthController` for register
    operations, so in-network system controllers (e.g., RouteScout's) can
    run over either stack.
    """

    def __init__(self, network: Network,
                 request_timeout_s: Optional[float] = None,
                 max_request_attempts: int = 3):
        self.network = network
        self.sim = network.sim
        self.costs = network.costs
        #: Opt-in bounded retries (same contract as P4AuthController):
        #: ``None`` keeps legacy fire-and-wait, otherwise unanswered
        #: requests are re-issued then abandoned with ``callback(False, 0)``.
        self.request_timeout_s = request_timeout_s
        self.max_request_attempts = max_request_attempts
        self.request_retries = 0
        self.requests_abandoned = 0
        self._seq: Dict[str, int] = {}
        #: Per-switch monotonic departure time: composition is FIFO per
        #: switch, so a cheap-to-compose read submitted after a write must
        #: not leave the controller first (same rule as P4AuthController).
        self._depart_horizon: Dict[str, float] = {}
        self._pending: Dict[Tuple[str, int], _PlainPending] = {}
        self._reg_ids: Dict[str, Dict[str, int]] = {}
        self.rct_samples = []  # (kind, rct_s, ok)
        self.acks = 0
        self.nacks = 0
        network.attach_controller(self)

    def provision(self, switch: DataplaneSwitch) -> None:
        self._reg_ids[switch.name] = {
            reg_name: reg_id
            for reg_id, reg_name in switch.registers.id_map().items()
        }
        self._seq.setdefault(switch.name, 1)

    def _next_seq(self, switch: str) -> int:
        seq = self._seq[switch]
        self._seq[switch] = (seq + 1) & 0xFFFFFFFF
        return seq

    def outstanding_count(self) -> int:
        """Requests sent but not yet answered (uniform across stacks, so
        batching facades can gauge true in-flight load)."""
        return len(self._pending)

    def read_register(self, switch: str, reg_name: str, index: int,
                      callback: Optional[ResponseCallback] = None) -> int:
        return self._issue(RegOpType.READ_REQ, "read", switch, reg_name,
                           index, 0, callback, self.costs.compose_read_s)

    def write_register(self, switch: str, reg_name: str, index: int,
                       value: int,
                       callback: Optional[ResponseCallback] = None) -> int:
        return self._issue(RegOpType.WRITE_REQ, "write", switch, reg_name,
                           index, value, callback, self.costs.compose_write_s)

    def _issue(self, msg_type: RegOpType, kind: str, switch: str,
               reg_name: str, index: int, value: int,
               callback: Optional[ResponseCallback],
               compose_cost: float, attempt: int = 1) -> int:
        seq = self._next_seq(switch)
        request = build_plain_request(
            msg_type, self._reg_ids[switch][reg_name], index, value, seq
        )
        pending = _PlainPending(kind, self.sim.now, callback,
                                reg_name=reg_name, index=index, value=value,
                                attempt=attempt)
        self._pending[(switch, seq)] = pending
        depart_at = max(self.sim.now + compose_cost,
                        self._depart_horizon.get(switch, 0.0))
        self._depart_horizon[switch] = depart_at
        self.sim.schedule_at(depart_at, self.network.send_packet_out,
                             switch, request)
        if self.request_timeout_s is not None:
            pending.timeout_handle = self.sim.schedule_cancellable(
                depart_at - self.sim.now + self.request_timeout_s,
                self._request_timed_out, switch, seq,
            )
        return seq

    def _request_timed_out(self, switch: str, seq: int) -> None:
        pending = self._pending.pop((switch, seq), None)
        if pending is None:
            return
        if pending.attempt >= self.max_request_attempts:
            self.requests_abandoned += 1
            telemetry = self.network.telemetry
            if telemetry.enabled:
                telemetry.metrics.counter(
                    "runtime_requests_abandoned_total",
                    stack="DP-Reg-RW", kind=pending.kind).inc()
                telemetry.tracer.emit(
                    "runtime.request_abandoned", stack="DP-Reg-RW",
                    switch=switch, kind=pending.kind, reg=pending.reg_name,
                    seq=seq, attempts=pending.attempt)
            if pending.callback is not None:
                pending.callback(False, 0)
            return
        self.request_retries += 1
        msg_type = (RegOpType.READ_REQ if pending.kind == "read"
                    else RegOpType.WRITE_REQ)
        compose_cost = (self.costs.compose_read_s if pending.kind == "read"
                        else self.costs.compose_write_s)
        self._issue(msg_type, pending.kind, switch, pending.reg_name,
                    pending.index, pending.value, pending.callback,
                    compose_cost, attempt=pending.attempt + 1)

    def handle_packet_in(self, switch: str, packet: Packet) -> None:
        if not packet.has("ctl"):
            return
        ctl = packet.get("ctl")
        pending = self._pending.pop((switch, ctl["seqNum"]), None)
        if pending is None:
            return
        if pending.timeout_handle is not None:
            pending.timeout_handle.cancel()
        ok = ctl["msgType"] == RegOpType.ACK
        value = packet.get(REG_OP)["value"] if packet.has(REG_OP) else 0
        if ok:
            self.acks += 1
        else:
            self.nacks += 1
        rct_s = self.sim.now - pending.sent_at
        self.rct_samples.append((pending.kind, rct_s, ok))
        telemetry = self.network.telemetry
        if telemetry.enabled:
            telemetry.metrics.histogram(
                "runtime_rct_seconds", buckets=RCT_BUCKETS,
                stack="DP-Reg-RW", kind=pending.kind).observe(rct_s)
        if pending.callback is not None:
            pending.callback(ok, value)
