"""Batched, pipelined C-DP request issue (the §XI scalability path).

The paper's evaluation drives register operations one at a time: compose,
send, wait a full controller round trip, repeat.  That shape is what
Figs 18/19 measure, but a production controller driving hundreds of
switches cannot afford one RTT of dead air per request.
:class:`BatchController` is a *facade* over any register-access stack
(:class:`~repro.core.controller.P4AuthController`,
:class:`~repro.runtime.plain.PlainController`,
:class:`~repro.runtime.p4runtime.P4RuntimeStack`) that keeps a
configurable window of requests in flight per switch and lets requests
to different switches proceed concurrently — windowed pipelining plus
cross-switch coalescing.

Crucially the facade changes *scheduling only*: every request still goes
through the wrapped stack's ``read_register``/``write_register``, so the
per-message wire format, the Eqn 4 digest rule, sequence numbering, and
every verify/replay/DoS invariant are byte-for-byte those of the
underlying stack.  A batched deployment is exactly as authenticated as a
sequential one — it just stops waiting between messages.

Ordering: requests to one switch are issued in submission order (the
window never reorders the FIFO), so the data plane's monotonic
``expected_seq`` replay defense sees in-order sequence numbers as long
as the control channel itself is FIFO.  Requests to different switches
share no ordering constraint — that independence is where the throughput
comes from.

Lossy channels: the facade frees a window slot only when the wrapped
stack decides an outcome.  Stacks in fire-and-wait mode (no
``request_timeout_s``) never decide one for a lost message, so enable
bounded retries on the stack when batching over a lossy channel.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.telemetry import RCT_BUCKETS

ResponseCallback = Callable[[bool, int], None]

#: Buckets for the per-pump burst-size histogram (requests per refill).
BURST_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass
class BatchSample:
    """One completed request, as observed by the facade."""

    kind: str  # "read" | "write"
    switch: str
    #: Submission -> completion (what a caller experiences, queueing
    #: included).
    rct_s: float
    #: Time spent queued in the facade before the stack saw the request.
    queued_s: float
    ok: bool


@dataclass
class BatchStats:
    submitted: int = 0
    issued: int = 0
    completed: int = 0
    failed: int = 0
    #: Completion callbacks that raised (isolated; window drain continues).
    callback_errors: int = 0
    #: Largest total in-flight population ever observed.
    in_flight_high_water: int = 0
    samples: List[BatchSample] = field(default_factory=list)


@dataclass
class _QueuedRequest:
    kind: str
    switch: str
    reg_name: str
    index: int
    value: int
    callback: Optional[ResponseCallback]
    submitted_at: float
    issued_at: float = 0.0


class BatchController:
    """Windowed pipelining facade over a register-access stack.

    Parameters
    ----------
    stack:
        Any object exposing ``read_register(switch, reg, index, cb)`` /
        ``write_register(switch, reg, index, value, cb)`` with
        completion callbacks and a ``sim`` attribute (all three runtime
        stacks qualify).
    max_in_flight:
        Per-switch window: at most this many requests are outstanding
        toward one switch at a time.  1 degenerates to the sequential
        behavior of :func:`repro.runtime.harness.run_sequential`.
    """

    def __init__(self, stack, max_in_flight: int = 16):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.stack = stack
        self.sim = stack.sim
        self.max_in_flight = max_in_flight
        self.stats = BatchStats()
        #: Optional observer of per-switch window transitions:
        #: ``window_listener("open", switch, (reg_name, index))`` fires
        #: on the idle→busy edge *before* the burst reaches the stack
        #: (write-ahead), with the head op identifying the window;
        #: ``window_listener("close", switch, None)`` fires on busy→idle.
        #: The durability layer journals these as batch_open/batch_close
        #: so recovery knows which switches had requests in flight.
        self.window_listener: Optional[
            Callable[[str, str, Optional[Tuple[str, int]]], None]] = None
        self._queues: Dict[str, Deque[_QueuedRequest]] = {}
        self._in_flight: Dict[str, int] = {}
        self._in_flight_total = 0
        telemetry = stack.network.telemetry
        self.telemetry = telemetry
        if telemetry.enabled:
            self._gauge_in_flight = telemetry.metrics.gauge(
                "batch_in_flight_requests")
            self._gauge_queued = telemetry.metrics.gauge(
                "batch_queued_requests")
            self._hist_burst = telemetry.metrics.histogram(
                "batch_burst_size", buckets=BURST_BUCKETS)
            self._hist_rct = telemetry.metrics.histogram(
                "batch_rct_seconds", buckets=RCT_BUCKETS)
            self._counter_submitted = telemetry.metrics.counter(
                "batch_requests_total")
        else:
            self._gauge_in_flight = None

    # ------------------------------------------------------------------
    # submission API (stack-compatible signatures)
    # ------------------------------------------------------------------

    def read_register(self, switch: str, reg_name: str, index: int,
                      callback: Optional[ResponseCallback] = None) -> None:
        """Queue an authenticated read; issued as the window allows."""
        self._submit(_QueuedRequest("read", switch, reg_name, index, 0,
                                    callback, self.sim.now))

    def write_register(self, switch: str, reg_name: str, index: int,
                       value: int,
                       callback: Optional[ResponseCallback] = None) -> None:
        """Queue an authenticated write; issued as the window allows."""
        self._submit(_QueuedRequest("write", switch, reg_name, index, value,
                                    callback, self.sim.now))

    def submit_many(self, ops: Sequence[Tuple]) -> None:
        """Queue a batch of requests, then fill each window once.

        ``ops`` is a sequence of ``(kind, switch, reg_name, index,
        value, callback)`` tuples (``value`` ignored for reads).
        Equivalent to calling :meth:`read_register` /
        :meth:`write_register` per op — same FIFO order, same wire
        bytes — but the pump runs once per switch *after* everything is
        queued, so a whole window's worth of requests issues as one
        burst.  Burst issue is what lets a stack exposing
        ``request_many`` sign the burst in a single
        :meth:`~repro.core.digest.DigestEngine.sign_many` call (and
        take the vectorized digest lane above its threshold).
        """
        now = self.sim.now
        touched: Dict[str, None] = {}
        for kind, switch, reg_name, index, value, callback in ops:
            if kind not in ("read", "write"):
                raise ValueError(f"unknown request kind {kind!r}")
            self.stats.submitted += 1
            if self.telemetry.enabled:
                self._counter_submitted.inc()
            self._queues.setdefault(switch, deque()).append(
                _QueuedRequest(kind, switch, reg_name, index, value,
                               callback, now))
            touched[switch] = None
        for switch in touched:
            self._pump(switch)

    def broadcast_write(self, reg_name: str, index: int, value: int,
                        switches: List[str],
                        on_done: Optional[Callable[[Dict[str, bool]], None]]
                        = None) -> None:
        """Coalesce one logical write across many switches.

        Queues the write on every named switch; all fan-out requests
        share the window machinery (and therefore pipeline concurrently).
        ``on_done(results)`` fires once every switch has a terminal
        outcome, with ``results[switch] = ok``.
        """
        remaining = {"count": len(switches)}
        results: Dict[str, bool] = {}
        if not switches:
            if on_done is not None:
                on_done(results)
            return
        for switch in switches:
            def finish(ok: bool, _value: int, sw: str = switch) -> None:
                results[sw] = ok
                remaining["count"] -= 1
                if remaining["count"] == 0 and on_done is not None:
                    on_done(results)
            self.write_register(switch, reg_name, index, value, finish)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def in_flight(self, switch: Optional[str] = None) -> int:
        if switch is not None:
            return self._in_flight.get(switch, 0)
        return self._in_flight_total

    def queued(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    @property
    def idle(self) -> bool:
        """True when nothing is queued or in flight."""
        return self._in_flight_total == 0 and self.queued() == 0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _submit(self, request: _QueuedRequest) -> None:
        self.stats.submitted += 1
        if self.telemetry.enabled:
            self._counter_submitted.inc()
        self._queues.setdefault(request.switch, deque()).append(request)
        self._pump(request.switch)

    def _pump(self, switch: str) -> None:
        """Refill the switch's window from its FIFO queue."""
        queue = self._queues.get(switch)
        if not queue:
            return
        burst: List[_QueuedRequest] = []
        in_flight = self._in_flight.get(switch, 0)
        while queue and in_flight + len(burst) < self.max_in_flight:
            burst.append(queue.popleft())
        if not burst:
            return
        self._issue_burst(switch, burst)
        if self.telemetry.enabled:
            self._hist_burst.observe(len(burst))
            self._gauge_in_flight.set(self._in_flight_total)
            self._gauge_queued.set(self.queued())

    def _issue_burst(self, switch: str,
                     burst: List[_QueuedRequest]) -> None:
        """Hand a FIFO burst to the stack, window accounting first.

        Stacks exposing ``request_many`` (the P4Auth controller) get
        multi-request bursts in one call so all Eqn 4 digests are
        signed together; other stacks — and single-request refills —
        take the per-request path.  Either way the wire stream is
        byte-identical: composition order, sequence numbers, and
        departure times are those of back-to-back per-request issue.
        """
        now = self.sim.now
        if self.window_listener is not None \
                and self._in_flight.get(switch, 0) == 0:
            self.window_listener("open", switch,
                                 (burst[0].reg_name, burst[0].index))
        for request in burst:
            self._in_flight[switch] = self._in_flight.get(switch, 0) + 1
            self._in_flight_total += 1
            if self._in_flight_total > self.stats.in_flight_high_water:
                self.stats.in_flight_high_water = self._in_flight_total
            self.stats.issued += 1
            request.issued_at = now
        request_many = getattr(self.stack, "request_many", None)
        if request_many is not None and len(burst) > 1:
            request_many(switch, [
                (request.kind, request.reg_name, request.index,
                 request.value,
                 lambda ok, value, request=request:
                     self._on_complete(request, ok, value))
                for request in burst])
            return
        for request in burst:
            def complete(ok: bool, value: int,
                         request: _QueuedRequest = request) -> None:
                self._on_complete(request, ok, value)

            if request.kind == "read":
                self.stack.read_register(switch, request.reg_name,
                                         request.index, complete)
            else:
                self.stack.write_register(switch, request.reg_name,
                                          request.index, request.value,
                                          complete)

    def _on_complete(self, request: _QueuedRequest, ok: bool,
                     value: int) -> None:
        switch = request.switch
        self._in_flight[switch] -= 1
        self._in_flight_total -= 1
        if self.window_listener is not None \
                and self._in_flight[switch] == 0 \
                and not self._queues.get(switch):
            self.window_listener("close", switch, None)
        self.stats.completed += 1
        if not ok:
            self.stats.failed += 1
        now = self.sim.now
        rct = now - request.submitted_at
        self.stats.samples.append(BatchSample(
            request.kind, switch, rct,
            request.issued_at - request.submitted_at, ok,
        ))
        if self.telemetry.enabled:
            self._hist_rct.observe(rct)
            self._gauge_in_flight.set(self._in_flight_total)
        # User callbacks run outside the window accounting: one raising
        # callback must not leak the exception into the simulator event
        # loop or skip the pump below, which would strand every request
        # still queued behind this switch's window.
        if request.callback is not None:
            try:
                request.callback(ok, value)
            except Exception as exc:  # noqa: BLE001 - user-code boundary
                self.stats.callback_errors += 1
                if self.telemetry.enabled:
                    self.telemetry.metrics.counter(
                        "batch_callback_errors_total").inc()
                    self.telemetry.tracer.emit(
                        "batch.callback_error", switch=switch,
                        kind=request.kind, error=type(exc).__name__)
        self._pump(switch)


__all__ = ["BURST_BUCKETS", "BatchController", "BatchSample", "BatchStats"]
