"""The P4Runtime register-access stack (cost model).

The paper's first variant performs register reads/writes through the
P4Runtime API: gRPC request to the P4Runtime server in the switch control
plane, then SDK/driver calls into the ASIC.  No PacketOut is involved and
the packet pipeline is bypassed, so we model this stack as a timed
sequence of cost-model charges around a direct register access — the
shape that matters for Figs 18/19 is its extra per-request stack overhead
and the read/write compose asymmetry (paper: read throughput is 1.7x
write throughput because writes compose both the index and the data).

Security-wise this path runs *through the untrusted switch OS*: the
control-channel taps apply, which is exactly why the paper's threat model
defeats TLS-protected P4Runtime (§I) — the tamper happens below the gRPC
endpoint.  We model that by routing the request's parameters through the
same tap chain as PacketOut messages.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.constants import REG_OP, RegOpType
from repro.dataplane.switch import DataplaneSwitch
from repro.net.network import Network
from repro.runtime.plain import build_plain_request
from repro.telemetry import RCT_BUCKETS

ResponseCallback = Callable[[bool, int], None]


class P4RuntimeStack:
    """Register access via the (modeled) P4Runtime API."""

    def __init__(self, network: Network,
                 request_timeout_s: Optional[float] = None,
                 max_request_attempts: int = 3):
        self.network = network
        self.sim = network.sim
        self.costs = network.costs
        #: Opt-in bounded retries: ``None`` preserves the legacy behaviour
        #: where an OS-level drop makes the request time out *silently*;
        #: otherwise lost requests are re-issued after this delay up to
        #: ``max_request_attempts`` times, then abandoned via
        #: ``callback(False, 0)``.
        self.request_timeout_s = request_timeout_s
        self.max_request_attempts = max_request_attempts
        self.request_retries = 0
        self.requests_abandoned = 0
        self._switches: Dict[str, DataplaneSwitch] = {}
        self._seq = 1
        self._outstanding = 0
        #: Per-switch monotonic arrival time: requests to one switch ride
        #: one ordered gRPC stream, so a cheap-to-compose read issued after
        #: a write must not reach the server first.
        self._arrival_horizon: Dict[str, float] = {}
        self.rct_samples = []  # (kind, rct_s, ok)

    def provision(self, switch: DataplaneSwitch) -> None:
        self._switches[switch.name] = switch

    def outstanding_count(self) -> int:
        """Requests issued whose outcome (completion, loss, abandonment)
        has not yet been decided — the stack's true in-flight load."""
        return self._outstanding

    def read_register(self, switch: str, reg_name: str, index: int,
                      callback: Optional[ResponseCallback] = None) -> int:
        return self._issue("read", switch, reg_name, index, 0, callback,
                           self.costs.compose_read_s)

    def write_register(self, switch: str, reg_name: str, index: int,
                       value: int,
                       callback: Optional[ResponseCallback] = None) -> int:
        return self._issue("write", switch, reg_name, index, value, callback,
                           self.costs.compose_write_s)

    def _issue(self, kind: str, switch: str, reg_name: str, index: int,
               value: int, callback: Optional[ResponseCallback],
               compose_cost: float, attempt: int = 1) -> int:
        seq = self._seq
        self._seq += 1
        self._outstanding += 1
        sent_at = self.sim.now
        # Compose + gRPC/P4Runtime server overhead, then one C-DP transit.
        request_delay = (compose_cost + self.costs.p4runtime_overhead_s
                         + self.network.jittered(self.costs.cdp_one_way_s))
        apply_at = max(self.sim.now + request_delay,
                       self._arrival_horizon.get(switch, 0.0))
        self._arrival_horizon[switch] = apply_at
        self.sim.schedule_at(apply_at, self._apply, kind, switch, reg_name,
                             index, value, seq, sent_at, callback, attempt)
        return seq

    def _lost(self, kind: str, switch: str, reg_name: str, index: int,
              value: int, seq: int, callback: Optional[ResponseCallback],
              attempt: int) -> None:
        """A request or response died inside the switch OS."""
        self._outstanding -= 1
        if self.request_timeout_s is None:
            return  # legacy: times out silently
        if attempt >= self.max_request_attempts:
            self.requests_abandoned += 1
            telemetry = self.network.telemetry
            if telemetry.enabled:
                telemetry.metrics.counter(
                    "runtime_requests_abandoned_total",
                    stack="P4Runtime", kind=kind).inc()
                telemetry.tracer.emit(
                    "runtime.request_abandoned", stack="P4Runtime",
                    switch=switch, kind=kind, reg=reg_name, seq=seq,
                    attempts=attempt)
            if callback is not None:
                self.sim.schedule(0.0, callback, False, 0)
            return
        self.request_retries += 1
        compose_cost = (self.costs.compose_read_s if kind == "read"
                        else self.costs.compose_write_s)
        self.sim.schedule(self.request_timeout_s, self._issue, kind, switch,
                          reg_name, index, value, callback, compose_cost,
                          attempt + 1)

    def _apply(self, kind: str, switch: str, reg_name: str, index: int,
               value: int, seq: int, sent_at: float,
               callback: Optional[ResponseCallback],
               attempt: int = 1) -> None:
        # The request parameters traverse the switch OS (SDK/driver), so
        # the compromised-OS tap chain gets its chance to mangle them.
        msg_type = RegOpType.READ_REQ if kind == "read" else RegOpType.WRITE_REQ
        device = self._switches[switch]
        reg_id = device.registers.id_of(reg_name)
        surrogate = build_plain_request(msg_type, reg_id, index, value, seq)
        channel = self.network.control_channels[switch]
        survivor = channel.transit(surrogate, "c->dp")
        if survivor is None:
            self._lost(kind, switch, reg_name, index, value, seq, callback,
                       attempt)
            return
        payload = survivor.get(REG_OP)
        register = device.registers.get(device.registers.name_of(
            payload["regId"]))
        ok = True
        if kind == "read":
            result = register.read(payload["index"])
        else:
            try:
                register.write(payload["index"], payload["value"])
                result = payload["value"]
            except (ValueError, IndexError):
                ok = False
                result = 0
        # Driver apply cost + response transit back through the OS.
        response = build_plain_request(
            RegOpType.ACK if ok else RegOpType.NACK,
            payload["regId"], payload["index"], result, seq,
        )
        survivor_up = channel.transit(response, "dp->c")
        if survivor_up is None:
            self._lost(kind, switch, reg_name, index, value, seq, callback,
                       attempt)
            return
        response_delay = (self.costs.switch_fwd_s
                          + self.network.jittered(self.costs.cdp_one_way_s)
                          + self.costs.controller_proc_s)
        self.sim.schedule(response_delay, self._complete, kind, survivor_up,
                          sent_at, callback)

    def _complete(self, kind: str, response, sent_at: float,
                  callback: Optional[ResponseCallback]) -> None:
        self._outstanding -= 1
        ctl = response.get("ctl")
        ok = ctl["msgType"] == RegOpType.ACK
        value = response.get(REG_OP)["value"]
        rct_s = self.sim.now - sent_at
        self.rct_samples.append((kind, rct_s, ok))
        telemetry = self.network.telemetry
        if telemetry.enabled:
            telemetry.metrics.histogram(
                "runtime_rct_seconds", buckets=RCT_BUCKETS,
                stack="P4Runtime", kind=kind).observe(rct_s)
        if callback is not None:
            callback(ok, value)
