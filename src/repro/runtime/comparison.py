"""The Fig 18/19 stack comparison, as a reusable measurement.

Builds each of the three register-access stacks (P4Runtime, DP-Reg-RW,
P4Auth) on a fresh single-switch deployment and drives the paper's
sequential read/write workload against it.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.auth_dataplane import P4AuthDataplane
from repro.core.controller import P4AuthController
from repro.dataplane.switch import DataplaneSwitch
from repro.engine.registry import register
from repro.engine.spec import ExperimentSpec, TrialContext
from repro.net.network import Network
from repro.net.simulator import EventSimulator
from repro.runtime.harness import RunStats, run_sequential
from repro.runtime.p4runtime import P4RuntimeStack
from repro.runtime.plain import PlainController, PlainRegOpDataplane

STACKS = ("P4Runtime", "DP-Reg-RW", "P4Auth")


def build_stack(name: str, costs=None, telemetry=None):
    """A fresh deployment of one stack; returns (sim, stack)."""
    if name not in STACKS:
        raise ValueError(f"stack must be one of {STACKS}")
    sim = EventSimulator(telemetry=telemetry)
    net = Network(sim, costs)
    switch = DataplaneSwitch("s1", num_ports=2)
    net.add_switch(switch)
    switch.registers.define("target", 64, 16)
    if name == "P4Runtime":
        stack = P4RuntimeStack(net)
        stack.provision(switch)
    elif name == "DP-Reg-RW":
        dataplane = PlainRegOpDataplane(switch).install()
        dataplane.map_register("target")
        stack = PlainController(net)
        stack.provision(switch)
    else:
        dataplane = P4AuthDataplane(switch, k_seed=0x42).install()
        dataplane.map_register("target")
        stack = P4AuthController(net)
        stack.provision(dataplane)
        stack.kmp.local_key_init("s1")
        sim.run(until=0.1)
    return sim, stack


def measure(duration_s: float = 10.0, costs=None,
            telemetry=None) -> Dict[Tuple[str, str], RunStats]:
    """Sequential read and write runs on every stack.

    Returns ``{(stack_name, "read"|"write"): RunStats}``.  Pass a
    ``CostModel(jitter_fraction=...)`` to measure RCT *distributions*
    (the paper's Fig 18 is a CDF).  A shared ``telemetry`` instance
    aggregates ``runtime_rct_seconds`` across all six runs.
    """
    table: Dict[Tuple[str, str], RunStats] = {}
    for name in STACKS:
        for kind in ("read", "write"):
            sim, stack = build_stack(name, costs, telemetry=telemetry)
            table[(name, kind)] = run_sequential(
                sim, stack, kind, "s1", "target", duration_s=duration_s)
    return table


def stats_to_dict(stats: RunStats, stack: str,
                  include_samples: bool = False) -> dict:
    """Canonical trial form of one sequential run (Fig 18/19 columns)."""
    out = {
        "stack": stack,
        "kind": stats.kind,
        "duration_s": stats.duration_s,
        "completed": stats.completed,
        "throughput_rps": stats.throughput_rps,
        "mean_rct_s": stats.mean_rct_s,
        "p5_rct_s": stats.percentile_rct_s(5),
        "p50_rct_s": stats.percentile_rct_s(50),
        "p95_rct_s": stats.percentile_rct_s(95),
        "p99_rct_s": stats.percentile_rct_s(99),
    }
    if include_samples:
        out["rcts_s"] = list(stats.rcts_s)
    return out


def _trial(ctx: TrialContext) -> dict:
    p = ctx.params
    costs = None
    if p["jitter_fraction"]:
        from repro.net.costs import CostModel
        costs = CostModel(jitter_fraction=p["jitter_fraction"])
    sim, stack = build_stack(p["stack"], costs, telemetry=ctx.telemetry)
    stats = run_sequential(sim, stack, p["kind"], "s1", "target",
                           duration_s=p["duration_s"])
    return stats_to_dict(stats, p["stack"],
                         include_samples=p["include_samples"])


def _comparison_spec(name: str, title: str, source: str) -> ExperimentSpec:
    # Fig 18 (RCT) and Fig 19 (throughput) are two views of the same
    # sequential workload; both are registered so each figure is
    # independently addressable by ``repro run``.
    return ExperimentSpec(
        name=name,
        title=title,
        source=source,
        trial=_trial,
        grid={"stack": list(STACKS), "kind": ["read", "write"]},
        defaults={"duration_s": 10.0, "jitter_fraction": 0.0,
                  "include_samples": False},
        short={"duration_s": 1.0},
        supports_telemetry=True,
        tags=("figure", "runtime"),
    )


FIG18_SPEC = register(_comparison_spec(
    "fig18", "Register R/W request completion time", "Fig 18"))
FIG19_SPEC = register(_comparison_spec(
    "fig19", "Register R/W throughput", "Fig 19"))
