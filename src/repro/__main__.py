"""Command-line experiment runner: ``python -m repro``.

Every paper figure, table, and chaos scenario is a registered
:class:`~repro.engine.spec.ExperimentSpec`; the generic ``run``
subcommand executes any of them (with sweeps, worker sharding, caching,
and ``BENCH_<name>.json`` artifacts), while the named legacy
subcommands print the familiar paper-style tables on top of the same
engine.

    python -m repro                  # list every registered experiment
    python -m repro run fig17 --workers 4
    python -m repro run fig21 --sweep hops=2,6,10 --short
    python -m repro run table3 --seed 99 --out-dir results/
    python -m repro report --dir results/   # markdown from BENCH_*.json
    python -m repro fig16            # RouteScout defense (paper table)
    python -m repro table2           # resource overhead (paper table)
    python -m repro all              # every paper table
    python -m repro telemetry fig17  # instrumented run: JSONL trace +
                                     # Prometheus-style metrics dump
    python -m repro chaos            # fault-injection scenarios (all)
    python -m repro chaos kmp-blackout --seed 7 --trace-out chaos.jsonl
    python -m repro verify --all     # static analysis of every program
    python -m repro verify p4auth --format json
    python -m repro verify --selftest  # mutant battery
    python -m repro serve --m 100 --shards 4  # controller daemon
    python -m repro serve --smoke    # in-process service self-check
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import format_table


def cmd_fig16(args) -> None:
    from repro.engine import run_experiment
    run = run_experiment("fig16", sweep={
        "duration_s": [args.duration],
        "attack_start_s": [args.duration * 0.25]})
    rows = [[t.params["mode"], f"{t.result['share_path1'] * 100:.1f}%",
             f"{t.result['share_path2'] * 100:.1f}%",
             t.result["epochs_skipped"], t.result["tamper_events"]]
            for t in run.trials]
    print(format_table(
        ["mode", "path1", "path2", "epochs skipped", "tamper events"],
        rows, title="Fig 16: RouteScout traffic distribution"))


def cmd_fig17(args) -> None:
    from repro.engine import run_experiment
    run = run_experiment("fig17", sweep={
        "duration_s": [min(args.duration, 10.0)]})
    rows = [[t.params["mode"],
             f"{t.result['shares']['s2'] * 100:.1f}%",
             f"{t.result['shares']['s3'] * 100:.1f}%",
             f"{t.result['shares']['s4'] * 100:.1f}%",
             t.result["alerts"]]
            for t in run.trials]
    print(format_table(["mode", "via S2", "via S3", "via S4", "alerts"],
                       rows, title="Fig 17: HULA traffic distribution"))


def cmd_fig20(args) -> None:
    from repro.engine import run_experiment
    from repro.experiments.fig20_kmp import OPS
    result = run_experiment("fig20").only()
    rows = [[op, f"{result['mean_ms'][op]:.3f}",
             result["footprint"][op][0], result["footprint"][op][1]]
            for op in OPS]
    print(format_table(["operation", "RTT (ms)", "messages", "bytes"],
                       rows, title="Fig 20: key management RTT"))


def cmd_fig21(args) -> None:
    from repro.engine import run_experiment
    from repro.experiments.fig21_multihop import curve_from_trials
    run = run_experiment("fig21", sweep={"num_probes": [30]})
    rows = [[r["hops"], f"{r['base_us']:.1f}", f"{r['p4auth_us']:.1f}",
             f"{r['overhead_pct']:.2f}%"]
            for r in curve_from_trials(run.results())]
    print(format_table(["hops", "base (us)", "P4Auth (us)", "overhead"],
                       rows, title="Fig 21: probe traversal vs hops"))


def cmd_table1(args) -> None:
    from repro.engine import run_experiment
    run = run_experiment("table1")
    matrix = {}
    for trial in run.trials:
        matrix.setdefault(trial.params["system"], {})[
            trial.params["mode"]] = trial.result
    rows = []
    for system in sorted(matrix):
        baseline, attack, p4auth = (matrix[system][mode] for mode in
                                    ("baseline", "attack", "p4auth"))
        rows.append([
            system,
            baseline["impact_metric"],
            f"{baseline['impact_value']:.3f}",
            f"{attack['impact_value']:.3f}",
            f"{p4auth['impact_value']:.3f}",
            "yes" if attack["state_poisoned"] else "no",
            "yes" if p4auth["detected"] else "no",
        ])
    print(format_table(
        ["system", "metric", "baseline", "attack", "attack+P4Auth",
         "poisoned", "detected"],
        rows, title="Table I: attack impact"))


def cmd_table2(args) -> None:
    from repro.engine import run_experiment
    from repro.experiments.table2_resources import PROGRAM_LABELS, PROGRAMS
    run = run_experiment("table2")
    rows = []
    for program in PROGRAMS:
        report = run.result_for(program=program)
        rows.append([PROGRAM_LABELS[program], f"{report['tcam_pct']}%",
                     f"{report['sram_pct']}%", f"{report['hash_pct']}%",
                     f"{report['phv_pct']}%"])
    print(format_table(["program", "TCAM", "SRAM", "Hash Units", "PHV"],
                       rows, title="Table II: resource overhead"))


def cmd_table3(args) -> None:
    from repro.engine import run_experiment
    result = run_experiment("table3").only()
    rows = [
        ["init", result["init_messages"], result["formula_init_messages"],
         result["init_bytes"], result["formula_init_bytes"]],
        ["update", result["update_messages"],
         result["formula_update_messages"],
         result["update_bytes"], result["formula_update_bytes"]],
    ]
    print(format_table(
        ["op", "measured msgs", "formula msgs", "measured B", "formula B"],
        rows, title=f"Table III (live m={result['m_switches']}, "
                    f"n={result['n_links']})"))


def cmd_aggregation(args) -> None:
    from repro.engine import run_experiment
    run = run_experiment("aggregation")
    rows = [[t.params["mode"],
             f"{t.result['correct_chunks']}/{t.result['chunks']}",
             f"{t.result['jct_rounds']:.2f}", t.result["alerts"]]
            for t in run.trials]
    print(format_table(
        ["mode", "correct aggregates", "JCT (rounds)", "alerts"],
        rows, title="Attack 2: in-network aggregation"))


#: Experiments the ``telemetry`` subcommand can instrument.
TELEMETRY_TARGETS = ("fig17", "fig18", "fig20")


def cmd_telemetry(args) -> None:
    """Run one experiment with telemetry enabled; dump trace + metrics."""
    from repro.telemetry import Telemetry

    target = args.target or "fig17"
    if target not in TELEMETRY_TARGETS:
        raise SystemExit(
            f"telemetry target must be one of {TELEMETRY_TARGETS}")
    tel = Telemetry(enabled=True)

    if target == "fig17":
        from repro.experiments.fig17_hula import MODES, run_hula
        rows = []
        for mode in MODES:
            result = run_hula(mode, duration_s=min(args.duration, 10.0),
                              telemetry=tel)
            rows.append([mode,
                         f"{result.shares['s2'] * 100:.1f}%",
                         f"{result.shares['s3'] * 100:.1f}%",
                         f"{result.shares['s4'] * 100:.1f}%",
                         result.alerts])
        print(format_table(["mode", "via S2", "via S3", "via S4", "alerts"],
                           rows, title="Fig 17: HULA traffic distribution"))
    elif target == "fig18":
        from repro.runtime.comparison import measure
        table = measure(duration_s=min(args.duration, 10.0), telemetry=tel)
        rows = [[name, kind, stats.completed,
                 f"{stats.mean_rct_s * 1e6:.1f}"]
                for (name, kind), stats in sorted(table.items())]
        print(format_table(["stack", "op", "completed", "mean RCT (us)"],
                           rows, title="Fig 18: stack comparison"))
    else:
        from repro.experiments.fig20_kmp import OPS, run_kmp_rtt
        result = run_kmp_rtt(repeats=20, telemetry=tel)
        rows = [[op, f"{result.mean_ms(op):.3f}"] for op in OPS]
        print(format_table(["operation", "RTT (ms)"],
                           rows, title="Fig 20: key management RTT"))

    trace_path = args.trace_out or f"telemetry-{target}.jsonl"
    count = tel.tracer.dump(trace_path)
    print()
    print(tel.render_prometheus())
    print(f"# wrote {count} trace events to {trace_path}"
          + (f" ({tel.tracer.evicted} evicted)" if tel.tracer.evicted else ""))


def cmd_chaos(args) -> None:
    """Run chaos scenarios under a fixed seed; non-zero exit on failure.

    A target of ``smoke`` runs the two cheapest scenarios (the CI job);
    no target runs everything.
    """
    from repro.faults import SCENARIOS, SMOKE_SCENARIOS, run_scenario
    from repro.telemetry import Telemetry

    if args.target is None or args.target == "all":
        names = sorted(SCENARIOS)
    elif args.target == "smoke":
        names = list(SMOKE_SCENARIOS)
    elif args.target in SCENARIOS:
        names = [args.target]
    else:
        raise SystemExit(f"unknown chaos scenario {args.target!r} "
                         f"(have: {sorted(SCENARIOS)} + 'smoke', 'all')")

    failed = False
    for index, name in enumerate(names):
        tel = Telemetry(enabled=True)
        report = run_scenario(name, seed=args.seed, telemetry=tel)
        print(report.summary())
        if args.trace_out:
            path = (args.trace_out if len(names) == 1
                    else f"{name}-{args.trace_out}")
            count = tel.tracer.dump(path)
            print(f"  # wrote {count} trace events to {path}")
        if index < len(names) - 1:
            print()
        failed = failed or not report.passed
    if failed:
        raise SystemExit(1)


COMMANDS = {
    "chaos": cmd_chaos,
    "fig16": cmd_fig16,
    "fig17": cmd_fig17,
    "fig20": cmd_fig20,
    "fig21": cmd_fig21,
    "table1": cmd_table1,
    "table2": cmd_table2,
    "table3": cmd_table3,
    "aggregation": cmd_aggregation,
    "telemetry": cmd_telemetry,
}

#: Paper tables printed by ``python -m repro all``, in dependency-free
#: cheap-first order.
ALL_ORDER = ("table2", "fig20", "fig21", "table3", "fig16", "fig17",
             "table1", "aggregation")


def print_experiment_listing(stream=None) -> None:
    """The registry, as a table: what ``repro run <name>`` accepts."""
    from repro.engine import all_specs
    stream = stream or sys.stdout
    rows = []
    for spec in sorted(all_specs(), key=lambda s: s.name):
        rows.append([spec.name, spec.source, len(spec.expand()),
                     ",".join(spec.tags), spec.title])
    table = format_table(["name", "source", "trials", "tags", "title"],
                         rows, title="Registered experiments")
    print(table, file=stream)
    print("\nUsage: python -m repro run <name> [--sweep k=v1,v2] "
          "[--workers N] [--seed N] [--short]\n"
          "       python -m repro {list,report,serve,verify,"
          + ",".join(sorted(COMMANDS)) + ",all}", file=stream)


def cmd_run(argv) -> int:
    """The generic engine front-end: run any registered spec."""
    from repro.engine import (
        ResultCache,
        get_spec,
        parse_sweep,
        Runner,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro run",
        description="Run one registered experiment through the engine.")
    parser.add_argument("name", nargs="?", default=None,
                        help="registered experiment name "
                             "(see `python -m repro list`); omit to "
                             "print the listing")
    parser.add_argument("--sweep", action="append", default=[],
                        metavar="PARAM=V1,V2",
                        help="sweep a parameter over comma-separated "
                             "values (repeatable)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes to shard trials across "
                             "(results are identical for any value)")
    parser.add_argument("--seed", type=int, default=None,
                        help="base seed: derive a distinct deterministic "
                             "seed per trial (default: keep each spec's "
                             "reference seeds)")
    parser.add_argument("--short", action="store_true",
                        help="use the spec's reduced CI-smoke parameters")
    parser.add_argument("--cache", action="store_true",
                        help="reuse/populate the content-hash result cache")
    parser.add_argument("--cache-dir", default=".bench_cache",
                        help="cache directory (with --cache)")
    parser.add_argument("--out-dir", default=".",
                        help="where BENCH_<name>.json is written "
                             "('' to skip the artifact)")
    parser.add_argument("--trace-dir", default=None,
                        help="write per-trial telemetry JSONL traces here "
                             "(specs that support telemetry only)")
    args = parser.parse_args(argv)

    if args.name is None:
        # Bare `repro run` is informational, not an error: show what the
        # engine can run and exit cleanly.
        print_experiment_listing()
        return 0
    try:
        spec = get_spec(args.name)
    except KeyError:
        print(f"unknown experiment {args.name!r}\n", file=sys.stderr)
        print_experiment_listing(sys.stderr)
        raise SystemExit(2)
    sweep = parse_sweep(spec, args.sweep) if args.sweep else None

    runner = Runner(
        workers=args.workers,
        cache=ResultCache(args.cache_dir) if args.cache else None,
        out_dir=args.out_dir or None,
        trace_dir=args.trace_dir)
    run = runner.run(spec, sweep=sweep, base_seed=args.seed,
                     short=args.short)

    rows = []
    for trial in run.trials:
        scalars = {key: value for key, value in trial.result.items()
                   if not isinstance(value, (dict, list))}
        preview = ", ".join(f"{k}={v}" for k, v in sorted(scalars.items()))
        rows.append([trial.id, trial.seed,
                     preview if len(preview) <= 72 else preview[:69] + "..."])
    print(format_table(["trial", "seed", "result"], rows,
                       title=f"{spec.name}: {spec.title}"))
    meta = run.run_meta
    print(f"\n# {meta['trials']} trials, {meta['executed']} executed, "
          f"{meta['cache_hits']} cached, workers={meta['workers']}, "
          f"{meta['elapsed_s']:.2f}s")
    if run.artifact_path:
        print(f"# wrote {run.artifact_path}")
    return 0


def cmd_report(argv) -> int:
    """Render a markdown report from emitted ``BENCH_*.json`` artifacts."""
    from repro.analysis.report import render_artifact_report

    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Summarize BENCH_*.json artifacts as markdown.")
    parser.add_argument("--dir", default=".",
                        help="directory holding BENCH_*.json files")
    parser.add_argument("--out", default=None,
                        help="write the report here instead of stdout")
    args = parser.parse_args(argv)

    text = render_artifact_report(args.dir)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"# wrote {args.out}")
    else:
        print(text)
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("list", "-h", "--help"):
        print_experiment_listing()
        return 0
    command, rest = argv[0], argv[1:]
    if command == "run":
        return cmd_run(rest)
    if command == "report":
        return cmd_report(rest)
    if command == "verify":
        from repro.verify.cli import cmd_verify
        return cmd_verify(rest)
    if command == "serve":
        from repro.service.cli import cmd_serve
        return cmd_serve(rest)
    if command not in COMMANDS and command != "all":
        print(f"unknown command {command!r}\n", file=sys.stderr)
        print_experiment_listing(sys.stderr)
        raise SystemExit(2)

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run P4Auth reproduction experiments.")
    parser.add_argument("experiment",
                        choices=sorted(COMMANDS) + ["all"],
                        help="which paper experiment to run")
    parser.add_argument("target", nargs="?", default=None,
                        help="for 'telemetry': which experiment to "
                             f"instrument {TELEMETRY_TARGETS} "
                             "(default: fig17); for 'chaos': a scenario "
                             "name, 'smoke', or 'all' (default)")
    parser.add_argument("--duration", type=float, default=30.0,
                        help="simulated duration for trace-driven "
                             "experiments (seconds)")
    parser.add_argument("--seed", type=int, default=1,
                        help="for 'chaos': the fault-plan seed "
                             "(same seed => byte-identical trace)")
    parser.add_argument("--trace-out", default=None,
                        help="for 'telemetry'/'chaos': JSONL trace "
                             "output path")
    args = parser.parse_args(argv)
    if args.experiment == "all":
        for name in ALL_ORDER:
            COMMANDS[name](args)
            print()
    else:
        COMMANDS[args.experiment](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
