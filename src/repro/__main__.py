"""Command-line experiment runner: ``python -m repro <experiment>``.

Each subcommand runs one paper experiment and prints its table — the
same drivers the benchmark suite uses, without pytest in the way.

    python -m repro fig16            # RouteScout defense
    python -m repro fig17            # HULA defense
    python -m repro fig20            # KMP RTTs
    python -m repro fig21            # multihop probe overhead
    python -m repro table1           # attack-impact matrix
    python -m repro table2           # resource overhead
    python -m repro table3           # KMP scalability (live 25-switch net)
    python -m repro aggregation      # Attack 2 on in-network aggregation
    python -m repro all              # everything
    python -m repro telemetry fig17  # instrumented run: JSONL trace +
                                     # Prometheus-style metrics dump
    python -m repro chaos            # fault-injection scenarios (all)
    python -m repro chaos kmp-blackout --seed 7 --trace-out chaos.jsonl
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import format_table


def cmd_fig16(args) -> None:
    from repro.experiments.fig16_routescout import MODES, run_routescout
    rows = []
    for mode in MODES:
        result = run_routescout(mode, duration_s=args.duration,
                                attack_start_s=args.duration * 0.25)
        rows.append([mode, f"{result.share_path1 * 100:.1f}%",
                     f"{result.share_path2 * 100:.1f}%",
                     result.epochs_skipped, result.tamper_events])
    print(format_table(
        ["mode", "path1", "path2", "epochs skipped", "tamper events"],
        rows, title="Fig 16: RouteScout traffic distribution"))


def cmd_fig17(args) -> None:
    from repro.experiments.fig17_hula import MODES, run_hula
    rows = []
    for mode in MODES:
        result = run_hula(mode, duration_s=min(args.duration, 10.0))
        rows.append([mode,
                     f"{result.shares['s2'] * 100:.1f}%",
                     f"{result.shares['s3'] * 100:.1f}%",
                     f"{result.shares['s4'] * 100:.1f}%",
                     result.alerts])
    print(format_table(["mode", "via S2", "via S3", "via S4", "alerts"],
                       rows, title="Fig 17: HULA traffic distribution"))


def cmd_fig20(args) -> None:
    from repro.experiments.fig20_kmp import OPS, run_kmp_rtt
    result = run_kmp_rtt(repeats=20)
    rows = [[op, f"{result.mean_ms(op):.3f}",
             result.footprint[op][0], result.footprint[op][1]]
            for op in OPS]
    print(format_table(["operation", "RTT (ms)", "messages", "bytes"],
                       rows, title="Fig 20: key management RTT"))


def cmd_fig21(args) -> None:
    from repro.experiments.fig21_multihop import overhead_curve
    rows = [[r["hops"], f"{r['base_us']:.1f}", f"{r['p4auth_us']:.1f}",
             f"{r['overhead_pct']:.2f}%"]
            for r in overhead_curve(num_probes=30)]
    print(format_table(["hops", "base (us)", "P4Auth (us)", "overhead"],
                       rows, title="Fig 21: probe traversal vs hops"))


def cmd_table1(args) -> None:
    from repro.experiments.table1_impact import run_table1
    result = run_table1()
    print(format_table(
        ["system", "metric", "baseline", "attack", "attack+P4Auth",
         "poisoned", "detected"],
        result.rows(), title="Table I: attack impact"))


def cmd_table2(args) -> None:
    from repro.core.program import baseline_program_spec, p4auth_program_spec
    from repro.dataplane.resources import ResourceModel
    model = ResourceModel()
    rows = []
    for name, spec in (("Baseline", baseline_program_spec()),
                       ("With P4Auth", p4auth_program_spec())):
        report = model.report(spec)
        rows.append([name, f"{report.tcam_pct}%", f"{report.sram_pct}%",
                     f"{report.hash_pct}%", f"{report.phv_pct}%"])
    print(format_table(["program", "TCAM", "SRAM", "Hash Units", "PHV"],
                       rows, title="Table II: resource overhead"))


def cmd_table3(args) -> None:
    from repro.experiments.table3_scalability import run_table3
    result = run_table3()
    rows = [
        ["init", result.init_messages, result.formula_init_messages,
         result.init_bytes, result.formula_init_bytes],
        ["update", result.update_messages, result.formula_update_messages,
         result.update_bytes, result.formula_update_bytes],
    ]
    print(format_table(
        ["op", "measured msgs", "formula msgs", "measured B", "formula B"],
        rows, title=f"Table III (live m={result.m_switches}, "
                    f"n={result.n_links})"))


def cmd_aggregation(args) -> None:
    from repro.experiments.attack2_aggregation import MODES, run_aggregation
    rows = []
    for mode in MODES:
        result = run_aggregation(mode, chunks=30)
        rows.append([mode, f"{result.correct_chunks}/{result.chunks}",
                     f"{result.jct_rounds:.2f}", result.alerts])
    print(format_table(
        ["mode", "correct aggregates", "JCT (rounds)", "alerts"],
        rows, title="Attack 2: in-network aggregation"))


#: Experiments the ``telemetry`` subcommand can instrument.
TELEMETRY_TARGETS = ("fig17", "fig18", "fig20")


def cmd_telemetry(args) -> None:
    """Run one experiment with telemetry enabled; dump trace + metrics."""
    from repro.telemetry import Telemetry

    target = args.target or "fig17"
    if target not in TELEMETRY_TARGETS:
        raise SystemExit(
            f"telemetry target must be one of {TELEMETRY_TARGETS}")
    tel = Telemetry(enabled=True)

    if target == "fig17":
        from repro.experiments.fig17_hula import MODES, run_hula
        rows = []
        for mode in MODES:
            result = run_hula(mode, duration_s=min(args.duration, 10.0),
                              telemetry=tel)
            rows.append([mode,
                         f"{result.shares['s2'] * 100:.1f}%",
                         f"{result.shares['s3'] * 100:.1f}%",
                         f"{result.shares['s4'] * 100:.1f}%",
                         result.alerts])
        print(format_table(["mode", "via S2", "via S3", "via S4", "alerts"],
                           rows, title="Fig 17: HULA traffic distribution"))
    elif target == "fig18":
        from repro.runtime.comparison import measure
        table = measure(duration_s=min(args.duration, 10.0), telemetry=tel)
        rows = [[name, kind, stats.completed,
                 f"{stats.mean_rct_s * 1e6:.1f}"]
                for (name, kind), stats in sorted(table.items())]
        print(format_table(["stack", "op", "completed", "mean RCT (us)"],
                           rows, title="Fig 18: stack comparison"))
    else:
        from repro.experiments.fig20_kmp import OPS, run_kmp_rtt
        result = run_kmp_rtt(repeats=20, telemetry=tel)
        rows = [[op, f"{result.mean_ms(op):.3f}"] for op in OPS]
        print(format_table(["operation", "RTT (ms)"],
                           rows, title="Fig 20: key management RTT"))

    trace_path = args.trace_out or f"telemetry-{target}.jsonl"
    count = tel.tracer.dump(trace_path)
    print()
    print(tel.render_prometheus())
    print(f"# wrote {count} trace events to {trace_path}"
          + (f" ({tel.tracer.evicted} evicted)" if tel.tracer.evicted else ""))


def cmd_chaos(args) -> None:
    """Run chaos scenarios under a fixed seed; non-zero exit on failure.

    A target of ``smoke`` runs the two cheapest scenarios (the CI job);
    no target runs everything.
    """
    from repro.faults import SCENARIOS, SMOKE_SCENARIOS, run_scenario
    from repro.telemetry import Telemetry

    if args.target is None or args.target == "all":
        names = sorted(SCENARIOS)
    elif args.target == "smoke":
        names = list(SMOKE_SCENARIOS)
    elif args.target in SCENARIOS:
        names = [args.target]
    else:
        raise SystemExit(f"unknown chaos scenario {args.target!r} "
                         f"(have: {sorted(SCENARIOS)} + 'smoke', 'all')")

    failed = False
    for index, name in enumerate(names):
        tel = Telemetry(enabled=True)
        report = run_scenario(name, seed=args.seed, telemetry=tel)
        print(report.summary())
        if args.trace_out:
            path = (args.trace_out if len(names) == 1
                    else f"{name}-{args.trace_out}")
            count = tel.tracer.dump(path)
            print(f"  # wrote {count} trace events to {path}")
        if index < len(names) - 1:
            print()
        failed = failed or not report.passed
    if failed:
        raise SystemExit(1)


COMMANDS = {
    "chaos": cmd_chaos,
    "fig16": cmd_fig16,
    "fig17": cmd_fig17,
    "fig20": cmd_fig20,
    "fig21": cmd_fig21,
    "table1": cmd_table1,
    "table2": cmd_table2,
    "table3": cmd_table3,
    "aggregation": cmd_aggregation,
    "telemetry": cmd_telemetry,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run P4Auth reproduction experiments.")
    parser.add_argument("experiment",
                        choices=sorted(COMMANDS) + ["all"],
                        help="which paper experiment to run")
    parser.add_argument("target", nargs="?", default=None,
                        help="for 'telemetry': which experiment to "
                             f"instrument {TELEMETRY_TARGETS} "
                             "(default: fig17); for 'chaos': a scenario "
                             "name, 'smoke', or 'all' (default)")
    parser.add_argument("--duration", type=float, default=30.0,
                        help="simulated duration for trace-driven "
                             "experiments (seconds)")
    parser.add_argument("--seed", type=int, default=1,
                        help="for 'chaos': the fault-plan seed "
                             "(same seed => byte-identical trace)")
    parser.add_argument("--trace-out", default=None,
                        help="for 'telemetry'/'chaos': JSONL trace "
                             "output path")
    args = parser.parse_args(argv)
    if args.experiment == "all":
        for name in ("table2", "fig20", "fig21", "table3", "fig16",
                     "fig17", "table1", "aggregation"):
            COMMANDS[name](args)
            print()
    else:
        COMMANDS[args.experiment](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
