"""The atomic-write / orphan-sweep idiom, shared by every disk writer.

The engine's ResultCache pioneered the pattern in this repo: write to a
per-process ``*.tmp`` created with ``mkstemp`` in the destination
directory, then ``os.replace`` onto the final name — readers see either
the old file or the complete new one, never a torn write, and
concurrent writers (worker shards) cannot clobber each other's
temporaries.  A SIGKILL between ``mkstemp`` and ``replace`` leaves an
orphaned temp file behind; :func:`sweep_orphan_tmp` reclaims those at
open/clear time.

Extracted here so the journal/snapshot store and the result cache share
one audited implementation instead of three divergent copies.
"""

from __future__ import annotations

import os
import tempfile

#: Suffix every atomic writer's temporaries carry (and the sweep hunts).
TMP_SUFFIX = ".tmp"


def fsync_dir(path: str) -> None:
    """Fsync the directory ``path`` so a just-performed rename, create,
    or unlink of an entry in it survives power loss.

    File-content fsync alone does not persist the *directory entry* on
    journaling filesystems; without this, a power failure can undo an
    ``os.replace`` whose payload was already durable.  Best-effort:
    platforms or filesystems that refuse to open/fsync a directory
    (some network mounts, Windows) are silently tolerated — they offer
    no stronger primitive anyway.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(path, flags)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes, fsync: bool = False) -> None:
    """Atomically create/replace ``path`` with ``data``.

    The temp file lives in ``path``'s directory so the final
    ``os.replace`` is a same-filesystem rename (atomic on POSIX).  With
    ``fsync=True`` the payload is flushed to stable storage before the
    rename and the containing directory is fsynced after it, so a power
    failure can neither surface a torn committed file nor silently lose
    the rename.  On any failure the temp file is removed and the
    original ``path`` (if it existed) is untouched.
    """
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=TMP_SUFFIX)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if fsync:
            fsync_dir(directory)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: str, text: str, fsync: bool = False) -> None:
    """Text-mode convenience over :func:`atomic_write_bytes` (UTF-8)."""
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def sweep_orphan_tmp(root: str) -> int:
    """Delete orphaned ``*.tmp`` files under ``root``; returns the count.

    Safe to call on a missing directory (returns 0) and concurrently
    with live writers: a temp file that disappears between walk and
    unlink (its writer just renamed or cleaned it) is skipped, not an
    error.
    """
    removed = 0
    if not os.path.isdir(root):
        return removed
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in filenames:
            if not filename.endswith(TMP_SUFFIX):
                continue
            try:
                os.unlink(os.path.join(dirpath, filename))
                removed += 1
            except OSError:
                pass
    return removed


__all__ = [
    "TMP_SUFFIX",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_dir",
    "sweep_orphan_tmp",
]
