"""Live journaling of a controller's durable state changes.

:class:`StateRecorder` subscribes to the hook points the core exposes —
:attr:`ControllerKeyStore.listener`,
:attr:`P4AuthController.seq_listener`,
:attr:`BatchController.window_listener`,
:attr:`RegionalKeyAuthority.on_epoch` — and appends a typed journal
record for each change **before the controller acts on it** (all three
hooks fire synchronously ahead of the action they cover; the journal
append, and under strict fsync policies the fsync, happen inline).

Sequence numbers get the skip-ahead treatment: rather than journaling
every ``next_seq`` (one fsync per request would erase the batching
win), the recorder journals a *horizon* reservation ``seq + stride``
whenever the controller is about to use a number at or past the current
horizon.  Recovery resumes issuing **at** the horizon — skipping up to
``stride - 1`` never-used numbers, which the data plane's monotonic
``expected_seq`` accepts by design — so no sequence number can ever be
reused, which is exactly the property the replay defense needs.
Horizons are journaled *unmasked*: the controller's counter wraps at 32
bits, but the journal lifts each reported value onto a monotone counter
(serial-number arithmetic), so a post-wrap horizon still reads as
forward movement on replay instead of being rejected as stale.

The recorder also folds every record it writes into an in-memory
:class:`~repro.store.state.StoreState` mirror through the same pure
:func:`~repro.store.state.apply_record` recovery uses — snapshots
serialize this mirror, making "snapshot + tail ≡ full replay" hold by
construction.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.store.journal import Journal
from repro.store.snapshot import SnapshotStore
from repro.store.state import SEQ_MASK, StoreState, apply_record

#: Sequence numbers reserved (journaled) ahead of use per switch.
DEFAULT_SEQ_STRIDE = 64


class StateRecorder:
    """Journals a live controller's durable state, write-ahead."""

    def __init__(self, journal: Journal,
                 snapshots: Optional[SnapshotStore] = None, *,
                 seq_stride: int = DEFAULT_SEQ_STRIDE,
                 snapshot_every: Optional[int] = None,
                 state: Optional[StoreState] = None):
        if seq_stride < 1:
            raise ValueError("seq_stride must be >= 1")
        self.journal = journal
        self.snapshots = snapshots
        self.seq_stride = seq_stride
        #: Auto-snapshot after this many appended records (None: manual).
        self.snapshot_every = snapshot_every
        #: The in-memory mirror (recovery seeds it with the replayed
        #: state so the first snapshot after a warm restart is complete).
        self.state = state if state is not None else StoreState()
        self._reserved: Dict[str, int] = dict(self.state.seq_horizons)
        #: Per-switch unmasked monotone sequence counter.  The
        #: controller reports masked 32-bit values; the journal keeps
        #: horizons unmasked so they stay monotone across a wrap.
        self._unmasked: Dict[str, int] = dict(self.state.seq_horizons)
        self._since_snapshot = 0
        self._controller = None
        self._batch = None
        self._authority = None

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------

    def attach(self, controller, batch=None, authority=None,
               shard_id: Optional[str] = None) -> None:
        """Hook a live controller (and optionally its batch facade and
        regional key authority).

        Any key material and sequence state the controller *already*
        holds is journaled first, so attaching to a bootstrapped
        controller — or one rebuilt by recovery — leaves the journal
        self-contained.  With ``shard_id`` set, the controller's switch
        ownership is journaled as a ``shard_map`` record.
        """
        if self._controller is not None:
            raise RuntimeError("recorder is already attached")
        self._controller = controller
        self._journal_existing(controller, shard_id)
        controller.keys.listener = self._on_key
        controller.seq_listener = self._on_seq
        if batch is not None:
            self._batch = batch
            batch.window_listener = self._on_window
        if authority is not None:
            self._authority = authority
            authority.on_epoch.append(self._on_epoch)

    def detach(self) -> None:
        """Unhook all listeners (the recorder object stays queryable)."""
        controller = self._controller
        if controller is not None:
            if controller.keys.listener is self._on_key:
                controller.keys.listener = None
            if controller.seq_listener is self._on_seq:
                controller.seq_listener = None
        if self._batch is not None \
                and self._batch.window_listener is self._on_window:
            self._batch.window_listener = None
        if self._authority is not None \
                and self._on_epoch in self._authority.on_epoch:
            self._authority.on_epoch.remove(self._on_epoch)
        self._controller = None
        self._batch = None
        self._authority = None

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> Optional[str]:
        """Write a snapshot of the mirror and compact covered segments."""
        if self.snapshots is None:
            return None
        # The mirror may run ahead of stable storage under the "batch"
        # fsync policy (non-durable records buffer until the next group
        # commit).  A snapshot must never cover LSNs the journal could
        # still lose in a crash — recovery would resume below the
        # snapshot's coverage and silently skip every new record whose
        # LSN the stale snapshot shadows.  Sync first, then snapshot.
        self.journal.sync()
        path = self.snapshots.save(self.state)
        self.journal.compact(self.state.applied_lsn + 1)
        self._since_snapshot = 0
        return path

    # ------------------------------------------------------------------
    # hook handlers
    # ------------------------------------------------------------------

    def _on_key(self, switch: str, kind: str, key: int,
                version: int) -> None:
        entry = self.state.keys.get(switch)
        if kind == "local" and entry is not None and entry.has_local:
            self._append("key_rollover",
                         {"switch": switch, "key": key,
                          "version": version}, durable=True)
        else:
            self._append("key_install",
                         {"switch": switch, "kind": kind, "key": key,
                          "version": version}, durable=True)

    def _on_seq(self, switch: str, seq: int) -> None:
        unmasked = self._unmask(switch, seq)
        if unmasked < self._reserved.get(switch, 0):
            return
        horizon = unmasked + self.seq_stride
        self._append("seq_advance", {"switch": switch, "horizon": horizon},
                     durable=True)
        self._reserved[switch] = horizon

    def _on_window(self, edge: str, switch: str,
                   head: Optional[Tuple[str, int]]) -> None:
        if edge == "open":
            self._append("batch_open",
                         {"switch": switch, "reg": head[0],
                          "index": head[1]})
        else:
            self._append("batch_close", {"switch": switch})

    def _on_epoch(self, switch: str, epoch: int) -> None:
        self._append("epoch_advance", {"switch": switch, "epoch": epoch})

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _unmask(self, switch: str, seq: int) -> int:
        """Lift a masked 32-bit controller sequence number onto the
        journal's unmasked monotone counter.

        Serial-number arithmetic: a masked value that moved *backwards*
        by more than half the 32-bit space is a wrap forward into the
        next ``2**32`` block.  Journaled horizons stay unmasked, so
        ``apply_record``'s forward-only rule keeps accepting them across
        a wrap; they are masked back down only where a 32-bit register
        or the controller's own counter needs the value.
        """
        prev = self._unmasked.get(switch, 0)
        unmasked = (prev & ~SEQ_MASK) | (seq & SEQ_MASK)
        if unmasked < prev and prev - unmasked > (SEQ_MASK >> 1):
            unmasked += SEQ_MASK + 1
        if unmasked > prev:
            self._unmasked[switch] = unmasked
        return unmasked

    def _append(self, rec_type: str, data: Dict[str, object],
                durable: bool = False) -> None:
        if not self.journal.is_open:
            # The process this recorder models is dead (a kill switch
            # crashed the journal mid-call): whatever the interrupted
            # caller does next is lost, exactly as on a real SIGKILL.
            return
        record = self.journal.append(rec_type, data, durable=durable)
        apply_record(self.state, record)
        self._since_snapshot += 1
        if self.snapshot_every is not None \
                and self._since_snapshot >= self.snapshot_every:
            self.snapshot()

    def _journal_existing(self, controller,
                          shard_id: Optional[str]) -> None:
        """Bring the journal up to date with pre-attach controller state."""
        keys = controller.keys
        for switch in keys.known_switches():
            try:
                seed = keys.seed(switch)
            except KeyError:
                seed = 0
            if seed:
                self._on_key(switch, "seed", seed, 0)
            auth = keys.auth_key_or_zero(switch)
            if auth:
                self._on_key(switch, "auth", auth, 0)
            if keys.has_local_key(switch):
                slots, active = keys.local_key_slots(switch)
                # Inactive slots first so replay ends on the active one.
                for version, key in enumerate(slots):
                    if key and version != active:
                        self._on_key(switch, "local", key, version)
                if slots[active]:
                    self._on_key(switch, "local", slots[active], active)
        for switch, next_seq in sorted(controller._seq.items()):
            already = self._reserved.get(switch, 0)
            unmasked = self._unmask(switch, next_seq)
            if unmasked >= already:
                horizon = unmasked + self.seq_stride
                self._append("seq_advance",
                             {"switch": switch, "horizon": horizon},
                             durable=True)
                self._reserved[switch] = horizon
        if shard_id is not None:
            self._append("shard_map",
                         {"shard": shard_id,
                          "switches": sorted(controller.dataplanes)},
                         durable=True)


__all__ = ["DEFAULT_SEQ_STRIDE", "StateRecorder"]
