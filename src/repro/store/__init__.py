"""Durable controller state — journal, snapshots, warm restart.

A production P4Auth controller holds exactly the state an operator
cannot afford to lose: master/session keys by version, per-switch
sequence numbers, and in-flight batch windows.  The switches, however,
keep *their* replay counters across a controller crash — so a restarted
controller that forgets where it was immediately trips the monotonic
``expected_seq`` replay defense it deployed (§IV/§VIII).  Recovery must
re-authenticate, never bypass, the defenses.

``repro.store`` is the durability layer:

- :mod:`repro.store.atomic` — the atomic-write / orphan-``*.tmp`` sweep
  idiom, extracted from the engine's ResultCache and shared by every
  on-disk writer in the repo;
- :mod:`repro.store.journal` — an append-only, CRC32-framed write-ahead
  journal with typed records and segment rotation; a torn final record
  (crash mid-append) truncates to the last valid frame with a warning
  metric instead of refusing to open;
- :mod:`repro.store.snapshot` — periodic compacted snapshots of the
  controller's durable state, atomically written, checksummed, with
  fallback to the previous generation on corruption;
- :mod:`repro.store.state` — the replay semantics: a pure
  ``apply_record`` over :class:`~repro.store.state.StoreState`, shared
  by the live recorder and crash recovery so snapshot+tail replay is
  state-identical to full-journal replay *by construction*;
- :mod:`repro.store.recorder` — hooks a live
  :class:`~repro.core.controller.P4AuthController` (and optionally a
  BatchController / RegionalKeyAuthority) and journals every durable
  state change **before it is acted on** (write-ahead discipline);
- :mod:`repro.store.recovery` — warm restart: rebuild controller state
  from snapshot + journal tail, re-derive session keys from journaled
  master-key versions, resume sequence numbers *past* the last durable
  horizon (skip-ahead, never reuse), and reconcile in-flight windows
  via authenticated register reads.

See DESIGN.md "Durability & warm restart" for record formats, the
fsync discipline, and the skip-ahead sequence rule.
"""

from repro.store.atomic import (
    TMP_SUFFIX,
    atomic_write_bytes,
    atomic_write_text,
    fsync_dir,
    sweep_orphan_tmp,
)
from repro.store.journal import (
    FSYNC_POLICIES,
    Journal,
    JournalCorruption,
    JournalRecord,
    RECORD_TYPES,
)
from repro.store.snapshot import SNAPSHOT_SCHEMA, SnapshotStore
from repro.store.state import StoreState, apply_record, replay_records
from repro.store.recorder import StateRecorder
from repro.store.recovery import (
    RecoveryReport,
    load_state,
    open_store,
    restore_dataplane,
    store_exists,
    warm_restart,
)

__all__ = [
    "FSYNC_POLICIES",
    "Journal",
    "JournalCorruption",
    "JournalRecord",
    "RECORD_TYPES",
    "RecoveryReport",
    "SNAPSHOT_SCHEMA",
    "SnapshotStore",
    "StateRecorder",
    "StoreState",
    "TMP_SUFFIX",
    "apply_record",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_dir",
    "load_state",
    "open_store",
    "replay_records",
    "restore_dataplane",
    "store_exists",
    "sweep_orphan_tmp",
    "warm_restart",
]
