"""Warm restart: rebuild a controller from snapshot + journal tail.

The recovery contract, stated against P4Auth's own defenses:

1. **Never reuse a sequence number.**  The journal holds per-switch
   *horizons* — reservations at or past anything the dead controller
   could have used.  Recovery resumes issuing exactly at the horizon
   (:meth:`P4AuthController.restore_seq`); the data plane's monotonic
   ``expected_seq`` accepts the forward skip, so neither a replay alert
   nor a DoS heuristic fires on the controller's own restart.
2. **Re-derive, don't re-negotiate.**  Master keys (K_seed, K_auth,
   K_local by version slot) come from the journal; session keys are a
   pure function of the master (``derive_session_keys``), so the
   session cache repopulates on demand.  Both local-key version slots
   are restored, and responses echo the key version that signed the
   request (§VI-C two-version rule) — so even a rollover that completed
   on the switch after our last journal record still verifies.
3. **Reconcile, don't assume.**  For every batch window open at crash
   time the restarted controller issues an *authenticated register
   read* of the window's head register; a verified response proves the
   channel is live and the defense state consistent before normal
   traffic resumes.

:func:`warm_restart` is the one-call path: open the store, replay, pour
the state into a freshly provisioned controller, attach a new
:class:`~repro.store.recorder.StateRecorder`, and fire reconciliation
reads.  :func:`restore_dataplane` is the daemon-side helper for
simulated restarts where fresh in-process switch objects stand in for
external hardware that kept its registers.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.keys import LOCAL_KEY_INDEX
from repro.store.journal import FSYNC_POLICIES, Journal, JournalRecord
from repro.store.recorder import DEFAULT_SEQ_STRIDE, StateRecorder
from repro.store.snapshot import SnapshotStore
from repro.store.state import StoreState, replay_records

#: Buckets for the wall-clock recovery-duration histogram (seconds).
RECOVERY_BUCKETS: Tuple[float, ...] = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0,
)

JOURNAL_SUBDIR = "journal"
SNAPSHOT_SUBDIR = "snapshots"


@dataclass
class RecoveryReport:
    """What one warm restart found and did."""

    state: StoreState
    #: Did a snapshot seed the replay (False: full-journal replay)?
    snapshot_used: bool
    #: Journal records replayed on top of the snapshot base.
    replayed_records: int
    #: Torn tail records truncated at journal open.
    torn_records: int
    #: Switches whose key material was restored into the controller.
    switches_restored: int
    seq_horizons: Dict[str, int] = field(default_factory=dict)
    #: Per-switch reconciliation outcome for windows open at crash
    #: time: None until the authenticated read resolves, then ok.
    windows: Dict[str, Optional[bool]] = field(default_factory=dict)
    #: Wall-clock seconds for open+replay+restore (reconciliation reads
    #: complete asynchronously in simulated time).
    duration_s: float = 0.0

    @property
    def windows_pending(self) -> int:
        return sum(1 for ok in self.windows.values() if ok is None)

    @property
    def windows_reconciled(self) -> bool:
        return all(ok for ok in self.windows.values())


def store_exists(state_dir: str) -> bool:
    """Does ``state_dir`` hold any durable state worth recovering?

    True when a journal segment or snapshot file is present — the
    daemon uses this to choose warm restart (restore + reconcile) over
    a cold bootstrap, *without* opening the store twice.
    """
    for subdir, suffix in ((JOURNAL_SUBDIR, ".wal"),
                           (SNAPSHOT_SUBDIR, ".json")):
        root = os.path.join(state_dir, subdir)
        try:
            names = os.listdir(root)
        except OSError:
            continue
        if any(name.endswith(suffix) for name in names):
            return True
    return False


def open_store(state_dir: str, *, fsync: str = "always",
               segment_max_bytes: int = 4 << 20, keep: int = 2,
               metrics=None, **metric_labels
               ) -> Tuple[Journal, SnapshotStore, List[JournalRecord]]:
    """Open (creating if needed) the journal + snapshot store under one
    state directory; returns the journal's surviving records."""
    if fsync not in FSYNC_POLICIES:
        raise ValueError(f"fsync must be one of {FSYNC_POLICIES}")
    journal = Journal(os.path.join(state_dir, JOURNAL_SUBDIR),
                      fsync=fsync, segment_max_bytes=segment_max_bytes,
                      metrics=metrics, **metric_labels)
    records = journal.open()
    snapshots = SnapshotStore(os.path.join(state_dir, SNAPSHOT_SUBDIR),
                              keep=keep, metrics=metrics, **metric_labels)
    return journal, snapshots, records


def load_state(records: List[JournalRecord],
               snapshots: Optional[SnapshotStore] = None
               ) -> Tuple[StoreState, bool, int]:
    """Snapshot + tail replay; returns (state, snapshot_used, replayed).

    With no (valid) snapshot this degrades to a full-journal replay —
    the property test in ``tests/store`` pins the two paths to
    identical states.
    """
    base = snapshots.load_latest() if snapshots is not None else None
    snapshot_used = base is not None
    state = base if base is not None else StoreState()
    replayed = 0
    for record in records:
        if record.lsn <= state.applied_lsn:
            continue
        replay_records([record], state)
        replayed += 1
    return state, snapshot_used, replayed


def restore_dataplane(dataplane, state: StoreState) -> None:
    """Reinstall journaled switch-side state into a fresh dataplane.

    Daemon restarts rebuild the *whole* in-process deployment, but the
    simulated switches stand in for external hardware whose registers
    survived the controller's crash.  This reinstalls what that hardware
    would still hold: K_auth, both local-key version slots, and — being
    adversarially strict — ``expected_seq`` raised to the journaled
    horizon, so recovery only succeeds if the skip-ahead rule works.
    """
    name = dataplane.switch.name
    registers = dataplane.switch.registers
    entry = state.keys.get(name)
    if entry is not None:
        if entry.auth:
            registers.get("p4auth_kauth").write(0, entry.auth)
        if entry.has_local:
            for version, key in enumerate(entry.local_slots):
                if key and version != entry.local_active:
                    dataplane.keys.install_at(LOCAL_KEY_INDEX, key, version)
            active_key = entry.local_slots[entry.local_active]
            if active_key:
                dataplane.keys.install_at(LOCAL_KEY_INDEX, active_key,
                                          entry.local_active)
    horizon = state.seq_horizons.get(name)
    if horizon is not None:
        registers.get("p4auth_expected_seq").write(0, horizon & 0xFFFFFFFF)


def warm_restart(state_dir: str, controller, *, batch=None, authority=None,
                 shard_id: Optional[str] = None, fsync: str = "always",
                 seq_stride: int = DEFAULT_SEQ_STRIDE,
                 snapshot_every: Optional[int] = None, keep: int = 2,
                 reconcile: bool = True, metrics=None, **metric_labels
                 ) -> Tuple[StateRecorder, RecoveryReport]:
    """Rebuild a freshly constructed controller from its state directory.

    The controller must already be provisioned against its dataplanes
    (K_seed + register-id maps — switch-boot configuration, not crash
    state).  On return the recorder is attached and journaling; the
    report's ``windows`` entries resolve as the reconciliation reads
    complete in simulated time.  Works identically on an empty state
    directory (cold start: nothing to replay, recorder just attaches).
    """
    started = time.perf_counter()
    journal, snapshots, records = open_store(
        state_dir, fsync=fsync, keep=keep, metrics=metrics, **metric_labels)
    state, snapshot_used, replayed = load_state(records, snapshots)
    # A surviving snapshot can cover LSNs the journal itself lost (a
    # state dir written under fsync='batch' by a build that snapshotted
    # without syncing first).  Clamp the LSN space forward so fresh
    # records are never assigned LSNs the snapshot already covers —
    # tail replay skips everything at or below ``applied_lsn``, so a
    # collision would silently erase acknowledged durable records on
    # the *next* recovery.  Everything below the clamp is inside the
    # snapshot (``skip_to`` compacts the covered segments away).
    if state.applied_lsn + 1 > journal.next_lsn:
        journal.skip_to(state.applied_lsn + 1)
    # The recovery-time truth, frozen before the new recorder starts
    # mutating `state` (attach immediately reserves fresh seq horizons
    # — the *report* must keep the horizons the controller resumes at,
    # which is what ``restore_dataplane`` installs as ``expected_seq``).
    recovered_state = state.copy()

    keys = controller.keys
    restored = 0
    for switch in sorted(state.keys):
        entry = state.keys[switch]
        if entry.seed:
            keys.set_seed(switch, entry.seed)
        if entry.auth:
            keys.set_auth_key(switch, entry.auth)
        if entry.has_local:
            for version, key in enumerate(entry.local_slots):
                if key and version != entry.local_active:
                    keys.install_local_key_at(switch, key, version)
            active_key = entry.local_slots[entry.local_active]
            if active_key:
                keys.install_local_key_at(switch, active_key,
                                          entry.local_active)
        restored += 1
    for switch, horizon in state.seq_horizons.items():
        controller.restore_seq(switch, horizon)
    if authority is not None and state.epochs:
        authority.restore_epochs(state.epochs)

    recorder = StateRecorder(journal, snapshots, seq_stride=seq_stride,
                             snapshot_every=snapshot_every,
                             state=state)
    recorder.attach(controller, batch=batch, authority=authority,
                    shard_id=shard_id)

    report = RecoveryReport(
        state=recovered_state, snapshot_used=snapshot_used,
        replayed_records=replayed, torn_records=journal.torn_records,
        switches_restored=restored,
        seq_horizons=dict(recovered_state.seq_horizons),
        windows={switch: None
                 for switch in sorted(recovered_state.open_windows)},
    )
    report.duration_s = time.perf_counter() - started
    if metrics is not None and getattr(metrics, "enabled", False):
        metrics.histogram("store_recovery_seconds",
                          buckets=RECOVERY_BUCKETS,
                          **metric_labels).observe(report.duration_s)
        metrics.gauge("store_recovery_replayed_records",
                      **metric_labels).set(replayed)

    if reconcile:
        for switch, window in sorted(recovered_state.open_windows.items()):
            if switch not in controller.dataplanes \
                    or not controller.keys.has_local_key(switch):
                # No channel (switch gone) or no key material survived
                # (crash before the install was durable): this window
                # cannot be reconciled — the caller re-bootstraps.
                report.windows[switch] = False
                continue

            def _resolved(ok: bool, _value: int, sw: str = switch) -> None:
                report.windows[sw] = ok
                if ok:
                    # The window's fate is now known; mark it closed so
                    # the next recovery doesn't re-reconcile it.
                    recorder._append("batch_close", {"switch": sw})

            controller.read_register(switch, window["reg"],
                                     int(window["index"]), _resolved)
    return recorder, report


__all__ = [
    "JOURNAL_SUBDIR",
    "RECOVERY_BUCKETS",
    "RecoveryReport",
    "SNAPSHOT_SUBDIR",
    "load_state",
    "open_store",
    "restore_dataplane",
    "store_exists",
    "warm_restart",
]
